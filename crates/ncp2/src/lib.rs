//! # ncp2 — reproduction of *"Hiding Communication Latency and Coherence
//! Overhead in Software DSMs"* (Bianchini et al., ASPLOS 1996)
//!
//! Facade crate re-exporting the whole system:
//!
//! | Crate | Contents |
//! |---|---|
//! | [`sim`] | deterministic discrete-event engine, Table-1 parameters, rendezvous front end |
//! | [`mem`] | TLB, direct-mapped cache, write buffer, DRAM, PCI bus |
//! | [`net`] | wormhole-routed mesh with per-link contention |
//! | [`core`] | TreadMarks (Base/I/I+D/P/I+P/I+P+D), the NCP2 protocol controller, AURC(+P) |
//! | [`apps`] | TSP, Water, Radix, Barnes, Ocean, Em3d |
//! | [`stats`] | breakdown tables, speedup curves, ASCII plots |
//!
//! ## Quickstart
//!
//! ```no_run
//! use ncp2::prelude::*;
//!
//! // Run Em3d under TreadMarks with hardware diffs on the 16-node default.
//! let result = run_app(
//!     SysParams::default(),
//!     Protocol::TreadMarks(OverlapMode::ID),
//!     Em3d::default(),
//! );
//! let row = ("I+D", result.total_cycles, result.aggregate(), result.diff_pct());
//! println!("{}", breakdown_table(&[row]));
//! ```

pub use ncp2_apps as apps;
pub use ncp2_core as core;
pub use ncp2_mem as mem;
pub use ncp2_net as net;
pub use ncp2_sim as sim;
pub use ncp2_stats as stats;

/// Everything needed to run and report an experiment.
pub mod prelude {
    pub use ncp2_apps::{
        run_app, sequential_baseline, Barnes, Ctx, Em3d, Ocean, Radix, Svc, Tsp, Water, Workload,
    };
    pub use ncp2_core::{OverlapMode, Protocol, RunResult, Simulation};
    pub use ncp2_sim::{Breakdown, Category, Cycles, SysParams};
    pub use ncp2_stats::{breakdown_table, normalized_bars, speedup_table, xy_plot};
}
