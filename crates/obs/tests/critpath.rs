//! The critical-path conservation law, end to end: for every application
//! under every protocol mode,
//!
//! 1. the execution-dependency graph builds (per-node span chains tile
//!    `[0, finish]`, every edge is anchored and forward) and is **acyclic**;
//! 2. the backward critical-path walk tiles `[0, total]` exactly — the
//!    longest dependency path through the run *equals* the measured total
//!    cycles, category by category;
//! 3. the what-if re-executor under [`Scenario::Identity`] reproduces the
//!    measured total exactly, and every cost-deletion scenario predicts a
//!    total no larger than the measured one;
//! 4. emitting dependency edges is timing-neutral: an observed run is
//!    byte-identical in cycles and checksums to an unobserved one.
//!
//! A golden what-if check closes the causal loop for three paper apps: the
//! `diffs free + offload free` prediction from the **Base**-mode graph must
//! land within a documented tolerance of the measured `I+D` ablation.

use ncp2_apps::{run_app_with, Barnes, Em3d, Ocean, Radix, Tsp, Water, Workload};
use ncp2_core::{OverlapMode, Protocol, RunResult};
use ncp2_obs::{critical_path, slack, what_if, ExecGraph, Scenario};
use ncp2_sim::SysParams;

const ALL_MODES: [Protocol; 8] = [
    Protocol::TreadMarks(OverlapMode::Base),
    Protocol::TreadMarks(OverlapMode::I),
    Protocol::TreadMarks(OverlapMode::ID),
    Protocol::TreadMarks(OverlapMode::P),
    Protocol::TreadMarks(OverlapMode::IP),
    Protocol::TreadMarks(OverlapMode::IPD),
    Protocol::Aurc { prefetch: false },
    Protocol::Aurc { prefetch: true },
];

fn observed_run<W: Workload>(app: W, nprocs: usize, protocol: Protocol) -> RunResult {
    let params = SysParams::default().with_nprocs(nprocs);
    run_app_with(params, protocol, app, |sim| sim.enable_obs())
}

fn assert_conservation<W: Workload + Clone>(app: W, nprocs: usize) {
    for protocol in ALL_MODES {
        let name = app.name();
        let r = observed_run(app.clone(), nprocs, protocol);
        let log = r.obs.as_ref().expect("obs was enabled");
        let g = ExecGraph::build(log, r.nprocs, r.total_cycles)
            .unwrap_or_else(|e| panic!("{name} under {protocol}: graph build failed: {e}"));
        let cp = critical_path(&g)
            .unwrap_or_else(|e| panic!("{name} under {protocol}: walk failed: {e}"));
        // The conservation law: the critical path tiles [0, total] exactly.
        let sum: u64 = cp.segments.iter().map(|s| s.end - s.start).sum();
        assert_eq!(
            sum, r.total_cycles,
            "{name} under {protocol}: critical path length != total cycles"
        );
        let cat_sum: u64 = cp.exposed.iter().map(|&(_, v)| v).sum();
        assert_eq!(
            cat_sum, r.total_cycles,
            "{name} under {protocol}: exposed categories don't sum to total"
        );
        // Segments tile without gaps or overlaps when chained per the walk.
        let mut prev_end = 0;
        for s in &cp.segments {
            assert_eq!(
                s.start, prev_end,
                "{name} under {protocol}: path segment gap at cycle {prev_end}"
            );
            assert!(s.end > s.start);
            prev_end = s.end;
        }
        assert_eq!(prev_end, r.total_cycles);
        // The identity re-execution reproduces the measured total exactly;
        // deletion scenarios can only help.
        let id = what_if(&g, Scenario::Identity);
        assert_eq!(
            id.new_total, r.total_cycles,
            "{name} under {protocol}: identity re-execution drifted"
        );
        for sc in [
            Scenario::DiffsFree,
            Scenario::OffloadFree,
            Scenario::PerfectFill,
            Scenario::DiffsOffloadFree,
        ] {
            let w = what_if(&g, sc);
            assert!(
                w.new_total <= r.total_cycles,
                "{name} under {protocol}: {} predicts a slowdown ({} > {})",
                sc.label(),
                w.new_total,
                r.total_cycles
            );
        }
        // Slack: defined for every chain span, zero somewhere (the
        // finishing chain is rigid), never beyond the run.
        let sl = slack(&g);
        assert!(!sl.is_empty());
        assert!(sl.iter().any(|&(_, s)| s == 0));
        assert!(sl.iter().all(|&(_, s)| s <= r.total_cycles));
    }
}

#[test]
fn tsp_critical_path_conserves_total() {
    assert_conservation(
        Tsp {
            cities: 6,
            prefix_depth: 2,
            seed: 11,
        },
        4,
    );
}

#[test]
fn water_critical_path_conserves_total() {
    assert_conservation(
        Water {
            molecules: 8,
            steps: 1,
            seed: 12,
        },
        4,
    );
}

#[test]
fn radix_critical_path_conserves_total() {
    assert_conservation(
        Radix {
            keys: 256,
            radix: 16,
            passes: 2,
            seed: 13,
        },
        4,
    );
}

#[test]
fn barnes_critical_path_conserves_total() {
    assert_conservation(
        Barnes {
            bodies: 16,
            steps: 1,
            theta_16: 8,
            seed: 14,
        },
        4,
    );
}

#[test]
fn em3d_critical_path_conserves_total() {
    assert_conservation(
        Em3d {
            nodes: 96,
            degree: 2,
            remote_pct: 25,
            iters: 2,
            seed: 15,
        },
        4,
    );
}

#[test]
fn ocean_critical_path_conserves_total() {
    assert_conservation(Ocean { grid: 16, iters: 2 }, 4);
}

/// Edge emission must be timing-neutral: enabling observability (which now
/// also records dependency edges) changes neither cycle counts nor
/// application checksums, for a TreadMarks mode and an AURC mode.
#[test]
fn edge_emission_does_not_change_timing_or_results() {
    let app = Water {
        molecules: 8,
        steps: 1,
        seed: 12,
    };
    for protocol in [
        Protocol::TreadMarks(OverlapMode::IPD),
        Protocol::Aurc { prefetch: true },
    ] {
        let params = SysParams::default().with_nprocs(4);
        let plain = run_app_with(params, protocol, app.clone(), |_| {});
        let observed = observed_run(app.clone(), 4, protocol);
        assert_eq!(plain.total_cycles, observed.total_cycles, "{protocol}");
        assert_eq!(plain.checksum, observed.checksum, "{protocol}");
        assert!(plain.obs.is_none());
        assert!(
            !observed.obs.as_ref().unwrap().edges.is_empty(),
            "{protocol}"
        );
    }
}

/// The golden causal validation: predict the `I+D` ablation from the
/// Base-mode graph by deleting diff work *and* processor-side message
/// handling, and compare against the measured `I+D` run.
///
/// The re-executor is deliberately conservative: flight latencies and
/// arrival-to-action offsets not attributable to deleted work keep their
/// measured values, and the measured `I+D` mode also reshapes controller
/// occupancy and message schedules the re-execution does not model. The
/// documented accuracy bound (DESIGN.md §11) is therefore two-sided:
///
/// * the prediction never *over*-promises — predicted speedup stays within
///   `OVERSHOOT` of the measured one from above; and
/// * it captures at least `CAPTURE` of the measured speedup *gain*
///   (`predicted - 1 >= CAPTURE * (measured - 1)`).
#[test]
fn base_graph_predicts_id_ablation_within_tolerance() {
    const OVERSHOOT: f64 = 1.05;
    const CAPTURE: f64 = 0.3;
    type AppRunner = Box<dyn Fn(Protocol) -> RunResult>;
    let apps: [(&str, AppRunner); 3] = [
        (
            "TSP",
            Box::new(|p| {
                observed_run(
                    Tsp {
                        cities: 6,
                        prefix_depth: 2,
                        seed: 11,
                    },
                    4,
                    p,
                )
            }),
        ),
        (
            "Water",
            Box::new(|p| {
                observed_run(
                    Water {
                        molecules: 8,
                        steps: 1,
                        seed: 12,
                    },
                    4,
                    p,
                )
            }),
        ),
        (
            "Em3d",
            Box::new(|p| {
                observed_run(
                    Em3d {
                        nodes: 96,
                        degree: 2,
                        remote_pct: 25,
                        iters: 2,
                        seed: 15,
                    },
                    4,
                    p,
                )
            }),
        ),
    ];
    for (name, run) in &apps {
        let base = run(Protocol::TreadMarks(OverlapMode::Base));
        let id = run(Protocol::TreadMarks(OverlapMode::ID));
        let log = base.obs.as_ref().expect("obs");
        let g = ExecGraph::build(log, base.nprocs, base.total_cycles).expect("graph");
        let w = what_if(&g, Scenario::DiffsOffloadFree);
        let predicted = base.total_cycles as f64 / w.new_total as f64;
        let measured = base.total_cycles as f64 / id.total_cycles as f64;
        assert!(
            predicted <= measured * OVERSHOOT,
            "{name}: predicted speedup {predicted:.3} over-promises vs measured I+D \
             {measured:.3}"
        );
        assert!(
            predicted - 1.0 >= CAPTURE * (measured - 1.0),
            "{name}: predicted speedup {predicted:.3} captures less than {CAPTURE} of \
             the measured I+D gain ({measured:.3})"
        );
    }
}
