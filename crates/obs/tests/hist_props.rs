//! Property tests for the log-bucketed histogram: every observation is
//! counted exactly once, quantiles are monotone, and the bucketing error is
//! bounded by one sub-bucket (~1/16 relative).

use ncp2_obs::LogHistogram;
use proptest::prelude::*;

fn hist_of(vals: &[u64]) -> LogHistogram {
    let mut h = LogHistogram::new();
    for &v in vals {
        h.observe(v);
    }
    h
}

proptest! {
    /// Every observation lands in exactly one bucket: the total count equals
    /// the number of observations, and the exact maximum is preserved, for
    /// arbitrary u64 inputs (including the extremes of the range).
    #[test]
    fn observations_are_counted_exactly_once(
        vals in prop::collection::vec(any::<u64>(), 1..200)
    ) {
        let h = hist_of(&vals);
        prop_assert_eq!(h.count(), vals.len() as u64);
        prop_assert_eq!(h.max(), *vals.iter().max().expect("non-empty"));
    }

    /// Quantiles never decrease as p grows, and the endpoints behave: p=1
    /// is the exact maximum, p=0 is no larger than any other quantile.
    #[test]
    fn quantiles_are_monotone(
        vals in prop::collection::vec(any::<u64>(), 1..200)
    ) {
        let h = hist_of(&vals);
        let ps = [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1.0];
        let qs: Vec<u64> = ps.iter().map(|&p| h.quantile(p)).collect();
        for w in qs.windows(2) {
            prop_assert!(w[0] <= w[1], "quantiles not monotone: {:?}", qs);
        }
        prop_assert_eq!(*qs.last().expect("non-empty"), h.max());
    }

    /// A reported quantile brackets the true order statistic from above,
    /// within one sub-bucket of relative error (hi <= v + v/16).
    #[test]
    fn quantile_error_is_one_sub_bucket(
        vals in prop::collection::vec(0u64..1_000_000_000, 1..200),
        p_mil in 0u64..1001
    ) {
        let h = hist_of(&vals);
        let p = p_mil as f64 / 1000.0;
        let mut sorted = vals.clone();
        sorted.sort_unstable();
        let rank = ((p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        let exact = sorted[rank - 1];
        let q = h.quantile(p);
        prop_assert!(q >= exact, "q={q} below exact {exact}");
        prop_assert!(q <= exact + exact / 16 + 1, "q={q} too far above exact {exact}");
    }

    /// Merging two histograms is indistinguishable from observing the
    /// concatenation.
    #[test]
    fn merge_equals_concatenation(
        a in prop::collection::vec(any::<u64>(), 0..100),
        b in prop::collection::vec(any::<u64>(), 0..100)
    ) {
        let mut merged = hist_of(&a);
        merged.merge(&hist_of(&b));
        let mut all = a.clone();
        all.extend_from_slice(&b);
        prop_assert_eq!(merged, hist_of(&all));
    }
}
