//! The span-conservation invariant, end to end: for every application under
//! every protocol mode, per-node per-category span time must sum *exactly*
//! to that node's breakdown totals — i.e. every charged cycle is covered by
//! exactly one observability span and vice versa.
//!
//! This is the contract that makes the Perfetto timeline trustworthy: what
//! you see in the trace is what the figures add up.

use ncp2_apps::{run_app_with, Barnes, Em3d, Ocean, Radix, Tsp, Water, Workload};
use ncp2_core::{OverlapMode, Protocol, RunResult};
use ncp2_sim::{Category, SysParams};

const ALL_MODES: [Protocol; 8] = [
    Protocol::TreadMarks(OverlapMode::Base),
    Protocol::TreadMarks(OverlapMode::I),
    Protocol::TreadMarks(OverlapMode::ID),
    Protocol::TreadMarks(OverlapMode::P),
    Protocol::TreadMarks(OverlapMode::IP),
    Protocol::TreadMarks(OverlapMode::IPD),
    Protocol::Aurc { prefetch: false },
    Protocol::Aurc { prefetch: true },
];

fn observed_run<W: Workload>(app: W, nprocs: usize, protocol: Protocol) -> RunResult {
    let params = SysParams::default().with_nprocs(nprocs);
    run_app_with(params, protocol, app, |sim| sim.enable_obs())
}

fn assert_conserved<W: Workload + Clone>(app: W, nprocs: usize) {
    for protocol in ALL_MODES {
        let name = app.name();
        let r = observed_run(app.clone(), nprocs, protocol);
        assert!(
            r.violations.is_empty(),
            "{name} under {protocol}: {:#?}",
            r.violations
        );
        let log = r.obs.as_ref().expect("obs was enabled");
        // Re-check independently of the Violation plumbing, with full detail.
        let errors = log.conservation_errors(&r.nodes);
        assert!(errors.is_empty(), "{name} under {protocol}: {errors:?}");
        // And assert the equality directly, so this test cannot rot if the
        // checker itself changes.
        let ncat = Category::ALL.len();
        let mut sums = vec![0u64; nprocs * ncat];
        for s in &log.spans {
            let ci = Category::ALL
                .iter()
                .position(|&c| c == s.cat)
                .expect("span category");
            sums[s.node * ncat + ci] += s.end - s.start;
        }
        for (node, st) in r.nodes.iter().enumerate() {
            for (ci, &cat) in Category::ALL.iter().enumerate() {
                assert_eq!(
                    sums[node * ncat + ci],
                    st.breakdown.get(cat),
                    "{name} under {protocol}: P{node} category {}",
                    cat.label()
                );
            }
        }
        // Epoch tags line up with the barrier counters: each node ended on
        // as many epochs as barriers it was released from.
        for (node, st) in r.nodes.iter().enumerate() {
            assert_eq!(
                log.epochs[node], st.barriers,
                "{name} under {protocol}: P{node} epoch/barrier mismatch"
            );
        }
    }
}

#[test]
fn tsp_spans_conserve_breakdowns() {
    assert_conserved(
        Tsp {
            cities: 6,
            prefix_depth: 2,
            seed: 11,
        },
        4,
    );
}

#[test]
fn water_spans_conserve_breakdowns() {
    assert_conserved(
        Water {
            molecules: 8,
            steps: 1,
            seed: 12,
        },
        4,
    );
}

#[test]
fn radix_spans_conserve_breakdowns() {
    assert_conserved(
        Radix {
            keys: 256,
            radix: 16,
            passes: 2,
            seed: 13,
        },
        4,
    );
}

#[test]
fn barnes_spans_conserve_breakdowns() {
    assert_conserved(
        Barnes {
            bodies: 16,
            steps: 1,
            theta_16: 8,
            seed: 14,
        },
        4,
    );
}

#[test]
fn em3d_spans_conserve_breakdowns() {
    assert_conserved(
        Em3d {
            nodes: 96,
            degree: 2,
            remote_pct: 25,
            iters: 2,
            seed: 15,
        },
        4,
    );
}

#[test]
fn ocean_spans_conserve_breakdowns() {
    assert_conserved(Ocean { grid: 16, iters: 2 }, 4);
}

/// Observability must be timing-neutral: the same run with and without
/// recording produces identical cycle counts and checksums.
#[test]
fn enabling_obs_does_not_change_timing() {
    let app = Tsp {
        cities: 6,
        prefix_depth: 2,
        seed: 11,
    };
    let params = SysParams::default().with_nprocs(4);
    let plain = run_app_with(
        params.clone(),
        Protocol::TreadMarks(OverlapMode::IPD),
        app.clone(),
        |_| {},
    );
    let observed = observed_run(app, 4, Protocol::TreadMarks(OverlapMode::IPD));
    assert_eq!(plain.total_cycles, observed.total_cycles);
    assert_eq!(plain.checksum, observed.checksum);
    assert!(plain.obs.is_none());
    assert!(observed.obs.is_some());
}
