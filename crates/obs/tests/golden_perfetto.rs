//! Golden tests for the exporters: the Perfetto trace and metrics JSON must
//! be well-formed for every application and byte-identical across repeated
//! runs of the same configuration — the property `ci.sh` and the committed
//! `BENCH_tier1.json` trajectory depend on.

use ncp2_apps::{run_app_with, Barnes, Em3d, Ocean, Radix, Tsp, Water, Workload};
use ncp2_core::{OverlapMode, Protocol, RunResult};
use ncp2_fault::{FaultPlan, Window};
use ncp2_obs::json::parse;
use ncp2_obs::{perfetto_json, MetricsReport};
use ncp2_sim::SysParams;

fn observed_traced_run<W: Workload>(app: W, protocol: Protocol) -> RunResult {
    let params = SysParams {
        trace: true,
        ..SysParams::default().with_nprocs(4)
    };
    run_app_with(params, protocol, app, |sim| sim.enable_obs())
}

fn tiny_tsp() -> Tsp {
    Tsp {
        cities: 6,
        prefix_depth: 2,
        seed: 11,
    }
}

#[test]
fn tiny_tsp_export_is_bit_identical_across_runs() {
    let proto = Protocol::TreadMarks(OverlapMode::IPD);
    let r1 = observed_traced_run(tiny_tsp(), proto);
    let r2 = observed_traced_run(tiny_tsp(), proto);
    assert_eq!(perfetto_json(&r1), perfetto_json(&r2));
    assert_eq!(
        MetricsReport::from_run("TSP/I+P+D", &r1).to_json(),
        MetricsReport::from_run("TSP/I+P+D", &r2).to_json()
    );
}

#[test]
fn tiny_tsp_export_parses_and_names_every_track() {
    let r = observed_traced_run(tiny_tsp(), Protocol::TreadMarks(OverlapMode::IPD));
    let doc = perfetto_json(&r);
    let v = parse(&doc).expect("well-formed JSON");
    let events = v
        .get("traceEvents")
        .and_then(|e| e.as_arr())
        .expect("traceEvents array");
    assert!(!events.is_empty());
    // Every event carries the mandatory fields; metadata names the tracks.
    let mut saw_cpu = false;
    let mut saw_link = false;
    let mut saw_span = false;
    let mut saw_counter = false;
    let mut flow_starts: Vec<(u64, u64)> = Vec::new(); // (id, ts)
    let mut flow_ends: Vec<(u64, u64)> = Vec::new();
    for e in events {
        let ph = e.get("ph").and_then(|p| p.as_str()).expect("ph field");
        assert!(e.get("pid").and_then(|p| p.as_u64()).is_some());
        match ph {
            "M" => {
                let name = e
                    .get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(|n| n.as_str())
                    .expect("metadata name");
                saw_cpu |= name == "cpu";
                saw_link |= name.starts_with("link ");
            }
            "X" => {
                assert!(e.get("ts").and_then(|t| t.as_u64()).is_some());
                assert!(e.get("dur").and_then(|d| d.as_u64()).is_some());
                saw_span = true;
            }
            "i" => {
                assert!(e.get("ts").and_then(|t| t.as_u64()).is_some());
            }
            "C" => {
                assert!(e.get("ts").and_then(|t| t.as_u64()).is_some());
                assert!(e.get("args").is_some(), "counter sample without args");
                saw_counter = true;
            }
            "s" | "f" => {
                let id = e.get("id").and_then(|i| i.as_u64()).expect("flow id");
                let ts = e.get("ts").and_then(|t| t.as_u64()).expect("flow ts");
                if ph == "s" {
                    flow_starts.push((id, ts));
                } else {
                    assert_eq!(e.get("bp").and_then(|b| b.as_str()), Some("e"));
                    flow_ends.push((id, ts));
                }
            }
            other => panic!("unexpected phase {other}"),
        }
    }
    assert!(saw_cpu && saw_link && saw_span);
    assert!(saw_counter, "no cycles_by_category counter lane");
    // Every flow arrow has exactly one start and one matching, non-earlier
    // finish — the dependency edges behind them are forward in time.
    assert!(!flow_starts.is_empty(), "no flow events emitted");
    assert_eq!(flow_starts.len(), flow_ends.len());
    for (s, f) in flow_starts.iter().zip(&flow_ends) {
        assert_eq!(s.0, f.0, "flow ids out of pairing order");
        assert!(s.1 <= f.1, "flow {} goes backward in time", s.0);
    }
}

/// An aggressively faulted run: enough frame loss and duplication that the
/// transport retransmits and drops duplicates, plus a permanent congestion
/// window so every prefetch is shed. All fault handling happens in simulated
/// time under a fixed seed, so the export must still be byte-reproducible.
fn faulted_traced_run<W: Workload>(app: W, protocol: Protocol) -> RunResult {
    let params = SysParams {
        trace: true,
        ..SysParams::default().with_nprocs(4)
    };
    let plan = FaultPlan {
        seed: 0xFA117,
        drop_permille: 50,
        dup_permille: 50,
        congestion: vec![Window {
            start: 0,
            end: u64::MAX,
            extra: 0,
        }],
        ..FaultPlan::none()
    };
    run_app_with(params, protocol, app, move |sim| {
        sim.enable_obs();
        sim.attach_fault_plan(plan);
    })
}

#[test]
fn faulted_run_exports_transport_instants_and_stays_deterministic() {
    let proto = Protocol::TreadMarks(OverlapMode::IPD);
    let r1 = faulted_traced_run(tiny_tsp(), proto);
    let r2 = faulted_traced_run(tiny_tsp(), proto);

    // The plan actually exercised every new trace kind...
    assert!(r1.fault.retransmits > 0, "no retransmissions under 5% drop");
    assert!(r1.fault.dup_frames_dropped > 0, "no duplicates suppressed");
    assert!(
        r1.fault.prefetch_shed > 0,
        "no prefetches shed under congestion"
    );

    // ...each of which renders as a protocol instant in the export.
    let doc = perfetto_json(&r1);
    parse(&doc).expect("faulted Perfetto export is well-formed JSON");
    for needle in [
        "retransmit_timeout",
        "\"retransmit ",
        "duplicate_dropped",
        "prefetch_shed",
    ] {
        assert!(doc.contains(needle), "export lacks {needle} instants");
    }

    // Span conservation holds on the faulted timeline, and the whole export
    // is byte-identical across runs of the same seed.
    let report = MetricsReport::from_run("TSP/I+P+D/faulted", &r1);
    assert!(report.conservation_ok, "conservation failed under faults");
    assert_eq!(doc, perfetto_json(&r2));
    assert_eq!(
        report.to_json(),
        MetricsReport::from_run("TSP/I+P+D/faulted", &r2).to_json()
    );
}

#[test]
fn exports_are_well_formed_for_all_six_applications() {
    let proto = Protocol::TreadMarks(OverlapMode::IPD);
    let runs: Vec<(&str, RunResult)> = vec![
        ("TSP", observed_traced_run(tiny_tsp(), proto)),
        (
            "Water",
            observed_traced_run(
                Water {
                    molecules: 8,
                    steps: 1,
                    seed: 12,
                },
                proto,
            ),
        ),
        (
            "Radix",
            observed_traced_run(
                Radix {
                    keys: 256,
                    radix: 16,
                    passes: 2,
                    seed: 13,
                },
                proto,
            ),
        ),
        (
            "Barnes",
            observed_traced_run(
                Barnes {
                    bodies: 16,
                    steps: 1,
                    theta_16: 8,
                    seed: 14,
                },
                proto,
            ),
        ),
        (
            "Em3d",
            observed_traced_run(
                Em3d {
                    nodes: 96,
                    degree: 2,
                    remote_pct: 25,
                    iters: 2,
                    seed: 15,
                },
                proto,
            ),
        ),
        (
            "Ocean",
            observed_traced_run(Ocean { grid: 16, iters: 2 }, proto),
        ),
    ];
    for (name, r) in &runs {
        let doc = perfetto_json(r);
        parse(&doc).unwrap_or_else(|e| panic!("{name}: Perfetto export unparseable: {e}"));
        let report = MetricsReport::from_run(&format!("{name}/I+P+D"), r);
        assert!(report.conservation_ok, "{name}: conservation failed");
        let back = ncp2_obs::report::parse_metrics(&report.to_json())
            .unwrap_or_else(|e| panic!("{name}: metrics.json unparseable: {e}"));
        assert_eq!(back.total_cycles, r.total_cycles, "{name}");
        assert_eq!(back.nprocs, 4, "{name}");
    }
}
