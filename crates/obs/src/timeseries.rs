//! Timeline reports: deterministic JSON/CSV serialization of a run's
//! windowed time-series log ([`ncp2_core::TsLog`]).
//!
//! Follows the same discipline as [`crate::report`]: hand-written JSON with
//! a fixed key order and integer values only, so the same run always
//! serializes to the same bytes regardless of worker count or host. The CSV
//! view carries the per-window counter/gauge matrix (one row per window)
//! for spreadsheet work; hot-spot tables and per-link series live in the
//! JSON only.

use ncp2_core::{TsCounter, TsGauge, TsLog};

use crate::hotspot::{top_locks, top_pages};
use crate::json::esc;

/// One run's time series plus the metadata needed to render it.
#[derive(Debug, Clone, PartialEq)]
pub struct TimelineReport {
    /// Run label, conventionally `"APP/MODE"`.
    pub name: String,
    /// Processors simulated.
    pub nprocs: usize,
    /// End-to-end running time, cycles.
    pub total_cycles: u64,
    /// Hot-spot table depth (0 = unlimited).
    pub top_k: usize,
    /// The windowed log itself.
    pub log: TsLog,
}

impl TimelineReport {
    /// Builds a report from a finished run; `None` when the run recorded no
    /// time series (`Job::timeseries` unset).
    pub fn from_run(name: &str, r: &ncp2_core::RunResult, top_k: usize) -> Option<TimelineReport> {
        Some(TimelineReport {
            name: name.to_string(),
            nprocs: r.nprocs,
            total_cycles: r.total_cycles,
            top_k,
            log: r.ts.clone()?,
        })
    }

    /// Serializes to deterministic JSON: fixed key order, integers only,
    /// trailing newline.
    pub fn to_json(&self) -> String {
        let mut s = self.to_json_indented(0);
        s.push('\n');
        s
    }

    /// Serializes with every line prefixed by `base` spaces (no trailing
    /// newline) so timeline reports can be embedded in larger documents.
    pub fn to_json_indented(&self, base: usize) -> String {
        let p = " ".repeat(base);
        let series = |vals: &[u64]| -> String {
            vals.iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join(", ")
        };
        let mut out = String::new();
        out.push_str(&format!("{p}{{\n"));
        out.push_str(&format!("{p}  \"name\": \"{}\",\n", esc(&self.name)));
        out.push_str(&format!("{p}  \"nprocs\": {},\n", self.nprocs));
        out.push_str(&format!("{p}  \"total_cycles\": {},\n", self.total_cycles));
        out.push_str(&format!("{p}  \"window_width\": {},\n", self.log.width));
        out.push_str(&format!("{p}  \"windows\": {},\n", self.log.windows.len()));
        out.push_str(&format!("{p}  \"counters\": {{\n"));
        for (i, c) in TsCounter::ALL.iter().enumerate() {
            let comma = if i + 1 == TsCounter::COUNT { "" } else { "," };
            out.push_str(&format!(
                "{p}    \"{}\": [{}]{comma}\n",
                c.label(),
                series(&self.log.counter_series(*c))
            ));
        }
        out.push_str(&format!("{p}  }},\n"));
        out.push_str(&format!("{p}  \"gauges\": {{\n"));
        for (i, g) in TsGauge::ALL.iter().enumerate() {
            let comma = if i + 1 == TsGauge::COUNT { "" } else { "," };
            out.push_str(&format!(
                "{p}    \"{}\": [{}]{comma}\n",
                g.label(),
                series(&self.log.gauge_series(*g))
            ));
        }
        out.push_str(&format!("{p}  }},\n"));
        out.push_str(&format!("{p}  \"occupancy\": [\n"));
        for (node, occ) in self.log.occupancy.iter().enumerate() {
            let comma = if node + 1 == self.log.occupancy.len() {
                ""
            } else {
                ","
            };
            out.push_str(&format!("{p}    [{}]{comma}\n", series(occ)));
        }
        out.push_str(&format!("{p}  ],\n"));
        let links = |out: &mut String,
                     key: &str,
                     map: &std::collections::BTreeMap<(usize, usize), Vec<u64>>,
                     trailing: &str| {
            out.push_str(&format!("{p}  \"{key}\": [\n"));
            for (i, ((src, dst), vals)) in map.iter().enumerate() {
                let comma = if i + 1 == map.len() { "" } else { "," };
                out.push_str(&format!(
                    "{p}    {{\"src\": {src}, \"dst\": {dst}, \"series\": [{}]}}{comma}\n",
                    series(vals)
                ));
            }
            out.push_str(&format!("{p}  ]{trailing}\n"));
        };
        links(
            &mut out,
            "link_retransmits",
            &self.log.link_retransmits,
            ",",
        );
        links(&mut out, "link_inflight", &self.log.link_inflight, ",");
        out.push_str(&format!("{p}  \"hot_pages\": [\n"));
        let pages = top_pages(&self.log, self.top_k);
        for (i, (page, h)) in pages.iter().enumerate() {
            let comma = if i + 1 == pages.len() { "" } else { "," };
            out.push_str(&format!(
                "{p}    {{\"page\": {page}, \"transfers\": {}, \"diff_bytes\": {}, \
                 \"invalidations\": {}}}{comma}\n",
                h.transfers, h.diff_bytes, h.invalidations
            ));
        }
        out.push_str(&format!("{p}  ],\n"));
        out.push_str(&format!("{p}  \"hot_locks\": [\n"));
        let locks = top_locks(&self.log, self.top_k);
        for (i, (lock, h)) in locks.iter().enumerate() {
            let comma = if i + 1 == locks.len() { "" } else { "," };
            out.push_str(&format!(
                "{p}    {{\"lock\": {lock}, \"wait_cycles\": {}, \"acquires\": {}, \
                 \"owner_migrations\": {}}}{comma}\n",
                h.wait_cycles, h.acquires, h.owner_migrations
            ));
        }
        out.push_str(&format!("{p}  ]\n"));
        out.push_str(&format!("{p}}}"));
        out
    }

    /// Serializes the per-window counter/gauge matrix as CSV: a header row,
    /// then one row per window with its half-open cycle range.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("window,start,end");
        for c in TsCounter::ALL {
            out.push(',');
            out.push_str(c.label());
        }
        for g in TsGauge::ALL {
            out.push(',');
            out.push_str(g.label());
        }
        out.push('\n');
        for (w, row) in self.log.windows.iter().enumerate() {
            let start = w as u64 * self.log.width;
            out.push_str(&format!("{w},{start},{}", start + self.log.width));
            for v in row.counters {
                out.push_str(&format!(",{v}"));
            }
            for v in row.gauges {
                out.push_str(&format!(",{v}"));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;
    use ncp2_core::TsRecorder;

    fn sample() -> TimelineReport {
        let mut rec = TsRecorder::new(2, 100);
        rec.count(TsCounter::PageFetches, 10, 2);
        rec.count(TsCounter::Messages, 150, 7);
        rec.gauge(TsGauge::QueueDepth, 120, 5);
        rec.span(1, 50, 180);
        rec.retransmit(0, 1, 110);
        rec.flight(0, 1, 10, true);
        rec.page(42, 3, 128, 1);
        rec.page(7, 1, 4096, 0);
        rec.lock(2, 900, 4, 2);
        TimelineReport {
            name: "TSP/I+P+D".into(),
            nprocs: 2,
            total_cycles: 300,
            top_k: 16,
            log: rec.into_log(300),
        }
    }

    #[test]
    fn json_is_deterministic_and_parses() {
        let r = sample();
        assert_eq!(r.to_json(), r.to_json());
        let v = parse(&r.to_json()).expect("valid JSON");
        assert_eq!(v.get("window_width").and_then(|x| x.as_u64()), Some(100));
        assert_eq!(v.get("windows").and_then(|x| x.as_u64()), Some(3));
        let fetches = v
            .get("counters")
            .and_then(|c| c.get("page_fetches"))
            .and_then(|x| x.as_arr())
            .expect("page_fetches series");
        assert_eq!(fetches.len(), 3);
        assert_eq!(fetches[0].as_u64(), Some(2));
        // Hot pages are sorted most-transferred first.
        let pages = v
            .get("hot_pages")
            .and_then(|x| x.as_arr())
            .expect("hot_pages");
        assert_eq!(pages[0].get("page").and_then(|x| x.as_u64()), Some(42));
    }

    #[test]
    fn csv_has_one_row_per_window_and_conserves_counts() {
        let r = sample();
        let csv = r.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 1 + r.log.windows.len());
        assert!(lines[0].starts_with("window,start,end,page_fetches,"));
        assert!(lines[1].starts_with("0,0,100,"));
        // Column 3 (page_fetches) sums to the counter total.
        let total: u64 = lines[1..]
            .iter()
            .map(|l| l.split(',').nth(3).unwrap().parse::<u64>().unwrap())
            .sum();
        assert_eq!(total, r.log.counter_total(TsCounter::PageFetches));
    }
}
