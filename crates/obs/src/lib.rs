//! # ncp2-obs — observability over simulated time
//!
//! Consumes the span/flight/engine timeline recorded by `ncp2-core`'s `obs`
//! feature (see [`ncp2_core::span`]) and turns it into artifacts a human (or
//! a CI gate) can read:
//!
//! * [`hist::LogHistogram`] — HDR-style log-bucketed latency histograms with
//!   deterministic quantiles;
//! * [`report::MetricsReport`] — a per-run summary (breakdown categories,
//!   protocol counters, histogram percentiles, per-barrier-epoch timeline)
//!   with a byte-deterministic JSON encoding;
//! * [`perfetto::perfetto_json`] — a Chrome/Perfetto `trace_event` export
//!   with one track per processor, controller engine and network link,
//!   plus flow arrows over the dependency edges;
//! * [`graph::ExecGraph`] — the validated execution-dependency DAG (span
//!   chains + typed dependency edges) behind the critical-path analyzer;
//! * [`critpath`] — critical-path extraction (whose length provably equals
//!   the run's total cycles), per-span slack, and the causal what-if
//!   re-executor predicting ablation speedups;
//! * [`diff`] — the `cargo xtask bench-diff` regression pipeline: write a
//!   bench file of reports, compare two files, flag regressions (including
//!   per-category exposed-cycle growth on the critical path);
//! * [`timeseries::TimelineReport`] — deterministic JSON/CSV serialization
//!   of the windowed time-series log ([`ncp2_core::TsLog`]);
//! * [`hotspot`] — ranked hot-page / hot-lock attribution tables and the
//!   top-K per-node table;
//! * [`assertions`] — the SLO-style window-assertion engine
//!   (`retransmits > 0 for 2`, `monotone queue_depth for 4`, ...) behind
//!   `timeline_report --check` and the chaos gate.
//!
//! Everything here is pure data transformation over **simulated cycles**:
//! no wall-clock sources, no host-dependent iteration orders, so repeated
//! runs of the same configuration produce byte-identical output.
//!
//! Depending on this crate enables `ncp2-core`'s `obs` feature for the
//! consumer (the recording sites compile in); recording still costs nothing
//! until [`Simulation::enable_obs`](ncp2_core::Simulation::enable_obs) is
//! called.

pub mod assertions;
pub mod critpath;
pub mod diff;
pub mod graph;
pub mod hist;
pub mod hotspot;
pub mod json;
pub mod perfetto;
pub mod report;
pub mod timeseries;

pub use assertions::{default_check_assertions, evaluate_all, Assertion, Firing};
pub use critpath::{critical_path, slack, what_if, CritPath, CritSegment, Scenario, WhatIf};
pub use diff::{compare, parse_bench, write_bench, Regression};
pub use graph::ExecGraph;
pub use hist::LogHistogram;
pub use hotspot::{render_hotspots, render_node_table, top_locks, top_pages};
pub use perfetto::perfetto_json;
pub use report::{HistSummary, HostPhase, MetricsReport};
pub use timeseries::TimelineReport;
