//! Chrome/Perfetto `trace_event` export.
//!
//! Renders one run's observability log as a JSON document loadable in
//! `chrome://tracing` or [ui.perfetto.dev](https://ui.perfetto.dev):
//!
//! * one *process* per simulated node, with a `cpu` thread for the
//!   computation processor's conserved spans and `ctrl.core` / `ctrl.io`
//!   threads for protocol-controller engine occupancy;
//! * one `network` process with one thread per directed link pair actually
//!   used, carrying message flights (duration = injection to arrival, with
//!   queueing delay in the args);
//! * flow arrows (`ph` `"s"`/`"f"` pairs) over the causal dependency
//!   edges — message send→receive, lock release→acquire and barrier
//!   last-arrival→departure — so the UI draws the cross-processor causal
//!   chains the critical-path analyzer walks;
//! * instant events from the protocol trace (faults, lock grants, barrier
//!   releases, ...) when [`SysParams::trace`](ncp2_sim::SysParams) was set;
//! * counter tracks (`ph` `"C"`): one `cycles_by_category` sample per node
//!   from the end-of-run breakdown (so every trace gets the counter lane),
//!   and — when the run recorded a windowed time series
//!   ([`RunResult::ts`]) — one `ts.*` track per counter/gauge, a
//!   per-node controller-occupancy-percent track, and per-link
//!   retransmit/in-flight tracks, each sampled once per window.
//!
//! Timestamps are simulated cycles written as integer `ts`/`dur`
//! microsecond fields — the absolute unit is meaningless, relative layout
//! is what matters. Emission order is a deterministic function of the log
//! (no hash maps), so the export is byte-identical across repeated runs.

use std::fmt::Write as _;

use ncp2_core::span::EdgeKind;
use ncp2_core::trace::TraceKind;
use ncp2_core::{Engine, RunResult};

use crate::json::esc;

/// Synthetic pid for the network "process".
const NET_PID: usize = 1000;

/// Thread ids within a node's process.
const TID_CPU: usize = 0;
const TID_CTRL_CORE: usize = 1;
const TID_CTRL_IO: usize = 2;

fn meta(out: &mut String, pid: usize, tid: Option<usize>, name: &str) {
    let field = if tid.is_some() {
        "thread_name"
    } else {
        "process_name"
    };
    let tid = tid.unwrap_or(0);
    let _ = writeln!(
        out,
        "{{\"ph\": \"M\", \"name\": \"{field}\", \"pid\": {pid}, \"tid\": {tid}, \
         \"args\": {{\"name\": \"{}\"}}}},",
        esc(name)
    );
}

fn instant_name(kind: &TraceKind) -> String {
    match kind {
        TraceKind::MsgSent { .. } => "msg_sent".into(),
        TraceKind::Fault { page } => format!("fault p{page}"),
        TraceKind::PageFetched { page } => format!("page_fetched p{page}"),
        TraceKind::DiffCreated { page, .. } => format!("diff_created p{page}"),
        TraceKind::DiffApplied { page, .. } => format!("diff_applied p{page}"),
        TraceKind::LockAcquired { lock } => format!("lock_acquired l{lock}"),
        TraceKind::BarrierReleased => "barrier_released".into(),
        TraceKind::PrefetchIssued { page } => format!("prefetch_issued p{page}"),
        TraceKind::PrefetchCompleted { page } => format!("prefetch_completed p{page}"),
        TraceKind::ControllerCommand { cmd } => format!("ctrl_{}", cmd.label()),
        TraceKind::RetransmitTimeout { dst, seq } => format!("retransmit_timeout d{dst} s{seq}"),
        TraceKind::Retransmit { dst, seq, attempt } => {
            format!("retransmit d{dst} s{seq} a{attempt}")
        }
        TraceKind::DuplicateDropped { src, seq } => format!("duplicate_dropped s{src} q{seq}"),
        TraceKind::PrefetchShed { page } => format!("prefetch_shed p{page}"),
        TraceKind::SvcDequeue { depth } => format!("svc_dequeue d{depth}"),
        TraceKind::SvcReply { class, response } => {
            format!("svc_reply_{} r{response}", class.label())
        }
    }
}

/// Renders `r` as a Chrome `trace_event` JSON document.
pub fn perfetto_json(r: &RunResult) -> String {
    let n = r.nprocs;
    let mut out = String::from("{\"traceEvents\": [\n");

    // Which directed links actually carried a flight (indexed src * n + dst).
    let mut link_used = vec![false; n * n];
    if let Some(log) = &r.obs {
        for f in &log.flights {
            if f.src < n && f.dst < n {
                link_used[f.src * n + f.dst] = true;
            }
        }
    }

    // Process/thread naming metadata first, in pid/tid order.
    for pid in 0..n {
        meta(&mut out, pid, None, &format!("P{pid}"));
        meta(&mut out, pid, Some(TID_CPU), "cpu");
        meta(&mut out, pid, Some(TID_CTRL_CORE), "ctrl.core");
        meta(&mut out, pid, Some(TID_CTRL_IO), "ctrl.io");
    }
    meta(&mut out, NET_PID, None, "network");
    for src in 0..n {
        for dst in 0..n {
            if link_used[src * n + dst] {
                meta(
                    &mut out,
                    NET_PID,
                    Some(src * n + dst),
                    &format!("link {src}->{dst}"),
                );
            }
        }
    }

    if let Some(log) = &r.obs {
        for s in &log.spans {
            let _ = writeln!(
                out,
                "{{\"ph\": \"X\", \"name\": \"{}\", \"cat\": \"{}\", \"pid\": {}, \
                 \"tid\": {TID_CPU}, \"ts\": {}, \"dur\": {}, \
                 \"args\": {{\"epoch\": {}}}}},",
                s.kind.label(),
                s.cat.label(),
                s.node,
                s.start,
                s.end - s.start,
                s.epoch
            );
        }
        for e in &log.engine {
            let tid = match e.engine {
                Engine::CtrlCore => TID_CTRL_CORE,
                Engine::CtrlIo => TID_CTRL_IO,
            };
            let _ = writeln!(
                out,
                "{{\"ph\": \"X\", \"name\": \"{}\", \"cat\": \"controller\", \"pid\": {}, \
                 \"tid\": {tid}, \"ts\": {}, \"dur\": {}, \"args\": {{}}}},",
                e.cmd.label(),
                e.node,
                e.start,
                e.end - e.start
            );
        }
        for f in &log.flights {
            let _ = writeln!(
                out,
                "{{\"ph\": \"X\", \"name\": \"{}\", \"cat\": \"net\", \"pid\": {NET_PID}, \
                 \"tid\": {}, \"ts\": {}, \"dur\": {}, \"args\": {{\"bytes\": {}, \
                 \"queued\": {}, \"prefetch\": {}}}}},",
                f.kind,
                f.src * n + f.dst,
                f.inject,
                f.arrival - f.inject,
                f.bytes,
                f.start - f.inject,
                f.prefetch
            );
        }
        // Flow arrows over the cross-processor dependency edges. The edge
        // index is the flow id — unique and stable, since the edge log is a
        // deterministic function of the run. Binding ("bp": "e") attaches
        // each endpoint to the slice enclosing its timestamp on the cpu
        // track.
        for (i, e) in log.edges.iter().enumerate() {
            let draw = matches!(
                e.kind,
                EdgeKind::Msg(_) | EdgeKind::LockGrant | EdgeKind::BarrierRelease
            );
            if !draw {
                continue;
            }
            let _ = writeln!(
                out,
                "{{\"ph\": \"s\", \"id\": {i}, \"name\": \"{}\", \"cat\": \"dep\", \
                 \"pid\": {}, \"tid\": {TID_CPU}, \"ts\": {}}},",
                e.kind.label(),
                e.src_node,
                e.src_time
            );
            let _ = writeln!(
                out,
                "{{\"ph\": \"f\", \"bp\": \"e\", \"id\": {i}, \"name\": \"{}\", \
                 \"cat\": \"dep\", \"pid\": {}, \"tid\": {TID_CPU}, \"ts\": {}}},",
                e.kind.label(),
                e.dst_node,
                e.dst_time
            );
        }
    }

    // Counter lane from the end-of-run per-category totals: one sample per
    // node at ts 0, so the lane exists for every export, time series or not.
    for (pid, node) in r.nodes.iter().enumerate() {
        let b = node.breakdown;
        let _ = writeln!(
            out,
            "{{\"ph\": \"C\", \"name\": \"cycles_by_category\", \"pid\": {pid}, \"tid\": 0, \
             \"ts\": 0, \"args\": {{\"busy\": {}, \"data\": {}, \"synch\": {}, \"ipc\": {}, \
             \"other\": {}}}}},",
            b.busy, b.data, b.synch, b.ipc, b.other
        );
    }

    // Windowed time-series counter tracks, one sample per window at the
    // window's start cycle. Series order is fixed (counters, gauges,
    // occupancy, links) so the export stays byte-deterministic.
    if let Some(ts) = &r.ts {
        let window_width = ts.width.max(1);
        let sample = |out: &mut String, name: &str, pid: usize, w: usize, v: u64| {
            let _ = writeln!(
                out,
                "{{\"ph\": \"C\", \"name\": \"{}\", \"pid\": {pid}, \"tid\": 0, \"ts\": {}, \
                 \"args\": {{\"value\": {v}}}}},",
                esc(name),
                w as u64 * window_width
            );
        };
        for c in ncp2_core::TsCounter::ALL {
            for (w, v) in ts.counter_series(c).into_iter().enumerate() {
                sample(&mut out, &format!("ts.{}", c.label()), NET_PID, w, v);
            }
        }
        for g in ncp2_core::TsGauge::ALL {
            for (w, v) in ts.gauge_series(g).into_iter().enumerate() {
                sample(&mut out, &format!("ts.{}", g.label()), NET_PID, w, v);
            }
        }
        for (node, series) in ts.occupancy.iter().enumerate() {
            for (w, &busy) in series.iter().enumerate() {
                // Flooring rounds the percentage down by at most 1 point; a
                // counter track is a visual aid, not a metrics source.
                // lint: allow(window-boundary-div) -- display-only rounding, exactness lives in TsLog
                let pct = 100 * busy / window_width;
                sample(&mut out, "ctrl_occupancy_pct", node, w, pct);
            }
        }
        for ((src, dst), series) in &ts.link_retransmits {
            for (w, &v) in series.iter().enumerate() {
                sample(&mut out, &format!("ts.retx {src}->{dst}"), NET_PID, w, v);
            }
        }
        for ((src, dst), series) in &ts.link_inflight {
            for (w, &v) in series.iter().enumerate() {
                sample(
                    &mut out,
                    &format!("ts.inflight {src}->{dst}"),
                    NET_PID,
                    w,
                    v,
                );
            }
        }
    }

    for (i, e) in r.trace.iter().enumerate() {
        let comma = if i + 1 == r.trace.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "{{\"ph\": \"i\", \"name\": \"{}\", \"cat\": \"protocol\", \"pid\": {}, \
             \"tid\": {TID_CPU}, \"ts\": {}, \"s\": \"t\"}}{comma}",
            esc(&instant_name(&e.kind)),
            e.node,
            e.time
        );
    }
    // The metadata block above always ends with a comma; when there were no
    // trace instants, close the array on a dummy-free footing by trimming it.
    if out.ends_with(",\n") {
        out.truncate(out.len() - 2);
        out.push('\n');
    }
    out.push_str("]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;
    fn empty_run() -> RunResult {
        RunResult {
            protocol: "Base".into(),
            nprocs: 2,
            total_cycles: 10,
            nodes: vec![Default::default(); 2],
            net: Default::default(),
            checksum: 0,
            trace: Vec::new(),
            violations: Vec::new(),
            obs: None,
            ts: None,
            svc: None,
            fault: Default::default(),
        }
    }

    #[test]
    fn export_without_obs_is_valid_json() {
        let doc = perfetto_json(&empty_run());
        let v = parse(&doc).expect("valid JSON");
        let events = v
            .get("traceEvents")
            .and_then(|e| e.as_arr())
            .expect("traceEvents array");
        // 2 nodes x (process + 3 threads) + network process = 9 metadata
        // rows, plus one cycles_by_category counter sample per node.
        assert_eq!(events.len(), 11);
    }

    #[test]
    fn instants_render_from_the_protocol_trace() {
        let mut r = empty_run();
        r.trace.push(ncp2_core::trace::TraceEvent {
            time: 7,
            node: 1,
            kind: TraceKind::Fault { page: 3 },
        });
        let doc = perfetto_json(&r);
        let v = parse(&doc).expect("valid JSON");
        assert!(doc.contains("fault p3"));
        assert_eq!(
            v.get("traceEvents")
                .and_then(|e| e.as_arr())
                .map(|a| a.len()),
            Some(12)
        );
    }

    #[test]
    fn category_counter_lane_reflects_the_breakdown() {
        let mut r = empty_run();
        r.nodes[1].breakdown.busy = 42;
        let doc = perfetto_json(&r);
        let v = parse(&doc).expect("valid JSON");
        let events = v.get("traceEvents").and_then(|e| e.as_arr()).unwrap();
        let counter = events
            .iter()
            .find(|e| {
                e.get("ph").and_then(|p| p.as_str()) == Some("C")
                    && e.get("pid").and_then(|p| p.as_u64()) == Some(1)
            })
            .expect("counter sample for node 1");
        assert_eq!(
            counter
                .get("args")
                .and_then(|a| a.get("busy"))
                .and_then(|b| b.as_u64()),
            Some(42)
        );
    }

    #[test]
    fn time_series_counter_tracks_sample_every_window() {
        use ncp2_core::{TsCounter, TsRecorder};
        let mut rec = TsRecorder::new(2, 100);
        rec.count(TsCounter::PageFetches, 50, 3);
        rec.count(TsCounter::PageFetches, 250, 5);
        rec.span(0, 0, 100);
        rec.retransmit(0, 1, 150);
        let mut r = empty_run();
        r.ts = Some(rec.into_log(300));
        let doc = perfetto_json(&r);
        let v = parse(&doc).expect("valid JSON");
        let events = v.get("traceEvents").and_then(|e| e.as_arr()).unwrap();
        let samples: Vec<_> = events
            .iter()
            .filter(|e| {
                e.get("ph").and_then(|p| p.as_str()) == Some("C")
                    && e.get("name").and_then(|x| x.as_str()) == Some("ts.page_fetches")
            })
            .collect();
        assert_eq!(samples.len(), 3, "one sample per window");
        assert_eq!(
            samples[2].get("ts").and_then(|t| t.as_u64()),
            Some(200),
            "samples land at window starts"
        );
        assert!(doc.contains("\"ts.retx 0->1\""));
        assert!(doc.contains("\"ctrl_occupancy_pct\""));
    }
}
