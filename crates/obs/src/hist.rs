//! HDR-style log-bucketed histograms for simulated-cycle latencies.
//!
//! The implementation moved to [`ncp2_core::hist`] so the simulation can
//! accumulate the service response-time histogram directly on
//! [`ncp2_core::RunResult`]; this module re-exports it unchanged so every
//! existing `crate::hist::LogHistogram` consumer keeps compiling.

pub use ncp2_core::hist::*;
