//! Critical-path extraction and the causal what-if re-executor.
//!
//! # The walk
//!
//! [`critical_path`] walks the [`ExecGraph`] *backwards* from the finishing
//! node at `t = total`. At every position `(node, t)` it either
//!
//! 1. follows a **binding edge** whose wake lands exactly at `t` (fill
//!    completion, lock grant, barrier release) back to the arrival event
//!    that scheduled it, attributing the interval to the edge;
//! 2. — only immediately after a binding edge — follows the **message
//!    flight** whose arrival is that event back to its injection on the
//!    sender, hopping nodes; or
//! 3. consumes the node's own span chain down to the nearest interior wake
//!    boundary, attributing the interval to the span.
//!
//! `t` strictly decreases at every step, so the walk terminates with the
//! attributed segments tiling `[0, total]` exactly: the critical-path
//! length *equals* the run's total cycles by construction, and the
//! interesting validation is that the walk never gets stuck (possible only
//! if the chain tiling or edge anchoring were broken). Exposed cycles are
//! attributed per [`Category`] and per span/edge label.
//!
//! # Slack
//!
//! [`slack`] runs one backward pass over the DAG in reverse topological
//! order and reports, for every chain span, how many cycles its completion
//! could slip without growing the run — treating blocked-wait spans as
//! elastic absorbers. Critical-path spans report zero.
//!
//! # What-if
//!
//! [`what_if`] re-executes the schedule with selected costs deleted (a
//! [`Scenario`]): span durations are scaled, blocked-wait spans are
//! *elastic* — each wake is re-derived from its binding edge by chaining
//! the delivering flight's (re-mapped) injection time, the flight latency
//! and the post-arrival fill tail. Spans are re-placed in global order of
//! *effective* end time (a constrained span counts as ending at its wake,
//! so the flight delivering the wake is already placed); times on blocked
//! or servicing nodes re-derive recursively from the arrival chain that
//! triggered the activity. Every re-mapped time is clamped to its measured
//! value, so deletion scenarios never predict a slowdown, and under
//! [`Scenario::Identity`] every mapping is exact — the re-execution
//! reproduces the measured total *exactly*, the second conservation law
//! the tests pin down. Flight latencies and arrival-to-action offsets not
//! attributable to deleted work keep their measured values, which makes
//! the predictions systematically *conservative* (lower bounds on the
//! ablation speedup).

use std::collections::{BTreeMap, HashMap};

use ncp2_core::span::{EdgeKind, SpanKind};
use ncp2_sim::{Category, Cycles};

use crate::graph::{is_stall, ExecGraph};

/// One attributed interval of the critical path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CritSegment {
    /// Node the interval is attributed to (the receiver for flights).
    pub node: usize,
    /// Interval start, simulated cycles.
    pub start: Cycles,
    /// Interval end, simulated cycles.
    pub end: Cycles,
    /// Breakdown category the exposed cycles count under.
    pub cat: Category,
    /// Span-kind or edge-kind label.
    pub label: &'static str,
    /// Whether the interval came from a dependency edge (else a span).
    pub edge: bool,
}

/// The extracted critical path of one run.
#[derive(Debug, Clone, PartialEq)]
pub struct CritPath {
    /// The run's total cycles; equals the sum of all segment lengths.
    pub total: Cycles,
    /// Path segments in forward time order, tiling `[0, total]`.
    pub segments: Vec<CritSegment>,
    /// Exposed cycles per category, in [`Category::ALL`] order; sums to
    /// `total`.
    pub exposed: Vec<(Category, Cycles)>,
    /// Exposed cycles per span/edge label, sorted by label.
    pub exposed_kinds: Vec<(&'static str, Cycles)>,
}

impl CritPath {
    /// Exposed cycles for one category.
    pub fn exposed_in(&self, cat: Category) -> Cycles {
        self.exposed
            .iter()
            .find(|&&(c, _)| c == cat)
            .map(|&(_, v)| v)
            .unwrap_or(0)
    }
}

/// Extracts the critical path by the backward walk described in the module
/// docs. Errors only when the graph's tiling or edge anchoring cannot carry
/// the walk — a conservation violation.
pub fn critical_path(g: &ExecGraph) -> Result<CritPath, String> {
    let mut node = (0..g.nprocs).find(|&n| g.finish(n) == g.total).unwrap_or(0);
    let mut t = g.total;
    let mut chain_ok = false;
    let mut segments: Vec<CritSegment> = Vec::new();
    let mut fuel = 4 * (g.log.spans.len() + g.log.edges.len()) + 16;
    while t > 0 {
        fuel -= 1;
        if fuel == 0 {
            return Err("critical-path walk failed to make progress".into());
        }
        if chain_ok {
            // Continue the chain through the flight that delivered the
            // arrival we just pivoted on, if its injection is on the
            // sender's own (tiled) timeline.
            let m = g
                .msgs_at(node, t)
                .iter()
                .map(|&(_, ei)| g.edge(ei))
                .filter(|e| e.src_time < t && e.src_time <= g.finish(e.src_node))
                .max_by_key(|e| e.src_time);
            if let Some(e) = m {
                segments.push(CritSegment {
                    node,
                    start: e.src_time,
                    end: t,
                    cat: e.kind.category(),
                    label: e.kind.label(),
                    edge: true,
                });
                node = e.src_node;
                t = e.src_time;
                chain_ok = false;
                continue;
            }
        }
        let b = g
            .bindings_at(node, t)
            .iter()
            .map(|&(_, ei)| g.edge(ei))
            .filter(|e| e.src_time < t)
            .max_by_key(|e| e.src_time);
        if let Some(e) = b {
            segments.push(CritSegment {
                node,
                start: e.src_time,
                end: t,
                cat: e.kind.category(),
                label: e.kind.label(),
                edge: true,
            });
            t = e.src_time;
            chain_ok = true;
            continue;
        }
        chain_ok = false;
        let pos = g
            .covering(node, t)
            .ok_or_else(|| format!("walk stuck at node {node}, cycle {t}: no covering span"))?;
        let s = g.span(node, pos);
        let lo = g.max_binding_dst_in(node, s.start, t).unwrap_or(s.start);
        segments.push(CritSegment {
            node,
            start: lo,
            end: t,
            cat: s.cat,
            label: s.kind.label(),
            edge: false,
        });
        t = lo;
    }
    segments.reverse();

    let mut exposed: Vec<(Category, Cycles)> = Category::ALL.iter().map(|&c| (c, 0)).collect();
    let mut by_label: BTreeMap<&'static str, Cycles> = BTreeMap::new();
    for s in &segments {
        let dur = s.end - s.start;
        if let Some(slot) = exposed.iter_mut().find(|(c, _)| *c == s.cat) {
            slot.1 += dur;
        }
        *by_label.entry(s.label).or_insert(0) += dur;
    }
    let exposed_kinds: Vec<(&'static str, Cycles)> = by_label.into_iter().collect();
    debug_assert_eq!(
        exposed.iter().map(|&(_, v)| v).sum::<Cycles>(),
        g.total,
        "critical-path segments must tile [0, total]"
    );
    Ok(CritPath {
        total: g.total,
        segments,
        exposed,
        exposed_kinds,
    })
}

/// Per-span slack: `(index into the log's spans, cycles the span's
/// completion could slip without growing the run)`. Backward relaxation
/// sweeps (spans in decreasing end-time order) repeated to a fixpoint —
/// mutually-servicing blocked nodes make a single topological pass
/// impossible at span granularity. Blocked-wait successors absorb up to
/// their own duration of slip.
pub fn slack(g: &ExecGraph) -> Vec<(u32, Cycles)> {
    let nv: usize = g.chains.iter().map(|c| c.len()).sum();
    let mut shift: Vec<Cycles> = vec![0; nv];
    for (vid, s) in shift.iter_mut().enumerate() {
        let (_, sp) = g.vertex_span(vid as u32);
        *s = g.total - sp.end;
    }
    let mut dep_from: Vec<Vec<(u32, Cycles)>> = vec![Vec::new(); nv];
    for &(u, v, dst_time) in &g.dep_pairs {
        dep_from[u as usize].push((v, dst_time));
    }
    let mut order: Vec<u32> = (0..nv as u32).collect();
    order.sort_by_key(|&vid| std::cmp::Reverse(g.vertex_span(vid).1.end));
    loop {
        let mut changed = false;
        for &u in &order {
            let (node, _) = g.vertex_span(u);
            let pos = (u - g.voff[node]) as usize;
            let mut s = shift[u as usize];
            if pos + 1 < g.chains[node].len() {
                let (_, sv) = g.vertex_span(u + 1);
                let absorb = if is_stall(sv.kind) {
                    sv.end - sv.start
                } else {
                    0
                };
                s = s.min(shift[(u + 1) as usize] + absorb);
            }
            for &(v, dst_time) in &dep_from[u as usize] {
                let (_, sv) = g.vertex_span(v);
                // overflow: a binding edge can land after the span opens;
                // negative lag means "no extra slack", i.e. zero.
                let lag = sv.start.saturating_sub(dst_time);
                s = s.min(shift[v as usize] + lag);
            }
            if s < shift[u as usize] {
                shift[u as usize] = s;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    (0..nv as u32)
        .map(|vid| (g.vertex_span_index(vid), shift[vid as usize]))
        .collect()
}

/// A cost-deletion scenario for the what-if re-execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scenario {
    /// No change — must reproduce the measured total exactly.
    Identity,
    /// Diff work is free: twin/diff-create/diff-apply spans take zero
    /// cycles and the diff-apply work folded into fill waits is deleted
    /// (≈ hardware bit-vector diffs, the paper's `D` component).
    DiffsFree,
    /// Processor-side message handling is free: message-setup and
    /// request-service spans take zero cycles (≈ offloading protocol
    /// actions to the controller, the paper's `I` component).
    OffloadFree,
    /// Invalidated-page fills are free: fault/prefetch fill waits collapse
    /// entirely (≈ perfect prefetching, an upper bound on `P`).
    PerfectFill,
    /// [`Scenario::DiffsFree`] and [`Scenario::OffloadFree`] combined
    /// (≈ the measured `I+D` ablation).
    DiffsOffloadFree,
}

impl Scenario {
    /// Every scenario, in rendering order.
    pub const ALL: [Scenario; 5] = [
        Scenario::Identity,
        Scenario::DiffsFree,
        Scenario::OffloadFree,
        Scenario::PerfectFill,
        Scenario::DiffsOffloadFree,
    ];

    /// Stable snake_case label.
    pub fn label(self) -> &'static str {
        match self {
            Scenario::Identity => "identity",
            Scenario::DiffsFree => "diffs_free",
            Scenario::OffloadFree => "offload_free",
            Scenario::PerfectFill => "perfect_fill",
            Scenario::DiffsOffloadFree => "diffs_offload_free",
        }
    }

    /// Whether the scenario deletes a span kind's duration.
    fn zeroes_span(self, k: SpanKind) -> bool {
        match self {
            Scenario::Identity | Scenario::PerfectFill => false,
            Scenario::DiffsFree => {
                matches!(
                    k,
                    SpanKind::Twin | SpanKind::DiffCreate | SpanKind::DiffApply
                )
            }
            Scenario::OffloadFree => matches!(k, SpanKind::MsgSetup | SpanKind::Service),
            Scenario::DiffsOffloadFree => {
                Scenario::DiffsFree.zeroes_span(k) || Scenario::OffloadFree.zeroes_span(k)
            }
        }
    }

    /// Whether fill-wait processor work (`DepEdge::work`) is deleted.
    fn kills_fill_work(self) -> bool {
        matches!(self, Scenario::DiffsFree | Scenario::DiffsOffloadFree)
    }

    /// Whether the scenario collapses a binding edge's wait entirely.
    fn kills_edge(self, k: EdgeKind) -> bool {
        matches!(self, Scenario::PerfectFill)
            && matches!(k, EdgeKind::FaultFill | EdgeKind::PrefetchFill)
    }
}

/// The outcome of one what-if re-execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WhatIf {
    /// The scenario re-executed.
    pub scenario: Scenario,
    /// Predicted end-to-end cycles under the scenario.
    pub new_total: Cycles,
    /// Predicted speedup `total / new_total` (1.0 for an empty run).
    pub speedup: f64,
}

/// Sentinel for a span not yet re-placed by the what-if sweep.
const UNPLACED: Cycles = Cycles::MAX;

/// Recursion budget for [`remap`]'s arrival chains: enough for request
/// forwarding (acquire → home → owner → grant) several times over; deeper
/// chains fall back to the measured time.
const REMAP_DEPTH: u32 = 8;

/// Maps an original time on a node to its re-executed time.
///
/// A time inside a blocked wait — or inside the service burst
/// re-classified at a wait's wake — is not governed by the node's own
/// chain position: the handler ran because a message arrived. Such times
/// re-derive from the *arrival chain*: the latest incoming flight at or
/// before `t` within the wait, recursively re-mapping its injection on the
/// sender, plus the flight latency, plus the handler's measured offset
/// after the arrival. Everywhere else the covering span's re-placed
/// interval carries the time; identity when it has not been re-placed yet.
/// Both paths clamp to `t` — deletion scenarios never push an event later
/// than measured — and return exactly `t` under [`Scenario::Identity`].
fn remap(
    g: &ExecGraph,
    scenario: Scenario,
    new_start: &[Cycles],
    new_end: &[Cycles],
    node: usize,
    t: Cycles,
    depth: u32,
) -> Cycles {
    if t == 0 {
        return 0;
    }
    // The interval between an arrival and the action it triggers is
    // protocol handler work (request service, diff creation, reply setup),
    // which offload scenarios delete along with the chain's service spans.
    let handler_delta = |d: Cycles| -> Cycles {
        if scenario.zeroes_span(SpanKind::Service) {
            0
        } else {
            d
        }
    };
    let Some(pos) = g.covering(node, t) else {
        // Past the node's finish: the node only acts as a (detached)
        // servicer of incoming messages, so re-derive from the arrival
        // that triggered it.
        if depth > 0 && t >= g.finish(node) {
            if let Some(m) = g.latest_msg_before(node, t) {
                let inject = remap(
                    g,
                    scenario,
                    new_start,
                    new_end,
                    m.src_node,
                    m.src_time,
                    depth - 1,
                );
                let arrival = inject + (m.dst_time - m.src_time);
                return (arrival + handler_delta(t - m.dst_time)).min(t);
            }
        }
        return t;
    };
    let s = g.span(node, pos);
    let handler = is_stall(s.kind) || s.kind == SpanKind::Service;
    if handler && depth > 0 {
        // The triggering arrival may precede the wait: a service pipeline
        // started while runnable can complete (and inject its reply) after
        // the node has since blocked on its own request.
        if let Some(m) = g.latest_msg_before(node, t) {
            let inject = remap(
                g,
                scenario,
                new_start,
                new_end,
                m.src_node,
                m.src_time,
                depth - 1,
            );
            let arrival = inject + (m.dst_time - m.src_time);
            return (arrival + handler_delta(t - m.dst_time)).min(t);
        }
    }
    let vid = (g.voff[node] + pos as u32) as usize;
    if new_end[vid] == UNPLACED {
        // The covering span is still open at evaluation time (e.g. a long
        // compute burst a handler interrupted mid-span): carry the node's
        // progress forward from its last placed chain span, scaling the
        // known-but-unplaced spans in the gap.
        let mut q = pos;
        while q > 0 && new_end[(g.voff[node] + q as u32) as usize - 1] == UNPLACED {
            q -= 1;
        }
        let mapped = if q == 0 {
            t
        } else {
            let pv = (g.voff[node] + q as u32) as usize - 1;
            let mut m = new_end[pv];
            for i in q..pos {
                let si = g.span(node, i);
                if !scenario.zeroes_span(si.kind) {
                    m += si.end - si.start;
                }
            }
            if !scenario.zeroes_span(s.kind) {
                m += t - s.start;
            }
            m.min(t)
        };
        return mapped;
    }
    let off = if scenario.zeroes_span(s.kind) {
        0
    } else {
        t - s.start
    };
    (new_start[vid] + off).min(new_end[vid]).min(t)
}

/// Re-executes the schedule under `scenario` (see the module docs).
pub fn what_if(g: &ExecGraph, scenario: Scenario) -> WhatIf {
    let nv: usize = g.chains.iter().map(|c| c.len()).sum();
    let mut new_start: Vec<Cycles> = vec![UNPLACED; nv];
    let mut new_end: Vec<Cycles> = vec![UNPLACED; nv];

    let scaled = |vid: u32| -> Cycles {
        let (_, s) = g.vertex_span(vid);
        if scenario.zeroes_span(s.kind) {
            0
        } else {
            s.end - s.start
        }
    };

    // Attach each binding edge's wake constraint to its chain span: the
    // elastic blocked-wait span when one ends the wake group, otherwise a
    // gate on the first span the wake releases. `trailing` lists the group
    // spans whose (scaled) durations still run between the constrained
    // point and the wake.
    struct Constraint {
        edge: u32,
        trailing: Vec<u32>,
        /// Applies to the span's end (elastic wait) rather than its start.
        elastic: bool,
    }
    let mut constraints: HashMap<u32, Vec<Constraint>> = HashMap::new();
    for node in 0..g.nprocs {
        for &(dst_time, ei) in g.bindings_of(node) {
            let Some(j) = g.pos_ending_at(node, dst_time) else {
                // The wake emitted no spans; gate whatever runs next.
                if let Some(p) = g.pos_starting_at_or_after(node, dst_time) {
                    let vid = g.voff[node] + p as u32;
                    constraints.entry(vid).or_default().push(Constraint {
                        edge: ei,
                        trailing: Vec::new(),
                        elastic: false,
                    });
                }
                continue;
            };
            let vj = g.voff[node] + j as u32;
            let sj = g.span(node, j);
            let (vid, trailing, elastic) = if is_stall(sj.kind) {
                (vj, Vec::new(), true)
            } else if sj.kind == SpanKind::Service && j > 0 && is_stall(g.span(node, j - 1).kind) {
                (vj - 1, vec![vj], true)
            } else if sj.kind == SpanKind::Service {
                (vj, vec![vj], false)
            } else if j + 1 < g.chains[node].len() {
                (vj + 1, Vec::new(), false)
            } else {
                continue;
            };
            constraints.entry(vid).or_default().push(Constraint {
                edge: ei,
                trailing,
                elastic,
            });
        }
    }

    // The re-executed wake time a binding edge demands: the delivering
    // flight's re-mapped injection, plus the (unscaled) flight latency,
    // plus the post-arrival fill tail with deleted work removed.
    let target = |ei: u32, new_start: &[Cycles], new_end: &[Cycles]| -> Cycles {
        let e = g.edge(ei);
        if scenario.kills_edge(e.kind) {
            return 0;
        }
        let tail_full = e.dst_time - e.src_time;
        let killed = if scenario.kills_fill_work()
            && matches!(e.kind, EdgeKind::FaultFill | EdgeKind::PrefetchFill)
        {
            e.work.min(tail_full)
        } else {
            0
        };
        let tail = tail_full - killed;
        let m = g
            .msgs_at(e.dst_node, e.src_time)
            .iter()
            .map(|&(_, mi)| g.edge(mi))
            .max_by_key(|m| m.src_time);
        match m {
            Some(m) => {
                remap(
                    g,
                    scenario,
                    new_start,
                    new_end,
                    m.src_node,
                    m.src_time,
                    REMAP_DEPTH,
                ) + (m.dst_time - m.src_time)
                    + tail
            }
            None => e.dst_time - killed,
        }
    };

    // Re-place every span in global order of *effective* end time: a
    // constrained span counts as ending at its wake, so the flight that
    // delivers the wake — injected up to a flight latency after the stall
    // span's own end — is already re-placed when the target is evaluated.
    // A chain predecessor still sorts first (its effective end never
    // exceeds its successor's, with ties broken by chain position).
    let eff_end = |vid: u32| -> Cycles {
        let (_, s) = g.vertex_span(vid);
        constraints
            .get(&vid)
            .into_iter()
            .flatten()
            .map(|c| g.edge(c.edge).dst_time)
            .fold(s.end, Cycles::max)
    };
    let mut order: Vec<u32> = (0..nv as u32).collect();
    order.sort_by_key(|&vid| {
        let (node, _) = g.vertex_span(vid);
        (eff_end(vid), node, vid)
    });
    let empty: Vec<Constraint> = Vec::new();
    for &vid in &order {
        let (node, _) = g.vertex_span(vid);
        let pos = (vid - g.voff[node]) as usize;
        let prev_end = if pos == 0 {
            0
        } else {
            new_end[(vid - 1) as usize]
        };
        let cons = constraints.get(&vid).unwrap_or(&empty);
        let trail_sum = |c: &Constraint| -> Cycles { c.trailing.iter().map(|&v| scaled(v)).sum() };
        let mut start = prev_end;
        for c in cons.iter().filter(|c| !c.elastic) {
            // overflow: a constraint fully absorbed by its trailing spans
            // wants no start shift; clamp to zero.
            let want = target(c.edge, &new_start, &new_end).saturating_sub(trail_sum(c));
            start = start.max(want);
        }
        let elastic: Vec<&Constraint> = cons.iter().filter(|c| c.elastic).collect();
        let end = if elastic.is_empty() {
            start + scaled(vid)
        } else {
            let mut end = start;
            for c in &elastic {
                // overflow: same clamp as the inelastic pass above.
                let want = target(c.edge, &new_start, &new_end).saturating_sub(trail_sum(c));
                end = end.max(want);
            }
            end
        };
        new_start[vid as usize] = start;
        new_end[vid as usize] = end;
    }

    let mut new_total = 0;
    for node in 0..g.nprocs {
        if let Some(pos) = g.chains[node].len().checked_sub(1) {
            new_total = new_total.max(new_end[(g.voff[node] + pos as u32) as usize]);
        }
    }
    let speedup = if new_total == 0 {
        1.0
    } else {
        g.total as f64 / new_total as f64
    };
    WhatIf {
        scenario,
        new_total,
        speedup,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncp2_core::span::{ObsLog, Span, SpanId};
    use ncp2_core::{DepEdge, EdgeKind, MsgKind};

    fn span(node: usize, kind: SpanKind, cat: Category, start: Cycles, end: Cycles) -> Span {
        Span {
            node,
            epoch: 0,
            kind,
            cat,
            start,
            end,
            detached: false,
        }
    }

    fn edge(
        kind: EdgeKind,
        src_node: usize,
        src_time: Cycles,
        dst_node: usize,
        dst_time: Cycles,
        work: Cycles,
        src_span: u32,
    ) -> DepEdge {
        DepEdge {
            kind,
            src_node,
            src_time,
            dst_node,
            dst_time,
            work,
            src_span: SpanId(src_span),
        }
    }

    /// Node 0 computes, sends a diff request, stalls on the fill and
    /// finishes; node 1 computes, services the request and runs a tail.
    fn fault_log() -> ObsLog {
        ObsLog {
            spans: vec![
                span(0, SpanKind::Compute, Category::Busy, 0, 30),
                span(0, SpanKind::MsgSetup, Category::Data, 30, 40),
                span(0, SpanKind::FaultStall, Category::Data, 40, 100),
                span(0, SpanKind::Compute, Category::Busy, 100, 120),
                span(1, SpanKind::Compute, Category::Busy, 0, 60),
                span(1, SpanKind::Service, Category::Ipc, 60, 70),
                span(1, SpanKind::Compute, Category::Busy, 70, 90),
            ],
            edges: vec![
                edge(EdgeKind::Msg(MsgKind::DiffReq), 0, 40, 1, 60, 0, 1),
                edge(EdgeKind::Msg(MsgKind::DiffReply), 1, 70, 0, 95, 0, 5),
                edge(EdgeKind::FaultFill, 0, 95, 0, 100, 3, 1),
            ],
            ..ObsLog::default()
        }
    }

    #[test]
    fn the_walk_tiles_the_run_and_hops_the_flight() {
        let log = fault_log();
        let g = ExecGraph::build(&log, 2, 120).expect("build");
        let cp = critical_path(&g).expect("walk");
        let sum: Cycles = cp.segments.iter().map(|s| s.end - s.start).sum();
        assert_eq!(sum, 120);
        let labels: Vec<&str> = cp.segments.iter().map(|s| s.label).collect();
        assert_eq!(
            labels,
            vec![
                "compute",
                "service",
                "msg_diff_reply",
                "fault_fill",
                "compute"
            ]
        );
        assert_eq!(cp.exposed_in(Category::Busy), 60 + 20);
        assert_eq!(cp.exposed_in(Category::Ipc), 10);
        assert_eq!(cp.exposed_in(Category::Data), 25 + 5);
    }

    #[test]
    fn identity_reexecution_reproduces_the_total_exactly() {
        let log = fault_log();
        let g = ExecGraph::build(&log, 2, 120).expect("build");
        let w = what_if(&g, Scenario::Identity);
        assert_eq!(w.new_total, 120);
        assert!((w.speedup - 1.0).abs() < 1e-12);
    }

    #[test]
    fn diffs_free_deletes_the_fill_work() {
        let log = fault_log();
        let g = ExecGraph::build(&log, 2, 120).expect("build");
        // Wake re-derives to 70 (reply inject) + 25 (flight) + 5 - 3 (tail
        // minus deleted apply work) = 97; the tail compute shifts with it.
        let w = what_if(&g, Scenario::DiffsFree);
        assert_eq!(w.new_total, 117);
    }

    #[test]
    fn offload_free_deletes_setup_and_service() {
        let log = fault_log();
        let g = ExecGraph::build(&log, 2, 120).expect("build");
        // Sender setup [30,40] and responder service [60,70] vanish: the
        // request injects at 30 and lands at 50, the reply injects there
        // and lands at 75, the wake is 80, the tail compute ends at 100.
        let w = what_if(&g, Scenario::OffloadFree);
        assert_eq!(w.new_total, 100);
    }

    #[test]
    fn perfect_fill_collapses_the_stall() {
        let log = fault_log();
        let g = ExecGraph::build(&log, 2, 120).expect("build");
        let w = what_if(&g, Scenario::PerfectFill);
        assert_eq!(w.new_total, 90);
        assert!((w.speedup - 120.0 / 90.0).abs() < 1e-12);
    }

    #[test]
    fn slack_is_zero_on_the_path_and_positive_off_it() {
        let log = fault_log();
        let g = ExecGraph::build(&log, 2, 120).expect("build");
        let sl = slack(&g);
        let by_span: std::collections::HashMap<u32, Cycles> = sl.into_iter().collect();
        // The responder's service feeds the reply that gates the finishing
        // chain: zero slack. Its tail compute ends the run 30 cycles early.
        assert_eq!(by_span[&5], 0);
        assert_eq!(by_span[&6], 30);
        // The finishing chain is rigid.
        assert_eq!(by_span[&3], 0);
    }

    #[test]
    fn scenario_labels_are_distinct() {
        let mut labels: Vec<&str> = Scenario::ALL.iter().map(|s| s.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), Scenario::ALL.len());
    }
}
