//! Minimal hand-rolled JSON: an escape helper for the writers and a
//! recursive-descent parser for the readers.
//!
//! The build environment is offline, so the workspace's `serde` is an
//! in-tree stand-in whose derives expand to nothing. All exporters in this
//! crate therefore *write* JSON by hand (which also guarantees key order,
//! hence byte determinism), and `bench-diff` / self-checks *read* it back
//! through this parser. The subset supported is exactly what our writers
//! emit: objects, arrays, strings, finite numbers, booleans and null.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value. Object keys keep a sorted map — our readers look
/// fields up by name and never depend on source order.
#[derive(Debug, Clone, PartialEq)]
pub enum JVal {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number. `f64` is exact for every value our writers emit
    /// (simulated-cycle counts in these workloads stay far below 2^53).
    Num(f64),
    /// A string (escapes decoded).
    Str(String),
    /// An array.
    Arr(Vec<JVal>),
    /// An object.
    Obj(BTreeMap<String, JVal>),
}

impl JVal {
    /// Member lookup on an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&JVal> {
        match self {
            JVal::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The elements if this is an array.
    pub fn as_arr(&self) -> Option<&[JVal]> {
        match self {
            JVal::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The map if this is an object.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, JVal>> {
        match self {
            JVal::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// The string if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JVal::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JVal::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number rounded to `u64` if this is a non-negative number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JVal::Num(n) if *n >= 0.0 => Some(n.round() as u64),
            _ => None,
        }
    }

    /// The boolean if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JVal::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Escapes `s` for inclusion inside a JSON string literal.
pub fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Parses a complete JSON document. Errors carry a byte offset.
pub fn parse(text: &str) -> Result<JVal, String> {
    let b = text.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(b, &mut pos)?;
    skip_ws(b, &mut pos);
    if pos != b.len() {
        return Err(format!("trailing bytes at offset {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at offset {pos}", c as char))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<JVal, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_obj(b, pos),
        Some(b'[') => parse_arr(b, pos),
        Some(b'"') => Ok(JVal::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", JVal::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", JVal::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", JVal::Null),
        Some(_) => parse_num(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: JVal) -> Result<JVal, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("bad literal at offset {pos}"))
    }
}

fn parse_num(b: &[u8], pos: &mut usize) -> Result<JVal, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    let s = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    s.parse::<f64>()
        .map(JVal::Num)
        .map_err(|_| format!("bad number '{s}' at offset {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| "truncated \\u escape".to_string())?;
                        let s = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                        let n = u32::from_str_radix(s, 16).map_err(|e| e.to_string())?;
                        out.push(char::from_u32(n).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at offset {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 character (the input came from &str, so
                // boundaries are valid).
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().ok_or("empty string tail")?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Result<JVal, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(JVal::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(JVal::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at offset {pos}")),
        }
    }
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Result<JVal, String> {
    expect(b, pos, b'{')?;
    let mut map = BTreeMap::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(JVal::Obj(map));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        let val = parse_value(b, pos)?;
        map.insert(key, val);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(JVal::Obj(map));
            }
            _ => return Err(format!("expected ',' or '}}' at offset {pos}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v = parse(r#"{"a": [1, 2.5, -3], "b": {"c": "x\"y"}, "d": true, "e": null}"#)
            .expect("parse");
        assert_eq!(
            v.get("a").and_then(|a| a.as_arr()).map(|a| a.len()),
            Some(3)
        );
        assert_eq!(
            v.get("a")
                .and_then(|a| a.as_arr())
                .and_then(|a| a[1].as_f64()),
            Some(2.5)
        );
        assert_eq!(
            v.get("b").and_then(|b| b.get("c")).and_then(|c| c.as_str()),
            Some("x\"y")
        );
        assert_eq!(v.get("d").and_then(|d| d.as_bool()), Some(true));
        assert_eq!(v.get("e"), Some(&JVal::Null));
    }

    #[test]
    fn roundtrips_escapes() {
        let src = "a\"b\\c\nd\te\u{1}";
        let doc = format!("{{\"s\": \"{}\"}}", esc(src));
        let v = parse(&doc).expect("parse");
        assert_eq!(v.get("s").and_then(|s| s.as_str()), Some(src));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1, ]").is_err());
        assert!(parse("{} trailing").is_err());
        assert!(parse("nope").is_err());
    }

    #[test]
    fn large_cycle_counts_are_exact() {
        let v = parse("{\"t\": 9007199254740992}").expect("parse");
        assert_eq!(v.get("t").and_then(|t| t.as_u64()), Some(1u64 << 53));
    }
}
