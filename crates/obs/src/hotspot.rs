//! Hot-spot attribution: ranked per-page / per-lock tables from a
//! [`TsLog`], and the top-K per-node table used by `obs_report`.
//!
//! All orderings are total (every comparator ends on the id) so the tables
//! are deterministic regardless of map iteration or worker count.

use ncp2_core::{LockHot, NodeStats, PageHot, PageId, TsLog};

/// Pages ranked hottest-first: by transfers, then diff bytes, then id.
/// `top_k == 0` returns the full table.
pub fn top_pages(log: &TsLog, top_k: usize) -> Vec<(PageId, PageHot)> {
    let mut rows: Vec<(PageId, PageHot)> = log.pages.iter().map(|(&p, &h)| (p, h)).collect();
    rows.sort_by(|a, b| {
        b.1.transfers
            .cmp(&a.1.transfers)
            .then(b.1.diff_bytes.cmp(&a.1.diff_bytes))
            .then(a.0.cmp(&b.0))
    });
    if top_k > 0 {
        rows.truncate(top_k);
    }
    rows
}

/// Locks ranked hottest-first: by wait cycles, then acquires, then id.
/// `top_k == 0` returns the full table.
pub fn top_locks(log: &TsLog, top_k: usize) -> Vec<(u64, LockHot)> {
    let mut rows: Vec<(u64, LockHot)> = log.locks.iter().map(|(&l, &h)| (l, h)).collect();
    rows.sort_by(|a, b| {
        b.1.wait_cycles
            .cmp(&a.1.wait_cycles)
            .then(b.1.acquires.cmp(&a.1.acquires))
            .then(a.0.cmp(&b.0))
    });
    if top_k > 0 {
        rows.truncate(top_k);
    }
    rows
}

/// Renders the hot-page and hot-lock tables as aligned text.
pub fn render_hotspots(log: &TsLog, top_k: usize) -> String {
    let mut out = String::new();
    let pages = top_pages(log, top_k);
    out.push_str(&format!(
        "{:<10} {:>10} {:>12} {:>10}\n",
        "page", "transfers", "diff_bytes", "invals"
    ));
    for (page, h) in &pages {
        out.push_str(&format!(
            "{:<10} {:>10} {:>12} {:>10}\n",
            page, h.transfers, h.diff_bytes, h.invalidations
        ));
    }
    let hidden = log.pages.len() - pages.len();
    if hidden > 0 {
        out.push_str(&format!("...{hidden} more pages\n"));
    }
    out.push('\n');
    let locks = top_locks(log, top_k);
    out.push_str(&format!(
        "{:<10} {:>12} {:>10} {:>11}\n",
        "lock", "wait_cycles", "acquires", "migrations"
    ));
    for (lock, h) in &locks {
        out.push_str(&format!(
            "{:<10} {:>12} {:>10} {:>11}\n",
            lock, h.wait_cycles, h.acquires, h.owner_migrations
        ));
    }
    let hidden = log.locks.len() - locks.len();
    if hidden > 0 {
        out.push_str(&format!("...{hidden} more locks\n"));
    }
    out
}

/// Renders the per-node statistics table, hottest nodes first.
///
/// Nodes are ranked by overhead cycles (everything that is not busy
/// compute), tie-broken by id so the order is total. With `top_k > 0` only
/// the hottest `top_k` nodes get their own row; the rest collapse into one
/// `...N more nodes` row carrying their summed statistics, so a 256-node
/// run stays readable. `top_k == 0` prints every node.
pub fn render_node_table(nodes: &[NodeStats], top_k: usize) -> String {
    let overhead =
        |n: &NodeStats| n.breakdown.data + n.breakdown.synch + n.breakdown.ipc + n.breakdown.other;
    let mut order: Vec<usize> = (0..nodes.len()).collect();
    order.sort_by(|&a, &b| {
        overhead(&nodes[b])
            .cmp(&overhead(&nodes[a]))
            .then(a.cmp(&b))
    });
    let shown = if top_k == 0 {
        order.len()
    } else {
        top_k.min(order.len())
    };

    let mut out = String::new();
    out.push_str(&format!(
        "{:<6} {:>12} {:>12} {:>12} {:>12} {:>8} {:>8} {:>8} {:>8}\n",
        "node", "busy", "data", "synch", "ipc", "faults", "fetches", "diffs", "locks"
    ));
    let row = |out: &mut String, label: &str, n: &NodeStats| {
        out.push_str(&format!(
            "{:<6} {:>12} {:>12} {:>12} {:>12} {:>8} {:>8} {:>8} {:>8}\n",
            label,
            n.breakdown.busy,
            n.breakdown.data,
            n.breakdown.synch,
            n.breakdown.ipc,
            n.faults,
            n.page_fetches,
            n.diffs_created,
            n.lock_acquires
        ));
    };
    for &id in &order[..shown] {
        row(&mut out, &id.to_string(), &nodes[id]);
    }
    if shown < order.len() {
        let mut rest = NodeStats::default();
        for &id in &order[shown..] {
            let n = &nodes[id];
            rest.breakdown = rest.breakdown.merged(&n.breakdown);
            rest.faults += n.faults;
            rest.page_fetches += n.page_fetches;
            rest.diffs_created += n.diffs_created;
            rest.lock_acquires += n.lock_acquires;
        }
        row(&mut out, &format!("...{}", order.len() - shown), &rest);
        out.push_str(&format!(
            "(...{} = {} more nodes, summed)\n",
            order.len() - shown,
            order.len() - shown
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncp2_core::TsRecorder;

    fn log() -> TsLog {
        let mut rec = TsRecorder::new(2, 100);
        rec.page(5, 10, 400, 2);
        rec.page(9, 10, 900, 1);
        rec.page(1, 3, 50, 0);
        rec.lock(0, 500, 2, 1);
        rec.lock(3, 900, 1, 0);
        rec.into_log(200)
    }

    #[test]
    fn pages_rank_by_transfers_then_diff_bytes_then_id() {
        let top = top_pages(&log(), 2);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].0, 9); // ties on transfers, more diff bytes
        assert_eq!(top[1].0, 5);
        assert_eq!(top_pages(&log(), 0).len(), 3);
    }

    #[test]
    fn locks_rank_by_wait_cycles() {
        let top = top_locks(&log(), 0);
        assert_eq!(top[0].0, 3);
        assert_eq!(top[1].0, 0);
    }

    #[test]
    fn hotspot_render_marks_hidden_rows() {
        let text = render_hotspots(&log(), 1);
        assert!(text.contains("...2 more pages"));
        assert!(text.contains("...1 more locks"));
        assert!(!render_hotspots(&log(), 0).contains("more"));
    }

    fn synthetic_nodes(n: usize) -> Vec<NodeStats> {
        (0..n)
            .map(|i| {
                let mut s = NodeStats::default();
                s.breakdown.busy = 1_000;
                // Overhead decreases with id, so rank order == id order and
                // the table is easy to eyeball in the golden test.
                s.breakdown.data = (n - i) as u64 * 10;
                s.breakdown.synch = 5;
                s.faults = i as u64;
                s.page_fetches = 2 * i as u64;
                s.diffs_created = 3;
                s.lock_acquires = 1;
                s
            })
            .collect()
    }

    /// Golden shape test at 256 nodes: default top-K keeps the table at 16
    /// rows plus one aggregate row, and the aggregate conserves the sums.
    #[test]
    fn node_table_collapses_256_nodes_under_top_k() {
        let nodes = synthetic_nodes(256);
        let text = render_node_table(&nodes, 16);
        let lines: Vec<&str> = text.lines().collect();
        // header + 16 rows + aggregate row + footnote
        assert_eq!(lines.len(), 1 + 16 + 1 + 1);
        assert!(lines[1].starts_with("0 "));
        assert!(lines[17].starts_with("...240"));
        assert!(lines[18].contains("240 more nodes"));
        // The aggregate row's faults column conserves the hidden sum.
        let agg_faults: u64 = lines[17]
            .split_whitespace()
            .nth(5)
            .unwrap()
            .parse()
            .unwrap();
        let hidden: u64 = (16..256).map(|i| i as u64).sum();
        assert_eq!(agg_faults, hidden);

        let full = render_node_table(&nodes, 0);
        assert_eq!(full.lines().count(), 1 + 256);
        assert!(!full.contains("more nodes"));
    }
}
