//! SLO-style window assertions over a [`TsLog`].
//!
//! An assertion is a declarative predicate over one per-window series,
//! written in a tiny grammar:
//!
//! ```text
//! SERIES OP THRESHOLD for K      e.g.  retransmits > 0 for 2
//! monotone SERIES for K          e.g.  monotone queue_depth for 4
//! ```
//!
//! `SERIES` is any counter or gauge label from
//! [`TsCounter::label`](ncp2_core::TsCounter::label) /
//! [`TsGauge::label`](ncp2_core::TsGauge::label), or the derived
//! `occupancy_pct` (per-window controller occupancy, maxed over nodes).
//! `OP` is one of `>` `>=` `<` `<=`. A threshold assertion fires once per
//! maximal run of at least `K` consecutive windows that all satisfy the
//! predicate; `monotone` fires per maximal run of at least `K` windows
//! over which the series strictly increases. Each firing reports both the
//! window indices and the covered cycle range, so a firing can be checked
//! against an injected fault window (`chaos_report --check`,
//! `timeline_report --check`).

use ncp2_core::{TsCounter, TsGauge, TsLog};

/// Comparison operator in a threshold assertion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    Gt,
    Ge,
    Lt,
    Le,
}

impl Op {
    fn eval(self, v: u64, thresh: u64) -> bool {
        match self {
            Op::Gt => v > thresh,
            Op::Ge => v >= thresh,
            Op::Lt => v < thresh,
            Op::Le => v <= thresh,
        }
    }

    fn text(self) -> &'static str {
        match self {
            Op::Gt => ">",
            Op::Ge => ">=",
            Op::Lt => "<",
            Op::Le => "<=",
        }
    }
}

/// A parsed assertion. Keeps the normalized source text so reports stay
/// self-describing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Assertion {
    kind: Kind,
    series: String,
    k: usize,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Kind {
    Threshold { op: Op, thresh: u64 },
    Monotone,
}

/// One assertion firing: a maximal qualifying window run and its cycle span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Firing {
    /// Normalized text of the assertion that fired.
    pub assertion: String,
    /// First window index of the run.
    pub first_window: usize,
    /// Last window index of the run (inclusive).
    pub last_window: usize,
    /// Start cycle of the run (`first_window * width`).
    pub start_cycle: u64,
    /// End cycle of the run (exclusive, `(last_window + 1) * width`).
    pub end_cycle: u64,
}

impl Assertion {
    /// Parses the grammar described in the module docs. The series name is
    /// validated against the known labels so typos fail at parse time, not
    /// silently at evaluation.
    pub fn parse(text: &str) -> Result<Assertion, String> {
        let toks: Vec<&str> = text.split_whitespace().collect();
        let parse_k = |s: &str| -> Result<usize, String> {
            match s.parse::<usize>() {
                Ok(k) if k >= 1 => Ok(k),
                _ => Err(format!("'{text}': K must be a positive integer, got '{s}'")),
            }
        };
        let check_series = |s: &str| -> Result<String, String> {
            if known_series(s) {
                Ok(s.to_string())
            } else {
                Err(format!(
                    "'{text}': unknown series '{s}' (counters, gauges, or occupancy_pct)"
                ))
            }
        };
        match toks.as_slice() {
            ["monotone", series, "for", k] => Ok(Assertion {
                kind: Kind::Monotone,
                series: check_series(series)?,
                k: parse_k(k)?,
            }),
            [series, op, thresh, "for", k] => {
                let op = match *op {
                    ">" => Op::Gt,
                    ">=" => Op::Ge,
                    "<" => Op::Lt,
                    "<=" => Op::Le,
                    other => return Err(format!("'{text}': unknown operator '{other}'")),
                };
                let thresh = thresh
                    .parse::<u64>()
                    .map_err(|_| format!("'{text}': bad threshold '{thresh}'"))?;
                Ok(Assertion {
                    kind: Kind::Threshold { op, thresh },
                    series: check_series(series)?,
                    k: parse_k(k)?,
                })
            }
            _ => Err(format!(
                "'{text}': expected 'SERIES OP N for K' or 'monotone SERIES for K'"
            )),
        }
    }

    /// The normalized source text.
    pub fn text(&self) -> String {
        match &self.kind {
            Kind::Threshold { op, thresh } => {
                format!("{} {} {} for {}", self.series, op.text(), thresh, self.k)
            }
            Kind::Monotone => format!("monotone {} for {}", self.series, self.k),
        }
    }

    /// Evaluates against a log, returning one [`Firing`] per maximal
    /// qualifying run.
    pub fn evaluate(&self, log: &TsLog) -> Vec<Firing> {
        let vals = series_values(log, &self.series);
        // hits[i]: window i extends a qualifying run.
        let hits: Vec<bool> = match &self.kind {
            Kind::Threshold { op, thresh } => vals.iter().map(|&v| op.eval(v, *thresh)).collect(),
            // Window i qualifies when it strictly exceeds its predecessor;
            // the run then covers the predecessor too (see below).
            Kind::Monotone => (0..vals.len())
                .map(|i| i > 0 && vals[i] > vals[i - 1])
                .collect(),
        };
        let mut out = Vec::new();
        let mut i = 0;
        while i < hits.len() {
            if !hits[i] {
                i += 1;
                continue;
            }
            let mut j = i;
            while j + 1 < hits.len() && hits[j + 1] {
                j += 1;
            }
            // A monotone run of m increase-steps spans m + 1 windows,
            // starting one before the first increasing window.
            let first = match self.kind {
                Kind::Monotone => i - 1,
                Kind::Threshold { .. } => i,
            };
            if j - first + 1 >= self.k {
                out.push(Firing {
                    assertion: self.text(),
                    first_window: first,
                    last_window: j,
                    start_cycle: first as u64 * log.width,
                    end_cycle: (j as u64 + 1) * log.width,
                });
            }
            i = j + 1;
        }
        out
    }
}

/// True when `name` is a counter label, gauge label, or derived series.
fn known_series(name: &str) -> bool {
    name == "occupancy_pct"
        || TsCounter::ALL.iter().any(|c| c.label() == name)
        || TsGauge::ALL.iter().any(|g| g.label() == name)
}

/// Resolves a series name to its per-window values.
fn series_values(log: &TsLog, name: &str) -> Vec<u64> {
    if let Some(c) = TsCounter::ALL.iter().find(|c| c.label() == name) {
        return log.counter_series(*c);
    }
    if let Some(g) = TsGauge::ALL.iter().find(|g| g.label() == name) {
        return log.gauge_series(*g);
    }
    debug_assert_eq!(name, "occupancy_pct");
    let window_width = log.width.max(1);
    (0..log.windows.len())
        .map(|w| {
            log.occupancy
                .iter()
                // window: occupancy is busy-cycles-per-window; the percentage
                // needs the exact window width as denominator.
                .map(|node| 100 * node.get(w).copied().unwrap_or(0) / window_width)
                .max()
                .unwrap_or(0)
        })
        .collect()
}

/// Evaluates a list of assertions, concatenating firings in input order.
pub fn evaluate_all(assertions: &[Assertion], log: &TsLog) -> Vec<Firing> {
    assertions.iter().flat_map(|a| a.evaluate(log)).collect()
}

/// The assertions the CI chaos gate evaluates: a fault-free run has no
/// hardened transport and therefore no retransmits, so this fires if and
/// only if the transport actually retransmitted somewhere.
pub fn default_check_assertions() -> Vec<Assertion> {
    // invariant: the built-in assertion text always parses.
    vec![Assertion::parse("retransmits > 0 for 1").expect("built-in assertion")]
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncp2_core::TsRecorder;

    fn log_with_retx(at: &[u64]) -> TsLog {
        let mut rec = TsRecorder::new(1, 100);
        for &t in at {
            rec.retransmit(0, 1, t);
            rec.count(TsCounter::Retransmits, t, 1);
        }
        rec.into_log(1_000)
    }

    #[test]
    fn parse_round_trips_and_rejects_garbage() {
        let a = Assertion::parse("retransmits > 0 for 2").unwrap();
        assert_eq!(a.text(), "retransmits > 0 for 2");
        let m = Assertion::parse("monotone queue_depth for 3").unwrap();
        assert_eq!(m.text(), "monotone queue_depth for 3");
        assert!(Assertion::parse("no_such_series > 0 for 1").is_err());
        assert!(Assertion::parse("retransmits >> 0 for 1").is_err());
        assert!(Assertion::parse("retransmits > 0 for 0").is_err());
        assert!(Assertion::parse("retransmits > 0").is_err());
        assert!(Assertion::parse("occupancy_pct >= 95 for 4").is_ok());
    }

    #[test]
    fn threshold_reports_maximal_runs_with_cycle_ranges() {
        // Retransmits in windows 1, 2 and 7: one run of 2, one of 1.
        let log = log_with_retx(&[150, 250, 299, 750]);
        let a = Assertion::parse("retransmits > 0 for 2").unwrap();
        let firings = a.evaluate(&log);
        assert_eq!(firings.len(), 1);
        assert_eq!(firings[0].first_window, 1);
        assert_eq!(firings[0].last_window, 2);
        assert_eq!(firings[0].start_cycle, 100);
        assert_eq!(firings[0].end_cycle, 300);

        let loose = Assertion::parse("retransmits > 0 for 1").unwrap();
        assert_eq!(loose.evaluate(&log).len(), 2);
    }

    #[test]
    fn clean_series_never_fires() {
        let log = log_with_retx(&[]);
        for a in default_check_assertions() {
            assert!(a.evaluate(&log).is_empty());
        }
    }

    #[test]
    fn monotone_growth_spans_the_whole_climb() {
        let mut rec = TsRecorder::new(1, 100);
        // Queue depth climbs 1,2,3 in windows 0..3, then drops.
        rec.gauge(TsGauge::QueueDepth, 50, 1);
        rec.gauge(TsGauge::QueueDepth, 150, 2);
        rec.gauge(TsGauge::QueueDepth, 250, 3);
        rec.gauge(TsGauge::QueueDepth, 350, 1);
        let log = rec.into_log(500);
        let a = Assertion::parse("monotone queue_depth for 3").unwrap();
        let firings = a.evaluate(&log);
        assert_eq!(firings.len(), 1);
        assert_eq!(firings[0].first_window, 0);
        assert_eq!(firings[0].last_window, 2);
        // Four windows strictly increasing nowhere exist, so K=4 is quiet.
        let strict = Assertion::parse("monotone queue_depth for 4").unwrap();
        assert!(strict.evaluate(&log).is_empty());
    }

    #[test]
    fn occupancy_pct_derives_from_the_busiest_node() {
        let mut rec = TsRecorder::new(2, 100);
        rec.span(0, 0, 50); // node 0: 50% in window 0
        rec.span(1, 100, 198); // node 1: 98% in window 1
        let log = rec.into_log(200);
        let a = Assertion::parse("occupancy_pct >= 95 for 1").unwrap();
        let firings = a.evaluate(&log);
        assert_eq!(firings.len(), 1);
        assert_eq!(firings[0].first_window, 1);
    }
}
