//! The execution-dependency graph behind the critical-path analyzer.
//!
//! [`ExecGraph::build`] turns one observed run ([`ObsLog`]) into a validated
//! dependency DAG over two ingredient sets:
//!
//! * **Per-node span chains** — every non-detached [`Span`] of a node,
//!   sorted by start time. The chains must *tile*: the first span starts at
//!   cycle 0, every later span starts exactly where its predecessor ended,
//!   and the longest chain ends exactly at the run's total cycle count —
//!   the span-conservation law extended onto the time axis.
//! * **Typed dependency edges** — the [`DepEdge`]s the simulation emitted:
//!   message flights, fill/grant/release bindings, controller commands and
//!   prefetch issue→use annotations. Every edge must be anchored to a span
//!   of its source node and point forward in time; *binding* edges must be
//!   self-edges that wake the node within its own chain.
//!
//! Build finishes with a Kahn topological sort over the *event points* the
//! edges touch (per-node time order plus the dependency edges themselves)
//! and fails on any cycle. Spans are too coarse a granularity for this
//! check: two nodes blocked at overlapping times that service each other's
//! requests legitimately exchange edges in both directions between the same
//! pair of stall spans, while the underlying timed events stay strictly
//! ordered. At event granularity a cycle can only come from zero-latency
//! edges chasing each other at one instant — exactly the degenerate case
//! the walk in [`crate::critpath`] must be protected from.

use ncp2_core::span::{DepEdge, EdgeKind, ObsLog, Span, SpanKind};
use ncp2_sim::Cycles;

/// Whether a span kind is a *blocked-wait* span: elastic in the what-if
/// re-execution (it shrinks or grows with the wake it is waiting for) and
/// the canvas binding edges draw their wakes on.
pub(crate) fn is_stall(k: SpanKind) -> bool {
    matches!(
        k,
        SpanKind::FaultStall
            | SpanKind::PrefetchStall
            | SpanKind::LockStall
            | SpanKind::BarrierStall
    )
}

/// A validated execution-dependency graph over one observed run.
#[derive(Debug)]
pub struct ExecGraph<'a> {
    /// The underlying log.
    pub log: &'a ObsLog,
    /// Processors in the run.
    pub nprocs: usize,
    /// End-to-end running time, cycles; equals the longest chain's end.
    pub total: Cycles,
    /// Per-node span chains: indices into `log.spans`, tiling `[0, finish]`.
    pub(crate) chains: Vec<Vec<u32>>,
    /// Per-node end of the last chain span (0 for an empty chain).
    pub(crate) finish: Vec<Cycles>,
    /// Binding edges per destination node, `(dst_time, edge index)` sorted.
    bindings: Vec<Vec<(Cycles, u32)>>,
    /// Message edges per destination node, `(dst_time, edge index)` sorted.
    msgs: Vec<Vec<(Cycles, u32)>>,
    /// Global chain-vertex id of the first span of each node.
    pub(crate) voff: Vec<u32>,
    /// Dependency edges mapped onto chain vertices:
    /// `(src vertex, dst vertex, dst_time)`.
    pub(crate) dep_pairs: Vec<(u32, u32, Cycles)>,
}

impl<'a> ExecGraph<'a> {
    /// Builds and validates the graph. Errors describe the first violated
    /// invariant: broken tiling, a dangling or backwards edge, a chain that
    /// disagrees with `total`, or a dependency cycle.
    pub fn build(log: &'a ObsLog, nprocs: usize, total: Cycles) -> Result<Self, String> {
        let mut chains: Vec<Vec<u32>> = vec![Vec::new(); nprocs];
        for (i, s) in log.spans.iter().enumerate() {
            if s.node >= nprocs {
                return Err(format!("span {i} on node {} but nprocs={nprocs}", s.node));
            }
            if s.end <= s.start {
                return Err(format!("span {i} is empty or backwards"));
            }
            if !s.detached {
                chains[s.node].push(i as u32);
            }
        }
        for ch in &mut chains {
            ch.sort_by_key(|&i| log.spans[i as usize].start);
        }
        let mut finish = vec![0; nprocs];
        for (n, ch) in chains.iter().enumerate() {
            let mut prev_end = 0;
            for &i in ch {
                let s = &log.spans[i as usize];
                if s.start != prev_end {
                    return Err(format!(
                        "node {n}: span tiling broken at cycle {prev_end} \
                         (next span starts at {})",
                        s.start
                    ));
                }
                prev_end = s.end;
            }
            finish[n] = prev_end;
        }
        let max_finish = finish.iter().copied().max().unwrap_or(0);
        if max_finish != total {
            return Err(format!(
                "longest span chain ends at {max_finish} but the run took {total} cycles"
            ));
        }

        let mut bindings: Vec<Vec<(Cycles, u32)>> = vec![Vec::new(); nprocs];
        let mut msgs: Vec<Vec<(Cycles, u32)>> = vec![Vec::new(); nprocs];
        for (ei, e) in log.edges.iter().enumerate() {
            if e.src_node >= nprocs || e.dst_node >= nprocs {
                return Err(format!("edge {ei} references a node out of range"));
            }
            if e.src_time > e.dst_time {
                return Err(format!("edge {ei} points backwards in time"));
            }
            if e.src_span.is_none() || e.src_span.0 as usize >= log.spans.len() {
                return Err(format!("edge {ei} has no anchoring span"));
            }
            if log.spans[e.src_span.0 as usize].node != e.src_node {
                return Err(format!(
                    "edge {ei} is anchored to a span of node {} but sourced at node {}",
                    log.spans[e.src_span.0 as usize].node, e.src_node
                ));
            }
            if e.kind.is_binding() {
                if e.src_node != e.dst_node {
                    return Err(format!("binding edge {ei} is not a self-edge"));
                }
                if e.dst_time > finish[e.dst_node] {
                    return Err(format!(
                        "binding edge {ei} wakes node {} at {} past its chain end {}",
                        e.dst_node, e.dst_time, finish[e.dst_node]
                    ));
                }
                bindings[e.dst_node].push((e.dst_time, ei as u32));
            } else if matches!(e.kind, EdgeKind::Msg(_)) {
                msgs[e.dst_node].push((e.dst_time, ei as u32));
            }
        }
        for v in bindings.iter_mut().chain(msgs.iter_mut()) {
            v.sort_unstable();
        }

        let mut voff = Vec::with_capacity(nprocs);
        let mut off: u32 = 0;
        for ch in &chains {
            voff.push(off);
            off += ch.len() as u32;
        }
        let mut g = ExecGraph {
            log,
            nprocs,
            total,
            chains,
            finish,
            bindings,
            msgs,
            voff,
            dep_pairs: Vec::new(),
        };
        g.check_acyclic()?;
        g.map_dep_pairs();
        Ok(g)
    }

    /// Kahn topological sort at *event-point* granularity: one vertex per
    /// distinct `(node, time)` an edge touches, chained in per-node time
    /// order, plus the dependency edges themselves. Fails on any cycle.
    fn check_acyclic(&self) -> Result<(), String> {
        let mut points: Vec<Vec<Cycles>> = vec![Vec::new(); self.nprocs];
        for e in &self.log.edges {
            points[e.src_node].push(e.src_time);
            points[e.dst_node].push(e.dst_time);
        }
        let mut poff = Vec::with_capacity(self.nprocs);
        let mut nv: usize = 0;
        for p in &mut points {
            p.sort_unstable();
            p.dedup();
            poff.push(nv);
            nv += p.len();
        }
        let pid = |node: usize, t: Cycles| -> usize {
            poff[node] + points[node].partition_point(|&x| x < t)
        };
        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); nv];
        let mut indeg: Vec<u32> = vec![0; nv];
        for (n, p) in points.iter().enumerate() {
            for i in 1..p.len() {
                let u = poff[n] + i - 1;
                adj[u].push((u + 1) as u32);
                indeg[u + 1] += 1;
            }
        }
        for e in &self.log.edges {
            let (u, v) = (pid(e.src_node, e.src_time), pid(e.dst_node, e.dst_time));
            if u == v {
                continue;
            }
            adj[u].push(v as u32);
            indeg[v] += 1;
        }
        let mut stack: Vec<usize> = (0..nv).filter(|&v| indeg[v] == 0).collect();
        let mut seen = 0usize;
        while let Some(u) = stack.pop() {
            seen += 1;
            for &v in &adj[u] {
                let v = v as usize;
                indeg[v] -= 1;
                if indeg[v] == 0 {
                    stack.push(v);
                }
            }
        }
        if seen != nv {
            return Err("dependency graph has a cycle among same-instant events".into());
        }
        Ok(())
    }

    /// Maps every dependency edge onto the chain spans containing its
    /// endpoints, for the slack pass in [`crate::critpath`].
    fn map_dep_pairs(&mut self) {
        let mut dep_pairs = Vec::new();
        for e in &self.log.edges {
            let (u, v) = match (
                self.vertex_before(e.src_node, e.src_time),
                self.vertex_after(e.dst_node, e.dst_time),
            ) {
                (Some(u), Some(v)) => (u, v),
                _ => continue,
            };
            if u == v {
                continue;
            }
            dep_pairs.push((u, v, e.dst_time));
        }
        self.dep_pairs = dep_pairs;
    }

    /// The chain vertex whose span was running up to time `t` on `node`
    /// (last span starting strictly before `t`; the first span for `t = 0`).
    fn vertex_before(&self, node: usize, t: Cycles) -> Option<u32> {
        let ch = &self.chains[node];
        if ch.is_empty() {
            return None;
        }
        let pos = ch.partition_point(|&i| self.log.spans[i as usize].start < t);
        // overflow: pos == 0 means "before the first span"; clamp to it.
        Some(self.voff[node] + pos.saturating_sub(1) as u32)
    }

    /// The chain vertex first affected after time `t` on `node` (first span
    /// ending strictly after `t`; the last span when `t` is at or past the
    /// chain end).
    fn vertex_after(&self, node: usize, t: Cycles) -> Option<u32> {
        let ch = &self.chains[node];
        if ch.is_empty() {
            return None;
        }
        let pos = ch.partition_point(|&i| self.log.spans[i as usize].end <= t);
        Some(self.voff[node] + pos.min(ch.len() - 1) as u32)
    }

    /// The span behind a chain position.
    pub(crate) fn span(&self, node: usize, pos: usize) -> &Span {
        &self.log.spans[self.chains[node][pos] as usize]
    }

    /// The span behind a global chain-vertex id, with its node.
    pub(crate) fn vertex_span(&self, vid: u32) -> (usize, &Span) {
        let node = self.voff.partition_point(|&o| o <= vid) - 1;
        (node, self.span(node, (vid - self.voff[node]) as usize))
    }

    /// Index of the log span behind a global chain-vertex id.
    pub(crate) fn vertex_span_index(&self, vid: u32) -> u32 {
        let node = self.voff.partition_point(|&o| o <= vid) - 1;
        self.chains[node][(vid - self.voff[node]) as usize]
    }

    /// End of `node`'s span chain.
    pub fn finish(&self, node: usize) -> Cycles {
        self.finish[node]
    }

    /// Chain position of the span covering `(t-1, t]` on `node`, if any.
    pub(crate) fn covering(&self, node: usize, t: Cycles) -> Option<usize> {
        let ch = &self.chains[node];
        let pos = ch.partition_point(|&i| self.log.spans[i as usize].start < t);
        if pos == 0 {
            return None;
        }
        (self.log.spans[ch[pos - 1] as usize].end >= t).then(|| pos - 1)
    }

    /// Chain position of the span ending exactly at `t` on `node`, if any.
    pub(crate) fn pos_ending_at(&self, node: usize, t: Cycles) -> Option<usize> {
        let ch = &self.chains[node];
        let pos = ch.partition_point(|&i| self.log.spans[i as usize].end < t);
        (pos < ch.len() && self.log.spans[ch[pos] as usize].end == t).then_some(pos)
    }

    /// Chain position of the first span starting at or after `t`, if any.
    pub(crate) fn pos_starting_at_or_after(&self, node: usize, t: Cycles) -> Option<usize> {
        let ch = &self.chains[node];
        let pos = ch.partition_point(|&i| self.log.spans[i as usize].start < t);
        (pos < ch.len()).then_some(pos)
    }

    fn edges_at(list: &[(Cycles, u32)], t: Cycles) -> &[(Cycles, u32)] {
        let lo = list.partition_point(|&(dt, _)| dt < t);
        let hi = list.partition_point(|&(dt, _)| dt <= t);
        &list[lo..hi]
    }

    /// Binding edges waking `node` exactly at `t`.
    pub(crate) fn bindings_at(&self, node: usize, t: Cycles) -> &[(Cycles, u32)] {
        Self::edges_at(&self.bindings[node], t)
    }

    /// All binding edges waking `node`, `(dst_time, edge index)` sorted.
    pub(crate) fn bindings_of(&self, node: usize) -> &[(Cycles, u32)] {
        &self.bindings[node]
    }

    /// Message edges arriving at `node` exactly at `t`.
    pub(crate) fn msgs_at(&self, node: usize, t: Cycles) -> &[(Cycles, u32)] {
        Self::edges_at(&self.msgs[node], t)
    }

    /// The latest message edge arriving at `node` at or before `t`, if any
    /// — the incoming request that drove the node's activity at time `t`
    /// while it was blocked or servicing.
    pub(crate) fn latest_msg_before(&self, node: usize, t: Cycles) -> Option<&DepEdge> {
        let list = &self.msgs[node];
        let idx = list.partition_point(|&(dt, _)| dt <= t);
        (idx > 0).then(|| self.edge(list[idx - 1].1))
    }

    /// Largest binding-edge wake time on `node` strictly inside `(lo, hi)`.
    pub(crate) fn max_binding_dst_in(&self, node: usize, lo: Cycles, hi: Cycles) -> Option<Cycles> {
        let list = &self.bindings[node];
        let idx = list.partition_point(|&(dt, _)| dt < hi);
        if idx == 0 {
            return None;
        }
        let dt = list[idx - 1].0;
        (dt > lo).then_some(dt)
    }

    /// A dependency edge by index.
    pub(crate) fn edge(&self, idx: u32) -> &DepEdge {
        &self.log.edges[idx as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncp2_core::span::{Span, SpanId};
    use ncp2_core::{DepEdge, EdgeKind, MsgKind};
    use ncp2_sim::Category;

    fn span(node: usize, kind: SpanKind, cat: Category, start: Cycles, end: Cycles) -> Span {
        Span {
            node,
            epoch: 0,
            kind,
            cat,
            start,
            end,
            detached: false,
        }
    }

    fn edge(
        kind: EdgeKind,
        src_node: usize,
        src_time: Cycles,
        dst_node: usize,
        dst_time: Cycles,
        src_span: u32,
    ) -> DepEdge {
        DepEdge {
            kind,
            src_node,
            src_time,
            dst_node,
            dst_time,
            work: 0,
            src_span: SpanId(src_span),
        }
    }

    fn two_node_log() -> ObsLog {
        ObsLog {
            spans: vec![
                span(0, SpanKind::Compute, Category::Busy, 0, 30),
                span(0, SpanKind::MsgSetup, Category::Data, 30, 40),
                span(0, SpanKind::FaultStall, Category::Data, 40, 100),
                span(0, SpanKind::Compute, Category::Busy, 100, 120),
                span(1, SpanKind::Compute, Category::Busy, 0, 60),
                span(1, SpanKind::Service, Category::Ipc, 60, 70),
            ],
            edges: vec![
                edge(EdgeKind::Msg(MsgKind::DiffReq), 0, 40, 1, 60, 1),
                edge(EdgeKind::Msg(MsgKind::DiffReply), 1, 70, 0, 95, 5),
                edge(EdgeKind::FaultFill, 0, 95, 0, 100, 1),
            ],
            ..ObsLog::default()
        }
    }

    #[test]
    fn a_tiled_log_builds_and_is_acyclic() {
        let log = two_node_log();
        let g = ExecGraph::build(&log, 2, 120).expect("build");
        assert_eq!(g.finish(0), 120);
        assert_eq!(g.finish(1), 70);
        assert_eq!(g.dep_pairs.len(), 3);
        assert_eq!(g.bindings_at(0, 100).len(), 1);
        assert_eq!(g.msgs_at(0, 95).len(), 1);
        assert_eq!(g.covering(0, 100), Some(2));
        assert_eq!(g.covering(0, 0), None);
        assert_eq!(g.pos_ending_at(0, 100), Some(2));
        assert_eq!(g.max_binding_dst_in(0, 40, 120), Some(100));
        assert_eq!(g.max_binding_dst_in(0, 100, 120), None);
    }

    #[test]
    fn detached_spans_are_excluded_from_chains() {
        let mut log = two_node_log();
        log.spans.push(Span {
            detached: true,
            ..span(1, SpanKind::Service, Category::Ipc, 300, 310)
        });
        let g = ExecGraph::build(&log, 2, 120).expect("build");
        assert_eq!(g.finish(1), 70);
    }

    #[test]
    fn a_tiling_gap_is_rejected() {
        let mut log = two_node_log();
        log.spans[3].start = 101; // gap after the fault stall
        let err = ExecGraph::build(&log, 2, 121).unwrap_err();
        assert!(err.contains("tiling"), "{err}");
    }

    #[test]
    fn a_total_mismatch_is_rejected() {
        let log = two_node_log();
        let err = ExecGraph::build(&log, 2, 130).unwrap_err();
        assert!(err.contains("130"), "{err}");
    }

    #[test]
    fn a_wrong_node_anchor_is_rejected() {
        let mut log = two_node_log();
        log.edges[0].src_span = SpanId(4); // span of node 1, edge sourced at node 0
        let err = ExecGraph::build(&log, 2, 120).unwrap_err();
        assert!(err.contains("anchored"), "{err}");
    }

    #[test]
    fn a_non_self_binding_edge_is_rejected() {
        let mut log = two_node_log();
        log.edges[2].src_node = 1;
        log.edges[2].src_span = SpanId(4);
        let err = ExecGraph::build(&log, 2, 120).unwrap_err();
        assert!(err.contains("self-edge"), "{err}");
    }
}
