//! Per-run metrics reports: deterministic JSON plus a human-readable table.
//!
//! A [`MetricsReport`] condenses one [`RunResult`] into the numbers the
//! paper's tables and our regression gate care about: the five-way
//! execution-time breakdown, protocol counters, latency-histogram
//! percentiles and a per-barrier-epoch breakdown timeline. The JSON encoding
//! is hand-written with a fixed key order and integer values only, so the
//! same run always serializes to the same bytes — `ci.sh` and the golden
//! tests rely on that.

use ncp2_core::span::{CtrlCmd, SpanKind};
use ncp2_core::RunResult;
use ncp2_sim::Category;

use crate::hist::LogHistogram;
use crate::json::{esc, JVal};

/// Quantile summary of one latency histogram.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HistSummary {
    /// Observations recorded.
    pub count: u64,
    /// Median, cycles.
    pub p50: u64,
    /// 90th percentile, cycles.
    pub p90: u64,
    /// 99th percentile, cycles.
    pub p99: u64,
    /// Exact maximum, cycles.
    pub max: u64,
}

impl HistSummary {
    /// Summarizes a histogram.
    pub fn of(h: &LogHistogram) -> Self {
        HistSummary {
            count: h.count(),
            p50: h.quantile(0.50),
            p90: h.quantile(0.90),
            p99: h.quantile(0.99),
            max: h.max(),
        }
    }
}

/// The histogram names every report carries, in serialization order.
/// `fault_stall` includes prefetch-join stalls (a fault blocked on an
/// in-flight prefetch is still a fault stall).
pub const HIST_NAMES: [&str; 7] = [
    "msg_latency",
    "fault_stall",
    "lock_wait",
    "barrier_wait",
    "diff_create",
    "diff_apply",
    "prefetch_to_use",
];

/// Host cost of one engine phase attributed to a run by `--prof` (see
/// `ncp2-prof`): wall time plus same-thread allocations. Pure data here —
/// this crate never reads the wall clock itself.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HostPhase {
    /// Wall-clock nanoseconds.
    pub wall_ns: u64,
    /// Allocations performed on the executing thread.
    pub allocs: u64,
    /// Bytes requested by those allocations.
    pub alloc_bytes: u64,
}

/// One run's metrics, ready for serialization or comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsReport {
    /// Run label, conventionally `"APP/MODE"` (e.g. `"TSP/I+P+D"`).
    pub name: String,
    /// Protocol label from the run.
    pub protocol: String,
    /// Processors simulated.
    pub nprocs: usize,
    /// End-to-end running time, cycles.
    pub total_cycles: u64,
    /// Whether the span-conservation invariant held (vacuously true when
    /// the run carried no observability log).
    pub conservation_ok: bool,
    /// Aggregate breakdown per category, in [`Category::ALL`] order when
    /// generated from a run (alphabetical after a JSON round trip).
    pub categories: Vec<(String, u64)>,
    /// Critical-path exposed cycles per category (the cycles of each kind
    /// the run's longest dependency path actually waits on; sums to
    /// `total_cycles`). Empty when the run carried no observability log.
    pub exposed: Vec<(String, u64)>,
    /// Aggregate protocol counters.
    pub counters: Vec<(String, u64)>,
    /// Histogram summaries, in [`HIST_NAMES`] order when generated from a
    /// run.
    pub hists: Vec<(String, HistSummary)>,
    /// Per-barrier-epoch breakdown timeline: `epochs[e][c]` is the cycles
    /// all nodes spent in category `Category::ALL[c]` during epoch `e`.
    /// Empty when the run carried no observability log.
    pub epochs: Vec<Vec<u64>>,
    /// Host-side per-phase attribution (`--prof` runs only; empty — and
    /// absent from the JSON — otherwise). Host data is measurement *about*
    /// the run, not part of it: every simulated-time field above is
    /// byte-identical whether or not this is populated, and the bench
    /// cache never stores it.
    pub host: Vec<(String, HostPhase)>,
}

impl MetricsReport {
    /// Builds a report from a finished run. Histograms and the epoch
    /// timeline need the run's observability log
    /// ([`RunResult::obs`]); without it they are empty/zero.
    pub fn from_run(name: &str, r: &RunResult) -> MetricsReport {
        let agg = r.aggregate();
        let categories = Category::ALL
            .iter()
            .map(|&c| (c.label().to_string(), agg.get(c)))
            .collect();

        let mut counters: Vec<(String, u64)> = Vec::new();
        let sum = |f: &dyn Fn(&ncp2_core::NodeStats) -> u64| -> u64 { r.nodes.iter().map(f).sum() };
        counters.push(("faults".into(), sum(&|n| n.faults)));
        counters.push(("write_faults".into(), sum(&|n| n.write_faults)));
        counters.push(("lock_acquires".into(), sum(&|n| n.lock_acquires)));
        counters.push(("barriers".into(), sum(&|n| n.barriers)));
        counters.push(("invalidations".into(), sum(&|n| n.invalidations)));
        counters.push(("diffs_created".into(), sum(&|n| n.diffs_created)));
        counters.push(("diffs_applied".into(), sum(&|n| n.diffs_applied)));
        counters.push(("page_fetches".into(), sum(&|n| n.page_fetches)));
        counters.push(("prefetches".into(), sum(&|n| n.prefetches)));
        counters.push(("useless_prefetches".into(), sum(&|n| n.useless_prefetches)));
        counters.push(("prefetch_joins".into(), sum(&|n| n.prefetch_joins)));
        counters.push(("prefetch_hits".into(), sum(&|n| n.prefetch_hits)));
        counters.push(("au_updates".into(), sum(&|n| n.au_updates)));
        counters.push(("au_combined".into(), sum(&|n| n.au_combined)));
        counters.push(("messages".into(), r.net.messages));
        counters.push(("bytes".into(), r.net.bytes));

        let mut hs: Vec<LogHistogram> =
            (0..HIST_NAMES.len()).map(|_| LogHistogram::new()).collect();
        let mut epochs: Vec<Vec<u64>> = Vec::new();
        let mut conservation_ok = true;
        let mut exposed: Vec<(String, u64)> = Vec::new();
        if let Some(log) = &r.obs {
            conservation_ok = log.conservation_errors(&r.nodes).is_empty();
            // Exposed cycles come from the critical-path walk over the
            // dependency graph; a build/walk failure is an invariant
            // violation and flips the conservation flag.
            match crate::graph::ExecGraph::build(log, r.nprocs, r.total_cycles)
                .and_then(|g| crate::critpath::critical_path(&g))
            {
                Ok(cp) => {
                    exposed = cp
                        .exposed
                        .iter()
                        .map(|&(c, v)| (c.label().to_string(), v))
                        .collect();
                }
                Err(_) => conservation_ok = false,
            }
            for f in &log.flights {
                hs[0].observe(f.arrival - f.inject);
            }
            for s in &log.spans {
                let dur = s.end - s.start;
                match s.kind {
                    SpanKind::FaultStall | SpanKind::PrefetchStall => hs[1].observe(dur),
                    SpanKind::LockStall => hs[2].observe(dur),
                    SpanKind::BarrierStall => hs[3].observe(dur),
                    SpanKind::DiffCreate | SpanKind::Twin => hs[4].observe(dur),
                    SpanKind::DiffApply => hs[5].observe(dur),
                    _ => {}
                }
                let ci = Category::ALL.iter().position(|&c| c == s.cat).unwrap_or(0);
                while epochs.len() <= s.epoch as usize {
                    epochs.push(vec![0; Category::ALL.len()]);
                }
                epochs[s.epoch as usize][ci] += dur;
            }
            for e in &log.engine {
                match e.cmd {
                    CtrlCmd::DiffCreate | CtrlCmd::Twin => hs[4].observe(e.end - e.start),
                    CtrlCmd::DiffApply => hs[5].observe(e.end - e.start),
                    CtrlCmd::ListWalk | CtrlCmd::Send => {}
                }
            }
            for &(_, d) in &log.prefetch_use {
                hs[6].observe(d);
            }
        }
        let mut hists: Vec<(String, HistSummary)> = HIST_NAMES
            .iter()
            .zip(&hs)
            .map(|(n, h)| (n.to_string(), HistSummary::of(h)))
            .collect();
        // Service workloads: response-time distribution plus request
        // counters. These rows only exist when the run issued svc markers,
        // so the six closed-loop kernels keep byte-identical reports.
        if let Some(svc) = &r.svc {
            counters.push(("svc_completed".into(), svc.completed()));
            counters.push(("svc_gets".into(), svc.gets));
            counters.push(("svc_puts".into(), svc.puts));
            counters.push(("svc_sessions".into(), svc.sessions));
            counters.push(("svc_queue_peak".into(), svc.queue_peak));
            hists.push(("svc_response".into(), HistSummary::of(&svc.response)));
        }

        MetricsReport {
            name: name.to_string(),
            protocol: r.protocol.clone(),
            nprocs: r.nprocs,
            total_cycles: r.total_cycles,
            conservation_ok,
            categories,
            exposed,
            counters,
            hists,
            epochs,
            host: Vec::new(),
        }
    }

    /// Looks a category total up by label.
    pub fn category(&self, label: &str) -> Option<u64> {
        self.categories
            .iter()
            .find(|(n, _)| n == label)
            .map(|&(_, v)| v)
    }

    /// Looks a histogram summary up by name.
    pub fn hist(&self, name: &str) -> Option<&HistSummary> {
        self.hists.iter().find(|(n, _)| n == name).map(|(_, h)| h)
    }

    /// Serializes to deterministic JSON: fixed key order, integers only,
    /// trailing newline. Byte-identical across repeated runs of the same
    /// configuration.
    pub fn to_json(&self) -> String {
        let mut s = self.to_json_indented(0);
        s.push('\n');
        s
    }

    /// Serializes with every line prefixed by `base` spaces (no trailing
    /// newline) so reports can be embedded in bench files.
    pub fn to_json_indented(&self, base: usize) -> String {
        let p = " ".repeat(base);
        let mut out = String::new();
        out.push_str(&format!("{p}{{\n"));
        out.push_str(&format!("{p}  \"name\": \"{}\",\n", esc(&self.name)));
        out.push_str(&format!(
            "{p}  \"protocol\": \"{}\",\n",
            esc(&self.protocol)
        ));
        out.push_str(&format!("{p}  \"nprocs\": {},\n", self.nprocs));
        out.push_str(&format!("{p}  \"total_cycles\": {},\n", self.total_cycles));
        out.push_str(&format!(
            "{p}  \"conservation_ok\": {},\n",
            self.conservation_ok
        ));
        let pairs = |items: &[(String, u64)]| -> String {
            items
                .iter()
                .map(|(n, v)| format!("\"{}\": {v}", esc(n)))
                .collect::<Vec<_>>()
                .join(", ")
        };
        out.push_str(&format!(
            "{p}  \"categories\": {{{}}},\n",
            pairs(&self.categories)
        ));
        out.push_str(&format!(
            "{p}  \"exposed\": {{{}}},\n",
            pairs(&self.exposed)
        ));
        out.push_str(&format!(
            "{p}  \"counters\": {{{}}},\n",
            pairs(&self.counters)
        ));
        out.push_str(&format!("{p}  \"hists\": {{\n"));
        for (i, (n, h)) in self.hists.iter().enumerate() {
            let comma = if i + 1 == self.hists.len() { "" } else { "," };
            out.push_str(&format!(
                "{p}    \"{}\": {{\"count\": {}, \"p50\": {}, \"p90\": {}, \"p99\": {}, \
                 \"max\": {}}}{comma}\n",
                esc(n),
                h.count,
                h.p50,
                h.p90,
                h.p99,
                h.max
            ));
        }
        out.push_str(&format!("{p}  }},\n"));
        out.push_str(&format!("{p}  \"epochs\": [\n"));
        for (i, e) in self.epochs.iter().enumerate() {
            let comma = if i + 1 == self.epochs.len() { "" } else { "," };
            let row = e
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join(", ");
            out.push_str(&format!("{p}    [{row}]{comma}\n"));
        }
        if self.host.is_empty() {
            out.push_str(&format!("{p}  ]\n"));
        } else {
            out.push_str(&format!("{p}  ],\n"));
            let phases = self
                .host
                .iter()
                .map(|(n, h)| {
                    format!(
                        "\"{}\": {{\"wall_ns\": {}, \"allocs\": {}, \"alloc_bytes\": {}}}",
                        esc(n),
                        h.wall_ns,
                        h.allocs,
                        h.alloc_bytes
                    )
                })
                .collect::<Vec<_>>()
                .join(", ");
            out.push_str(&format!("{p}  \"host\": {{{phases}}}\n"));
        }
        out.push_str(&format!("{p}}}"));
        out
    }

    /// Renders the report as an aligned text table for terminal viewing.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{}  protocol={}  nprocs={}  total={} cycles  conservation={}\n",
            self.name,
            self.protocol,
            self.nprocs,
            self.total_cycles,
            if self.conservation_ok { "ok" } else { "FAILED" }
        ));
        let cat_total: u64 = self.categories.iter().map(|&(_, v)| v).sum();
        out.push_str(&format!(
            "\n  {:<18} {:>14} {:>7}\n",
            "category", "cycles", "%"
        ));
        for (n, v) in &self.categories {
            let pct = if cat_total == 0 {
                0.0
            } else {
                100.0 * *v as f64 / cat_total as f64
            };
            out.push_str(&format!("  {n:<18} {v:>14} {pct:>7.1}\n"));
        }
        if !self.exposed.is_empty() {
            let exp_total: u64 = self.exposed.iter().map(|&(_, v)| v).sum();
            out.push_str(&format!(
                "\n  {:<18} {:>14} {:>7}\n",
                "exposed (critpath)", "cycles", "%"
            ));
            for (n, v) in &self.exposed {
                let pct = if exp_total == 0 {
                    0.0
                } else {
                    100.0 * *v as f64 / exp_total as f64
                };
                out.push_str(&format!("  {n:<18} {v:>14} {pct:>7.1}\n"));
            }
        }
        out.push_str(&format!("\n  {:<18} {:>14}\n", "counter", "value"));
        for (n, v) in &self.counters {
            out.push_str(&format!("  {n:<18} {v:>14}\n"));
        }
        out.push_str(&format!(
            "\n  {:<18} {:>8} {:>9} {:>9} {:>9} {:>9}\n",
            "histogram", "count", "p50", "p90", "p99", "max"
        ));
        for (n, h) in &self.hists {
            out.push_str(&format!(
                "  {n:<18} {:>8} {:>9} {:>9} {:>9} {:>9}\n",
                h.count, h.p50, h.p90, h.p99, h.max
            ));
        }
        if !self.host.is_empty() {
            out.push_str(&format!(
                "\n  {:<18} {:>14} {:>10} {:>12}\n",
                "host phase", "wall_ns", "allocs", "alloc_bytes"
            ));
            for (n, h) in &self.host {
                out.push_str(&format!(
                    "  {n:<18} {:>14} {:>10} {:>12}\n",
                    h.wall_ns, h.allocs, h.alloc_bytes
                ));
            }
        }
        if !self.epochs.is_empty() {
            out.push_str(&format!("\n  {:<8}", "epoch"));
            for c in Category::ALL {
                out.push_str(&format!(" {:>12}", c.label()));
            }
            out.push('\n');
            for (i, e) in self.epochs.iter().enumerate() {
                out.push_str(&format!("  {i:<8}"));
                for v in e {
                    out.push_str(&format!(" {v:>12}"));
                }
                out.push('\n');
            }
        }
        out
    }
}

/// Reconstructs a report from a parsed JSON object (field order is lost:
/// categories/counters/hists come back alphabetical).
pub(crate) fn report_from_jval(v: &JVal) -> Result<MetricsReport, String> {
    let str_field = |k: &str| -> Result<String, String> {
        v.get(k)
            .and_then(|x| x.as_str())
            .map(str::to_string)
            .ok_or_else(|| format!("missing string field '{k}'"))
    };
    let num_field = |k: &str| -> Result<u64, String> {
        v.get(k)
            .and_then(|x| x.as_u64())
            .ok_or_else(|| format!("missing numeric field '{k}'"))
    };
    let pairs_field = |k: &str| -> Result<Vec<(String, u64)>, String> {
        let obj = v
            .get(k)
            .and_then(|x| x.as_obj())
            .ok_or_else(|| format!("missing object field '{k}'"))?;
        obj.iter()
            .map(|(n, x)| {
                x.as_u64()
                    .map(|u| (n.clone(), u))
                    .ok_or_else(|| format!("non-numeric entry '{n}' in '{k}'"))
            })
            .collect()
    };
    let hists_obj = v
        .get("hists")
        .and_then(|x| x.as_obj())
        .ok_or("missing object field 'hists'")?;
    let mut hists = Vec::new();
    for (n, h) in hists_obj {
        let f = |k: &str| -> Result<u64, String> {
            h.get(k)
                .and_then(|x| x.as_u64())
                .ok_or_else(|| format!("hist '{n}' missing '{k}'"))
        };
        hists.push((
            n.clone(),
            HistSummary {
                count: f("count")?,
                p50: f("p50")?,
                p90: f("p90")?,
                p99: f("p99")?,
                max: f("max")?,
            },
        ));
    }
    let epochs = v
        .get("epochs")
        .and_then(|x| x.as_arr())
        .ok_or("missing array field 'epochs'")?
        .iter()
        .map(|row| {
            row.as_arr()
                .ok_or("epoch row is not an array")?
                .iter()
                .map(|x| {
                    x.as_u64()
                        .ok_or_else(|| "non-numeric epoch cell".to_string())
                })
                .collect::<Result<Vec<u64>, String>>()
        })
        .collect::<Result<Vec<Vec<u64>>, String>>()?;
    // Absent unless the run was profiled (`--prof`); order comes back
    // alphabetical, like every other pair list.
    let mut host = Vec::new();
    if let Some(obj) = v.get("host").and_then(|x| x.as_obj()) {
        for (n, h) in obj {
            let f = |k: &str| -> Result<u64, String> {
                h.get(k)
                    .and_then(|x| x.as_u64())
                    .ok_or_else(|| format!("host phase '{n}' missing '{k}'"))
            };
            host.push((
                n.clone(),
                HostPhase {
                    wall_ns: f("wall_ns")?,
                    allocs: f("allocs")?,
                    alloc_bytes: f("alloc_bytes")?,
                },
            ));
        }
    }
    Ok(MetricsReport {
        name: str_field("name")?,
        protocol: str_field("protocol")?,
        nprocs: num_field("nprocs")? as usize,
        total_cycles: num_field("total_cycles")?,
        conservation_ok: v
            .get("conservation_ok")
            .and_then(|x| x.as_bool())
            .ok_or("missing boolean field 'conservation_ok'")?,
        categories: pairs_field("categories")?,
        // Absent in pre-critical-path bench files; treat as "no graph".
        exposed: if v.get("exposed").is_some() {
            pairs_field("exposed")?
        } else {
            Vec::new()
        },
        counters: pairs_field("counters")?,
        hists,
        epochs,
        host,
    })
}

/// Parses a `metrics.json` document produced by [`MetricsReport::to_json`].
pub fn parse_metrics(text: &str) -> Result<MetricsReport, String> {
    report_from_jval(&crate::json::parse(text)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MetricsReport {
        MetricsReport {
            name: "TSP/Base".into(),
            protocol: "Base".into(),
            nprocs: 4,
            total_cycles: 123_456,
            conservation_ok: true,
            categories: vec![("busy".into(), 100), ("data".into(), 23)],
            exposed: vec![("busy".into(), 90), ("data".into(), 33)],
            counters: vec![("faults".into(), 7)],
            hists: vec![(
                "msg_latency".into(),
                HistSummary {
                    count: 3,
                    p50: 10,
                    p90: 12,
                    p99: 12,
                    max: 12,
                },
            )],
            epochs: vec![vec![1, 2, 3, 4, 5], vec![6, 7, 8, 9, 10]],
            host: Vec::new(),
        }
    }

    #[test]
    fn json_roundtrip_preserves_values() {
        let r = sample();
        let parsed = parse_metrics(&r.to_json()).expect("parse");
        assert_eq!(parsed, r);
    }

    #[test]
    fn host_attribution_roundtrips_and_is_absent_when_empty() {
        let plain = sample();
        assert!(
            !plain.to_json().contains("\"host\""),
            "un-profiled reports must not mention host data"
        );
        let mut profiled = sample();
        profiled.host = vec![
            (
                "cache_io".into(),
                HostPhase {
                    wall_ns: 1200,
                    allocs: 3,
                    alloc_bytes: 256,
                },
            ),
            (
                "sim".into(),
                HostPhase {
                    wall_ns: 987_654,
                    allocs: 4210,
                    alloc_bytes: 1 << 20,
                },
            ),
        ];
        let text = profiled.to_json();
        assert!(text.contains("\"host\""));
        let parsed = parse_metrics(&text).expect("parse");
        assert_eq!(parsed, profiled);
        // The simulated-time fields are untouched by host attribution.
        let mut stripped = parsed;
        stripped.host.clear();
        assert_eq!(stripped, plain);
        assert!(profiled.render_table().contains("host phase"));
    }

    #[test]
    fn serialization_is_deterministic() {
        assert_eq!(sample().to_json(), sample().to_json());
    }

    #[test]
    fn table_mentions_every_section() {
        let t = sample().render_table();
        assert!(t.contains("TSP/Base"));
        assert!(t.contains("busy"));
        assert!(t.contains("exposed"));
        assert!(t.contains("faults"));
        assert!(t.contains("msg_latency"));
        assert!(t.contains("epoch"));
    }
}
