//! The bench-regression pipeline behind `cargo xtask bench-diff`.
//!
//! A *bench file* is a JSON document holding one [`MetricsReport`] per
//! benchmark run (`BENCH_tier1.json` in the repo root is the committed
//! trajectory baseline). [`compare`] diffs two bench files and flags every
//! metric that got meaningfully worse: total cycles, any breakdown
//! category, critical-path exposed cycles per category, or a
//! latency-histogram percentile.
//!
//! "Meaningfully" means both a *relative* threshold (default 5%) and an
//! *absolute* floor of 100 cycles, so single-cycle jitter on near-zero
//! metrics doesn't fail CI. Runs present in only one file are reported as
//! additions/removals, not regressions.

use crate::json::parse;
use crate::report::{report_from_jval, MetricsReport};

/// Absolute growth (cycles) below which a metric change is never flagged.
pub const ABS_FLOOR: u64 = 100;

/// One flagged metric regression.
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// Run name (`"APP/MODE"`).
    pub run: String,
    /// Metric path (e.g. `"total_cycles"`, `"category/ipc"`,
    /// `"hist/msg_latency/p99"`).
    pub metric: String,
    /// Baseline value.
    pub old: u64,
    /// Current value.
    pub new: u64,
    /// Relative growth in percent.
    pub pct: f64,
}

impl std::fmt::Display for Regression {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: {} {} -> {} (+{:.1}%)",
            self.run, self.metric, self.old, self.new, self.pct
        )
    }
}

/// Serializes reports as a bench file (`{"runs": [...]}`), deterministic
/// byte-for-byte.
pub fn write_bench(runs: &[MetricsReport]) -> String {
    let mut out = String::from("{\"runs\": [\n");
    for (i, r) in runs.iter().enumerate() {
        out.push_str(&r.to_json_indented(2));
        out.push_str(if i + 1 == runs.len() { "\n" } else { ",\n" });
    }
    out.push_str("]}\n");
    out
}

/// Parses a bench file back into its reports.
pub fn parse_bench(text: &str) -> Result<Vec<MetricsReport>, String> {
    let v = parse(text)?;
    let runs = v
        .get("runs")
        .and_then(|r| r.as_arr())
        .ok_or("bench file has no 'runs' array")?;
    runs.iter().map(report_from_jval).collect()
}

fn worse(old: u64, new: u64, threshold_pct: f64) -> Option<f64> {
    if new <= old || new - old < ABS_FLOOR {
        return None;
    }
    if old == 0 {
        // Growth from zero past the absolute floor is always suspicious.
        return Some(f64::INFINITY);
    }
    let pct = 100.0 * (new - old) as f64 / old as f64;
    (pct > threshold_pct).then_some(pct)
}

/// Compares two bench files and returns every flagged regression, in
/// baseline order. `threshold_pct` is the relative growth above which a
/// metric is flagged (subject to the [`ABS_FLOOR`] absolute floor).
pub fn compare(
    old: &[MetricsReport],
    new: &[MetricsReport],
    threshold_pct: f64,
) -> Vec<Regression> {
    let mut out = Vec::new();
    for o in old {
        let Some(n) = new.iter().find(|n| n.name == o.name) else {
            continue; // removal, reported separately by the caller
        };
        let mut push = |metric: String, ov: u64, nv: u64| {
            if let Some(pct) = worse(ov, nv, threshold_pct) {
                out.push(Regression {
                    run: o.name.clone(),
                    metric,
                    old: ov,
                    new: nv,
                    pct,
                });
            }
        };
        push("total_cycles".into(), o.total_cycles, n.total_cycles);
        for (cat, ov) in &o.categories {
            if let Some(nv) = n.category(cat) {
                push(format!("category/{cat}"), *ov, nv);
            }
        }
        for (cat, ov) in &o.exposed {
            if let Some(&(_, nv)) = n.exposed.iter().find(|(c, _)| c == cat) {
                push(format!("exposed/{cat}"), *ov, nv);
            }
        }
        for (hname, oh) in &o.hists {
            if let Some(nh) = n.hist(hname) {
                push(format!("hist/{hname}/p50"), oh.p50, nh.p50);
                push(format!("hist/{hname}/p99"), oh.p99, nh.p99);
            }
        }
    }
    out
}

/// Names present in `old` but missing from `new` and vice versa — surfaced
/// by the CLI so renamed benchmarks don't silently drop out of the gate.
pub fn membership_changes(
    old: &[MetricsReport],
    new: &[MetricsReport],
) -> (Vec<String>, Vec<String>) {
    let removed = old
        .iter()
        .filter(|o| !new.iter().any(|n| n.name == o.name))
        .map(|o| o.name.clone())
        .collect();
    let added = new
        .iter()
        .filter(|n| !old.iter().any(|o| o.name == n.name))
        .map(|n| n.name.clone())
        .collect();
    (removed, added)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::HistSummary;

    fn report(name: &str, total: u64, ipc: u64, p99: u64) -> MetricsReport {
        MetricsReport {
            name: name.into(),
            protocol: "Base".into(),
            nprocs: 4,
            total_cycles: total,
            conservation_ok: true,
            categories: vec![("busy".into(), 10_000), ("ipc".into(), ipc)],
            exposed: vec![("busy".into(), 9_000), ("ipc".into(), ipc)],
            counters: vec![("faults".into(), 3)],
            hists: vec![(
                "msg_latency".into(),
                HistSummary {
                    count: 10,
                    p50: 200,
                    p90: 400,
                    p99,
                    max: p99,
                },
            )],
            epochs: Vec::new(),
            host: Vec::new(),
        }
    }

    #[test]
    fn five_percent_total_cycle_growth_is_flagged() {
        let old = vec![report("TSP/Base", 100_000, 5_000, 500)];
        let new = vec![report("TSP/Base", 106_000, 5_000, 500)];
        let regs = compare(&old, &new, 5.0);
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].metric, "total_cycles");
        assert!((regs[0].pct - 6.0).abs() < 1e-9);
    }

    #[test]
    fn growth_below_threshold_or_floor_passes() {
        let old = vec![report("TSP/Base", 100_000, 5_000, 500)];
        // +4% total, +50 absolute cycles on ipc: both under the gates.
        let new = vec![report("TSP/Base", 104_000, 5_050, 500)];
        assert!(compare(&old, &new, 5.0).is_empty());
        // Improvements never flag.
        let faster = vec![report("TSP/Base", 50_000, 100, 100)];
        assert!(compare(&old, &faster, 5.0).is_empty());
    }

    #[test]
    fn category_and_percentile_regressions_are_flagged() {
        let old = vec![report("TSP/Base", 100_000, 5_000, 500)];
        let new = vec![report("TSP/Base", 100_000, 6_000, 1_200)];
        let regs = compare(&old, &new, 5.0);
        let metrics: Vec<&str> = regs.iter().map(|r| r.metric.as_str()).collect();
        assert!(metrics.contains(&"category/ipc"), "{metrics:?}");
        assert!(metrics.contains(&"exposed/ipc"), "{metrics:?}");
        assert!(metrics.contains(&"hist/msg_latency/p99"), "{metrics:?}");
    }

    #[test]
    fn bench_file_roundtrips() {
        let runs = vec![
            report("TSP/Base", 100_000, 5_000, 500),
            report("Water/AURC+P", 90_000, 4_000, 400),
        ];
        let text = write_bench(&runs);
        let back = parse_bench(&text).expect("parse");
        assert_eq!(back.len(), 2);
        assert_eq!(back[0].name, "TSP/Base");
        assert_eq!(back[1].total_cycles, 90_000);
        // Deterministic bytes.
        assert_eq!(text, write_bench(&runs));
    }

    #[test]
    fn membership_changes_are_reported() {
        let old = vec![report("A/Base", 1, 1, 1)];
        let new = vec![report("B/Base", 1, 1, 1)];
        let (removed, added) = membership_changes(&old, &new);
        assert_eq!(removed, vec!["A/Base"]);
        assert_eq!(added, vec!["B/Base"]);
    }
}
