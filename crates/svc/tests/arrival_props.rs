//! Property-based tests for the open-loop arrival stream: the four
//! determinism guarantees the service study rests on (same-seed
//! byte-identical streams, monotone timestamps, mean-rate convergence
//! within the documented bound, and invariance under processor count).

use ncp2_svc::{node_of, Arrival, ArrivalStream, REORDER_WINDOW};
use proptest::prelude::*;

proptest! {
    /// Two iterations of the same stream value are byte-identical.
    #[test]
    fn same_seed_streams_are_identical(
        seed in any::<u64>(),
        mean_gap in 1u64..10_000,
        count in 0u64..2_000
    ) {
        let s = ArrivalStream::new(seed, mean_gap, count);
        let a: Vec<Arrival> = s.iter().collect();
        let b: Vec<Arrival> = s.iter().collect();
        prop_assert_eq!(a, b);
    }

    /// Arrival timestamps never decrease, whatever the parameters.
    #[test]
    fn timestamps_are_monotone_non_decreasing(
        seed in any::<u64>(),
        mean_gap in 1u64..100_000,
        count in 1u64..2_000
    ) {
        let mut last = 0u64;
        for a in ArrivalStream::new(seed, mean_gap, count).iter() {
            prop_assert!(a.at >= last, "clock regressed at seq {}", a.seq);
            last = a.at;
        }
    }

    /// Sequence numbers are a permutation of 0..count that strays less
    /// than one reorder window from sorted order.
    #[test]
    fn seqs_are_bounded_reorder_permutation(
        seed in any::<u64>(),
        mean_gap in 1u64..1_000,
        count in 1u64..1_000
    ) {
        let seqs: Vec<u64> = ArrivalStream::new(seed, mean_gap, count)
            .iter()
            .map(|a| a.seq)
            .collect();
        let mut sorted = seqs.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..count).collect::<Vec<_>>());
        for (slot, &seq) in seqs.iter().enumerate() {
            let stray = (seq as i64 - slot as i64).unsigned_abs() as usize;
            prop_assert!(stray < REORDER_WINDOW, "seq {seq} strayed {stray} slots");
        }
    }

    /// The empirical mean gap converges to the configured mean within the
    /// documented 2% bound (at 1e5 draws; smaller streams get a looser
    /// noise allowance of σ/√n ≈ 1/√n relative error, times 4 for safety).
    #[test]
    fn mean_rate_converges_within_bound(
        seed in any::<u64>(),
        mean_gap in 100u64..10_000
    ) {
        let count = 20_000u64;
        let last = ArrivalStream::new(seed, mean_gap, count)
            .iter()
            .last()
            .unwrap();
        let empirical = last.at / count;
        // 4σ noise at n = 2e4 is ~2.8%; allow 4%.
        let lo = mean_gap * 96 / 100;
        let hi = mean_gap * 104 / 100;
        prop_assert!(
            (lo..=hi).contains(&empirical),
            "mean gap {empirical} outside [{lo}, {hi}]"
        );
    }

    /// Node assignment partitions the identical global stream at every
    /// processor count: the stream value never depends on nprocs.
    #[test]
    fn stream_is_invariant_under_processor_count(
        seed in any::<u64>(),
        mean_gap in 1u64..1_000,
        count in 1u64..500,
        nprocs in 1usize..16
    ) {
        let s = ArrivalStream::new(seed, mean_gap, count);
        let global: Vec<Arrival> = s.iter().collect();
        // Each request is served by exactly one node, and that node sees
        // exactly the global stream restricted to its assignment.
        let mut covered = vec![false; count as usize];
        for pid in 0..nprocs {
            for a in s.iter().filter(|a| node_of(a.seq, nprocs) == pid) {
                prop_assert!(!covered[a.seq as usize], "seq {} served twice", a.seq);
                covered[a.seq as usize] = true;
                prop_assert_eq!(global[global.iter().position(|g| g.seq == a.seq).unwrap()], a);
            }
        }
        prop_assert!(covered.iter().all(|&c| c), "some request unserved");
    }
}
