//! # ncp2-svc — the open-loop service plane of the NCP2 DSM study
//!
//! The paper evaluates latency hiding (`I`/`D`/`P`) on closed-loop
//! SPLASH-style kernels: every processor is always either computing or
//! blocked on the DSM, so "time" is service time. A *service* is different:
//! requests keep arriving whether or not the system keeps up, so queueing
//! delay exists and the interesting observable is the **response time**
//! (completion − arrival), not the service time. This crate supplies the
//! deterministic open-loop machinery that turns the simulated DSM cluster
//! into such a service:
//!
//! * [`ArrivalStream`] — a seeded, rate-parameterized, bounded-reorder
//!   pseudo-Poisson arrival process in **simulated cycles**. Like
//!   `ncp2_fault::FaultPlan` it is reproducible by construction: the stream
//!   is a pure function of `(seed, mean_gap, count)` and is byte-identical
//!   at any processor count.
//! * [`Keyspace`] — a Zipf hot-key skew model over integer key ranks,
//!   sampled with integer-only fixed-point arithmetic (no `libm`, so the
//!   weights are identical on every host).
//! * [`ReqMix`] / [`node_of`] — pure-function request classification
//!   (get / put / session) and request→node assignment, both keyed off the
//!   request sequence number alone so the multiset of DSM updates is
//!   independent of processor count and service order.
//!
//! The `SvcWorkload` in `ncp2-apps` drives a simulated node per processor:
//! it replays this stream, serves each request against shared DSM pages and
//! reports per-request response times back to the simulation via
//! `ProcOp::Svc` lifecycle markers.

pub mod arrival;
pub mod keyspace;

pub use arrival::{node_of, Arrival, ArrivalStream, Arrivals, REORDER_WINDOW};
pub use keyspace::{Keyspace, ReqMix};
