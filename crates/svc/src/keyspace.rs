//! Zipf-skewed keyspace model and pure-function request classification.
//!
//! Services do not touch keys uniformly: a few catalog entries are hot, the
//! long tail is cold. [`Keyspace`] models this with Zipf weights
//! `w(rank) = rank^(−s)` computed entirely in integer fixed point (a
//! linear-mantissa `log2` and a linear-mantissa `exp2`, each within ~6% —
//! plenty for a skew model, and bit-identical on every host, unlike `powf`).
//!
//! [`ReqMix`] classifies each request (get / put / session) as a pure
//! function of its global sequence number, so the multiset of DSM updates a
//! stream performs is independent of processor count and of the order in
//! which nodes happen to serve requests.

use ncp2_sim::{SimRng, SvcClass};

/// `log2(x)` in 16.16 fixed point, linear-mantissa approximation.
fn log2_fp(x: u64) -> u64 {
    debug_assert!(x > 0);
    let m = 63 - x.leading_zeros() as u64;
    let f_fp = if m >= 16 {
        (x - (1 << m)) >> (m - 16)
    } else {
        (x - (1 << m)) << (16 - m)
    };
    (m << 16) + f_fp
}

/// Zipf weight of `rank` (1-based) with exponent `skew_x100 / 100`,
/// as an integer scaled so `rank 1` weighs `2^40`.
fn zipf_weight(rank: u64, skew_x100: u32) -> u64 {
    // e = s · log2(rank) in 16.16 fixed point.
    let e = log2_fp(rank) * skew_x100 as u64 / 100;
    let k = e >> 16;
    let frac = e & 0xFFFF;
    // 2^e ≈ (1 + frac) · 2^k in 16.16 fixed point (linear mantissa).
    let denom = ((1u64 << 16) + frac) << k;
    (1u64 << 56) / denom
}

/// A Zipf-skewed keyspace of `keys` integer keys (ranks `0..keys`, rank 0
/// hottest).
///
/// Construction allocates the cumulative weight table once; sampling is a
/// branch-free binary search with zero allocation.
///
/// ```
/// use ncp2_sim::SimRng;
/// use ncp2_svc::Keyspace;
/// let ks = Keyspace::new(1000, 90); // s = 0.9
/// let mut rng = SimRng::new(1);
/// let k = ks.sample(&mut rng);
/// assert!(k < 1000);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Keyspace {
    cum: Vec<u64>,
}

impl Keyspace {
    /// Builds a keyspace of `keys` keys with Zipf exponent
    /// `skew_x100 / 100` (0 = uniform, 100 = classic Zipf).
    ///
    /// # Panics
    ///
    /// Panics if `keys` is zero.
    pub fn new(keys: usize, skew_x100: u32) -> Self {
        assert!(keys > 0, "keyspace must be non-empty");
        let mut cum = Vec::with_capacity(keys);
        let mut total = 0u64;
        for rank in 1..=keys as u64 {
            total += zipf_weight(rank, skew_x100);
            cum.push(total);
        }
        Keyspace { cum }
    }

    /// Number of keys.
    pub fn keys(&self) -> usize {
        self.cum.len()
    }

    /// Draws one key (`0..keys()`, 0 hottest). Deterministic given the RNG
    /// state; allocation-free.
    pub fn sample(&self, rng: &mut SimRng) -> usize {
        let total = *self.cum.last().expect("non-empty by construction");
        let r = rng.next_below(total);
        self.cum.partition_point(|&c| c <= r)
    }
}

/// Request-class mix in permille of the stream.
///
/// Classification is a pure function of `(seed, seq)` — see
/// [`ReqMix::class_of`] — so any node serving request `seq` performs the
/// same class of work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReqMix {
    /// Put (key-value update) share, permille.
    pub put_permille: u32,
    /// Session (migratory lock-pinned mutation) share, permille.
    pub session_permille: u32,
}

impl ReqMix {
    /// The class of request `seq` under stream seed `seed`.
    ///
    /// # Panics
    ///
    /// Panics if the mix shares exceed 1000 permille.
    pub fn class_of(&self, seed: u64, seq: u64) -> SvcClass {
        assert!(
            self.put_permille + self.session_permille <= 1000,
            "request mix exceeds 1000 permille"
        );
        let mut rng = SimRng::new(seed ^ seq.wrapping_mul(0xD6E8_FEB8_6659_FD93)); // overflow: hash mixing
        let roll = rng.next_below(1000) as u32;
        if roll < self.session_permille {
            SvcClass::Session
        } else if roll < self.session_permille + self.put_permille {
            SvcClass::Put
        } else {
            SvcClass::Get
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_rank_one_is_hottest() {
        assert_eq!(zipf_weight(1, 100), 1 << 40);
        assert!(zipf_weight(1, 100) > zipf_weight(2, 100));
        assert!(zipf_weight(2, 100) > zipf_weight(10, 100));
        // s = 1: w(2) should be about half of w(1).
        let ratio = zipf_weight(1, 100) / zipf_weight(2, 100);
        assert_eq!(ratio, 2);
    }

    #[test]
    fn zero_skew_is_uniform() {
        for rank in [1u64, 2, 17, 1000] {
            assert_eq!(zipf_weight(rank, 0), 1 << 40);
        }
    }

    #[test]
    fn sampling_is_deterministic_and_skewed() {
        let ks = Keyspace::new(100, 100);
        let mut a = SimRng::new(9);
        let mut b = SimRng::new(9);
        let xs: Vec<usize> = (0..1000).map(|_| ks.sample(&mut a)).collect();
        let ys: Vec<usize> = (0..1000).map(|_| ks.sample(&mut b)).collect();
        assert_eq!(xs, ys);
        // Key 0 should dominate any single cold key by a wide margin.
        let hot = xs.iter().filter(|&&k| k == 0).count();
        let cold = xs.iter().filter(|&&k| k == 99).count();
        assert!(hot > 10 * cold.max(1), "hot {hot} vs cold {cold}");
        assert!(xs.iter().all(|&k| k < 100));
    }

    #[test]
    fn class_mix_roughly_matches_permille() {
        let mix = ReqMix {
            put_permille: 200,
            session_permille: 100,
        };
        let mut counts = [0u64; 3];
        for seq in 0..10_000 {
            match mix.class_of(1234, seq) {
                SvcClass::Get => counts[0] += 1,
                SvcClass::Put => counts[1] += 1,
                SvcClass::Session => counts[2] += 1,
            }
        }
        assert!((6500..=7500).contains(&counts[0]), "gets {}", counts[0]);
        assert!((1700..=2300).contains(&counts[1]), "puts {}", counts[1]);
        assert!((800..=1200).contains(&counts[2]), "sessions {}", counts[2]);
        // Pure function: same (seed, seq) always classifies the same.
        assert_eq!(mix.class_of(7, 42), mix.class_of(7, 42));
    }
}
