//! Seeded open-loop arrival stream in simulated cycles.
//!
//! The generator produces `count` arrivals whose inter-arrival gaps are
//! pseudo-exponential with mean `mean_gap` cycles — an open-loop Poisson
//! stand-in — using integer-only fixed-point arithmetic so the stream is
//! bit-identical on every host. Arrival *times* are monotone non-decreasing
//! by construction (a cumulative sum of non-negative gaps); request
//! *identities* are shuffled within fixed windows of [`REORDER_WINDOW`]
//! consecutive slots, modelling bounded front-door reordering without ever
//! bending the clock backwards.
//!
//! The stream never sees the processor count: [`node_of`] assigns each
//! request to a serving node as a pure function of its sequence number, so
//! simulating 4 or 16 nodes filters the *same* global stream.

use ncp2_sim::{Cycles, SimRng};

/// Number of consecutive arrival slots whose request identities may be
/// reordered among each other (the bounded-reorder window).
pub const REORDER_WINDOW: usize = 16;

/// Gap scale in 16.16 fixed point: `2^16 / 1.5`. The pseudo-exponential
/// draw below has mean `1.5` in units of `log2` (the exact `1/ln 2 ≈ 1.4427`
/// of `−log2 U` plus the `+0.0573` bias of the linear-mantissa
/// approximation), so dividing by `1.5` makes the mean gap equal `mean_gap`
/// to within ~1e-5.
const GAP_SCALE_FP: u64 = 43_691;

/// One request arrival: the `seq`-th request of the global stream arrives
/// at simulated cycle `at`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Arrival {
    /// Global request sequence number (a permutation of `0..count` that
    /// only deviates from sorted order within [`REORDER_WINDOW`]).
    pub seq: u64,
    /// Arrival time in simulated cycles (monotone non-decreasing).
    pub at: Cycles,
}

/// A seeded, rate-parameterized open-loop arrival stream.
///
/// A pure value: iterating it (via [`ArrivalStream::iter`]) always yields
/// the same sequence of [`Arrival`]s for the same `(seed, mean_gap, count)`,
/// regardless of host, thread count or how many simulated processors will
/// eventually serve the requests.
///
/// ```
/// use ncp2_svc::ArrivalStream;
/// let s = ArrivalStream::new(42, 500, 100);
/// let a: Vec<_> = s.iter().collect();
/// let b: Vec<_> = s.iter().collect();
/// assert_eq!(a, b);
/// assert!(a.windows(2).all(|w| w[0].at <= w[1].at));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArrivalStream {
    seed: u64,
    mean_gap: Cycles,
    count: u64,
}

impl ArrivalStream {
    /// Builds a stream of `count` arrivals with mean inter-arrival gap
    /// `mean_gap` simulated cycles.
    ///
    /// # Panics
    ///
    /// Panics if `mean_gap` is zero (an infinite arrival rate).
    pub fn new(seed: u64, mean_gap: Cycles, count: u64) -> Self {
        assert!(mean_gap > 0, "mean_gap must be positive");
        ArrivalStream {
            seed,
            mean_gap,
            count,
        }
    }

    /// Number of arrivals in the stream.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean inter-arrival gap in simulated cycles.
    pub fn mean_gap(&self) -> Cycles {
        self.mean_gap
    }

    /// An iterator over the arrivals. Allocation-free: the iterator holds a
    /// fixed-size reorder buffer and a [`SimRng`], nothing heap-allocated.
    pub fn iter(&self) -> Arrivals {
        Arrivals {
            rng: SimRng::new(self.seed),
            clock: 0,
            mean_gap: self.mean_gap,
            remaining: self.count,
            window: [0; REORDER_WINDOW],
            win_len: 0,
            win_pos: 0,
            next_seq: 0,
        }
    }
}

/// Iterator state for [`ArrivalStream::iter`]. No heap allocation.
#[derive(Debug, Clone)]
pub struct Arrivals {
    rng: SimRng,
    clock: Cycles,
    mean_gap: Cycles,
    remaining: u64,
    window: [u64; REORDER_WINDOW],
    win_len: usize,
    win_pos: usize,
    next_seq: u64,
}

impl Iterator for Arrivals {
    type Item = Arrival;

    fn next(&mut self) -> Option<Arrival> {
        if self.remaining == 0 {
            return None;
        }
        if self.win_pos == self.win_len {
            // Refill the bounded-reorder window: take the next (up to)
            // REORDER_WINDOW sequence numbers in order, then shuffle their
            // identities. Timestamps stay sorted; identities wander at most
            // REORDER_WINDOW − 1 slots.
            let n = REORDER_WINDOW.min(self.remaining as usize);
            for (i, slot) in self.window[..n].iter_mut().enumerate() {
                *slot = self.next_seq + i as u64;
            }
            self.rng.shuffle(&mut self.window[..n]);
            self.next_seq += n as u64;
            self.win_len = n;
            self.win_pos = 0;
        }
        let seq = self.window[self.win_pos];
        self.win_pos += 1;
        self.remaining -= 1;
        let gap: Cycles = exp_gap(&mut self.rng, self.mean_gap);
        // clock: cumulative sum of simulated-cycle gaps — both sides are
        // `Cycles` by declaration; no host time exists in this crate.
        self.clock += gap;
        Some(Arrival {
            seq,
            at: self.clock,
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.remaining as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for Arrivals {}

/// One pseudo-exponential gap draw with mean `mean_gap` cycles.
///
/// Integer-only: for a uniform 64-bit `u`, `−log2(u / 2^64)` is
/// approximated in 16.16 fixed point as `(64 − msb) − mantissa`, i.e. the
/// exact octave term plus a piecewise-linear mantissa (max error ~0.086 in
/// log2 units, mean bias folded into [`GAP_SCALE_FP`]). The result is an
/// exponential-shaped distribution over simulated cycles whose empirical
/// mean converges to `mean_gap` within well under 2% over 10⁵ draws (see
/// `mean_rate_converges`).
fn exp_gap(rng: &mut SimRng, mean_gap: Cycles) -> Cycles {
    let u = rng.next_u64().max(1);
    let m = 63 - u.leading_zeros() as u64;
    // 16.16 fixed-point mantissa fraction f = (u − 2^m) / 2^m in [0, 1).
    let f_fp = if m >= 16 {
        (u - (1 << m)) >> (m - 16)
    } else {
        (u - (1 << m)) << (16 - m)
    };
    // ≈ −log2(u / 2^64) in 16.16 fixed point; in (0, 64].
    let neglog_fp = ((64 - m) << 16) - f_fp;
    // gap: Cycles = mean_gap × neglog × GAP_SCALE, dropping both 16-bit
    // fixed-point scales. Fits u128 trivially (mean_gap ≤ 2^40 in any
    // sane config, neglog ≤ 2^22, scale < 2^16).
    ((mean_gap as u128 * neglog_fp as u128 * GAP_SCALE_FP as u128) >> 32) as Cycles
}

/// The node that serves request `seq` on an `nprocs`-node cluster.
///
/// A pure splitmix-style hash of the sequence number, so consecutive
/// requests scatter across nodes (hot keys contend, sessions migrate) and
/// the assignment at `nprocs = 4` or `16` partitions the *same* global
/// stream.
///
/// # Panics
///
/// Panics if `nprocs` is zero.
pub fn node_of(seq: u64, nprocs: usize) -> usize {
    assert!(nprocs > 0, "nprocs must be positive");
    let mut z = seq.wrapping_add(0x9E37_79B9_7F4A_7C15); // overflow: splitmix mixing
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9); // overflow: splitmix mixing
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB); // overflow: splitmix mixing
    ((z ^ (z >> 31)) % nprocs as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let s = ArrivalStream::new(7, 200, 1000);
        let a: Vec<Arrival> = s.iter().collect();
        let b: Vec<Arrival> = s.iter().collect();
        assert_eq!(a, b);
        assert_eq!(a.len(), 1000);
    }

    #[test]
    fn different_seed_different_stream() {
        let a: Vec<Arrival> = ArrivalStream::new(1, 200, 64).iter().collect();
        let b: Vec<Arrival> = ArrivalStream::new(2, 200, 64).iter().collect();
        assert_ne!(a, b);
    }

    #[test]
    fn timestamps_are_monotone() {
        let mut last = 0;
        for a in ArrivalStream::new(3, 50, 5000).iter() {
            assert!(a.at >= last, "clock went backwards at seq {}", a.seq);
            last = a.at;
        }
    }

    #[test]
    fn seqs_are_a_bounded_reorder_permutation() {
        let n = 1000u64;
        let arrivals: Vec<Arrival> = ArrivalStream::new(9, 100, n).iter().collect();
        let seen: Vec<u64> = arrivals.iter().map(|a| a.seq).collect();
        // Every seq appears exactly once...
        let mut sorted = seen.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..n).collect::<Vec<_>>());
        // ...and never strays more than a window from its slot.
        let strayed = seen
            .iter()
            .enumerate()
            .any(|(i, &s)| (s as i64 - i as i64).unsigned_abs() as usize >= REORDER_WINDOW);
        assert!(!strayed, "a seq strayed a full window or more");
        // The shuffle actually does something.
        assert_ne!(seen, (0..n).collect::<Vec<_>>(), "stream is never shuffled");
    }

    #[test]
    fn mean_rate_converges() {
        // Documented bound: over 1e5 draws the empirical mean gap is within
        // 2% of the configured mean (the fixed-point estimator's bias is
        // ~1e-5; the slack is sampling noise, σ/√n ≈ 0.3%).
        let mean = 1000u64;
        let n = 100_000u64;
        let last = ArrivalStream::new(11, mean, n).iter().last().unwrap();
        let empirical = last.at / n;
        let lo = mean * 98 / 100;
        let hi = mean * 102 / 100;
        assert!(
            (lo..=hi).contains(&empirical),
            "empirical mean gap {empirical} outside [{lo}, {hi}]"
        );
    }

    #[test]
    fn stream_is_invariant_under_processor_count() {
        // The stream itself never sees nprocs; check that per-node
        // filtering at different processor counts partitions one identical
        // global stream.
        let s = ArrivalStream::new(5, 300, 2000);
        let global: Vec<Arrival> = s.iter().collect();
        for nprocs in [1usize, 2, 4, 8, 16] {
            let mut union: Vec<Arrival> = Vec::new();
            for pid in 0..nprocs {
                union.extend(s.iter().filter(|a| node_of(a.seq, nprocs) == pid));
            }
            union.sort_by_key(|a| (a.at, a.seq));
            let mut expect = global.clone();
            expect.sort_by_key(|a| (a.at, a.seq));
            assert_eq!(union, expect, "partition mismatch at nprocs {nprocs}");
        }
    }

    #[test]
    fn node_assignment_spreads() {
        let nprocs = 8;
        let mut counts = vec![0u64; nprocs];
        for seq in 0..8000 {
            counts[node_of(seq, nprocs)] += 1;
        }
        for (pid, &c) in counts.iter().enumerate() {
            assert!(
                (700..=1300).contains(&c),
                "node {pid} got {c} of 8000 requests"
            );
        }
    }

    #[test]
    fn exact_size_iterator() {
        let s = ArrivalStream::new(1, 100, 37);
        let mut it = s.iter();
        assert_eq!(it.len(), 37);
        it.next();
        assert_eq!(it.len(), 36);
        assert_eq!(it.count(), 36);
    }
}
