//! Workspace automation: the `lint` static gate and the `bench-diff`
//! performance-regression gate.
//!
//! # `cargo xtask lint`
//!
//! Protocol bugs in a DSM reproduction rarely fail a test: a lost diff or a
//! truncated cycle counter just bends the curves. This gate therefore runs
//! even when tests are output-identical, enforcing seven rules on the
//! protocol hot paths plus the workspace-wide `cargo fmt --check` and
//! `cargo clippy -- -D warnings`:
//!
//! 1. **No undocumented panic paths.** `.unwrap()`, `todo!` and
//!    `unimplemented!` are forbidden in hot-path files; `.expect(...)` and
//!    `panic!(...)` must carry an `// invariant:` justification (on the same
//!    or a directly preceding line) or an explicit `lint:allow` marker.
//! 2. **No unchecked indexing in the data plane.** Direct slice indexing of
//!    the page/bit-vector buffers (`self.data[...]`, `self.bits[...]`) in
//!    `diff.rs`, `bitvec.rs` and `page.rs` needs the same `invariant:`
//!    annotation naming the guarding check.
//! 3. **No truncating casts on cycle counters.** A line mentioning cycles
//!    must not cast with `as u8/u16/u32/i8/i16/i32` — silent wraparound in
//!    the timing plane is exactly the class of bug tests cannot see.
//! 4. **No wall-clock time in simulated-time crates.** `std::time` sources
//!    (`Instant`, `SystemTime`) are forbidden in `crates/core`, `crates/sim`
//!    and `crates/obs` — every timestamp there must be simulated cycles, or
//!    determinism (and the byte-identical observability exports) dies.
//! 5. **No engine bypass in the bench binaries.** Direct simulation entry
//!    points (`run_app(`, `run_app_with(`, `sequential_baseline(`,
//!    `Simulation::new(`) are forbidden in `crates/bench/src/bin/` — every
//!    experiment must go through the `Grid`/`Engine` scheduler, or it loses
//!    parallelism, caching and the deterministic result ordering. Escape
//!    hatch: a `lint:allow` marker on the line.
//! 6. **No unanchored dependency edges.** Every `obs_edge(` emission site
//!    in the protocol files must pass a span anchor obtained from
//!    `obs_last_span(` within the same call — the execution-graph builder
//!    rejects edges dangling off activity the span log never recorded, so
//!    an unanchored edge is a guaranteed graph-validation failure.
//! 7. **No unbounded retry loops.** Every retransmission/backoff site in
//!    `crates/core/src` and `crates/net/src` — a `retransmit_timeout`
//!    shifted for exponential backoff, or an `attempt` counter being
//!    advanced — must reference a compile-time `MAX_`-prefixed cap constant
//!    within a few surrounding lines (e.g. `MAX_BACKOFF_EXP`,
//!    `MAX_RETX_ATTEMPTS`). An uncapped retry loop under a fault plan that
//!    keeps dropping frames is a livelock, and under a shifted timeout it
//!    is a cycle-counter overflow; both are invisible to fault-free tests.
//!
//! Test modules (`#[cfg(test)]` onward) are exempt.
//!
//! # `cargo xtask bench-diff old.json new.json`
//!
//! Compares two bench files produced by `obs_report --bench` and fails when
//! any run's total cycles, breakdown category or latency percentile grew
//! past the threshold (default 5%, with a 100-cycle absolute floor). With
//! `--update`, a passing (or missing) baseline is rewritten with the new
//! numbers, which is how `BENCH_tier1.json` tracks the trajectory.

use std::path::{Path, PathBuf};
use std::process::{Command, ExitCode};

/// Protocol hot paths: message handlers and synchronization machinery.
const HANDLER_FILES: &[&str] = &[
    "crates/core/src/system.rs",
    "crates/core/src/treadmarks.rs",
    "crates/core/src/aurc.rs",
    "crates/core/src/sync.rs",
    "crates/net/src/lib.rs",
    "crates/net/src/router.rs",
    "crates/net/src/topology.rs",
];

/// Data-plane files where unchecked indexing is additionally policed.
const INDEX_FILES: &[&str] = &[
    "crates/core/src/diff.rs",
    "crates/core/src/bitvec.rs",
    "crates/core/src/page.rs",
];

/// Crates whose sources are scanned for truncating cycle casts.
const CYCLE_CAST_DIRS: &[&str] = &[
    "crates/core/src",
    "crates/sim/src",
    "crates/net/src",
    "crates/mem/src",
    "crates/stats/src",
    "crates/obs/src",
];

const TRUNCATING_CASTS: &[&str] = &[
    " as u8", " as u16", " as u32", " as i8", " as i16", " as i32",
];

/// Crates that must never read wall-clock time: the simulation and
/// everything that post-processes its (deterministic) output.
const SIMULATED_TIME_DIRS: &[&str] = &["crates/core/src", "crates/sim/src", "crates/obs/src"];

/// Wall-clock sources forbidden in [`SIMULATED_TIME_DIRS`].
const WALL_CLOCK_PATTERNS: &[&str] = &[
    "std::time::Instant",
    "std::time::SystemTime",
    "Instant::now(",
    "SystemTime::now(",
];

/// Directory whose binaries must route every simulation through the
/// experiment engine.
const ENGINE_ONLY_DIR: &str = "crates/bench/src/bin";

/// Direct simulation entry points forbidden in [`ENGINE_ONLY_DIR`].
const ENGINE_BYPASS_PATTERNS: &[&str] = &[
    "run_app(",
    "run_app_with(",
    "sequential_baseline(",
    "Simulation::new(",
];

/// Files whose `obs_edge(` emission sites must anchor to a recorded span.
const EDGE_EMISSION_FILES: &[&str] = &[
    "crates/core/src/system.rs",
    "crates/core/src/sync.rs",
    "crates/core/src/treadmarks.rs",
    "crates/core/src/aurc.rs",
];

/// How many lines an `obs_edge(` call may span while the scanner looks for
/// its `obs_last_span(` anchor argument.
const EDGE_CALL_WINDOW: usize = 12;

/// Directories scanned for uncapped retry/backoff sites (rule 7).
const RETRY_DIRS: &[&str] = &["crates/core/src", "crates/net/src"];

/// How far (in lines, both directions) a retry/backoff site may be from the
/// `MAX_`-prefixed cap constant that bounds it.
const RETRY_CAP_WINDOW: usize = 12;

struct Finding {
    file: PathBuf,
    line: usize,
    rule: &'static str,
    text: String,
}

const USAGE: &str = "usage: cargo xtask lint [--scan-only]\n\
     \x20      cargo xtask bench-diff OLD.json NEW.json [--threshold PCT] [--update]";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, flags) = match args.split_first() {
        Some((c, rest)) => (c.as_str(), rest),
        None => {
            eprintln!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    match cmd {
        "lint" => {}
        "bench-diff" => return bench_diff(flags),
        _ => {
            eprintln!("unknown xtask `{cmd}`; available: lint, bench-diff\n{USAGE}");
            return ExitCode::FAILURE;
        }
    }
    let scan_only = flags.iter().any(|f| f == "--scan-only");

    let root = workspace_root();
    let mut findings = Vec::new();
    scan_tree(&root, &mut findings);

    if !findings.is_empty() {
        eprintln!("xtask lint: {} finding(s)", findings.len());
        for f in &findings {
            eprintln!(
                "  {}:{}: [{}] {}",
                f.file.display(),
                f.line,
                f.rule,
                f.text.trim()
            );
        }
        return ExitCode::FAILURE;
    }
    println!("xtask lint: static scan clean");

    if scan_only {
        return ExitCode::SUCCESS;
    }
    for (what, cmdline) in [
        ("cargo fmt --check", &["fmt", "--all", "--", "--check"][..]),
        (
            "cargo clippy -D warnings",
            &[
                "clippy",
                "--workspace",
                "--all-targets",
                "--",
                "-D",
                "warnings",
            ][..],
        ),
    ] {
        let status = Command::new(env!("CARGO"))
            .args(cmdline)
            .current_dir(&root)
            .status();
        match status {
            Ok(s) if s.success() => println!("xtask lint: {what} clean"),
            Ok(_) => {
                eprintln!("xtask lint: {what} failed");
                return ExitCode::FAILURE;
            }
            Err(e) => {
                eprintln!("xtask lint: could not run {what}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

/// The `bench-diff` subcommand: compare two bench files, flag regressions,
/// optionally update the baseline.
fn bench_diff(flags: &[String]) -> ExitCode {
    let mut paths: Vec<&String> = Vec::new();
    let mut threshold = 5.0f64;
    let mut update = false;
    let mut it = flags.iter();
    while let Some(f) = it.next() {
        match f.as_str() {
            "--threshold" => match it.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(t) => threshold = t,
                None => {
                    eprintln!("--threshold needs a numeric percentage\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--update" => update = true,
            _ => paths.push(f),
        }
    }
    let [old_path, new_path] = paths.as_slice() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };

    let new_text = match std::fs::read_to_string(new_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("bench-diff: cannot read {new_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let new_runs = match ncp2_obs::parse_bench(&new_text) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("bench-diff: {new_path} is not a bench file: {e}");
            return ExitCode::FAILURE;
        }
    };

    let old_text = match std::fs::read_to_string(old_path) {
        Ok(t) => t,
        Err(_) if update => {
            // No baseline yet: seed it from the new numbers.
            if let Err(e) = std::fs::write(old_path, &new_text) {
                eprintln!("bench-diff: cannot seed baseline {old_path}: {e}");
                return ExitCode::FAILURE;
            }
            println!("bench-diff: no baseline at {old_path}; seeded from {new_path}");
            return ExitCode::SUCCESS;
        }
        Err(e) => {
            eprintln!("bench-diff: cannot read baseline {old_path}: {e} (pass --update to seed)");
            return ExitCode::FAILURE;
        }
    };
    let old_runs = match ncp2_obs::parse_bench(&old_text) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("bench-diff: {old_path} is not a bench file: {e}");
            return ExitCode::FAILURE;
        }
    };

    let (removed, added) = ncp2_obs::diff::membership_changes(&old_runs, &new_runs);
    for r in &removed {
        println!("bench-diff: run '{r}' disappeared from the suite");
    }
    for a in &added {
        println!("bench-diff: new run '{a}'");
    }

    let regressions = ncp2_obs::compare(&old_runs, &new_runs, threshold);
    if !regressions.is_empty() {
        eprintln!(
            "bench-diff: {} regression(s) beyond {threshold}%:",
            regressions.len()
        );
        for r in &regressions {
            eprintln!("  {r}");
        }
        return ExitCode::FAILURE;
    }
    println!(
        "bench-diff: {} run(s) within {threshold}% of baseline",
        new_runs.len()
    );
    if update {
        if let Err(e) = std::fs::write(old_path, &new_text) {
            eprintln!("bench-diff: cannot update baseline {old_path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("bench-diff: baseline {old_path} updated");
    }
    ExitCode::SUCCESS
}

/// Walks up from the xtask manifest to the workspace root.
fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .ancestors()
        .find(|p| p.join("Cargo.toml").is_file() && p.join("crates").is_dir())
        .unwrap_or(&manifest)
        .to_path_buf()
}

fn scan_tree(root: &Path, findings: &mut Vec<Finding>) {
    for rel in HANDLER_FILES {
        scan_file(root, rel, false, findings);
    }
    for rel in INDEX_FILES {
        scan_file(root, rel, true, findings);
    }
    for dir in CYCLE_CAST_DIRS {
        let Ok(entries) = std::fs::read_dir(root.join(dir)) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.extension().is_some_and(|e| e == "rs") {
                scan_cycle_casts(root, &path, findings);
            }
        }
    }
    for dir in SIMULATED_TIME_DIRS {
        let Ok(entries) = std::fs::read_dir(root.join(dir)) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.extension().is_some_and(|e| e == "rs") {
                scan_wall_clock(root, &path, findings);
            }
        }
    }
    if let Ok(entries) = std::fs::read_dir(root.join(ENGINE_ONLY_DIR)) {
        for entry in entries.flatten() {
            let path = entry.path();
            if path.extension().is_some_and(|e| e == "rs") {
                scan_engine_bypass(root, &path, findings);
            }
        }
    }
    for rel in EDGE_EMISSION_FILES {
        scan_edge_anchors(root, rel, findings);
    }
    for dir in RETRY_DIRS {
        let Ok(entries) = std::fs::read_dir(root.join(dir)) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.extension().is_some_and(|e| e == "rs") {
                scan_unbounded_retry(root, &path, findings);
            }
        }
    }
}

/// Rule 7: every retry/backoff site must sit next to a `MAX_` cap constant.
fn scan_unbounded_retry(root: &Path, path: &Path, findings: &mut Vec<Finding>) {
    let Some(src) = non_test_source(path) else {
        return;
    };
    let lines: Vec<&str> = src.lines().collect();
    for (i, line) in lines.iter().enumerate() {
        let code = strip_comment(line);
        let backoff_shift = code.contains("retransmit_timeout") && code.contains("<<");
        let attempt_advance = code.contains("attempt += 1") || code.contains("attempt + 1");
        if !(backoff_shift || attempt_advance) {
            continue;
        }
        if line.contains("lint:allow") {
            continue;
        }
        let lo = i.saturating_sub(RETRY_CAP_WINDOW);
        let hi = (i + RETRY_CAP_WINDOW + 1).min(lines.len());
        let capped = lines[lo..hi]
            .iter()
            .any(|l| strip_comment(l).contains("MAX_"));
        if !capped {
            let rel = path.strip_prefix(root).unwrap_or(path);
            findings.push(Finding {
                file: rel.to_path_buf(),
                line: i + 1,
                rule: "unbounded-retry",
                text: format!(
                    "retry/backoff site without a `MAX_` cap constant within \
                     {RETRY_CAP_WINDOW} lines: {}",
                    line.trim()
                ),
            });
        }
    }
}

/// Rule 6: every dependency-edge emission must anchor to a recorded span.
fn scan_edge_anchors(root: &Path, rel: &str, findings: &mut Vec<Finding>) {
    let path = root.join(rel);
    let Some(src) = non_test_source(&path) else {
        return;
    };
    let lines: Vec<&str> = src.lines().collect();
    for (i, line) in lines.iter().enumerate() {
        let code = strip_comment(line);
        // Emission sites only — skip the recorder definitions themselves.
        if !code.contains("obs_edge(") || code.contains("fn obs_edge") {
            continue;
        }
        if line.contains("lint:allow") {
            continue;
        }
        let anchored = lines[i..]
            .iter()
            .take(EDGE_CALL_WINDOW)
            .any(|l| strip_comment(l).contains("obs_last_span("));
        if !anchored {
            findings.push(Finding {
                file: PathBuf::from(rel),
                line: i + 1,
                rule: "unanchored-edge",
                text: format!(
                    "`obs_edge(` without an `obs_last_span(` anchor in the call: {}",
                    line.trim()
                ),
            });
        }
    }
}

/// Rule 5: bench binaries must run every simulation through the engine.
fn scan_engine_bypass(root: &Path, path: &Path, findings: &mut Vec<Finding>) {
    let Some(src) = non_test_source(path) else {
        return;
    };
    for (i, line) in src.lines().enumerate() {
        let code = strip_comment(line);
        if line.contains("lint:allow") {
            continue;
        }
        for pat in ENGINE_BYPASS_PATTERNS {
            if code.contains(pat) {
                let rel = path.strip_prefix(root).unwrap_or(path);
                findings.push(Finding {
                    file: rel.to_path_buf(),
                    line: i + 1,
                    rule: "engine-bypass",
                    text: format!(
                        "direct `{pat}` in a bench binary (use Grid/Engine): {}",
                        line.trim()
                    ),
                });
            }
        }
    }
}

/// Rule 4: wall-clock sources are forbidden in simulated-time crates.
fn scan_wall_clock(root: &Path, path: &Path, findings: &mut Vec<Finding>) {
    let Some(src) = non_test_source(path) else {
        return;
    };
    for (i, line) in src.lines().enumerate() {
        let code = strip_comment(line);
        if line.contains("lint:allow") {
            continue;
        }
        for pat in WALL_CLOCK_PATTERNS {
            if code.contains(pat) {
                let rel = path.strip_prefix(root).unwrap_or(path);
                findings.push(Finding {
                    file: rel.to_path_buf(),
                    line: i + 1,
                    rule: "wall-clock-in-sim",
                    text: format!(
                        "`{pat}` in a simulated-time crate (use cycles): {}",
                        line.trim()
                    ),
                });
            }
        }
    }
}

/// Returns the source of `path` with any trailing `#[cfg(test)]` module cut
/// off (test code may panic freely), or `None` if unreadable.
fn non_test_source(path: &Path) -> Option<String> {
    let src = std::fs::read_to_string(path).ok()?;
    let cut = src.find("#[cfg(test)]").unwrap_or(src.len());
    Some(src[..cut].to_string())
}

/// True when the line (or the annotation block directly above it) justifies
/// a flagged pattern.
fn annotated(lines: &[&str], idx: usize) -> bool {
    let has = |s: &str| s.contains("invariant:") || s.contains("lint:allow");
    if has(lines[idx]) {
        return true;
    }
    // Walk up through a contiguous comment block.
    let mut i = idx;
    while i > 0 {
        i -= 1;
        let t = lines[i].trim_start();
        if t.starts_with("//") {
            if has(t) {
                return true;
            }
        } else {
            break;
        }
    }
    false
}

fn scan_file(root: &Path, rel: &str, index_rules: bool, findings: &mut Vec<Finding>) {
    let path = root.join(rel);
    let Some(src) = non_test_source(&path) else {
        return;
    };
    let lines: Vec<&str> = src.lines().collect();
    for (i, line) in lines.iter().enumerate() {
        let code = strip_comment(line);
        if code.trim().is_empty() {
            continue;
        }
        for pat in [".unwrap()", "todo!(", "unimplemented!("] {
            if code.contains(pat) {
                findings.push(Finding {
                    file: path.clone(),
                    line: i + 1,
                    rule: "forbidden-panic",
                    text: format!("`{pat}` in a protocol hot path: {}", line.trim()),
                });
            }
        }
        for pat in [".expect(", "panic!("] {
            if code.contains(pat) && !annotated(&lines, i) {
                findings.push(Finding {
                    file: path.clone(),
                    line: i + 1,
                    rule: "undocumented-panic",
                    text: format!(
                        "`{pat}` without an `// invariant:` justification: {}",
                        line.trim()
                    ),
                });
            }
        }
        if index_rules {
            for pat in ["self.data[", "self.bits[", ".try_into().expect"] {
                if code.contains(pat) && !annotated(&lines, i) {
                    findings.push(Finding {
                        file: path.clone(),
                        line: i + 1,
                        rule: "unchecked-index",
                        text: format!(
                            "unchecked data-plane indexing `{pat}` needs an \
                             `// invariant:` naming its guard: {}",
                            line.trim()
                        ),
                    });
                }
            }
        }
    }
}

fn scan_cycle_casts(root: &Path, path: &Path, findings: &mut Vec<Finding>) {
    let Some(src) = non_test_source(path) else {
        return;
    };
    for (i, line) in src.lines().enumerate() {
        let code = strip_comment(line);
        if !code.to_ascii_lowercase().contains("cycle") {
            continue;
        }
        if line.contains("lint:allow") {
            continue;
        }
        for pat in TRUNCATING_CASTS {
            if code.contains(pat) {
                let rel = path.strip_prefix(root).unwrap_or(path);
                findings.push(Finding {
                    file: rel.to_path_buf(),
                    line: i + 1,
                    rule: "truncating-cycle-cast",
                    text: format!("`{}` on a cycle quantity: {}", pat.trim(), line.trim()),
                });
            }
        }
    }
}

/// Drops a trailing `//` comment (naive: does not parse string literals, but
/// the scanned patterns never appear inside strings in these files).
fn strip_comment(line: &str) -> &str {
    match line.find("//") {
        Some(pos) => &line[..pos],
        None => line,
    }
}
