//! Workspace automation — a thin driver over the in-tree tooling crates.
//!
//! # `cargo xtask lint`
//!
//! Runs the `ncp2-lint` static analyzer (see `crates/lint` and DESIGN.md
//! §13) over the whole workspace: a token-level lexer feeding a
//! rule-registry engine that enforces the determinism, feature-gate
//! hygiene and protocol-hazard rules, with justified inline suppressions
//! (`// lint: allow(rule-id) -- reason`) and the `LINT_BASELINE.json`
//! suppression-debt ratchet. Zero unsuppressed findings is the gate;
//! growth in suppressed findings fails the build until the baseline is
//! consciously refreshed. Without `--scan-only`, the workspace-wide
//! `cargo fmt --check` and `cargo clippy -- -D warnings` run afterwards.
//!
//! Flags:
//!
//! * `--json` — print the byte-deterministic JSON report to stdout
//!   (exit status still reflects findings and the ratchet);
//! * `--scan-only` — skip fmt/clippy (CI runs them separately);
//! * `--update-baseline` — rewrite `LINT_BASELINE.json` with the current
//!   per-rule suppression counts after a passing scan.
//!
//! # `cargo xtask bench-diff old.json new.json`
//!
//! Compares two bench files produced by `obs_report --bench` and fails when
//! any run's total cycles, breakdown category or latency percentile grew
//! past the threshold (default 5%, with a 100-cycle absolute floor). With
//! `--update`, a passing (or missing) baseline is rewritten with the new
//! numbers, which is how `BENCH_tier1.json` tracks the trajectory.
//!
//! # `cargo xtask wall-diff old.json new.json`
//!
//! The host-side twin of `bench-diff`: compares two wall reports produced
//! by `wall_bench --save-baseline` and fails when any bench's median wall
//! time more than doubled (noisy CI hosts get a generous gate) or its
//! allocation count/bytes grew past 10% (exact counters get a tight one) —
//! thresholds overridable with `--time-threshold` / `--alloc-threshold`.
//! With `--update`, a passing (or missing) baseline is rewritten, which is
//! how `BENCH_WALL.json` tracks the trajectory.

use std::path::PathBuf;
use std::process::{Command, ExitCode};

use ncp2_lint::baseline::Baseline;

const BASELINE_FILE: &str = "LINT_BASELINE.json";

const USAGE: &str = "usage: cargo xtask lint [--scan-only] [--json] [--update-baseline]\n\
     \x20      cargo xtask bench-diff OLD.json NEW.json [--threshold PCT] [--update]\n\
     \x20      cargo xtask wall-diff OLD.json NEW.json [--time-threshold PCT]\n\
     \x20                            [--alloc-threshold PCT] [--update]";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, flags) = match args.split_first() {
        Some((c, rest)) => (c.as_str(), rest),
        None => {
            eprintln!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    match cmd {
        "lint" => lint(flags),
        "bench-diff" => bench_diff(flags),
        "wall-diff" => wall_diff(flags),
        _ => {
            eprintln!("unknown xtask `{cmd}`; available: lint, bench-diff, wall-diff\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

/// The `lint` subcommand: run the analyzer, apply the suppression ratchet,
/// then (unless `--scan-only`) fmt and clippy.
fn lint(flags: &[String]) -> ExitCode {
    let scan_only = flags.iter().any(|f| f == "--scan-only");
    let json = flags.iter().any(|f| f == "--json");
    let update_baseline = flags.iter().any(|f| f == "--update-baseline");

    let root = workspace_root();
    let report = match ncp2_lint::lint_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("xtask lint: cannot scan workspace: {e}");
            return ExitCode::FAILURE;
        }
    };
    if json {
        print!("{}", report.to_json());
    } else {
        print!("{}", report.render_human());
    }
    if !report.findings.is_empty() {
        eprintln!(
            "xtask lint: {} unsuppressed finding(s)",
            report.findings.len()
        );
        return ExitCode::FAILURE;
    }

    // Suppression-debt ratchet against the committed baseline.
    let current = Baseline::from_report(&report);
    let baseline_path = root.join(BASELINE_FILE);
    if update_baseline {
        if let Err(e) = std::fs::write(&baseline_path, current.to_json()) {
            eprintln!("xtask lint: cannot write {BASELINE_FILE}: {e}");
            return ExitCode::FAILURE;
        }
        println!(
            "xtask lint: {BASELINE_FILE} updated ({} suppression(s))",
            current.total()
        );
    } else {
        match std::fs::read_to_string(&baseline_path) {
            Ok(text) => match Baseline::parse(&text) {
                Ok(pinned) => {
                    let regressions = pinned.regressions(&current);
                    if !regressions.is_empty() {
                        for r in &regressions {
                            eprintln!("xtask lint: {r}");
                        }
                        return ExitCode::FAILURE;
                    }
                    if !json {
                        println!(
                            "xtask lint: suppression ratchet ok ({}/{} of baseline)",
                            current.total(),
                            pinned.total()
                        );
                    }
                }
                Err(e) => {
                    eprintln!("xtask lint: cannot parse {BASELINE_FILE}: {e}");
                    return ExitCode::FAILURE;
                }
            },
            Err(_) => {
                eprintln!(
                    "xtask lint: no {BASELINE_FILE}; run `cargo xtask lint --update-baseline` \
                     to pin the suppression ratchet"
                );
            }
        }
    }

    if scan_only {
        return ExitCode::SUCCESS;
    }
    for (what, cmdline) in [
        ("cargo fmt --check", &["fmt", "--all", "--", "--check"][..]),
        (
            "cargo clippy -D warnings",
            &[
                "clippy",
                "--workspace",
                "--all-targets",
                "--",
                "-D",
                "warnings",
            ][..],
        ),
    ] {
        let status = Command::new(env!("CARGO"))
            .args(cmdline)
            .current_dir(&root)
            .status();
        match status {
            Ok(s) if s.success() => println!("xtask lint: {what} clean"),
            Ok(_) => {
                eprintln!("xtask lint: {what} failed");
                return ExitCode::FAILURE;
            }
            Err(e) => {
                eprintln!("xtask lint: could not run {what}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

/// The `bench-diff` subcommand: compare two bench files, flag regressions,
/// optionally update the baseline.
fn bench_diff(flags: &[String]) -> ExitCode {
    let mut paths: Vec<&String> = Vec::new();
    let mut threshold = 5.0f64;
    let mut update = false;
    let mut it = flags.iter();
    while let Some(f) = it.next() {
        match f.as_str() {
            "--threshold" => match it.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(t) => threshold = t,
                None => {
                    eprintln!("--threshold needs a numeric percentage\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--update" => update = true,
            _ => paths.push(f),
        }
    }
    let [old_path, new_path] = paths.as_slice() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };

    let new_text = match std::fs::read_to_string(new_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("bench-diff: cannot read {new_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let new_runs = match ncp2_obs::parse_bench(&new_text) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("bench-diff: {new_path} is not a bench file: {e}");
            return ExitCode::FAILURE;
        }
    };

    let old_text = match std::fs::read_to_string(old_path) {
        Ok(t) => t,
        Err(_) if update => {
            // No baseline yet: seed it from the new numbers.
            if let Err(e) = std::fs::write(old_path, &new_text) {
                eprintln!("bench-diff: cannot seed baseline {old_path}: {e}");
                return ExitCode::FAILURE;
            }
            println!("bench-diff: no baseline at {old_path}; seeded from {new_path}");
            return ExitCode::SUCCESS;
        }
        Err(e) => {
            eprintln!("bench-diff: cannot read baseline {old_path}: {e} (pass --update to seed)");
            return ExitCode::FAILURE;
        }
    };
    let old_runs = match ncp2_obs::parse_bench(&old_text) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("bench-diff: {old_path} is not a bench file: {e}");
            return ExitCode::FAILURE;
        }
    };

    let (removed, added) = ncp2_obs::diff::membership_changes(&old_runs, &new_runs);
    for r in &removed {
        println!("bench-diff: run '{r}' disappeared from the suite");
    }
    for a in &added {
        println!("bench-diff: new run '{a}'");
    }

    let regressions = ncp2_obs::compare(&old_runs, &new_runs, threshold);
    if !regressions.is_empty() {
        eprintln!(
            "bench-diff: {} regression(s) beyond {threshold}%:",
            regressions.len()
        );
        for r in &regressions {
            eprintln!("  {r}");
        }
        return ExitCode::FAILURE;
    }
    println!(
        "bench-diff: {} run(s) within {threshold}% of baseline",
        new_runs.len()
    );
    if update {
        if let Err(e) = std::fs::write(old_path, &new_text) {
            eprintln!("bench-diff: cannot update baseline {old_path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("bench-diff: baseline {old_path} updated");
    }
    ExitCode::SUCCESS
}

/// The `wall-diff` subcommand: compare two wall-bench reports against the
/// asymmetric host-side gates (loose on time, tight on allocation counts),
/// optionally updating the baseline.
fn wall_diff(flags: &[String]) -> ExitCode {
    let mut paths: Vec<&String> = Vec::new();
    let mut cfg = ncp2_prof::walldiff::WallDiffCfg::default();
    let mut update = false;
    let mut it = flags.iter();
    while let Some(f) = it.next() {
        match f.as_str() {
            "--time-threshold" => match it.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(t) => cfg.time_pct = t,
                None => {
                    eprintln!("--time-threshold needs a numeric percentage\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--alloc-threshold" => match it.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(t) => cfg.alloc_pct = t,
                None => {
                    eprintln!("--alloc-threshold needs a numeric percentage\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--update" => update = true,
            _ => paths.push(f),
        }
    }
    let [old_path, new_path] = paths.as_slice() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };

    let new_text = match std::fs::read_to_string(new_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("wall-diff: cannot read {new_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let new_report = match ncp2_prof::walldiff::parse_wall(&new_text) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("wall-diff: {new_path} is not a wall report: {e}");
            return ExitCode::FAILURE;
        }
    };

    let old_text = match std::fs::read_to_string(old_path) {
        Ok(t) => t,
        Err(_) if update => {
            // No baseline yet: seed it from the new numbers.
            if let Err(e) = std::fs::write(old_path, &new_text) {
                eprintln!("wall-diff: cannot seed baseline {old_path}: {e}");
                return ExitCode::FAILURE;
            }
            println!("wall-diff: no baseline at {old_path}; seeded from {new_path}");
            return ExitCode::SUCCESS;
        }
        Err(e) => {
            eprintln!("wall-diff: cannot read baseline {old_path}: {e} (pass --update to seed)");
            return ExitCode::FAILURE;
        }
    };
    let old_report = match ncp2_prof::walldiff::parse_wall(&old_text) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("wall-diff: {old_path} is not a wall report: {e}");
            return ExitCode::FAILURE;
        }
    };

    let (failures, notes) = ncp2_prof::walldiff::compare_wall(&old_report, &new_report, &cfg);
    for n in &notes {
        println!("wall-diff: {n}");
    }
    if !failures.is_empty() {
        eprintln!(
            "wall-diff: {} regression(s) (time gate {:.0}%, alloc gate {:.0}%):",
            failures.len(),
            cfg.time_pct,
            cfg.alloc_pct
        );
        for f in &failures {
            eprintln!("  {f}");
        }
        return ExitCode::FAILURE;
    }
    println!(
        "wall-diff: {} bench(es) within gates (time {:.0}%, alloc {:.0}%)",
        new_report.benches.len(),
        cfg.time_pct,
        cfg.alloc_pct
    );
    if update {
        if let Err(e) = std::fs::write(old_path, &new_text) {
            eprintln!("wall-diff: cannot update baseline {old_path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wall-diff: baseline {old_path} updated");
    }
    ExitCode::SUCCESS
}

/// Walks up from the xtask manifest to the workspace root.
fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .ancestors()
        .find(|p| p.join("Cargo.toml").is_file() && p.join("crates").is_dir())
        .unwrap_or(&manifest)
        .to_path_buf()
}
