//! Workspace automation — a thin driver over the in-tree tooling crates.
//!
//! # `cargo xtask lint`
//!
//! Runs the `ncp2-lint` static analyzer (see `crates/lint` and DESIGN.md
//! §13) over the whole workspace: a token-level lexer feeding a
//! rule-registry engine that enforces the determinism, feature-gate
//! hygiene and protocol-hazard rules, with justified inline suppressions
//! (`// lint: allow(rule-id) -- reason`) and the `LINT_BASELINE.json`
//! suppression-debt ratchet. Zero unsuppressed findings is the gate;
//! growth in suppressed findings fails the build until the baseline is
//! consciously refreshed. Without `--scan-only`, the workspace-wide
//! `cargo fmt --check` and `cargo clippy -- -D warnings` run afterwards.
//!
//! Flags:
//!
//! * `--json` — print the byte-deterministic JSON report to stdout
//!   (exit status still reflects findings and the ratchet);
//! * `--scan-only` — skip fmt/clippy (CI runs them separately);
//! * `--update-baseline` — rewrite `LINT_BASELINE.json` with the current
//!   per-rule suppression counts after a passing scan.
//!
//! # `cargo xtask bench-diff old.json new.json`
//!
//! Compares two bench files produced by `obs_report --bench` and fails when
//! any run's total cycles, breakdown category or latency percentile grew
//! past the threshold (default 5%, with a 100-cycle absolute floor). With
//! `--update`, a passing (or missing) baseline is rewritten with the new
//! numbers, which is how `BENCH_tier1.json` tracks the trajectory.

use std::path::PathBuf;
use std::process::{Command, ExitCode};

use ncp2_lint::baseline::Baseline;

const BASELINE_FILE: &str = "LINT_BASELINE.json";

const USAGE: &str = "usage: cargo xtask lint [--scan-only] [--json] [--update-baseline]\n\
     \x20      cargo xtask bench-diff OLD.json NEW.json [--threshold PCT] [--update]";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, flags) = match args.split_first() {
        Some((c, rest)) => (c.as_str(), rest),
        None => {
            eprintln!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    match cmd {
        "lint" => lint(flags),
        "bench-diff" => bench_diff(flags),
        _ => {
            eprintln!("unknown xtask `{cmd}`; available: lint, bench-diff\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

/// The `lint` subcommand: run the analyzer, apply the suppression ratchet,
/// then (unless `--scan-only`) fmt and clippy.
fn lint(flags: &[String]) -> ExitCode {
    let scan_only = flags.iter().any(|f| f == "--scan-only");
    let json = flags.iter().any(|f| f == "--json");
    let update_baseline = flags.iter().any(|f| f == "--update-baseline");

    let root = workspace_root();
    let report = match ncp2_lint::lint_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("xtask lint: cannot scan workspace: {e}");
            return ExitCode::FAILURE;
        }
    };
    if json {
        print!("{}", report.to_json());
    } else {
        print!("{}", report.render_human());
    }
    if !report.findings.is_empty() {
        eprintln!(
            "xtask lint: {} unsuppressed finding(s)",
            report.findings.len()
        );
        return ExitCode::FAILURE;
    }

    // Suppression-debt ratchet against the committed baseline.
    let current = Baseline::from_report(&report);
    let baseline_path = root.join(BASELINE_FILE);
    if update_baseline {
        if let Err(e) = std::fs::write(&baseline_path, current.to_json()) {
            eprintln!("xtask lint: cannot write {BASELINE_FILE}: {e}");
            return ExitCode::FAILURE;
        }
        println!(
            "xtask lint: {BASELINE_FILE} updated ({} suppression(s))",
            current.total()
        );
    } else {
        match std::fs::read_to_string(&baseline_path) {
            Ok(text) => match Baseline::parse(&text) {
                Ok(pinned) => {
                    let regressions = pinned.regressions(&current);
                    if !regressions.is_empty() {
                        for r in &regressions {
                            eprintln!("xtask lint: {r}");
                        }
                        return ExitCode::FAILURE;
                    }
                    if !json {
                        println!(
                            "xtask lint: suppression ratchet ok ({}/{} of baseline)",
                            current.total(),
                            pinned.total()
                        );
                    }
                }
                Err(e) => {
                    eprintln!("xtask lint: cannot parse {BASELINE_FILE}: {e}");
                    return ExitCode::FAILURE;
                }
            },
            Err(_) => {
                eprintln!(
                    "xtask lint: no {BASELINE_FILE}; run `cargo xtask lint --update-baseline` \
                     to pin the suppression ratchet"
                );
            }
        }
    }

    if scan_only {
        return ExitCode::SUCCESS;
    }
    for (what, cmdline) in [
        ("cargo fmt --check", &["fmt", "--all", "--", "--check"][..]),
        (
            "cargo clippy -D warnings",
            &[
                "clippy",
                "--workspace",
                "--all-targets",
                "--",
                "-D",
                "warnings",
            ][..],
        ),
    ] {
        let status = Command::new(env!("CARGO"))
            .args(cmdline)
            .current_dir(&root)
            .status();
        match status {
            Ok(s) if s.success() => println!("xtask lint: {what} clean"),
            Ok(_) => {
                eprintln!("xtask lint: {what} failed");
                return ExitCode::FAILURE;
            }
            Err(e) => {
                eprintln!("xtask lint: could not run {what}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

/// The `bench-diff` subcommand: compare two bench files, flag regressions,
/// optionally update the baseline.
fn bench_diff(flags: &[String]) -> ExitCode {
    let mut paths: Vec<&String> = Vec::new();
    let mut threshold = 5.0f64;
    let mut update = false;
    let mut it = flags.iter();
    while let Some(f) = it.next() {
        match f.as_str() {
            "--threshold" => match it.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(t) => threshold = t,
                None => {
                    eprintln!("--threshold needs a numeric percentage\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--update" => update = true,
            _ => paths.push(f),
        }
    }
    let [old_path, new_path] = paths.as_slice() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };

    let new_text = match std::fs::read_to_string(new_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("bench-diff: cannot read {new_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let new_runs = match ncp2_obs::parse_bench(&new_text) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("bench-diff: {new_path} is not a bench file: {e}");
            return ExitCode::FAILURE;
        }
    };

    let old_text = match std::fs::read_to_string(old_path) {
        Ok(t) => t,
        Err(_) if update => {
            // No baseline yet: seed it from the new numbers.
            if let Err(e) = std::fs::write(old_path, &new_text) {
                eprintln!("bench-diff: cannot seed baseline {old_path}: {e}");
                return ExitCode::FAILURE;
            }
            println!("bench-diff: no baseline at {old_path}; seeded from {new_path}");
            return ExitCode::SUCCESS;
        }
        Err(e) => {
            eprintln!("bench-diff: cannot read baseline {old_path}: {e} (pass --update to seed)");
            return ExitCode::FAILURE;
        }
    };
    let old_runs = match ncp2_obs::parse_bench(&old_text) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("bench-diff: {old_path} is not a bench file: {e}");
            return ExitCode::FAILURE;
        }
    };

    let (removed, added) = ncp2_obs::diff::membership_changes(&old_runs, &new_runs);
    for r in &removed {
        println!("bench-diff: run '{r}' disappeared from the suite");
    }
    for a in &added {
        println!("bench-diff: new run '{a}'");
    }

    let regressions = ncp2_obs::compare(&old_runs, &new_runs, threshold);
    if !regressions.is_empty() {
        eprintln!(
            "bench-diff: {} regression(s) beyond {threshold}%:",
            regressions.len()
        );
        for r in &regressions {
            eprintln!("  {r}");
        }
        return ExitCode::FAILURE;
    }
    println!(
        "bench-diff: {} run(s) within {threshold}% of baseline",
        new_runs.len()
    );
    if update {
        if let Err(e) = std::fs::write(old_path, &new_text) {
            eprintln!("bench-diff: cannot update baseline {old_path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("bench-diff: baseline {old_path} updated");
    }
    ExitCode::SUCCESS
}

/// Walks up from the xtask manifest to the workspace root.
fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .ancestors()
        .find(|p| p.join("Cargo.toml").is_file() && p.join("crates").is_dir())
        .unwrap_or(&manifest)
        .to_path_buf()
}
