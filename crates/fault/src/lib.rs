//! # ncp2-fault — seeded, deterministic fault plans for the DSM transport
//!
//! The paper's evaluation assumes a perfectly reliable interconnect. This
//! crate describes how to break that assumption *reproducibly*: a
//! [`FaultPlan`] is a pure value (all-integer, no floats, no RNG state) whose
//! verdicts — drop this frame? duplicate it? corrupt it? how much extra
//! latency on this link right now? — are total functions of the plan plus the
//! frame's identity `(src, dst, seq, attempt)` and the current simulated
//! time. Two runs with the same plan therefore make byte-identical fault
//! decisions regardless of host, thread count or wall clock, which keeps the
//! whole chaos pipeline inside the repo's determinism guarantees.
//!
//! The plan is consulted by the hardened transport in `ncp2-core` (drop /
//! duplicate / corrupt verdicts, crash-restart and controller-stall windows,
//! congestion for prefetch shedding) and by the router in `ncp2-net`
//! (transient latency spikes, which reorder frames relative to per-link FIFO
//! order and exercise the receiver's resequencing buffer).

use ncp2_sim::{Cycles, StableHasher};

/// Highest permitted per-frame fault probability, in permille. Above ~50%
/// loss the capped-retry transport could plausibly exhaust
/// `MAX_RETX_ATTEMPTS`; validation rejects such plans up front.
pub const MAX_PERMILLE: u16 = 500;

/// Longest permitted crash-restart window, in cycles. Bounded so a node
/// outage cannot burn more than a small fraction of the transport's retry
/// budget (the exponential backoff passes 1M cycles after ~7 attempts).
pub const MAX_DOWNTIME_CYCLES: Cycles = 1_000_000;

/// Per-link probability overrides, replacing the plan-wide rates on one
/// directed link.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinkFault {
    /// Source node of the directed link.
    pub src: usize,
    /// Destination node of the directed link.
    pub dst: usize,
    /// Drop probability on this link, permille.
    pub drop_permille: u16,
    /// Duplication probability on this link, permille.
    pub dup_permille: u16,
    /// Corruption probability on this link, permille.
    pub corrupt_permille: u16,
}

/// Deterministically drops the `nth` first-attempt frame on one directed
/// link (sequence numbers start at 0). Retransmissions of the same frame are
/// never targeted, so the message still gets through.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TargetedDrop {
    /// Source node of the directed link.
    pub src: usize,
    /// Destination node of the directed link.
    pub dst: usize,
    /// The link-local sequence number to drop (attempt 0 only).
    pub nth: u64,
}

/// A transient latency spike on one directed link: frames *departing* inside
/// `[start, end)` arrive `extra` cycles late, without occupying the mesh
/// links for the extra time — so a later frame can overtake an earlier one
/// and the receiver sees genuine reordering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinkWindow {
    /// Source node of the directed link.
    pub src: usize,
    /// Destination node of the directed link.
    pub dst: usize,
    /// First cycle of the window (inclusive).
    pub start: Cycles,
    /// First cycle after the window (exclusive).
    pub end: Cycles,
    /// Extra delivery latency for frames departing inside the window.
    pub extra: Cycles,
}

/// A machine-wide congestion window: every frame departing inside
/// `[start, end)` is delayed by `extra` cycles, and the degradation policy
/// sheds low-priority prefetch traffic for the duration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Window {
    /// First cycle of the window (inclusive).
    pub start: Cycles,
    /// First cycle after the window (exclusive).
    pub end: Cycles,
    /// Extra delivery latency while congested.
    pub extra: Cycles,
}

/// A per-node outage window: `[start, end)` on one node, used for both
/// controller stalls (incoming frames wait for the window to end) and
/// crash-restart (incoming frames are lost and must be retransmitted).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeWindow {
    /// The affected node.
    pub node: usize,
    /// First cycle of the window (inclusive).
    pub start: Cycles,
    /// First cycle after the window (exclusive).
    pub end: Cycles,
}

/// A complete, seeded description of how the network misbehaves during one
/// run. `FaultPlan::none()` is the identity plan: the transport treats it as
/// "no fault hooks attached" and every run is byte-identical to a build
/// without the `fault` feature.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed mixed into every probabilistic verdict. Two plans differing only
    /// in seed make independent (but individually deterministic) decisions.
    pub seed: u64,
    /// Plan-wide frame-drop probability, permille (0..=[`MAX_PERMILLE`]).
    pub drop_permille: u16,
    /// Plan-wide frame-duplication probability, permille.
    pub dup_permille: u16,
    /// Plan-wide frame-corruption probability, permille. Corruption is
    /// detected by the receiver's frame check and handled as a drop, so
    /// payloads are never actually damaged.
    pub corrupt_permille: u16,
    /// Whether acknowledgement frames are subject to the drop rates too
    /// (lost acks force retransmission of already-delivered frames, the
    /// classic duplicate-delivery stress).
    pub ack_faults: bool,
    /// Per-link probability overrides (first match wins).
    pub link_overrides: Vec<LinkFault>,
    /// Targeted "drop the nth frame on link i→j" entries.
    pub targeted_drops: Vec<TargetedDrop>,
    /// Transient per-link latency spikes (reordering).
    pub spikes: Vec<LinkWindow>,
    /// Machine-wide congestion windows (latency + prefetch shedding).
    pub congestion: Vec<Window>,
    /// Controller-stall windows: frames arriving at the node inside the
    /// window are deferred to the window's end.
    pub ctrl_stalls: Vec<NodeWindow>,
    /// Crash-restart windows: frames arriving at the node inside the window
    /// are lost (the node keeps its memory — a stall-and-wipe-the-NIC
    /// restart), forcing transport-level retransmission.
    pub downtimes: Vec<NodeWindow>,
}

/// Verdict-domain tags, so the drop/dup/corrupt decisions for one frame are
/// independent draws rather than one shared coin.
const TAG_DROP: u64 = 1;
const TAG_DUP: u64 = 2;
const TAG_CORRUPT: u64 = 3;
const TAG_ACK: u64 = 4;

impl FaultPlan {
    /// The identity plan: nothing dropped, duplicated, corrupted, delayed or
    /// stalled. [`FaultPlan::is_active`] returns `false` for it.
    pub fn none() -> FaultPlan {
        FaultPlan {
            seed: 0,
            drop_permille: 0,
            dup_permille: 0,
            corrupt_permille: 0,
            ack_faults: false,
            link_overrides: Vec::new(),
            targeted_drops: Vec::new(),
            spikes: Vec::new(),
            congestion: Vec::new(),
            ctrl_stalls: Vec::new(),
            downtimes: Vec::new(),
        }
    }

    /// Whether this plan can ever affect a run. The transport skips frame
    /// bookkeeping entirely for inactive plans, so `FaultPlan::none()` runs
    /// are byte-identical to fault-free builds. The seed alone does not make
    /// a plan active: with all rates zero it can never change a verdict.
    pub fn is_active(&self) -> bool {
        // Exhaustive destructuring: adding a FaultPlan field without
        // classifying it here is a compile error.
        let FaultPlan {
            seed: _,
            drop_permille,
            dup_permille,
            corrupt_permille,
            ack_faults: _,
            link_overrides,
            targeted_drops,
            spikes,
            congestion,
            ctrl_stalls,
            downtimes,
        } = self;
        *drop_permille != 0
            || *dup_permille != 0
            || *corrupt_permille != 0
            || !link_overrides.is_empty()
            || !targeted_drops.is_empty()
            || !spikes.is_empty()
            || !congestion.is_empty()
            || !ctrl_stalls.is_empty()
            || !downtimes.is_empty()
    }

    /// Checks the plan against the transport's survivability envelope.
    ///
    /// # Errors
    ///
    /// Rejects probabilities above [`MAX_PERMILLE`], inverted windows, and
    /// downtime windows longer than [`MAX_DOWNTIME_CYCLES`].
    pub fn validate(&self) -> Result<(), String> {
        let check_rate = |what: &str, v: u16| {
            if v > MAX_PERMILLE {
                Err(format!(
                    "{what} = {v}\u{2030} exceeds {MAX_PERMILLE}\u{2030}"
                ))
            } else {
                Ok(())
            }
        };
        check_rate("drop_permille", self.drop_permille)?;
        check_rate("dup_permille", self.dup_permille)?;
        check_rate("corrupt_permille", self.corrupt_permille)?;
        for l in &self.link_overrides {
            check_rate("link drop_permille", l.drop_permille)?;
            check_rate("link dup_permille", l.dup_permille)?;
            check_rate("link corrupt_permille", l.corrupt_permille)?;
        }
        for s in &self.spikes {
            if s.start >= s.end {
                return Err(format!("spike window {}..{} is empty", s.start, s.end));
            }
        }
        for c in &self.congestion {
            if c.start >= c.end {
                return Err(format!("congestion window {}..{} is empty", c.start, c.end));
            }
        }
        for w in &self.ctrl_stalls {
            if w.start >= w.end {
                return Err(format!("ctrl stall window {}..{} is empty", w.start, w.end));
            }
        }
        for w in &self.downtimes {
            if w.start >= w.end {
                return Err(format!("downtime window {}..{} is empty", w.start, w.end));
            }
            if w.end - w.start > MAX_DOWNTIME_CYCLES {
                return Err(format!(
                    "downtime window {}..{} exceeds {MAX_DOWNTIME_CYCLES} cycles",
                    w.start, w.end
                ));
            }
        }
        Ok(())
    }

    /// Feeds every field into `h` for cache keying. Exhaustively destructured
    /// like `SysParams::stable_hash`: adding a field without hashing it is a
    /// compile error.
    pub fn stable_hash(&self, h: &mut StableHasher) {
        let FaultPlan {
            seed,
            drop_permille,
            dup_permille,
            corrupt_permille,
            ack_faults,
            link_overrides,
            targeted_drops,
            spikes,
            congestion,
            ctrl_stalls,
            downtimes,
        } = self;
        h.write_u64(*seed);
        h.write_u64(*drop_permille as u64);
        h.write_u64(*dup_permille as u64);
        h.write_u64(*corrupt_permille as u64);
        h.write_bool(*ack_faults);
        h.write_usize(link_overrides.len());
        for l in link_overrides {
            let LinkFault {
                src,
                dst,
                drop_permille,
                dup_permille,
                corrupt_permille,
            } = l;
            h.write_usize(*src);
            h.write_usize(*dst);
            h.write_u64(*drop_permille as u64);
            h.write_u64(*dup_permille as u64);
            h.write_u64(*corrupt_permille as u64);
        }
        h.write_usize(targeted_drops.len());
        for t in targeted_drops {
            let TargetedDrop { src, dst, nth } = t;
            h.write_usize(*src);
            h.write_usize(*dst);
            h.write_u64(*nth);
        }
        h.write_usize(spikes.len());
        for s in spikes {
            let LinkWindow {
                src,
                dst,
                start,
                end,
                extra,
            } = s;
            h.write_usize(*src);
            h.write_usize(*dst);
            h.write_u64(*start);
            h.write_u64(*end);
            h.write_u64(*extra);
        }
        h.write_usize(congestion.len());
        for c in congestion {
            let Window { start, end, extra } = c;
            h.write_u64(*start);
            h.write_u64(*end);
            h.write_u64(*extra);
        }
        h.write_usize(ctrl_stalls.len());
        for w in ctrl_stalls {
            let NodeWindow { node, start, end } = w;
            h.write_usize(*node);
            h.write_u64(*start);
            h.write_u64(*end);
        }
        h.write_usize(downtimes.len());
        for w in downtimes {
            let NodeWindow { node, start, end } = w;
            h.write_usize(*node);
            h.write_u64(*start);
            h.write_u64(*end);
        }
    }

    /// One deterministic draw in [0, 1000) for a (tag, frame-identity) pair.
    fn roll(&self, tag: u64, src: usize, dst: usize, seq: u64, attempt: u32) -> u16 {
        let mut h = StableHasher::new();
        h.write_u64(self.seed);
        h.write_u64(tag);
        h.write_usize(src);
        h.write_usize(dst);
        h.write_u64(seq);
        h.write_u64(attempt as u64);
        (h.finish() % 1000) as u16
    }

    /// The effective (drop, dup, corrupt) rates on a directed link — the
    /// first matching override, else the plan-wide rates.
    fn link_rates(&self, src: usize, dst: usize) -> (u16, u16, u16) {
        for l in &self.link_overrides {
            if l.src == src && l.dst == dst {
                return (l.drop_permille, l.dup_permille, l.corrupt_permille);
            }
        }
        (self.drop_permille, self.dup_permille, self.corrupt_permille)
    }

    /// Should this data frame be dropped in flight?
    pub fn drop_frame(&self, src: usize, dst: usize, seq: u64, attempt: u32) -> bool {
        if attempt == 0
            && self
                .targeted_drops
                .iter()
                .any(|t| t.src == src && t.dst == dst && t.nth == seq)
        {
            return true;
        }
        let (drop, _, _) = self.link_rates(src, dst);
        drop != 0 && self.roll(TAG_DROP, src, dst, seq, attempt) < drop
    }

    /// Should this data frame be duplicated in flight (one extra copy)?
    pub fn dup_frame(&self, src: usize, dst: usize, seq: u64, attempt: u32) -> bool {
        let (_, dup, _) = self.link_rates(src, dst);
        dup != 0 && self.roll(TAG_DUP, src, dst, seq, attempt) < dup
    }

    /// Should this data frame arrive corrupted (detected and discarded by
    /// the receiver's frame check)?
    pub fn corrupt_frame(&self, src: usize, dst: usize, seq: u64, attempt: u32) -> bool {
        let (_, _, corrupt) = self.link_rates(src, dst);
        corrupt != 0 && self.roll(TAG_CORRUPT, src, dst, seq, attempt) < corrupt
    }

    /// Should this acknowledgement frame (travelling `src → dst`) be lost?
    /// Only when [`FaultPlan::ack_faults`] is set; uses the ack link's
    /// effective drop rate with an independent verdict domain.
    pub fn drop_ack(&self, src: usize, dst: usize, cum: u64) -> bool {
        if !self.ack_faults {
            return false;
        }
        let (drop, _, _) = self.link_rates(src, dst);
        drop != 0 && self.roll(TAG_ACK, src, dst, cum, 0) < drop
    }

    /// Extra delivery latency for a frame departing `src → dst` at `now`:
    /// the sum of all matching spike windows plus all congestion windows.
    pub fn extra_latency(&self, src: usize, dst: usize, now: Cycles) -> Cycles {
        let mut extra: Cycles = 0;
        for s in &self.spikes {
            if s.src == src && s.dst == dst && s.start <= now && now < s.end {
                extra = extra.saturating_add(s.extra);
            }
        }
        for c in &self.congestion {
            if c.start <= now && now < c.end {
                extra = extra.saturating_add(c.extra);
            }
        }
        extra
    }

    /// Whether the machine is inside a congestion window at `now` (the
    /// degradation policy sheds prefetch traffic while this holds).
    pub fn congested_at(&self, now: Cycles) -> bool {
        self.congestion
            .iter()
            .any(|c| c.start <= now && now < c.end)
    }

    /// Whether `node` is inside a crash-restart window at `now` (incoming
    /// frames are lost).
    pub fn node_down(&self, node: usize, now: Cycles) -> bool {
        self.downtimes
            .iter()
            .any(|w| w.node == node && w.start <= now && now < w.end)
    }

    /// If `node`'s controller is stalled at `now`, the first cycle at which
    /// it resumes (the latest end among matching windows).
    pub fn ctrl_stalled(&self, node: usize, now: Cycles) -> Option<Cycles> {
        self.ctrl_stalls
            .iter()
            .filter(|w| w.node == node && w.start <= now && now < w.end)
            .map(|w| w.end)
            .max()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lossy(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            drop_permille: 100,
            dup_permille: 50,
            corrupt_permille: 20,
            ack_faults: true,
            ..FaultPlan::none()
        }
    }

    #[test]
    fn verdicts_are_deterministic() {
        let a = lossy(7);
        let b = lossy(7);
        for seq in 0..200 {
            assert_eq!(a.drop_frame(0, 1, seq, 0), b.drop_frame(0, 1, seq, 0));
            assert_eq!(a.dup_frame(0, 1, seq, 0), b.dup_frame(0, 1, seq, 0));
            assert_eq!(a.corrupt_frame(0, 1, seq, 0), b.corrupt_frame(0, 1, seq, 0));
            assert_eq!(a.drop_ack(1, 0, seq), b.drop_ack(1, 0, seq));
        }
    }

    #[test]
    fn seeds_decorrelate_verdicts() {
        let a = lossy(1);
        let b = lossy(2);
        let differs = (0..1000).any(|seq| a.drop_frame(0, 1, seq, 0) != b.drop_frame(0, 1, seq, 0));
        assert!(differs, "two seeds never disagreed over 1000 frames");
    }

    #[test]
    fn drop_rate_tracks_permille() {
        let p = lossy(42);
        let n = 20_000u64;
        let hits = (0..n).filter(|&seq| p.drop_frame(0, 1, seq, 0)).count();
        let rate = hits as f64 / n as f64;
        assert!((0.05..0.15).contains(&rate), "observed rate {rate}");
    }

    #[test]
    fn retransmissions_redraw_the_verdict() {
        let p = lossy(3);
        // Some frame dropped at attempt 0 must survive at a later attempt,
        // else the capped-retry argument would not hold.
        let recovered = (0..1000)
            .any(|seq| p.drop_frame(0, 1, seq, 0) && (1..8).any(|a| !p.drop_frame(0, 1, seq, a)));
        assert!(recovered);
    }

    #[test]
    fn targeted_drop_fires_only_on_nth_first_attempt() {
        let mut p = FaultPlan::none();
        p.targeted_drops.push(TargetedDrop {
            src: 2,
            dst: 3,
            nth: 5,
        });
        assert!(p.drop_frame(2, 3, 5, 0));
        assert!(!p.drop_frame(2, 3, 5, 1), "retransmission must get through");
        assert!(!p.drop_frame(2, 3, 4, 0));
        assert!(!p.drop_frame(3, 2, 5, 0), "other direction untouched");
    }

    #[test]
    fn link_override_wins_over_global() {
        let mut p = lossy(9);
        p.link_overrides.push(LinkFault {
            src: 0,
            dst: 1,
            drop_permille: 0,
            dup_permille: 0,
            corrupt_permille: 0,
        });
        assert!((0..5000).all(|seq| !p.drop_frame(0, 1, seq, 0)));
        let other = (0..5000).any(|seq| p.drop_frame(0, 2, seq, 0));
        assert!(other, "non-overridden link keeps the global rate");
    }

    #[test]
    fn windows_apply_in_range_only() {
        let mut p = FaultPlan::none();
        p.spikes.push(LinkWindow {
            src: 0,
            dst: 1,
            start: 100,
            end: 200,
            extra: 50,
        });
        p.congestion.push(Window {
            start: 150,
            end: 300,
            extra: 10,
        });
        assert_eq!(p.extra_latency(0, 1, 99), 0);
        assert_eq!(p.extra_latency(0, 1, 100), 50);
        assert_eq!(p.extra_latency(0, 1, 150), 60);
        assert_eq!(p.extra_latency(0, 1, 200), 10);
        assert_eq!(p.extra_latency(2, 3, 160), 10, "congestion is global");
        assert!(!p.congested_at(149));
        assert!(p.congested_at(150));
        assert!(!p.congested_at(300));
    }

    #[test]
    fn node_windows() {
        let mut p = FaultPlan::none();
        p.downtimes.push(NodeWindow {
            node: 2,
            start: 10,
            end: 20,
        });
        p.ctrl_stalls.push(NodeWindow {
            node: 1,
            start: 5,
            end: 15,
        });
        assert!(p.node_down(2, 10));
        assert!(!p.node_down(2, 20));
        assert!(!p.node_down(1, 12));
        assert_eq!(p.ctrl_stalled(1, 5), Some(15));
        assert_eq!(p.ctrl_stalled(1, 15), None);
        assert_eq!(p.ctrl_stalled(2, 10), None);
    }

    #[test]
    fn validation_envelope() {
        assert!(FaultPlan::none().validate().is_ok());
        assert!(lossy(0).validate().is_ok());
        let mut p = FaultPlan::none();
        p.drop_permille = MAX_PERMILLE + 1;
        assert!(p.validate().is_err());
        let mut p = FaultPlan::none();
        p.downtimes.push(NodeWindow {
            node: 0,
            start: 0,
            end: MAX_DOWNTIME_CYCLES + 1,
        });
        assert!(p.validate().is_err());
        let mut p = FaultPlan::none();
        p.spikes.push(LinkWindow {
            src: 0,
            dst: 1,
            start: 10,
            end: 10,
            extra: 1,
        });
        assert!(p.validate().is_err());
    }

    #[test]
    fn none_is_inactive_and_any_knob_activates() {
        assert!(!FaultPlan::none().is_active());
        let mut p = FaultPlan::none();
        p.seed = 99;
        assert!(!p.is_active(), "a bare seed changes no verdict");
        assert!(lossy(0).is_active());
        let mut p = FaultPlan::none();
        p.congestion.push(Window {
            start: 0,
            end: 1,
            extra: 0,
        });
        assert!(p.is_active());
    }

    fn key(p: &FaultPlan) -> u64 {
        let mut h = StableHasher::new();
        p.stable_hash(&mut h);
        h.finish()
    }

    #[test]
    fn stable_hash_sees_every_scalar() {
        let base = key(&FaultPlan::none());
        let mut p = FaultPlan::none();
        p.seed = 1;
        assert_ne!(key(&p), base);
        let mut p = FaultPlan::none();
        p.ack_faults = true;
        assert_ne!(key(&p), base);
        let mut p = FaultPlan::none();
        p.targeted_drops.push(TargetedDrop {
            src: 0,
            dst: 1,
            nth: 0,
        });
        assert_ne!(key(&p), base);
    }
}
