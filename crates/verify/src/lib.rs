//! # ncp2-verify — shadow oracle for the NCP2 DSM simulation
//!
//! A [`VerifyOracle`] attaches to a `ncp2_core::Simulation` (built with the
//! `verify` feature) and re-checks, event by event, what the protocol is
//! only supposed to guarantee:
//!
//! * **Happens-before race detection** — a vector-clock detector over the
//!   observed shared-memory accesses, using the lock and barrier events to
//!   build the §2 LRC partial order. Word granularity (4 bytes), matching
//!   the protocols' diff granularity: concurrent writes to *different*
//!   words of one page are legal in TreadMarks and must not be flagged.
//! * **Diff completeness (§3.2)** — every created diff, applied to the
//!   page's previous contents, must reconstruct the writer's current copy
//!   exactly. Because the oracle's baseline is maintained independently of
//!   the twins, this cross-checks the bit-vector-directed diffs of the
//!   hardware modes (I+D, I+P+D) against a twin-equivalent reference.
//! * **Write-notice coverage** — whenever a processor's vector time comes to
//!   cover a foreign writing interval, a write notice for every page that
//!   interval dirtied must have been recorded (and its page invalidated)
//!   at that processor. Skipped under AURC, where only home-mode copies
//!   invalidate and pairwise copies are kept fresh by automatic updates.
//! * **Vector-time monotonicity** — per-processor vector times never
//!   regress, and interval ids advance by exactly one per closure.
//! * **Message conservation** — demand traffic drains completely (every
//!   request exactly one reply), prefetch and fire-and-forget traffic never
//!   delivers more than was sent, and no foreign diff is applied twice.
//! * **Frame conservation (retransmit-aware)** — under the hardened
//!   transport (`fault` feature) every physical frame copy a link sends
//!   reaches exactly one terminal fate, so per link
//!   `sent = accepted + duplicate-dropped + dropped`; a frame that vanishes
//!   without a terminal event (silent loss) breaks the ledger.
//!
//! Violations land in `RunResult::violations`; a correct run reports none.

use std::collections::{HashMap, HashSet, VecDeque};

use ncp2_core::observe::{MsgKind, Observer, ProtocolEvent, Violation};
use ncp2_core::page::{PageBuf, PageId};
use ncp2_core::vtime::{IntervalId, VectorTime};
use ncp2_core::Protocol;
use ncp2_sim::ops::{BarrierId, LockId};
use ncp2_sim::SysParams;

/// Reported-violation cap: a single protocol bug can fire on every access,
/// so the oracle keeps the first `MAX_VIOLATIONS` and counts the rest.
const MAX_VIOLATIONS: usize = 256;

// ---------------------------------------------------------------------------
// Race detector
// ---------------------------------------------------------------------------

/// Conflict history of one 4-byte word: the last write epoch plus the read
/// epochs since that write (one per processor).
#[derive(Debug, Default)]
struct WordState {
    write: Option<(usize, IntervalId)>,
    reads: Vec<(usize, IntervalId)>,
}

/// One barrier episode being accumulated at the detector. Barrier ids are
/// reused, and a fast processor can arrive at the *next* episode before a
/// slow one has completed the previous episode of the same id — hence a
/// queue of episodes per id rather than a single slot.
#[derive(Debug)]
struct Episode {
    acc: VectorTime,
    arrivals: usize,
    completions: usize,
}

/// Vector-clock happens-before detector over the observed access stream.
#[derive(Debug)]
pub struct RaceDetector {
    nprocs: usize,
    vc: Vec<VectorTime>,
    locks: HashMap<LockId, VectorTime>,
    barriers: HashMap<BarrierId, VecDeque<Episode>>,
    words: HashMap<u64, WordState>,
    /// Byte ranges with annotated benign races (e.g. TSP's bound word);
    /// accesses touching them are not tracked.
    exempt: Vec<std::ops::Range<u64>>,
    /// Words already reported (one race per word keeps the output readable).
    reported: HashSet<u64>,
    found: Vec<Violation>,
}

impl RaceDetector {
    /// A detector for `nprocs` processors with no history.
    pub fn new(nprocs: usize) -> Self {
        let mut vc = vec![VectorTime::new(nprocs); nprocs];
        // Every processor starts in its own epoch 1 so that two initial
        // accesses by different processors are *not* vacuously ordered.
        for (p, c) in vc.iter_mut().enumerate() {
            c.bump(p);
        }
        RaceDetector {
            nprocs,
            vc,
            locks: HashMap::new(),
            barriers: HashMap::new(),
            words: HashMap::new(),
            exempt: Vec::new(),
            reported: HashSet::new(),
            found: Vec::new(),
        }
    }

    /// Exempts a byte range from race detection (an annotated benign race).
    pub fn exempt_range(&mut self, range: std::ops::Range<u64>) {
        self.exempt.push(range);
    }

    /// Feeds one event; only accesses and synchronization are examined.
    pub fn observe(&mut self, ev: &ProtocolEvent) {
        match *ev {
            ProtocolEvent::Access {
                pid,
                addr,
                bytes,
                write,
            } => {
                let first = addr / 4;
                let last = (addr + u64::from(bytes.max(1)) - 1) / 4;
                for word in first..=last {
                    self.access_word(pid, word, write);
                }
            }
            ProtocolEvent::LockAcquired { pid, lock } => {
                if let Some(lc) = self.locks.get(&lock) {
                    self.vc[pid].merge(lc);
                }
            }
            ProtocolEvent::LockReleased { pid, lock } => {
                let snapshot = self.vc[pid].clone();
                self.locks
                    .entry(lock)
                    .and_modify(|lc| lc.merge(&snapshot))
                    .or_insert(snapshot);
                self.vc[pid].bump(pid);
            }
            ProtocolEvent::BarrierArrived { pid, barrier } => {
                let n = self.nprocs;
                let q = self.barriers.entry(barrier).or_default();
                let needs_new = q.back().is_none_or(|e| e.arrivals == n);
                if needs_new {
                    q.push_back(Episode {
                        acc: VectorTime::new(n),
                        arrivals: 0,
                        completions: 0,
                    });
                }
                let ep = q.back_mut().expect("episode just ensured");
                ep.acc.merge(&self.vc[pid]);
                ep.arrivals += 1;
            }
            ProtocolEvent::BarrierCompleted { pid, barrier } => {
                let Some(q) = self.barriers.get_mut(&barrier) else {
                    return;
                };
                let Some(ep) = q.front_mut() else { return };
                let acc = ep.acc.clone();
                ep.completions += 1;
                let done = ep.completions == self.nprocs;
                if done {
                    q.pop_front();
                }
                self.vc[pid].merge(&acc);
                self.vc[pid].bump(pid);
            }
            _ => {}
        }
    }

    fn access_word(&mut self, pid: usize, word: u64, write: bool) {
        let lo = word * 4;
        if self.exempt.iter().any(|r| r.start < lo + 4 && lo < r.end) {
            return;
        }
        let epoch = self.vc[pid].get(pid);
        let st = self.words.entry(word).or_default();
        let mut race: Option<(usize, bool)> = None;
        if let Some((wp, we)) = st.write {
            if wp != pid && !self.vc[pid].covers_interval(wp, we) {
                race = Some((wp, true));
            }
        }
        if write {
            if race.is_none() {
                for &(rp, re) in &st.reads {
                    if rp != pid && !self.vc[pid].covers_interval(rp, re) {
                        race = Some((rp, false));
                        break;
                    }
                }
            }
            st.write = Some((pid, epoch));
            st.reads.clear();
        } else {
            match st.reads.iter_mut().find(|(rp, _)| *rp == pid) {
                Some(slot) => slot.1 = epoch,
                None => st.reads.push((pid, epoch)),
            }
        }
        if let Some((first_pid, first_write)) = race {
            if self.reported.insert(word) {
                self.found.push(Violation::Race {
                    first_pid,
                    first_write,
                    second_pid: pid,
                    second_write: write,
                    addr: word * 4,
                });
            }
        }
    }

    /// Races found so far.
    pub fn races(&self) -> &[Violation] {
        &self.found
    }

    fn take(&mut self) -> Vec<Violation> {
        std::mem::take(&mut self.found)
    }
}

// ---------------------------------------------------------------------------
// Invariant oracle
// ---------------------------------------------------------------------------

/// The full shadow oracle: race detector plus LRC protocol invariants.
pub struct VerifyOracle {
    page_bytes: u64,
    /// Write-notice coverage applies (TreadMarks modes only).
    check_notices: bool,
    race: RaceDetector,
    violations: Vec<Violation>,
    suppressed: usize,
    /// Per (node, page): the node's page contents after the last diff
    /// creation or application — the twin-equivalent reference copy.
    baselines: HashMap<(usize, PageId), PageBuf>,
    /// Per (node, page): foreign diffs already applied there.
    applied: HashMap<(usize, PageId), HashSet<(usize, IntervalId)>>,
    /// Every closed interval and the pages it dirtied.
    registry: HashMap<(usize, IntervalId), Vec<PageId>>,
    /// Write notices recorded: (node, owner, interval, page).
    seen_notices: HashSet<(usize, usize, IntervalId, PageId)>,
    /// Latest vector time observed per processor (monotonicity).
    last_vt: Vec<VectorTime>,
    /// High-water mark of coverage checking per processor.
    checked_vt: Vec<VectorTime>,
    sent: HashMap<(MsgKind, bool), u64>,
    delivered: HashMap<(MsgKind, bool), u64>,
    /// Per-(link, seq, attempt) transport-frame ledger: +1 at `FrameSent`,
    /// −1 at the terminal event (accepted / duplicate / dropped). Nonzero
    /// at finish means a frame copy vanished (or a fate was invented).
    frames: HashMap<(usize, usize, u64, u32), i64>,
}

impl VerifyOracle {
    /// An oracle for a machine with the given parameters and protocol.
    pub fn new(params: &SysParams, protocol: &Protocol) -> Self {
        let n = params.nprocs;
        VerifyOracle {
            page_bytes: params.page_bytes,
            check_notices: matches!(protocol, Protocol::TreadMarks(_)),
            race: RaceDetector::new(n),
            violations: Vec::new(),
            suppressed: 0,
            baselines: HashMap::new(),
            applied: HashMap::new(),
            registry: HashMap::new(),
            seen_notices: HashSet::new(),
            last_vt: vec![VectorTime::new(n); n],
            checked_vt: vec![VectorTime::new(n); n],
            sent: HashMap::new(),
            delivered: HashMap::new(),
            frames: HashMap::new(),
        }
    }

    /// Builds an oracle and attaches it to `sim` in one step.
    pub fn attach(sim: &mut ncp2_core::Simulation, params: &SysParams, protocol: &Protocol) {
        sim.attach_observer(Box::new(VerifyOracle::new(params, protocol)));
    }

    /// Number of violations dropped beyond the reporting cap.
    pub fn suppressed(&self) -> usize {
        self.suppressed
    }

    /// Exempts a byte range from race detection. Protocol invariants (diff
    /// completeness, notices, conservation) still apply to the range — only
    /// the happens-before check is waived, for annotated benign races.
    pub fn exempt_range(&mut self, range: std::ops::Range<u64>) {
        self.race.exempt_range(range);
    }

    fn push(&mut self, v: Violation) {
        if self.violations.len() < MAX_VIOLATIONS {
            self.violations.push(v);
        } else {
            self.suppressed += 1;
        }
    }

    fn on_interval_closed(
        &mut self,
        pid: usize,
        id: IntervalId,
        vt: &VectorTime,
        pages: &[PageId],
    ) {
        let prev_own = self.last_vt[pid].get(pid);
        if id != prev_own + 1 {
            self.push(Violation::VtRegression {
                pid,
                detail: format!("interval id jumped from {prev_own} to {id}"),
            });
        }
        if vt.get(pid) != id {
            self.push(Violation::VtRegression {
                pid,
                detail: format!("closed interval {id} but own component is {}", vt.get(pid)),
            });
        }
        self.check_monotone(pid, vt, "interval close");
        self.registry.insert((pid, id), pages.to_vec());
    }

    fn on_anns_processed(&mut self, pid: usize, vt: &VectorTime) {
        self.check_monotone(pid, vt, "announcement processing");
        if self.check_notices {
            let mut missing: Vec<(usize, IntervalId, PageId)> = Vec::new();
            for (owner, latest) in vt.iter() {
                if owner == pid {
                    continue;
                }
                let from = self.checked_vt[pid].get(owner);
                for ivl in (from + 1)..=latest {
                    let Some(pages) = self.registry.get(&(owner, ivl)) else {
                        continue;
                    };
                    for &page in pages {
                        if !self.seen_notices.contains(&(pid, owner, ivl, page)) {
                            missing.push((owner, ivl, page));
                        }
                    }
                }
            }
            for (owner, interval, page) in missing {
                self.push(Violation::WriteNoticeCoverage {
                    pid,
                    owner,
                    interval,
                    page,
                });
            }
        }
        self.checked_vt[pid].merge(vt);
    }

    fn check_monotone(&mut self, pid: usize, vt: &VectorTime, what: &str) {
        if !vt.covers(&self.last_vt[pid]) {
            self.push(Violation::VtRegression {
                pid,
                detail: format!("vector time went backwards at {what}"),
            });
        }
        self.last_vt[pid] = vt.clone();
    }

    fn on_diff_created(
        &mut self,
        pid: usize,
        page: PageId,
        interval: IntervalId,
        diff: &ncp2_core::Diff,
        data: &PageBuf,
    ) {
        let pb = self.page_bytes;
        let baseline = self
            .baselines
            .entry((pid, page))
            .or_insert_with(|| PageBuf::new(pb));
        let mut expect = baseline.clone();
        diff.apply(&mut expect);
        let bad_words = if expect == *data {
            0
        } else {
            expect.words_differing(data).count()
        };
        *baseline = data.clone();
        if bad_words > 0 {
            self.push(Violation::DiffIncomplete {
                pid,
                page,
                interval,
                bad_words,
            });
        }
    }

    fn on_diffs_applied(
        &mut self,
        pid: usize,
        page: PageId,
        applied_ivs: &[(usize, IntervalId)],
        data: &PageBuf,
    ) {
        let mut dups: Vec<(usize, IntervalId)> = Vec::new();
        {
            let seen = self.applied.entry((pid, page)).or_default();
            for &(owner, interval) in applied_ivs {
                // A whole-page fetch legitimately re-applies the node's own
                // concurrent diffs on top of the shipped copy.
                if owner == pid {
                    continue;
                }
                if !seen.insert((owner, interval)) {
                    dups.push((owner, interval));
                }
            }
        }
        for (owner, interval) in dups {
            self.push(Violation::DuplicateDiffApplication {
                pid,
                page,
                owner,
                interval,
            });
        }
        self.baselines.insert((pid, page), data.clone());
    }

    fn check_conservation(&mut self) {
        let mut findings: Vec<String> = Vec::new();
        let kinds = |m: &HashMap<(MsgKind, bool), u64>, k: MsgKind, d: bool| {
            m.get(&(k, d)).copied().unwrap_or(0)
        };
        // lint: allow(nondeterministic-iteration) -- tallies only feed `findings`, which is sorted before reporting
        for (&(kind, demand), &d) in &self.delivered {
            let s = kinds(&self.sent, kind, demand);
            if d > s {
                findings.push(format!(
                    "{kind} ({}): delivered {d} exceeds sent {s}",
                    class(demand)
                ));
            }
        }
        // Demand traffic must drain: a demand message still in flight means
        // some processor is still blocked, contradicting run completion.
        // AurcUpdates are fire-and-forget and may legally die in the queue.
        // lint: allow(nondeterministic-iteration) -- tallies only feed `findings`, which is sorted before reporting
        for (&(kind, demand), &s) in &self.sent {
            if !demand || kind == MsgKind::AurcUpdate {
                continue;
            }
            let d = kinds(&self.delivered, kind, demand);
            if d != s {
                findings.push(format!("demand {kind}: sent {s}, delivered only {d}"));
            }
        }
        // Every delivered request produces exactly one reply.
        let pairs = [
            (MsgKind::DiffReq, MsgKind::DiffReply),
            (MsgKind::AurcPageReq, MsgKind::AurcPageReply),
            (MsgKind::LockReq, MsgKind::LockGrant),
            (MsgKind::BarrierArrive, MsgKind::BarrierRelease),
        ];
        for (req, reply) in pairs {
            for demand in [true, false] {
                let d_req = kinds(&self.delivered, req, demand);
                let s_reply = kinds(&self.sent, reply, demand);
                if d_req != s_reply {
                    findings.push(format!(
                        "{req}/{reply} ({}): {d_req} requests delivered but {s_reply} \
                         replies sent",
                        class(demand)
                    ));
                }
            }
        }
        // Retransmit-aware frame conservation: every physical copy the
        // transport sent must have reached exactly one terminal fate, so
        // per link `sent = accepted + duplicate-dropped + dropped`.
        // lint: allow(nondeterministic-iteration) -- balances only feed `findings`, which is sorted before reporting
        for (&(src, dst, seq, attempt), &bal) in &self.frames {
            match bal.cmp(&0) {
                std::cmp::Ordering::Greater => findings.push(format!(
                    "link {src}->{dst}: frame seq {seq} attempt {attempt} sent but never \
                     accepted/duplicated/dropped ({bal} copies unaccounted — \
                     sent != accepted + duplicated + dropped)"
                )),
                std::cmp::Ordering::Less => findings.push(format!(
                    "link {src}->{dst}: frame seq {seq} attempt {attempt} reached {} more \
                     terminal fates than sends",
                    -bal
                )),
                std::cmp::Ordering::Equal => {}
            }
        }
        findings.sort();
        for detail in findings {
            self.push(Violation::MessageConservation { detail });
        }
    }
}

fn class(demand: bool) -> &'static str {
    if demand {
        "demand"
    } else {
        "prefetch"
    }
}

impl Observer for VerifyOracle {
    fn on_event(&mut self, ev: &ProtocolEvent) {
        self.race.observe(ev);
        match ev {
            ProtocolEvent::IntervalClosed { pid, id, vt, pages } => {
                self.on_interval_closed(*pid, *id, vt, pages)
            }
            ProtocolEvent::NoticeRecorded {
                pid,
                owner,
                id,
                page,
            } => {
                self.seen_notices.insert((*pid, *owner, *id, *page));
            }
            ProtocolEvent::AnnsProcessed { pid, vt } => self.on_anns_processed(*pid, vt),
            ProtocolEvent::DiffCreated {
                pid,
                page,
                interval,
                diff,
                data,
            } => self.on_diff_created(*pid, *page, *interval, diff, data),
            ProtocolEvent::DiffsApplied {
                pid,
                page,
                applied,
                data,
            } => self.on_diffs_applied(*pid, *page, applied, data),
            ProtocolEvent::MsgSent { kind, demand, .. } => {
                *self.sent.entry((*kind, *demand)).or_insert(0) += 1;
            }
            ProtocolEvent::MsgDelivered { kind, demand, .. } => {
                *self.delivered.entry((*kind, *demand)).or_insert(0) += 1;
            }
            ProtocolEvent::FrameSent {
                src,
                dst,
                seq,
                attempt,
            } => {
                *self.frames.entry((*src, *dst, *seq, *attempt)).or_insert(0) += 1;
            }
            ProtocolEvent::FrameAccepted {
                src,
                dst,
                seq,
                attempt,
            }
            | ProtocolEvent::FrameDuplicate {
                src,
                dst,
                seq,
                attempt,
            }
            | ProtocolEvent::FrameDropped {
                src,
                dst,
                seq,
                attempt,
            } => {
                *self.frames.entry((*src, *dst, *seq, *attempt)).or_insert(0) -= 1;
            }
            _ => {}
        }
    }

    fn finish(&mut self) -> Vec<Violation> {
        self.check_conservation();
        for race in self.race.take() {
            self.push(race);
        }
        std::mem::take(&mut self.violations)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncp2_core::diff::Diff;
    use ncp2_core::protocol::OverlapMode;

    fn oracle() -> VerifyOracle {
        VerifyOracle::new(
            &SysParams::default().with_nprocs(4),
            &Protocol::TreadMarks(OverlapMode::Base),
        )
    }

    fn access(pid: usize, addr: u64, write: bool) -> ProtocolEvent {
        ProtocolEvent::Access {
            pid,
            addr,
            bytes: 4,
            write,
        }
    }

    #[test]
    fn unsynchronized_write_write_is_a_race() {
        let mut o = oracle();
        o.on_event(&access(0, 64, true));
        o.on_event(&access(1, 64, true));
        let v = o.finish();
        assert!(
            v.iter().any(|x| matches!(x, Violation::Race { .. })),
            "{v:?}"
        );
    }

    #[test]
    fn lock_ordered_accesses_are_clean() {
        let mut o = oracle();
        o.on_event(&ProtocolEvent::LockAcquired { pid: 0, lock: 1 });
        o.on_event(&access(0, 64, true));
        o.on_event(&ProtocolEvent::LockReleased { pid: 0, lock: 1 });
        o.on_event(&ProtocolEvent::LockAcquired { pid: 1, lock: 1 });
        o.on_event(&access(1, 64, true));
        o.on_event(&ProtocolEvent::LockReleased { pid: 1, lock: 1 });
        assert!(o.finish().is_empty());
    }

    #[test]
    fn barrier_orders_producer_and_consumers() {
        let mut o = oracle();
        o.on_event(&access(0, 128, true));
        for pid in 0..4 {
            o.on_event(&ProtocolEvent::BarrierArrived { pid, barrier: 0 });
        }
        for pid in 0..4 {
            o.on_event(&ProtocolEvent::BarrierCompleted { pid, barrier: 0 });
        }
        for pid in 0..4 {
            o.on_event(&access(pid, 128, false));
        }
        assert!(o.finish().is_empty());
    }

    #[test]
    fn barrier_id_reuse_keeps_episodes_apart() {
        let mut o = oracle();
        // Episode 1 arrivals...
        for pid in 0..4 {
            o.on_event(&ProtocolEvent::BarrierArrived { pid, barrier: 0 });
        }
        // ...processor 0 completes and races ahead to the next episode of
        // the same barrier id before the others complete episode 1.
        o.on_event(&ProtocolEvent::BarrierCompleted { pid: 0, barrier: 0 });
        o.on_event(&access(0, 256, true));
        o.on_event(&ProtocolEvent::BarrierArrived { pid: 0, barrier: 0 });
        for pid in 1..4 {
            o.on_event(&ProtocolEvent::BarrierCompleted { pid, barrier: 0 });
        }
        for pid in 1..4 {
            o.on_event(&ProtocolEvent::BarrierArrived { pid, barrier: 0 });
        }
        for pid in 0..4 {
            o.on_event(&ProtocolEvent::BarrierCompleted { pid, barrier: 0 });
        }
        // The pre-episode-2 write by P0 is ordered before everyone's
        // post-episode-2 reads.
        for pid in 0..4 {
            o.on_event(&access(pid, 256, false));
        }
        assert!(o.finish().is_empty());
    }

    #[test]
    fn exempted_range_suppresses_race_reports_only_there() {
        let mut o = oracle();
        o.exempt_range(64..68);
        o.on_event(&access(0, 64, true));
        o.on_event(&access(1, 64, true)); // annotated benign race
        o.on_event(&access(0, 72, true));
        o.on_event(&access(1, 72, true)); // real race
        let v = o.finish();
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(matches!(v[0], Violation::Race { addr: 72, .. }));
    }

    #[test]
    fn concurrent_writes_to_different_words_are_legal() {
        let mut o = oracle();
        o.on_event(&access(0, 64, true));
        o.on_event(&access(1, 68, true));
        assert!(o.finish().is_empty());
    }

    #[test]
    fn incomplete_diff_is_flagged() {
        let mut o = oracle();
        let mut data = PageBuf::new(4096);
        data.set_word(3, 7);
        data.set_word(9, 1);
        // The diff only records word 3; word 9 changed from the (zero)
        // baseline as well, so reconstruction must fail.
        let twin = {
            let mut t = PageBuf::new(4096);
            t.set_word(9, 1); // hides word 9 from the twin comparison
            t
        };
        let diff = Diff::from_twin(5, 0, 1, &data, &twin);
        o.on_event(&ProtocolEvent::DiffCreated {
            pid: 0,
            page: 5,
            interval: 1,
            diff,
            data: data.clone(),
        });
        let v = o.finish();
        assert!(
            v.iter()
                .any(|x| matches!(x, Violation::DiffIncomplete { bad_words: 1, .. })),
            "{v:?}"
        );
    }

    #[test]
    fn complete_diff_chain_is_clean() {
        let mut o = oracle();
        let mut data = PageBuf::new(4096);
        data.set_word(3, 7);
        let twin = PageBuf::new(4096);
        let d1 = Diff::from_twin(5, 0, 1, &data, &twin);
        o.on_event(&ProtocolEvent::DiffCreated {
            pid: 0,
            page: 5,
            interval: 1,
            diff: d1,
            data: data.clone(),
        });
        // Second interval continues from the first's contents.
        let twin2 = data.clone();
        data.set_word(100, 9);
        let d2 = Diff::from_twin(5, 0, 2, &data, &twin2);
        o.on_event(&ProtocolEvent::DiffCreated {
            pid: 0,
            page: 5,
            interval: 2,
            diff: d2,
            data: data.clone(),
        });
        assert!(o.finish().is_empty());
    }

    #[test]
    fn missing_write_notice_is_flagged() {
        let mut o = oracle();
        let mut vt0 = VectorTime::new(4);
        vt0.bump(0);
        o.on_event(&ProtocolEvent::IntervalClosed {
            pid: 0,
            id: 1,
            vt: vt0.clone(),
            pages: vec![3, 4],
        });
        // P1 comes to cover (0,1) but only records the notice for page 3.
        o.on_event(&ProtocolEvent::NoticeRecorded {
            pid: 1,
            owner: 0,
            id: 1,
            page: 3,
        });
        let mut vt1 = VectorTime::new(4);
        vt1.observe(0, 1);
        o.on_event(&ProtocolEvent::AnnsProcessed { pid: 1, vt: vt1 });
        let v = o.finish();
        assert!(
            v.iter().any(|x| matches!(
                x,
                Violation::WriteNoticeCoverage {
                    pid: 1,
                    owner: 0,
                    interval: 1,
                    page: 4
                }
            )),
            "{v:?}"
        );
    }

    #[test]
    fn covered_write_notices_are_clean_and_not_rechecked() {
        let mut o = oracle();
        let mut vt0 = VectorTime::new(4);
        vt0.bump(0);
        o.on_event(&ProtocolEvent::IntervalClosed {
            pid: 0,
            id: 1,
            vt: vt0.clone(),
            pages: vec![3],
        });
        o.on_event(&ProtocolEvent::NoticeRecorded {
            pid: 1,
            owner: 0,
            id: 1,
            page: 3,
        });
        let mut vt1 = VectorTime::new(4);
        vt1.observe(0, 1);
        o.on_event(&ProtocolEvent::AnnsProcessed {
            pid: 1,
            vt: vt1.clone(),
        });
        // Processing further (empty) batches must not re-flag anything.
        o.on_event(&ProtocolEvent::AnnsProcessed { pid: 1, vt: vt1 });
        assert!(o.finish().is_empty());
    }

    #[test]
    fn vector_time_regression_is_flagged() {
        let mut o = oracle();
        let mut vt = VectorTime::new(4);
        vt.observe(2, 5);
        o.on_event(&ProtocolEvent::AnnsProcessed { pid: 1, vt });
        let lower = VectorTime::new(4);
        o.on_event(&ProtocolEvent::AnnsProcessed { pid: 1, vt: lower });
        let v = o.finish();
        assert!(
            v.iter()
                .any(|x| matches!(x, Violation::VtRegression { pid: 1, .. })),
            "{v:?}"
        );
    }

    #[test]
    fn interval_id_skip_is_flagged() {
        let mut o = oracle();
        let mut vt = VectorTime::new(4);
        vt.observe(0, 2); // first closure claims id 2: id 1 was skipped
        o.on_event(&ProtocolEvent::IntervalClosed {
            pid: 0,
            id: 2,
            vt,
            pages: vec![1],
        });
        let v = o.finish();
        assert!(
            v.iter()
                .any(|x| matches!(x, Violation::VtRegression { pid: 0, .. })),
            "{v:?}"
        );
    }

    #[test]
    fn lost_demand_reply_breaks_conservation() {
        let mut o = oracle();
        o.on_event(&ProtocolEvent::MsgSent {
            src: 0,
            dst: 1,
            kind: MsgKind::DiffReq,
            demand: true,
        });
        // Delivered, but the reply never goes out.
        o.on_event(&ProtocolEvent::MsgDelivered {
            dst: 1,
            kind: MsgKind::DiffReq,
            demand: true,
        });
        let v = o.finish();
        assert!(
            v.iter()
                .any(|x| matches!(x, Violation::MessageConservation { .. })),
            "{v:?}"
        );
    }

    #[test]
    fn balanced_request_reply_traffic_is_clean() {
        let mut o = oracle();
        let send = |o: &mut VerifyOracle, kind, demand| {
            o.on_event(&ProtocolEvent::MsgSent {
                src: 0,
                dst: 1,
                kind,
                demand,
            });
            o.on_event(&ProtocolEvent::MsgDelivered {
                dst: 1,
                kind,
                demand,
            });
        };
        send(&mut o, MsgKind::DiffReq, true);
        send(&mut o, MsgKind::DiffReply, true);
        send(&mut o, MsgKind::LockReq, true);
        send(&mut o, MsgKind::LockGrant, true);
        assert!(o.finish().is_empty());
    }

    #[test]
    fn in_flight_prefetch_at_exit_is_legal() {
        let mut o = oracle();
        o.on_event(&ProtocolEvent::MsgSent {
            src: 0,
            dst: 1,
            kind: MsgKind::DiffReq,
            demand: false,
        });
        // Never delivered: the run ended first. Prefetches may die in the
        // queue without breaking conservation.
        assert!(o.finish().is_empty());
    }

    #[test]
    fn duplicate_foreign_diff_application_is_flagged() {
        let mut o = oracle();
        let data = PageBuf::new(4096);
        for _ in 0..2 {
            o.on_event(&ProtocolEvent::DiffsApplied {
                pid: 1,
                page: 7,
                applied: vec![(0, 3)],
                data: data.clone(),
            });
        }
        let v = o.finish();
        assert!(
            v.iter().any(|x| matches!(
                x,
                Violation::DuplicateDiffApplication {
                    pid: 1,
                    page: 7,
                    owner: 0,
                    interval: 3
                }
            )),
            "{v:?}"
        );
    }

    #[test]
    fn own_diff_reapplication_is_legal() {
        let mut o = oracle();
        let data = PageBuf::new(4096);
        for _ in 0..2 {
            o.on_event(&ProtocolEvent::DiffsApplied {
                pid: 1,
                page: 7,
                applied: vec![(1, 3)],
                data: data.clone(),
            });
        }
        assert!(o.finish().is_empty());
    }

    #[test]
    fn silently_lost_frame_breaks_frame_conservation() {
        let mut o = oracle();
        o.on_event(&ProtocolEvent::FrameSent {
            src: 0,
            dst: 1,
            seq: 4,
            attempt: 0,
        });
        // No terminal fate: the frame vanished between the wire and the
        // receive window. The ledger must flag it.
        let v = o.finish();
        assert!(
            v.iter().any(|x| matches!(
                x,
                Violation::MessageConservation { detail }
                    if detail.contains("seq 4") && detail.contains("never")
            )),
            "{v:?}"
        );
    }

    #[test]
    fn retransmitted_and_duplicated_frames_balance() {
        let mut o = oracle();
        // Attempt 0 dropped by the plan; attempt 1 accepted; a fault-injected
        // duplicate copy of attempt 1 discarded at the receive window; one
        // straggler drained at end of run. All fates accounted — clean.
        let frame = |seq, attempt| (0usize, 1usize, seq as u64, attempt as u32);
        let send = |o: &mut VerifyOracle, (src, dst, seq, attempt)| {
            o.on_event(&ProtocolEvent::FrameSent {
                src,
                dst,
                seq,
                attempt,
            });
        };
        send(&mut o, frame(0, 0));
        o.on_event(&ProtocolEvent::FrameDropped {
            src: 0,
            dst: 1,
            seq: 0,
            attempt: 0,
        });
        send(&mut o, frame(0, 1));
        send(&mut o, frame(0, 1)); // duplicate physical copy
        o.on_event(&ProtocolEvent::FrameAccepted {
            src: 0,
            dst: 1,
            seq: 0,
            attempt: 1,
        });
        o.on_event(&ProtocolEvent::FrameDuplicate {
            src: 0,
            dst: 1,
            seq: 0,
            attempt: 1,
        });
        send(&mut o, frame(1, 0));
        o.on_event(&ProtocolEvent::FrameDropped {
            src: 0,
            dst: 1,
            seq: 1,
            attempt: 0,
        });
        assert!(o.finish().is_empty());
    }

    #[test]
    fn invented_terminal_fate_is_flagged() {
        let mut o = oracle();
        o.on_event(&ProtocolEvent::FrameAccepted {
            src: 2,
            dst: 3,
            seq: 9,
            attempt: 0,
        });
        let v = o.finish();
        assert!(
            v.iter().any(|x| matches!(
                x,
                Violation::MessageConservation { detail }
                    if detail.contains("more") && detail.contains("terminal")
            )),
            "{v:?}"
        );
    }

    #[test]
    fn violation_flood_is_capped() {
        let mut o = oracle();
        for w in 0..(MAX_VIOLATIONS as u64 + 50) {
            o.on_event(&access(0, w * 4, true));
            o.on_event(&access(1, w * 4, true));
        }
        let v = o.finish();
        assert_eq!(v.len(), MAX_VIOLATIONS);
        assert_eq!(o.suppressed(), 50);
    }
}
