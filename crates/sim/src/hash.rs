//! Stable content hashing for configuration types.
//!
//! The experiment engine in `ncp2-bench` addresses cached results by a hash
//! of the full run configuration. [`std::hash::Hasher`] implementations are
//! allowed to vary across releases and platforms, so cache keys use this
//! fixed FNV-1a implementation instead: the same field sequence always
//! produces the same 64-bit key, on any host, forever.
//!
//! Every write is framed (strings are length-prefixed, each scalar occupies
//! exactly eight bytes), so two different field sequences cannot collide by
//! concatenation.

/// Fixed 64-bit FNV-1a hasher for cache keys.
#[derive(Debug, Clone)]
pub struct StableHasher {
    state: u64,
}

const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

impl Default for StableHasher {
    fn default() -> Self {
        Self::new()
    }
}

impl StableHasher {
    /// A hasher at the FNV-1a offset basis.
    pub fn new() -> Self {
        StableHasher { state: FNV_OFFSET }
    }

    /// Absorbs raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= b as u64;
            // overflow: FNV-1a multiply — wraparound is the mixing step.
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Absorbs one unsigned 64-bit scalar (little-endian framing).
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Absorbs a `usize` (widened so 32- and 64-bit hosts agree).
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Absorbs a bool as a full scalar.
    pub fn write_bool(&mut self, v: bool) {
        self.write_u64(v as u64);
    }

    /// Absorbs an `f64` by bit pattern (exact, including the sign of zero).
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Absorbs a string, length-prefixed so `"ab" + "c"` ≠ `"a" + "bc"`.
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write_bytes(s.as_bytes());
    }

    /// The accumulated hash.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_fnv_vector() {
        // FNV-1a of "a" is a published constant.
        let mut h = StableHasher::new();
        h.write_bytes(b"a");
        assert_eq!(h.finish(), 0xAF63_DC4C_8601_EC8C);
    }

    #[test]
    fn framing_prevents_concatenation_collisions() {
        let mut a = StableHasher::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = StableHasher::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn scalars_are_order_sensitive() {
        let mut a = StableHasher::new();
        a.write_u64(1);
        a.write_u64(2);
        let mut b = StableHasher::new();
        b.write_u64(2);
        b.write_u64(1);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn f64_hashing_is_exact() {
        let mut a = StableHasher::new();
        a.write_f64(3.0);
        let mut b = StableHasher::new();
        b.write_f64(3.0000000000000004);
        assert_ne!(a.finish(), b.finish());
    }
}
