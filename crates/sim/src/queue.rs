//! Deterministic event queue.
//!
//! Events are ordered by `(time, priority, sequence)`. The sequence number is
//! assigned at push time, so two runs that push the same events in the same
//! order pop them in the same order — the foundation of the simulator's
//! bit-for-bit determinism.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::Cycles;

/// Scheduling priority for events that share a timestamp.
///
/// `Urgent` models the paper's high-priority protocol-controller commands
/// ("so that we can prevent prefetches from delaying requests for which a
/// computation processor is stalled waiting"); `Low` models prefetches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Priority {
    /// Serviced before anything else at the same timestamp.
    Urgent,
    /// Ordinary protocol traffic.
    #[default]
    Normal,
    /// Prefetches and other deferrable work.
    Low,
}

/// An event scheduled at a point in simulated time.
#[derive(Debug, Clone)]
pub struct Event<T> {
    /// Absolute simulated time at which the event fires.
    pub time: Cycles,
    /// Tie-break priority at equal `time`.
    pub priority: Priority,
    /// Push-order sequence number (unique per queue).
    pub seq: u64,
    /// The event itself.
    pub payload: T,
}

impl<T> PartialEq for Event<T> {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl<T> Eq for Event<T> {}
impl<T> PartialOrd for Event<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Event<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the smallest key pops first.
        other.key().cmp(&self.key())
    }
}

impl<T> Event<T> {
    fn key(&self) -> (Cycles, Priority, u64) {
        (self.time, self.priority, self.seq)
    }
}

/// A deterministic min-priority queue of [`Event`]s.
///
/// ```
/// use ncp2_sim::{EventQueue, Priority};
/// let mut q = EventQueue::new();
/// q.push(5, Priority::Normal, 'x');
/// assert_eq!(q.peek_time(), Some(5));
/// assert_eq!(q.pop().map(|e| e.payload), Some('x'));
/// assert!(q.is_empty());
/// ```
#[derive(Debug)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Event<T>>,
    next_seq: u64,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `payload` at absolute time `time`.
    pub fn push(&mut self, time: Cycles, priority: Priority, payload: T) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Event {
            time,
            priority,
            seq,
            payload,
        });
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<Event<T>> {
        self.heap.pop()
    }

    /// Time of the earliest pending event.
    pub fn peek_time(&self) -> Option<Cycles> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time_then_priority_then_seq() {
        let mut q = EventQueue::new();
        q.push(10, Priority::Normal, 1);
        q.push(10, Priority::Low, 2);
        q.push(10, Priority::Urgent, 3);
        q.push(5, Priority::Low, 4);
        q.push(10, Priority::Urgent, 5);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, vec![4, 3, 5, 1, 2]);
    }

    #[test]
    fn fifo_within_same_key() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(7, Priority::Normal, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = EventQueue::new();
        q.push(42, Priority::Normal, ());
        assert_eq!(q.peek_time(), Some(42));
        assert_eq!(q.pop().map(|e| e.time), Some(42));
        assert_eq!(q.peek_time(), None);
    }
}
