//! Deterministic event queue.
//!
//! Events are ordered by `(time, priority, sequence)`. The sequence number is
//! assigned at push time, so two runs that push the same events in the same
//! order pop them in the same order — the foundation of the simulator's
//! bit-for-bit determinism.
//!
//! The implementation is a *calendar queue* (a bucketed timing wheel, Brown
//! 1988): a power-of-two ring of unordered buckets indexed by the event's
//! "day" (`time >> width_log2`). A pop scans days forward from a maintained
//! lower bound on the minimum pending time and takes the smallest full
//! `(time, priority, seq)` key inside the first day that has events; since a
//! later day only holds strictly later times, that key is the global minimum.
//! Push and pop are O(1) amortized instead of the former `BinaryHeap`'s
//! O(log n), there is no per-operation allocation in steady state, and —
//! crucially — the pop *order* is identical to the heap's, which the
//! equivalence tests below pin down. See DESIGN.md §15 for the invariants.

use std::cell::Cell;
use std::cmp::Ordering;

use crate::time::Cycles;

/// Scheduling priority for events that share a timestamp.
///
/// `Urgent` models the paper's high-priority protocol-controller commands
/// ("so that we can prevent prefetches from delaying requests for which a
/// computation processor is stalled waiting"); `Low` models prefetches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Priority {
    /// Serviced before anything else at the same timestamp.
    Urgent,
    /// Ordinary protocol traffic.
    #[default]
    Normal,
    /// Prefetches and other deferrable work.
    Low,
}

/// An event scheduled at a point in simulated time.
#[derive(Debug, Clone)]
pub struct Event<T> {
    /// Absolute simulated time at which the event fires.
    pub time: Cycles,
    /// Tie-break priority at equal `time`.
    pub priority: Priority,
    /// Push-order sequence number (unique per queue).
    pub seq: u64,
    /// The event itself.
    pub payload: T,
}

impl<T> PartialEq for Event<T> {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl<T> Eq for Event<T> {}
impl<T> PartialOrd for Event<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Event<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Kept heap-compatible (smallest key = greatest Event) so the
        // `#[cfg(test)]` BinaryHeap reference model pops in the same order.
        other.key().cmp(&self.key())
    }
}

impl<T> Event<T> {
    fn key(&self) -> (Cycles, Priority, u64) {
        (self.time, self.priority, self.seq)
    }
}

/// Smallest bucket ring: `1 << MIN_BITS` buckets.
const MIN_BITS: u32 = 4;
/// Largest bucket ring: `1 << MAX_BITS` buckets.
const MAX_BITS: u32 = 20;
/// Upper clamp for `width_log2`; beyond this a single day covers any
/// realistic span of simulated time.
const MAX_WIDTH_LOG2: u32 = 48;

/// A deterministic min-priority queue of [`Event`]s.
///
/// ```
/// use ncp2_sim::{EventQueue, Priority};
/// let mut q = EventQueue::new();
/// q.push(5, Priority::Normal, 'x');
/// assert_eq!(q.peek_time(), Some(5));
/// assert_eq!(q.peek().map(|e| e.payload), Some('x'));
/// assert_eq!(q.pop().map(|e| e.payload), Some('x'));
/// assert!(q.is_empty());
/// ```
#[derive(Debug)]
pub struct EventQueue<T> {
    /// Power-of-two ring of unordered day buckets.
    buckets: Vec<Vec<Event<T>>>,
    /// `buckets.len() == 1 << bucket_bits`.
    bucket_bits: u32,
    /// Cycles per day, as a shift: `day(t) = t >> width_log2`.
    width_log2: u32,
    /// Total pending events across all buckets.
    len: usize,
    /// Next push-order sequence number.
    next_seq: u64,
    /// Lower bound on every pending event's time. Pops are monotone
    /// non-decreasing in time, so the last popped time is a valid bound;
    /// pushes below it lower it.
    min_hint: Cycles,
    /// Memoized position of the minimum event (`bucket`, `slot`), kept
    /// coherent by push and cleared by pop/rebuild, so peek-then-pop costs
    /// one scan instead of two. Purely an optimization: never affects order.
    cached_min: Cell<Option<(u32, u32)>>,
    /// Set when a scan had to fall back to a full ring walk (some event lay
    /// a whole year past `min_hint`); the next pop retunes the day width.
    want_retune: Cell<bool>,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            buckets: (0..1usize << MIN_BITS).map(|_| Vec::new()).collect(),
            bucket_bits: MIN_BITS,
            width_log2: 6,
            len: 0,
            next_seq: 0,
            min_hint: 0,
            cached_min: Cell::new(None),
            want_retune: Cell::new(false),
        }
    }

    /// Schedules `payload` at absolute time `time`.
    pub fn push(&mut self, time: Cycles, priority: Priority, payload: T) {
        let seq = self.next_seq;
        self.next_seq += 1;
        if self.len == 0 || time < self.min_hint {
            self.min_hint = time;
        }
        let ev = Event {
            time,
            priority,
            seq,
            payload,
        };
        // Keep the memoized minimum coherent: a new event can only displace
        // it by comparing smaller on the full key.
        if let Some((cb, cs)) = self.cached_min.get() {
            let cur = &self.buckets[cb as usize][cs as usize];
            if ev.key() < cur.key() {
                let b = self.bucket_of(time);
                let slot = self.buckets[b].len();
                self.buckets[b].push(ev);
                self.cached_min.set(Some((b as u32, slot as u32)));
                self.len += 1;
                self.maybe_grow();
                return;
            }
        }
        let b = self.bucket_of(time);
        self.buckets[b].push(ev);
        self.len += 1;
        self.maybe_grow();
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<Event<T>> {
        let (b, s) = self.scan_min()?;
        let ev = self.buckets[b].swap_remove(s);
        self.len -= 1;
        self.min_hint = ev.time;
        self.cached_min.set(None);
        if self.want_retune.take() {
            self.retune();
        } else {
            self.maybe_shrink();
        }
        Some(ev)
    }

    /// The earliest pending event, if any.
    pub fn peek(&self) -> Option<&Event<T>> {
        let (b, s) = self.scan_min()?;
        Some(&self.buckets[b][s])
    }

    /// Time of the earliest pending event.
    pub fn peek_time(&self) -> Option<Cycles> {
        self.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bucket index for an event at `time`.
    fn bucket_of(&self, time: Cycles) -> usize {
        ((time >> self.width_log2) & ((1u64 << self.bucket_bits) - 1)) as usize
    }

    /// Locates the minimum-key event as `(bucket, slot)`, memoizing the
    /// result. Scans days forward from `min_hint`'s day; the first day with
    /// events contains the global minimum because every later day holds
    /// strictly greater times. Events more than a full ring "year" ahead are
    /// invisible to that walk, so a fruitless full circle falls back to a
    /// global scan and schedules a width retune.
    fn scan_min(&self) -> Option<(usize, usize)> {
        if self.len == 0 {
            return None;
        }
        if let Some((b, s)) = self.cached_min.get() {
            return Some((b as usize, s as usize));
        }
        let nbuckets = 1u64 << self.bucket_bits;
        let start_day = self.min_hint >> self.width_log2;
        for i in 0..nbuckets {
            // overflow: a day index never overflows in practice (times are
            // cycle counts), but saturate defensively — a saturated day
            // matches no event and the global fallback below stays correct.
            let day = start_day.saturating_add(i);
            let b = (day & (nbuckets - 1)) as usize;
            let mut best: Option<(usize, (Cycles, Priority, u64))> = None;
            for (slot, ev) in self.buckets[b].iter().enumerate() {
                if ev.time >> self.width_log2 == day {
                    let k = ev.key();
                    if best.is_none_or(|(_, bk)| k < bk) {
                        best = Some((slot, k));
                    }
                }
            }
            if let Some((slot, _)) = best {
                self.cached_min.set(Some((b as u32, slot as u32)));
                return Some((b, slot));
            }
        }
        // Everything pending is at least a year past `min_hint`: find the
        // global minimum directly and ask pop to retune the day width so the
        // ring covers the new span.
        self.want_retune.set(true);
        type MinCandidate = ((usize, usize), (Cycles, Priority, u64));
        let mut best: Option<MinCandidate> = None;
        for (b, bucket) in self.buckets.iter().enumerate() {
            for (slot, ev) in bucket.iter().enumerate() {
                let k = ev.key();
                if best.is_none_or(|(_, bk)| k < bk) {
                    best = Some(((b, slot), k));
                }
            }
        }
        let ((b, s), _) = best.expect("len > 0 but no event found in any bucket");
        self.cached_min.set(Some((b as u32, s as u32)));
        Some((b, s))
    }

    /// Doubles the ring when buckets get crowded (> 4 events per bucket on
    /// average). Triggered purely by `len`, so it is deterministic across
    /// runs that perform the same operation sequence.
    fn maybe_grow(&mut self) {
        if self.bucket_bits < MAX_BITS && self.len > (4usize << self.bucket_bits) {
            self.rebuild(self.bucket_bits + 1);
        }
    }

    /// Halves the ring when it is nearly empty (< 1 event per 8 buckets).
    /// The wide hysteresis band vs. [`Self::maybe_grow`] prevents thrashing.
    fn maybe_shrink(&mut self) {
        if self.bucket_bits > MIN_BITS && self.len * 8 < (1usize << self.bucket_bits) {
            self.rebuild(self.bucket_bits - 1);
        }
    }

    /// Re-derives the day width from the current content span and rebuilds
    /// if it changed. Called after a fallback scan proved the ring's year too
    /// short for the pending span.
    fn retune(&mut self) {
        if self.len == 0 {
            return;
        }
        let (min_t, max_t) = self.time_span();
        let w = Self::width_for(max_t - min_t, self.bucket_bits);
        if w != self.width_log2 {
            self.rebuild(self.bucket_bits);
        }
    }

    /// Day width (as a shift) such that a full ring year covers `span`.
    fn width_for(span: Cycles, bits: u32) -> u32 {
        // Smallest w with (1 << (w + bits)) > span.
        let needed = 64 - span.leading_zeros();
        // overflow: a span smaller than the ring would make `needed < bits`;
        // saturating to width 0 (one-cycle days) is exactly right there.
        needed.saturating_sub(bits).min(MAX_WIDTH_LOG2)
    }

    /// Minimum and maximum pending times. Only called with `len > 0`.
    fn time_span(&self) -> (Cycles, Cycles) {
        let mut min_t = Cycles::MAX;
        let mut max_t = 0;
        for bucket in &self.buckets {
            for ev in bucket {
                min_t = min_t.min(ev.time);
                max_t = max_t.max(ev.time);
            }
        }
        (min_t, max_t)
    }

    /// Redistributes all events into a ring of `1 << bits` buckets with a
    /// width tuned to the pending span. Layout-only: times, priorities and
    /// sequence numbers are untouched, so pop order is unaffected.
    fn rebuild(&mut self, bits: u32) {
        let mut events: Vec<Event<T>> = Vec::with_capacity(self.len);
        for bucket in &mut self.buckets {
            events.append(bucket);
        }
        let (min_t, max_t) = if events.is_empty() {
            (self.min_hint, self.min_hint)
        } else {
            let mut min_t = Cycles::MAX;
            let mut max_t = 0;
            for ev in &events {
                min_t = min_t.min(ev.time);
                max_t = max_t.max(ev.time);
            }
            (min_t, max_t)
        };
        self.bucket_bits = bits;
        self.width_log2 = Self::width_for(max_t - min_t, bits);
        self.buckets = (0..1usize << bits).map(|_| Vec::new()).collect();
        self.min_hint = min_t;
        self.cached_min.set(None);
        self.want_retune.set(false);
        for ev in events {
            let b = self.bucket_of(ev.time);
            self.buckets[b].push(ev);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BinaryHeap;

    /// The pre-calendar-queue implementation, kept verbatim as the reference
    /// model for the observational-equivalence property tests below.
    struct HeapQueue<T> {
        heap: BinaryHeap<Event<T>>,
        next_seq: u64,
    }

    impl<T> HeapQueue<T> {
        fn new() -> Self {
            HeapQueue {
                heap: BinaryHeap::new(),
                next_seq: 0,
            }
        }

        fn push(&mut self, time: Cycles, priority: Priority, payload: T) {
            let seq = self.next_seq;
            self.next_seq += 1;
            self.heap.push(Event {
                time,
                priority,
                seq,
                payload,
            });
        }

        fn pop(&mut self) -> Option<Event<T>> {
            self.heap.pop()
        }

        fn peek(&self) -> Option<&Event<T>> {
            self.heap.peek()
        }
    }

    fn prio(p: u8) -> Priority {
        match p % 3 {
            0 => Priority::Urgent,
            1 => Priority::Normal,
            _ => Priority::Low,
        }
    }

    #[test]
    fn orders_by_time_then_priority_then_seq() {
        let mut q = EventQueue::new();
        q.push(10, Priority::Normal, 1);
        q.push(10, Priority::Low, 2);
        q.push(10, Priority::Urgent, 3);
        q.push(5, Priority::Low, 4);
        q.push(10, Priority::Urgent, 5);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, vec![4, 3, 5, 1, 2]);
    }

    #[test]
    fn fifo_within_same_key() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(7, Priority::Normal, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = EventQueue::new();
        q.push(42, Priority::Normal, ());
        assert_eq!(q.peek_time(), Some(42));
        assert_eq!(q.peek().map(|e| e.time), Some(42));
        assert_eq!(q.pop().map(|e| e.time), Some(42));
        assert_eq!(q.peek_time(), None);
        assert!(q.peek().is_none());
    }

    #[test]
    fn far_future_events_pop_correctly() {
        // Events many ring-years apart force the fallback scan + retune.
        let mut q = EventQueue::new();
        q.push(1u64 << 40, Priority::Normal, 'd');
        q.push(0, Priority::Normal, 'a');
        q.push(1u64 << 20, Priority::Normal, 'c');
        q.push(3, Priority::Normal, 'b');
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, vec!['a', 'b', 'c', 'd']);
    }

    #[test]
    fn grows_and_shrinks_without_reordering() {
        let mut q = EventQueue::new();
        // Enough events to trigger several doublings...
        for i in 0..10_000u64 {
            q.push(i * 37 % 4096, prio(i as u8), i);
        }
        // ...then drain fully (exercises shrink) and check global order.
        let mut last = None;
        let mut n = 0;
        while let Some(ev) = q.pop() {
            let k = (ev.time, ev.priority, ev.seq);
            if let Some(prev) = last {
                assert!(prev < k, "pop order violated: {prev:?} then {k:?}");
            }
            last = Some(k);
            n += 1;
        }
        assert_eq!(n, 10_000);
    }

    /// Drives the calendar queue and the heap reference model through the
    /// same operation sequence and checks every observation is identical.
    fn check_equivalence(ops: &[(u8, u64, u8)], wide: bool) {
        let mut cal = EventQueue::new();
        let mut heap = HeapQueue::new();
        let mut payload = 0u64;
        for &(kind, t, p) in ops {
            match kind % 4 {
                // Push twice as often as pop so queues actually fill up.
                0 | 1 => {
                    // `wide` mixes day-scale and year-scale times to exercise
                    // the fallback/retune path; otherwise keep times colliding.
                    let time = if wide && t % 7 == 0 { t << 30 } else { t % 64 };
                    cal.push(time, prio(p), payload);
                    heap.push(time, prio(p), payload);
                    payload += 1;
                }
                2 => {
                    let a = cal.pop().map(|e| (e.time, e.priority, e.seq, e.payload));
                    let b = heap.pop().map(|e| (e.time, e.priority, e.seq, e.payload));
                    assert_eq!(a, b, "pop diverged from reference model");
                }
                _ => {
                    let a = cal.peek().map(|e| (e.time, e.priority, e.seq, e.payload));
                    let b = heap.peek().map(|e| (e.time, e.priority, e.seq, e.payload));
                    assert_eq!(a, b, "peek diverged from reference model");
                    assert_eq!(cal.peek_time(), heap.peek().map(|e| e.time));
                }
            }
            assert_eq!(cal.len(), heap.heap.len());
        }
        // Drain both completely: the tails must agree too.
        loop {
            let a = cal.pop().map(|e| (e.time, e.priority, e.seq, e.payload));
            let b = heap.pop().map(|e| (e.time, e.priority, e.seq, e.payload));
            assert_eq!(a, b, "drain diverged from reference model");
            if a.is_none() {
                break;
            }
        }
    }

    proptest! {
        /// Satellite 1: random interleaved push/pop/peek sequences with
        /// heavily colliding times and priorities observe byte-identical
        /// behavior from the calendar queue and the old BinaryHeap.
        #[test]
        fn calendar_equals_heap_colliding_keys(
            ops in prop::collection::vec((0u8..4, 0u64..1000, 0u8..3), 1..400)
        ) {
            check_equivalence(&ops, false);
        }

        /// Same, with times spanning many ring-years so resize, fallback and
        /// retune all fire mid-sequence.
        #[test]
        fn calendar_equals_heap_wide_times(
            ops in prop::collection::vec((0u8..4, 0u64..1000, 0u8..3), 1..400)
        ) {
            check_equivalence(&ops, true);
        }
    }
}
