//! # ncp2-sim — deterministic discrete-event engine
//!
//! Building blocks for the NCP2 software-DSM simulation study (Bianchini et
//! al., ASPLOS 1996): a deterministic event queue, FIFO resource reservation,
//! the Table-1 system parameters, a seeded RNG, execution-time breakdown
//! accounting, and the *rendezvous front end* that lets real Rust workload
//! threads drive the simulated computation processors one shared-memory
//! reference at a time (the role Mint played in the paper).
//!
//! The back end (protocol simulation) lives in `ncp2-core`; it consumes these
//! primitives. A minimal use of the engine:
//!
//! ```
//! use ncp2_sim::{EventQueue, Priority};
//!
//! let mut q: EventQueue<&'static str> = EventQueue::new();
//! q.push(30, Priority::Normal, "c");
//! q.push(10, Priority::Normal, "a");
//! q.push(10, Priority::Urgent, "b"); // same time, higher priority first
//! assert_eq!(q.pop().map(|e| e.payload), Some("b"));
//! assert_eq!(q.pop().map(|e| e.payload), Some("a"));
//! assert_eq!(q.pop().map(|e| e.payload), Some("c"));
//! ```

pub mod breakdown;
pub mod config;
pub mod hash;
pub mod ops;
pub mod proc;
pub mod queue;
pub mod resource;
pub mod rng;
pub mod time;

pub use breakdown::{Breakdown, Category};
pub use config::{PrefetchStrategy, SysParams};
pub use hash::StableHasher;
pub use ops::{ProcOp, ProcReply, SvcClass, SvcOp};
pub use proc::{ProcHarness, ProcPort, ProcStatus};
pub use queue::{Event, EventQueue, Priority};
pub use resource::FifoResource;
pub use rng::SimRng;
pub use time::{Cycles, CYCLE_NS};
