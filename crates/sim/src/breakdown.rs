//! Execution-time breakdown accounting.
//!
//! The paper reports per-processor execution time split into **busy**, **data
//! fetch**, **synchronization**, **IPC** and **others** (TLB miss, write
//! buffer stalls, interrupts, cache miss latency). Every advance of a
//! simulated processor's clock is tagged with one of these categories so the
//! categories always sum to the processor's total time.

use serde::{Deserialize, Serialize};

use crate::time::Cycles;

/// The five execution-time categories of Figure 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Category {
    /// Useful computation (including 1-cycle cache-hit references).
    Busy,
    /// Waiting for pages/diffs as a result of access faults.
    Data,
    /// Lock/barrier waits, including interval and write-notice processing.
    Synch,
    /// Servicing requests from remote processors.
    Ipc,
    /// TLB misses, write-buffer stalls, cache-miss latency, interrupt entry.
    Other,
}

impl Category {
    /// All categories in the paper's plotting order (bottom to top).
    pub const ALL: [Category; 5] = [
        Category::Busy,
        Category::Data,
        Category::Synch,
        Category::Ipc,
        Category::Other,
    ];

    /// Short lowercase label used in tables ("busy", "data", ...).
    pub fn label(self) -> &'static str {
        match self {
            Category::Busy => "busy",
            Category::Data => "data",
            Category::Synch => "synch",
            Category::Ipc => "ipc",
            Category::Other => "others",
        }
    }
}

/// Per-category cycle counters for one processor (or aggregated).
///
/// ```
/// use ncp2_sim::{Breakdown, Category};
/// let mut b = Breakdown::default();
/// b.add(Category::Busy, 75);
/// b.add(Category::Data, 25);
/// assert_eq!(b.total(), 100);
/// assert!((b.fraction(Category::Busy) - 0.75).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Breakdown {
    /// Useful computation cycles.
    pub busy: Cycles,
    /// Data-fetch (fault service) wait cycles.
    pub data: Cycles,
    /// Synchronization wait cycles.
    pub synch: Cycles,
    /// Remote-request service cycles.
    pub ipc: Cycles,
    /// Everything else (TLB, write buffer, cache misses, interrupts).
    pub other: Cycles,
}

impl Breakdown {
    /// Adds `cycles` to one category.
    pub fn add(&mut self, cat: Category, cycles: Cycles) {
        *self.slot_mut(cat) += cycles;
    }

    /// Moves `cycles` from one category to another (used to reclassify wait
    /// time as IPC when a blocked processor services a remote request).
    /// Moves at most what the source category holds; returns the amount moved.
    pub fn reclassify(&mut self, from: Category, to: Category, cycles: Cycles) -> Cycles {
        let avail = self.get(from);
        let moved = cycles.min(avail);
        *self.slot_mut(from) -= moved;
        *self.slot_mut(to) += moved;
        moved
    }

    /// Cycle count of one category.
    pub fn get(&self, cat: Category) -> Cycles {
        match cat {
            Category::Busy => self.busy,
            Category::Data => self.data,
            Category::Synch => self.synch,
            Category::Ipc => self.ipc,
            Category::Other => self.other,
        }
    }

    fn slot_mut(&mut self, cat: Category) -> &mut Cycles {
        match cat {
            Category::Busy => &mut self.busy,
            Category::Data => &mut self.data,
            Category::Synch => &mut self.synch,
            Category::Ipc => &mut self.ipc,
            Category::Other => &mut self.other,
        }
    }

    /// Sum over all categories.
    pub fn total(&self) -> Cycles {
        self.busy + self.data + self.synch + self.ipc + self.other
    }

    /// Fraction of the total in one category (0 if the total is 0).
    pub fn fraction(&self, cat: Category) -> f64 {
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            self.get(cat) as f64 / t as f64
        }
    }

    /// Element-wise sum, for aggregating processors.
    pub fn merged(&self, other: &Breakdown) -> Breakdown {
        Breakdown {
            busy: self.busy + other.busy,
            data: self.data + other.data,
            synch: self.synch + other.synch,
            ipc: self.ipc + other.ipc,
            other: self.other + other.other,
        }
    }
}

impl std::iter::Sum for Breakdown {
    fn sum<I: Iterator<Item = Breakdown>>(iter: I) -> Breakdown {
        iter.fold(Breakdown::default(), |a, b| a.merged(&b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_fractions() {
        let mut b = Breakdown::default();
        for (i, c) in Category::ALL.iter().enumerate() {
            b.add(*c, (i as u64 + 1) * 10);
        }
        assert_eq!(b.total(), 150);
        assert!((b.fraction(Category::Other) - 50.0 / 150.0).abs() < 1e-12);
    }

    #[test]
    fn reclassify_preserves_total() {
        let mut b = Breakdown {
            data: 100,
            ..Default::default()
        };
        let moved = b.reclassify(Category::Data, Category::Ipc, 30);
        assert_eq!(moved, 30);
        assert_eq!(b.data, 70);
        assert_eq!(b.ipc, 30);
        assert_eq!(b.total(), 100);
    }

    #[test]
    fn reclassify_clamps_to_available() {
        let mut b = Breakdown {
            synch: 10,
            ..Default::default()
        };
        let moved = b.reclassify(Category::Synch, Category::Ipc, 25);
        assert_eq!(moved, 10);
        assert_eq!(b.synch, 0);
        assert_eq!(b.ipc, 10);
    }

    #[test]
    fn merged_and_sum() {
        let a = Breakdown {
            busy: 1,
            data: 2,
            synch: 3,
            ipc: 4,
            other: 5,
        };
        let b = Breakdown {
            busy: 10,
            data: 20,
            synch: 30,
            ipc: 40,
            other: 50,
        };
        let m: Breakdown = [a, b].into_iter().sum();
        assert_eq!(m, a.merged(&b));
        assert_eq!(m.total(), 165);
    }

    #[test]
    fn empty_fraction_is_zero() {
        assert_eq!(Breakdown::default().fraction(Category::Busy), 0.0);
    }
}
