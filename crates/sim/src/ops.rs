//! The operation vocabulary between simulated processors (front end) and the
//! protocol back end.
//!
//! Every interaction a workload has with the simulated machine is one of
//! these operations; the back end observes them in global simulated-time
//! order, exactly like the paper's Mint front end calling the back end on
//! every data reference.

use crate::time::Cycles;

/// Identifier of a simulated processor / node (0-based).
pub type ProcId = usize;

/// Identifier of a DSM lock.
pub type LockId = u32;

/// Identifier of a DSM barrier.
pub type BarrierId = u32;

/// One operation issued by a simulated computation processor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProcOp {
    /// Local computation of the given number of cycles (private data
    /// references and ALU work folded into a calibrated cost).
    Compute(Cycles),
    /// Shared-memory read of `bytes` (1, 2, 4 or 8) at byte address `addr`.
    Read { addr: u64, bytes: u8 },
    /// Shared-memory write; `value` holds the raw little-endian bits.
    Write { addr: u64, bytes: u8, value: u64 },
    /// Acquire a DSM lock.
    Lock(LockId),
    /// Release a DSM lock.
    Unlock(LockId),
    /// Enter a DSM barrier (all processors must arrive).
    Barrier(BarrierId),
    /// The workload on this processor is finished.
    Finish,
    /// A service-plane operation (clock read, request lifecycle marker).
    /// Never blocks and consumes zero simulated time; it exists so the
    /// open-loop service workload can observe the node clock and report
    /// per-request response times to the back end.
    Svc(SvcOp),
}

/// Request class served by the open-loop service workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum SvcClass {
    /// Read-mostly catalog lookup.
    Get,
    /// Key-value update.
    Put,
    /// Migratory session mutation pinned by a DSM lock.
    Session,
}

impl SvcClass {
    /// Stable lowercase label for traces and reports.
    pub fn label(self) -> &'static str {
        match self {
            SvcClass::Get => "get",
            SvcClass::Put => "put",
            SvcClass::Session => "session",
        }
    }
}

/// Service-plane operations issued by the open-loop service workload.
///
/// All of them complete instantly in simulated time (the back end replies
/// without advancing the node clock); their purpose is observation, not
/// simulation work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SvcOp {
    /// Read the issuing node's current simulated clock.
    Now,
    /// A request was dequeued for service; `depth` is the number of
    /// already-arrived, not-yet-served requests at this node *after* the
    /// dequeue (the instantaneous backlog).
    Dequeue { depth: u64 },
    /// A request finished service; `response` is its full open-loop
    /// response time (completion minus *arrival*, queueing included).
    Reply { class: SvcClass, response: Cycles },
}

impl ProcOp {
    /// Whether this operation can block the issuing processor on remote
    /// state (everything except pure computation, `Finish`, and the
    /// zero-time service-plane markers).
    pub fn may_block(&self) -> bool {
        !matches!(self, ProcOp::Compute(_) | ProcOp::Finish | ProcOp::Svc(_))
    }
}

/// Back-end response completing a [`ProcOp`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProcReply {
    /// Operation completed; no data.
    Ack,
    /// Read completed with the raw value bits.
    Value(u64),
}

impl ProcReply {
    /// Extracts the value of a read reply.
    ///
    /// # Panics
    ///
    /// Panics if the reply is not [`ProcReply::Value`]; that indicates a
    /// front-/back-end protocol bug, not a user error.
    pub fn value(self) -> u64 {
        match self {
            ProcReply::Value(v) => v,
            ProcReply::Ack => panic!("expected a value reply"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blocking_classification() {
        assert!(!ProcOp::Compute(5).may_block());
        assert!(!ProcOp::Finish.may_block());
        assert!(ProcOp::Read { addr: 0, bytes: 4 }.may_block());
        assert!(ProcOp::Write {
            addr: 0,
            bytes: 4,
            value: 1
        }
        .may_block());
        assert!(ProcOp::Lock(0).may_block());
        assert!(ProcOp::Unlock(0).may_block());
        assert!(ProcOp::Barrier(0).may_block());
        assert!(!ProcOp::Svc(SvcOp::Now).may_block());
        assert!(!ProcOp::Svc(SvcOp::Dequeue { depth: 3 }).may_block());
        assert!(!ProcOp::Svc(SvcOp::Reply {
            class: SvcClass::Get,
            response: 100
        })
        .may_block());
    }

    #[test]
    fn svc_class_labels_are_stable() {
        assert_eq!(SvcClass::Get.label(), "get");
        assert_eq!(SvcClass::Put.label(), "put");
        assert_eq!(SvcClass::Session.label(), "session");
    }

    #[test]
    fn value_extraction() {
        assert_eq!(ProcReply::Value(42).value(), 42);
    }

    #[test]
    #[should_panic(expected = "expected a value")]
    fn ack_has_no_value() {
        let _ = ProcReply::Ack.value();
    }
}
