//! System parameters — Table 1 of the paper, plus the sweep knobs of §5.3.
//!
//! All times are in 10-ns processor cycles. The protocol controller's RISC
//! core and DMA engine run at the computation-processor clock (paper §4.1).

use serde::{Deserialize, Serialize};

use crate::hash::StableHasher;
use crate::time::{self, Cycles};

/// Which invalid pages an acquire-time prefetch targets. The paper's
/// heuristic prefetches every invalidated page that was ever cached and
/// referenced; its companion report (Bianchini, Pinto & Amorim, "Page Fault
/// Behavior and Prefetching in Software DSMs", 1996) explores less
/// aggressive strategies, reproduced here as an extension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PrefetchStrategy {
    /// Every invalid page that was referenced at any point since it was
    /// first touched (the paper's sticky heuristic).
    AllReferenced,
    /// Only pages that were referenced during their most recent validity
    /// window — stale interest expires.
    RecentlyReferenced,
    /// The sticky heuristic capped at N pages per acquire (lowest page ids
    /// first, deterministic).
    Capped(usize),
}

/// Word size used for diff bit vectors and memory-transfer accounting (bytes).
pub const WORD_BYTES: u64 = 4;

/// Full simulated-system parameter set.
///
/// `SysParams::default()` reproduces Table 1 exactly; the `with_*` builders
/// implement the §5.3 sweeps.
///
/// ```
/// use ncp2_sim::SysParams;
/// let p = SysParams::default();
/// assert_eq!(p.nprocs, 16);
/// assert_eq!(p.page_bytes, 4096);
/// assert_eq!(p.messaging_overhead, 200);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SysParams {
    /// Number of workstation nodes (computation processors).
    pub nprocs: usize,
    /// TLB entries per processor.
    pub tlb_entries: usize,
    /// TLB fill service time (cycles).
    pub tlb_fill: Cycles,
    /// Cost of any interrupt delivered to the computation processor (cycles).
    pub interrupt: Cycles,
    /// Page size in bytes.
    pub page_bytes: u64,
    /// Total first-level data cache per processor (bytes); direct mapped.
    pub cache_bytes: u64,
    /// Write buffer entries.
    pub write_buffer_entries: usize,
    /// AURC network-interface write cache entries.
    pub write_cache_entries: usize,
    /// Cache line size in bytes.
    pub line_bytes: u64,
    /// Memory setup time (cycles) before the first word of an access.
    pub mem_setup: Cycles,
    /// Memory access time after setup, cycles per 4-byte word (may be
    /// fractional when swept to a target bandwidth).
    pub mem_cycles_per_word: f64,
    /// PCI setup time (cycles).
    pub pci_setup: Cycles,
    /// PCI burst access time after setup, cycles per word.
    pub pci_cycles_per_word: f64,
    /// Network serialization: cycles per byte on a link (8-bit path moving
    /// one flit per 2-cycle wire hop = 2.0 = 50 MB/s).
    pub net_cycles_per_byte: f64,
    /// Software messaging overhead per message (network-interface setup).
    pub messaging_overhead: Cycles,
    /// Per-update-message overhead for AURC automatic updates. The paper's
    /// default optimistically charges a single cycle; §5.3 shows AURC
    /// degrading when updates pay the full messaging overhead.
    pub au_messaging_overhead: Cycles,
    /// Receive-side cost of transport acknowledgement processing (generating
    /// or absorbing an ack / discarding a duplicate frame), cycles. Only
    /// charged when a fault plan activates the hardened transport.
    pub ack_overhead: Cycles,
    /// Base retransmission timeout for unacknowledged transport frames,
    /// cycles; doubles per attempt up to the backoff cap.
    pub retransmit_timeout: Cycles,
    /// Mesh switch latency per hop (cycles).
    pub switch_latency: Cycles,
    /// Wire latency per hop (cycles).
    pub wire_latency: Cycles,
    /// Protocol list processing (cycles per element).
    pub list_processing: Cycles,
    /// Software page twinning cost, cycles per word (plus memory accesses).
    pub twin_cycles_per_word: Cycles,
    /// Software diff creation/application, cycles per word (plus memory).
    pub diff_cycles_per_word: Cycles,
    /// DMA bit-vector scan: cycles for an all-clean 4-KB page.
    pub dma_scan_base: Cycles,
    /// DMA bit-vector scan: cycles for an all-dirty 4-KB page.
    pub dma_scan_full: Cycles,
    /// Enable AURC's optimized pairwise sharing (ablation knob; the paper's
    /// AURC always has it on).
    pub aurc_pairwise: bool,
    /// TreadMarks faults with more pending write notices than this fetch the
    /// whole page instead of a diff chain (ablation knob).
    pub page_req_threshold: usize,
    /// Acquire-time prefetch target selection (P/I+P/I+P+D and AURC+P).
    pub prefetch_strategy: PrefetchStrategy,
    /// Record a protocol event trace on the run result (off by default —
    /// traces grow with every message).
    pub trace: bool,
    /// Time-series window width in cycles for the windowed sampler
    /// (`ncp2-core::timeseries`). `0` (the default) auto-picks: the recorder
    /// starts at a small base width and doubles it whenever the run outgrows
    /// the window cap, so every run lands in a bounded number of windows.
    /// Only read when time-series recording is enabled; never affects
    /// simulated timing.
    pub ts_window: Cycles,
    /// Master seed for workload randomness.
    pub seed: u64,
}

impl Default for SysParams {
    fn default() -> Self {
        SysParams {
            nprocs: 16,
            tlb_entries: 128,
            tlb_fill: 100,
            interrupt: 400,
            page_bytes: 4096,
            cache_bytes: 128 * 1024,
            write_buffer_entries: 4,
            write_cache_entries: 4,
            line_bytes: 32,
            mem_setup: 10,
            mem_cycles_per_word: 3.0,
            pci_setup: 10,
            pci_cycles_per_word: 3.0,
            net_cycles_per_byte: 2.0,
            messaging_overhead: 200,
            au_messaging_overhead: 1,
            ack_overhead: 100,
            retransmit_timeout: 20_000,
            switch_latency: 4,
            wire_latency: 2,
            list_processing: 6,
            twin_cycles_per_word: 5,
            diff_cycles_per_word: 7,
            dma_scan_base: 200,
            dma_scan_full: 2100,
            aurc_pairwise: true,
            page_req_threshold: 32,
            prefetch_strategy: PrefetchStrategy::AllReferenced,
            trace: false,
            ts_window: 0,
            seed: 0x4E43_5032, // "NCP2"
        }
    }
}

impl SysParams {
    /// Words per page.
    pub fn page_words(&self) -> u64 {
        self.page_bytes / WORD_BYTES
    }

    /// Words per cache line.
    pub fn line_words(&self) -> u64 {
        self.line_bytes / WORD_BYTES
    }

    /// Number of direct-mapped cache lines.
    pub fn cache_lines(&self) -> u64 {
        self.cache_bytes / self.line_bytes
    }

    /// Memory occupancy of a `words`-word access: setup plus per-word cycles.
    pub fn mem_access(&self, words: u64) -> Cycles {
        self.mem_setup + (self.mem_cycles_per_word * words as f64).round() as Cycles
    }

    /// PCI occupancy of a `words`-word burst.
    pub fn pci_access(&self, words: u64) -> Cycles {
        self.pci_setup + (self.pci_cycles_per_word * words as f64).round() as Cycles
    }

    /// Memory occupancy of `words` *scattered* words (diff scatter/gather):
    /// setup is paid once per cache-line-sized chunk instead of once per
    /// transfer, so scattered traffic is far more latency-sensitive than
    /// whole-page bursts — the §5.3 asymmetry between the diff-based
    /// TreadMarks and AURC's page copies.
    pub fn mem_scattered(&self, words: u64) -> Cycles {
        let chunk = self.line_words().max(1);
        words.div_ceil(chunk) * self.mem_access(chunk)
    }

    /// DMA diff-engine bit-vector scan time for a page with `dirty_words`
    /// set bits: linear interpolation between the paper's endpoints
    /// (~200 cycles all-clean, ~2100 cycles all-dirty for a 4-KB page).
    pub fn dma_scan(&self, dirty_words: u64) -> Cycles {
        let full = self.page_words();
        // overflow: a degenerate config may set full <= base; treat the
        // scan as flat instead of underflowing.
        let span = self.dma_scan_full.saturating_sub(self.dma_scan_base);
        self.dma_scan_base + span * dirty_words.min(full) / full
    }

    /// Network serialization time for a message body of `bytes`.
    pub fn net_serialize(&self, bytes: u64) -> Cycles {
        (self.net_cycles_per_byte * bytes as f64).ceil() as Cycles
    }

    /// Per-hop head latency (switch + wire).
    pub fn hop_latency(&self) -> Cycles {
        self.switch_latency + self.wire_latency
    }

    /// Network link bandwidth implied by `net_cycles_per_byte`, in MB/s.
    pub fn net_bandwidth_mbps(&self) -> f64 {
        time::bandwidth_mbps(1, self.net_cycles_per_byte)
    }

    /// Raw memory bandwidth implied by `mem_cycles_per_word`, in MB/s.
    pub fn mem_bandwidth_mbps(&self) -> f64 {
        time::bandwidth_mbps(WORD_BYTES, self.mem_cycles_per_word)
    }

    /// Memory latency implied by `mem_setup`, in nanoseconds (paper Fig 15's
    /// x-axis: default 10 cycles = 100 ns).
    pub fn mem_latency_ns(&self) -> u64 {
        time::cycles_to_ns(self.mem_setup)
    }

    /// Sweep helper (Fig 13): sets the messaging overhead from a latency in
    /// microseconds (2 µs = the 200-cycle default).
    pub fn with_messaging_overhead_us(mut self, us: f64) -> Self {
        self.messaging_overhead = (us * 100.0).round() as Cycles;
        self
    }

    /// Sweep helper (Fig 13, second regime): make AURC automatic updates pay
    /// the full per-message overhead instead of the optimistic single cycle.
    pub fn with_expensive_updates(mut self) -> Self {
        self.au_messaging_overhead = self.messaging_overhead;
        self
    }

    /// Sweep helper (Fig 14): sets link serialization from MB/s.
    pub fn with_net_bandwidth_mbps(mut self, mbps: f64) -> Self {
        self.net_cycles_per_byte = time::cycles_per_unit_for_mbps(1, mbps);
        self
    }

    /// Sweep helper (Fig 15): sets memory setup time from nanoseconds.
    pub fn with_mem_latency_ns(mut self, ns: u64) -> Self {
        self.mem_setup = time::ns_to_cycles(ns);
        self
    }

    /// Sweep helper (Fig 16): sets memory per-word time from MB/s.
    pub fn with_mem_bandwidth_mbps(mut self, mbps: f64) -> Self {
        self.mem_cycles_per_word = time::cycles_per_unit_for_mbps(WORD_BYTES, mbps);
        self
    }

    /// Sweep helper: number of processors (Fig 1 uses 2..16).
    pub fn with_nprocs(mut self, nprocs: usize) -> Self {
        assert!(nprocs >= 1, "need at least one processor");
        self.nprocs = nprocs;
        self
    }

    /// Feeds every parameter into `h` in a fixed order, for content-hashed
    /// result caching (the experiment engine keys cached runs on this).
    ///
    /// The exhaustive destructuring is deliberate: adding a field to
    /// `SysParams` without deciding how it hashes is a compile error, so a
    /// new knob can never silently alias cache entries of runs that differ
    /// in it.
    pub fn stable_hash(&self, h: &mut StableHasher) {
        let SysParams {
            nprocs,
            tlb_entries,
            tlb_fill,
            interrupt,
            page_bytes,
            cache_bytes,
            write_buffer_entries,
            write_cache_entries,
            line_bytes,
            mem_setup,
            mem_cycles_per_word,
            pci_setup,
            pci_cycles_per_word,
            net_cycles_per_byte,
            messaging_overhead,
            au_messaging_overhead,
            ack_overhead,
            retransmit_timeout,
            switch_latency,
            wire_latency,
            list_processing,
            twin_cycles_per_word,
            diff_cycles_per_word,
            dma_scan_base,
            dma_scan_full,
            aurc_pairwise,
            page_req_threshold,
            prefetch_strategy,
            trace,
            ts_window,
            seed,
        } = self;
        h.write_str("SysParams");
        h.write_usize(*nprocs);
        h.write_usize(*tlb_entries);
        h.write_u64(*tlb_fill);
        h.write_u64(*interrupt);
        h.write_u64(*page_bytes);
        h.write_u64(*cache_bytes);
        h.write_usize(*write_buffer_entries);
        h.write_usize(*write_cache_entries);
        h.write_u64(*line_bytes);
        h.write_u64(*mem_setup);
        h.write_f64(*mem_cycles_per_word);
        h.write_u64(*pci_setup);
        h.write_f64(*pci_cycles_per_word);
        h.write_f64(*net_cycles_per_byte);
        h.write_u64(*messaging_overhead);
        h.write_u64(*au_messaging_overhead);
        h.write_u64(*ack_overhead);
        h.write_u64(*retransmit_timeout);
        h.write_u64(*switch_latency);
        h.write_u64(*wire_latency);
        h.write_u64(*list_processing);
        h.write_u64(*twin_cycles_per_word);
        h.write_u64(*diff_cycles_per_word);
        h.write_u64(*dma_scan_base);
        h.write_u64(*dma_scan_full);
        h.write_bool(*aurc_pairwise);
        h.write_usize(*page_req_threshold);
        match prefetch_strategy {
            PrefetchStrategy::AllReferenced => h.write_u64(0),
            PrefetchStrategy::RecentlyReferenced => h.write_u64(1),
            PrefetchStrategy::Capped(n) => {
                h.write_u64(2);
                h.write_usize(*n);
            }
        }
        h.write_bool(*trace);
        h.write_u64(*ts_window);
        h.write_u64(*seed);
    }

    /// Validates internal consistency (powers of two, divisibility).
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if !self.page_bytes.is_power_of_two() {
            return Err(format!("page size {} not a power of two", self.page_bytes));
        }
        if !self.line_bytes.is_power_of_two() {
            return Err(format!("line size {} not a power of two", self.line_bytes));
        }
        if !self.page_bytes.is_multiple_of(self.line_bytes) {
            return Err("page size must be a multiple of line size".into());
        }
        if !self.cache_bytes.is_multiple_of(self.line_bytes) {
            return Err("cache size must be a multiple of line size".into());
        }
        if self.nprocs == 0 {
            return Err("nprocs must be at least 1".into());
        }
        if self.mem_cycles_per_word <= 0.0 || self.net_cycles_per_byte <= 0.0 {
            return Err("bandwidth parameters must be positive".into());
        }
        if self.retransmit_timeout == 0 {
            return Err("retransmit_timeout must be nonzero".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table_1() {
        let p = SysParams::default();
        assert_eq!(p.nprocs, 16);
        assert_eq!(p.tlb_entries, 128);
        assert_eq!(p.tlb_fill, 100);
        assert_eq!(p.interrupt, 400);
        assert_eq!(p.page_bytes, 4096);
        assert_eq!(p.cache_bytes, 128 * 1024);
        assert_eq!(p.write_buffer_entries, 4);
        assert_eq!(p.write_cache_entries, 4);
        assert_eq!(p.line_bytes, 32);
        assert_eq!(p.mem_setup, 10);
        assert_eq!(p.mem_cycles_per_word, 3.0);
        assert_eq!(p.pci_setup, 10);
        assert_eq!(p.switch_latency, 4);
        assert_eq!(p.wire_latency, 2);
        assert_eq!(p.messaging_overhead, 200);
        assert_eq!(p.list_processing, 6);
        assert_eq!(p.twin_cycles_per_word, 5);
        assert_eq!(p.diff_cycles_per_word, 7);
        assert!(p.validate().is_ok());
    }

    #[test]
    fn dma_scan_endpoints() {
        let p = SysParams::default();
        assert_eq!(p.dma_scan(0), 200);
        assert_eq!(p.dma_scan(1024), 2100);
        let mid = p.dma_scan(512);
        assert!(mid > 1000 && mid < 1300, "midpoint {mid} not near 1150");
    }

    #[test]
    fn sweep_helpers_round_trip() {
        let p = SysParams::default().with_net_bandwidth_mbps(200.0);
        assert!((p.net_bandwidth_mbps() - 200.0).abs() < 1e-9);
        let p = SysParams::default().with_mem_latency_ns(40);
        assert_eq!(p.mem_setup, 4);
        let p = SysParams::default().with_messaging_overhead_us(4.0);
        assert_eq!(p.messaging_overhead, 400);
        let p = SysParams::default().with_mem_bandwidth_mbps(60.0);
        assert!((p.mem_bandwidth_mbps() - 60.0).abs() < 1e-9);
    }

    #[test]
    fn validate_catches_bad_configs() {
        let p = SysParams {
            page_bytes: 3000,
            ..SysParams::default()
        };
        assert!(p.validate().is_err());
        let p = SysParams {
            line_bytes: 48,
            ..SysParams::default()
        };
        assert!(p.validate().is_err());
        let p = SysParams {
            mem_cycles_per_word: 0.0,
            ..SysParams::default()
        };
        assert!(p.validate().is_err());
    }

    #[test]
    fn stable_hash_sees_representative_fields() {
        let key = |p: &SysParams| {
            let mut h = StableHasher::new();
            p.stable_hash(&mut h);
            h.finish()
        };
        let base = key(&SysParams::default());
        assert_eq!(base, key(&SysParams::default().clone()), "hash is stable");
        for p in [
            SysParams::default().with_nprocs(8),
            SysParams::default().with_net_bandwidth_mbps(20.0),
            SysParams {
                seed: 1,
                ..SysParams::default()
            },
            SysParams {
                prefetch_strategy: PrefetchStrategy::Capped(4),
                ..SysParams::default()
            },
            SysParams {
                aurc_pairwise: false,
                ..SysParams::default()
            },
            SysParams {
                ts_window: 4096,
                ..SysParams::default()
            },
        ] {
            assert_ne!(base, key(&p), "perturbation must change the key: {p:?}");
        }
        // Capped(0) and AllReferenced must not alias.
        let capped0 = SysParams {
            prefetch_strategy: PrefetchStrategy::Capped(0),
            ..SysParams::default()
        };
        assert_ne!(base, key(&capped0));
    }

    #[test]
    fn mem_access_cost() {
        let p = SysParams::default();
        // A 32-byte line: 10 + 8*3 = 34 cycles.
        assert_eq!(p.mem_access(8), 34);
        // A full page: 10 + 1024*3.
        assert_eq!(p.mem_access(1024), 10 + 3072);
    }
}
