//! Rendezvous front end: real Rust workload threads driving simulated
//! processors.
//!
//! Each simulated computation processor is an OS thread executing actual
//! workload code. Every [`ProcOp`] is a blocking round trip into the back
//! end, which replies only once the operation has completed in simulated
//! time. Because the back end resumes exactly one processor at a time (the
//! one with the smallest local clock), the simulation is fully deterministic
//! despite using threads: there is never more than one runnable workload
//! thread whose effects the back end observes concurrently.

use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::Arc;
use std::thread::JoinHandle;

use crate::ops::{ProcId, ProcOp, ProcReply};

/// Scheduling state of a simulated processor, tracked by back ends.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ProcStatus {
    /// Has (or will have) a pending operation to execute.
    #[default]
    Runnable,
    /// Waiting on the protocol (fault service, lock grant, barrier...).
    Blocked,
    /// Issued [`ProcOp::Finish`].
    Done,
}

/// Workload-side handle: issues operations and receives replies.
///
/// Handed to the workload closure by [`ProcHarness::spawn`]; workloads
/// normally use the ergonomic wrappers in `ncp2-apps` rather than calling
/// [`ProcPort::call`] directly.
#[derive(Debug)]
pub struct ProcPort {
    op_tx: SyncSender<ProcOp>,
    reply_rx: Receiver<ProcReply>,
}

impl ProcPort {
    /// Issues one operation and blocks until the back end completes it.
    ///
    /// # Panics
    ///
    /// Panics if the back end has gone away (simulation aborted).
    pub fn call(&self, op: ProcOp) -> ProcReply {
        self.op_tx.send(op).expect("simulation back end terminated");
        self.reply_rx
            .recv()
            .expect("simulation back end terminated")
    }
}

/// Back-end side of one processor's channel pair.
#[derive(Debug)]
struct ProcChannel {
    op_rx: Receiver<ProcOp>,
    reply_tx: SyncSender<ProcReply>,
}

/// Owns the workload threads and the per-processor rendezvous channels.
///
/// ```
/// use ncp2_sim::{ProcHarness, ProcOp, ProcReply};
///
/// let harness = ProcHarness::spawn(2, |pid, port| {
///     port.call(ProcOp::Compute(10 * (pid as u64 + 1)));
///     port.call(ProcOp::Finish);
/// });
/// for pid in 0..2 {
///     assert!(matches!(harness.next_op(pid), ProcOp::Compute(_)));
///     harness.reply(pid, ProcReply::Ack);
///     assert_eq!(harness.next_op(pid), ProcOp::Finish);
///     harness.reply(pid, ProcReply::Ack);
/// }
/// harness.join();
/// ```
#[derive(Debug)]
pub struct ProcHarness {
    channels: Vec<ProcChannel>,
    threads: Vec<JoinHandle<()>>,
}

impl ProcHarness {
    /// Spawns `n` workload threads, each running `body(pid, port)`.
    ///
    /// The body **must** end by issuing [`ProcOp::Finish`] (and may not issue
    /// anything afterwards); the back end replies to it so the thread can
    /// unwind cleanly.
    pub fn spawn<F>(n: usize, body: F) -> Self
    where
        F: Fn(ProcId, ProcPort) + Send + Sync + 'static,
    {
        let body = Arc::new(body);
        let mut channels = Vec::with_capacity(n);
        let mut threads = Vec::with_capacity(n);
        for pid in 0..n {
            // Capacity 1 lets a thread pre-compute and post its next op
            // without waiting for the back end to be ready to receive it.
            let (op_tx, op_rx) = sync_channel(1);
            let (reply_tx, reply_rx) = sync_channel(1);
            channels.push(ProcChannel { op_rx, reply_tx });
            let body = Arc::clone(&body);
            let handle = std::thread::Builder::new()
                .name(format!("ncp2-proc-{pid}"))
                .spawn(move || body(pid, ProcPort { op_tx, reply_rx }))
                .expect("failed to spawn workload thread");
            threads.push(handle);
        }
        ProcHarness { channels, threads }
    }

    /// Number of simulated processors.
    pub fn len(&self) -> usize {
        self.channels.len()
    }

    /// Whether the harness drives zero processors.
    pub fn is_empty(&self) -> bool {
        self.channels.is_empty()
    }

    /// Receives the next operation from processor `pid`, blocking until the
    /// workload thread produces one.
    ///
    /// # Panics
    ///
    /// Panics if the workload thread has panicked or exited without
    /// issuing [`ProcOp::Finish`].
    pub fn next_op(&self, pid: ProcId) -> ProcOp {
        self.channels[pid]
            .op_rx
            .recv()
            .unwrap_or_else(|_| panic!("workload thread {pid} died before Finish"))
    }

    /// Completes processor `pid`'s pending operation.
    pub fn reply(&self, pid: ProcId, reply: ProcReply) {
        // A send can only fail after Finish was acknowledged; that would be a
        // back-end protocol bug.
        self.channels[pid]
            .reply_tx
            .send(reply)
            .unwrap_or_else(|_| panic!("workload thread {pid} no longer listening"));
    }

    /// Joins all workload threads, propagating any workload panic.
    ///
    /// # Panics
    ///
    /// Panics if any workload thread panicked.
    pub fn join(self) {
        drop(self.channels);
        for (pid, t) in self.threads.into_iter().enumerate() {
            if let Err(e) = t.join() {
                std::panic::panic_any(format!("workload thread {pid} panicked: {e:?}"));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_many_ops() {
        let harness = ProcHarness::spawn(4, |pid, port| {
            for i in 0..100u64 {
                let r = port.call(ProcOp::Read {
                    addr: i * 4,
                    bytes: 4,
                });
                assert_eq!(r.value(), i + pid as u64);
            }
            port.call(ProcOp::Finish);
        });
        // Interleave processors round-robin.
        let mut counts = [0u64; 4];
        let mut done = 0;
        while done < 4 {
            for (pid, count) in counts.iter_mut().enumerate() {
                if *count > 100 {
                    continue;
                }
                match harness.next_op(pid) {
                    ProcOp::Read { addr, bytes: 4 } => {
                        assert_eq!(addr, *count * 4);
                        harness.reply(pid, ProcReply::Value(*count + pid as u64));
                        *count += 1;
                    }
                    ProcOp::Finish => {
                        harness.reply(pid, ProcReply::Ack);
                        *count = 101;
                        done += 1;
                    }
                    other => panic!("unexpected op {other:?}"),
                }
            }
        }
        harness.join();
    }

    #[test]
    fn pipelining_does_not_deadlock() {
        // The workload posts its next op before the back end asks for it.
        let harness = ProcHarness::spawn(1, |_, port| {
            port.call(ProcOp::Compute(1));
            port.call(ProcOp::Compute(2));
            port.call(ProcOp::Finish);
        });
        assert_eq!(harness.next_op(0), ProcOp::Compute(1));
        harness.reply(0, ProcReply::Ack);
        assert_eq!(harness.next_op(0), ProcOp::Compute(2));
        harness.reply(0, ProcReply::Ack);
        assert_eq!(harness.next_op(0), ProcOp::Finish);
        harness.reply(0, ProcReply::Ack);
        harness.join();
    }
}
