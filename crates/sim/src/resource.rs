//! FIFO resource reservation.
//!
//! Memories, buses, network links and the protocol controller's datapath are
//! all modeled as single servers: a request arriving at `now` starts service
//! at `max(now, next_free)` and occupies the resource for its duration.
//! This captures the contention effects the paper's back end models for the
//! memory system, PCI bus and network.

use crate::time::Cycles;

/// A single-server FIFO resource with busy-time accounting.
///
/// ```
/// use ncp2_sim::FifoResource;
/// let mut mem = FifoResource::new();
/// let (s1, e1) = mem.reserve(100, 34);
/// assert_eq!((s1, e1), (100, 134));
/// // A second request at t=110 queues behind the first.
/// let (s2, e2) = mem.reserve(110, 34);
/// assert_eq!((s2, e2), (134, 168));
/// assert_eq!(mem.busy_cycles(), 68);
/// ```
#[derive(Debug, Clone, Default)]
pub struct FifoResource {
    next_free: Cycles,
    busy: Cycles,
    requests: u64,
}

impl FifoResource {
    /// Creates an idle resource.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reserves the resource for `duration` cycles starting no earlier than
    /// `now`. Returns `(start, end)` of the granted slot.
    pub fn reserve(&mut self, now: Cycles, duration: Cycles) -> (Cycles, Cycles) {
        let start = now.max(self.next_free);
        let end = start + duration;
        self.next_free = end;
        self.busy += duration;
        self.requests += 1;
        (start, end)
    }

    /// Earliest time a new request could begin service.
    pub fn next_free(&self) -> Cycles {
        self.next_free
    }

    /// Total cycles of granted service so far.
    pub fn busy_cycles(&self) -> Cycles {
        self.busy
    }

    /// Number of reservations granted so far.
    pub fn requests(&self) -> u64 {
        self.requests
    }

    /// Utilization over `[0, horizon]`; clamped to `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `horizon` is zero.
    pub fn utilization(&self, horizon: Cycles) -> f64 {
        assert!(horizon > 0, "horizon must be positive");
        (self.busy as f64 / horizon as f64).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_resource_starts_immediately() {
        let mut r = FifoResource::new();
        assert_eq!(r.reserve(50, 10), (50, 60));
        assert_eq!(r.next_free(), 60);
    }

    #[test]
    fn late_arrival_does_not_wait() {
        let mut r = FifoResource::new();
        r.reserve(0, 10);
        assert_eq!(r.reserve(100, 5), (100, 105));
    }

    #[test]
    fn back_to_back_queueing() {
        let mut r = FifoResource::new();
        let mut now = 0;
        for _ in 0..10 {
            let (_, end) = r.reserve(now, 7);
            now = 3; // all arrive early; they serialize
            assert_eq!(end % 7, 0);
        }
        assert_eq!(r.next_free(), 70);
        assert_eq!(r.busy_cycles(), 70);
        assert_eq!(r.requests(), 10);
    }

    #[test]
    fn utilization_clamped() {
        let mut r = FifoResource::new();
        r.reserve(0, 100);
        assert_eq!(r.utilization(50), 1.0);
        assert!((r.utilization(200) - 0.5).abs() < 1e-12);
    }
}
