//! Seeded, splittable pseudo-random number generator.
//!
//! Workloads must be deterministic so that two simulations of the same
//! configuration issue identical reference streams. `SimRng` is a SplitMix64
//! generator: fast, tiny state, good enough statistical quality for workload
//! generation (Em3d's random graph, Radix keys, Barnes-Hut bodies, ...).

/// Deterministic pseudo-random number generator (SplitMix64).
///
/// ```
/// use ncp2_sim::SimRng;
/// let mut a = SimRng::new(7);
/// let mut b = SimRng::new(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SimRng {
    state: u64,
}

impl SimRng {
    /// Creates a generator from a seed. Equal seeds produce equal streams.
    pub fn new(seed: u64) -> Self {
        SimRng {
            // overflow: splitmix64 seeding — wraparound is the mixing step.
            state: seed.wrapping_add(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// Derives an independent child generator; used to give each simulated
    /// processor its own stream without coupling their draws.
    pub fn split(&mut self, salt: u64) -> SimRng {
        // overflow: salt scrambling — wraparound is the mixing step.
        SimRng::new(self.next_u64() ^ salt.wrapping_mul(0xA24B_AED4_963E_E407))
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        // overflow: splitmix64 — wraparound in every step is the mixing
        // function itself.
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9); // overflow: splitmix64 mix
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB); // overflow: splitmix64 mix
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Multiply-shift rejection-free mapping; bias is negligible for the
        // small bounds used by workload generation.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Fisher-Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = SimRng::new(123);
        let mut b = SimRng::new(123);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn bounds_respected() {
        let mut r = SimRng::new(9);
        for _ in 0..10_000 {
            assert!(r.next_below(17) < 17);
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SimRng::new(42);
        let mut v: Vec<u32> = (0..64).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..64).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..64).collect::<Vec<_>>(),
            "shuffle left input unchanged"
        );
    }

    #[test]
    fn split_streams_are_independent_and_deterministic() {
        let mut a = SimRng::new(5);
        let mut b = SimRng::new(5);
        let mut ca = a.split(3);
        let mut cb = b.split(3);
        assert_eq!(ca.next_u64(), cb.next_u64());
        assert_ne!(ca.next_u64(), a.next_u64());
    }
}
