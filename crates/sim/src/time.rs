//! Simulated time: 10-ns processor cycles, as in Table 1 of the paper.

/// Simulated time and durations, measured in processor cycles.
pub type Cycles = u64;

/// Length of one simulated cycle in nanoseconds (100 MHz clock).
pub const CYCLE_NS: u64 = 10;

/// Converts nanoseconds to (rounded) cycles.
///
/// ```
/// assert_eq!(ncp2_sim::time::ns_to_cycles(100), 10);
/// ```
pub fn ns_to_cycles(ns: u64) -> Cycles {
    ns.div_ceil(CYCLE_NS)
}

/// Converts microseconds to cycles.
///
/// ```
/// assert_eq!(ncp2_sim::time::us_to_cycles(2), 200);
/// ```
pub fn us_to_cycles(us: u64) -> Cycles {
    us * 1000 / CYCLE_NS
}

/// Converts cycles to nanoseconds.
pub fn cycles_to_ns(c: Cycles) -> u64 {
    c * CYCLE_NS
}

/// Bandwidth in MB/s delivered by moving one `bytes`-sized unit every
/// `cycles_per_unit` cycles. Used to translate the paper's MB/s axes
/// (Figs 14 and 16) into engine parameters and back.
///
/// ```
/// // One byte every 2 cycles = 50 MB/s (the paper's default network).
/// assert!((ncp2_sim::time::bandwidth_mbps(1, 2.0) - 50.0).abs() < 1e-9);
/// ```
pub fn bandwidth_mbps(bytes: u64, cycles_per_unit: f64) -> f64 {
    // 1 cycle = 10 ns, so 10^8 cycles/second.
    bytes as f64 * 1e8 / cycles_per_unit / 1e6
}

/// Inverse of [`bandwidth_mbps`]: cycles per unit of `bytes` needed to
/// sustain `mbps`.
///
/// # Panics
///
/// Panics if `mbps` is not strictly positive.
pub fn cycles_per_unit_for_mbps(bytes: u64, mbps: f64) -> f64 {
    assert!(mbps > 0.0, "bandwidth must be positive");
    bytes as f64 * 100.0 / mbps
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ns_round_trip() {
        assert_eq!(ns_to_cycles(95), 10);
        assert_eq!(ns_to_cycles(100), 10);
        assert_eq!(cycles_to_ns(10), 100);
    }

    #[test]
    fn bandwidth_round_trip() {
        let c = cycles_per_unit_for_mbps(4, 103.0);
        let bw = bandwidth_mbps(4, c);
        assert!((bw - 103.0).abs() < 1e-9);
    }

    #[test]
    fn paper_defaults_match() {
        // 8-bit path advancing one flit per 2-cycle wire hop = 50 MB/s.
        assert_eq!(bandwidth_mbps(1, 2.0) as u64, 50);
        // 4-byte word every 3 cycles = 133 MB/s raw memory bandwidth.
        assert!((bandwidth_mbps(4, 3.0) - 133.333).abs() < 0.01);
    }
}
