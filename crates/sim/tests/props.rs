//! Property-based tests for the simulation engine primitives.

use ncp2_sim::{Breakdown, Category, EventQueue, FifoResource, Priority, SimRng};
use proptest::prelude::*;

proptest! {
    /// Events pop in non-decreasing (time, priority) order, FIFO within ties.
    #[test]
    fn event_queue_is_a_stable_priority_queue(
        events in prop::collection::vec((0u64..1000, 0u8..3), 1..200)
    ) {
        let mut q = EventQueue::new();
        for (i, &(t, p)) in events.iter().enumerate() {
            let prio = match p { 0 => Priority::Urgent, 1 => Priority::Normal, _ => Priority::Low };
            q.push(t, prio, i);
        }
        let mut last: Option<(u64, Priority, usize)> = None;
        while let Some(ev) = q.pop() {
            let (t, p) = events[ev.payload];
            let prio = match p { 0 => Priority::Urgent, 1 => Priority::Normal, _ => Priority::Low };
            prop_assert_eq!(ev.time, t);
            if let Some((lt, lp, lseq)) = last {
                prop_assert!((lt, lp) <= (ev.time, prio), "order violated");
                if (lt, lp) == (ev.time, prio) {
                    prop_assert!(lseq < ev.payload, "FIFO violated within equal keys");
                }
            }
            last = Some((ev.time, prio, ev.payload));
        }
    }

    /// A FIFO resource never grants overlapping slots and never moves
    /// backwards in time.
    #[test]
    fn fifo_resource_slots_never_overlap(
        reqs in prop::collection::vec((0u64..10_000, 1u64..500), 1..100)
    ) {
        let mut r = FifoResource::new();
        let mut prev_end = 0u64;
        let mut total = 0u64;
        for &(now, dur) in &reqs {
            let (start, end) = r.reserve(now, dur);
            prop_assert!(start >= now);
            prop_assert!(start >= prev_end, "slot overlaps predecessor");
            prop_assert_eq!(end - start, dur);
            prev_end = end;
            total += dur;
        }
        prop_assert_eq!(r.busy_cycles(), total);
        prop_assert_eq!(r.requests(), reqs.len() as u64);
    }

    /// Breakdown totals are conserved by any sequence of adds/reclassifies.
    #[test]
    fn breakdown_total_is_conserved_by_reclassify(
        adds in prop::collection::vec((0usize..5, 0u64..10_000), 1..50),
        moves in prop::collection::vec((0usize..5, 0usize..5, 0u64..10_000), 0..50)
    ) {
        let mut b = Breakdown::default();
        for &(c, v) in &adds {
            b.add(Category::ALL[c], v);
        }
        let total = b.total();
        for &(from, to, v) in &moves {
            if from != to {
                b.reclassify(Category::ALL[from], Category::ALL[to], v);
            }
            prop_assert_eq!(b.total(), total, "reclassify changed the total");
        }
    }

    /// The RNG respects bounds and shuffles are permutations.
    #[test]
    fn rng_invariants(seed in any::<u64>(), bound in 1u64..1_000_000, n in 1usize..100) {
        let mut rng = SimRng::new(seed);
        for _ in 0..100 {
            prop_assert!(rng.next_below(bound) < bound);
        }
        let mut v: Vec<usize> = (0..n).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..n).collect::<Vec<_>>());
    }

    /// Two generators with the same seed agree; split streams are
    /// reproducible.
    #[test]
    fn rng_determinism(seed in any::<u64>(), salt in any::<u64>()) {
        let mut a = SimRng::new(seed);
        let mut b = SimRng::new(seed);
        let mut ca = a.split(salt);
        let mut cb = b.split(salt);
        for _ in 0..16 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
            prop_assert_eq!(ca.next_u64(), cb.next_u64());
        }
    }
}
