//! # ncp2-prof — host-side profiling for the simulator itself
//!
//! Everything else in this workspace measures **simulated** cycles; this
//! crate measures the **host**: wall-clock time and heap allocations spent
//! running the simulator. It mirrors, for host time, what `ncp2-obs` does
//! for simulated time — attribute first, optimize second (the paper's own
//! method, applied to the tool reproducing it).
//!
//! Three pieces:
//!
//! * a counting [`std::alloc::GlobalAlloc`] installed behind the `prof`
//!   feature — every allocation bumps a handful of relaxed atomics (global
//!   count / bytes / live bytes / peak live bytes) and two `const`-init
//!   thread-local counters, so per-thread deltas attribute allocations to
//!   the bench sample or engine job running on that thread;
//! * [`PhaseClock`] — a phase-boundary stopwatch the experiment engine laps
//!   around its setup / simulation / report-derivation / cache-IO phases,
//!   pairing wall nanoseconds with the same-thread allocation deltas;
//! * [`walldiff`] — the `BENCH_WALL.json` regression comparator behind
//!   `cargo xtask wall-diff`: generous on time (CI hosts are noisy), tight
//!   on allocation counts (they are exact and host-independent).
//!
//! The `prof_*` accessors compile in both feature polarities — with the
//! feature off they are zero-returning stubs, so callers never gate
//! themselves, exactly like the `obs_*` hooks in `ncp2-core`.

use std::time::Instant;

pub mod walldiff;

/// Snapshot of the global allocation counters (process-wide, since start).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AllocStats {
    /// Allocations performed (calls to `alloc`, plus the alloc half of
    /// every `realloc`).
    pub allocs: u64,
    /// Bytes requested across those allocations.
    pub bytes: u64,
    /// Bytes currently live (allocated minus freed).
    pub current: u64,
    /// High-water mark of `current` since start (or the last
    /// [`prof_reset_peak`]).
    pub peak: u64,
}

#[cfg(feature = "prof")]
mod counting {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::cell::Cell;
    use std::sync::atomic::{AtomicU64, Ordering};

    pub static G_ALLOCS: AtomicU64 = AtomicU64::new(0);
    pub static G_BYTES: AtomicU64 = AtomicU64::new(0);
    pub static G_CURRENT: AtomicU64 = AtomicU64::new(0);
    pub static G_PEAK: AtomicU64 = AtomicU64::new(0);

    thread_local! {
        // const-init + no Drop: safe to touch from inside the allocator
        // (no lazy initialization, no registered destructor).
        pub static T_ALLOCS: Cell<u64> = const { Cell::new(0) };
        pub static T_BYTES: Cell<u64> = const { Cell::new(0) };
    }

    /// System allocator wrapped in relaxed-atomic counting.
    pub struct CountingAlloc;

    fn note_alloc(size: u64) {
        G_ALLOCS.fetch_add(1, Ordering::Relaxed);
        G_BYTES.fetch_add(size, Ordering::Relaxed);
        let live = G_CURRENT.fetch_add(size, Ordering::Relaxed) + size;
        G_PEAK.fetch_max(live, Ordering::Relaxed);
        T_ALLOCS.with(|c| c.set(c.get() + 1));
        T_BYTES.with(|c| c.set(c.get() + size));
    }

    fn note_free(size: u64) {
        // Saturating: a counter reset can never make this underflow wrap.
        let _ = G_CURRENT.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
            Some(v.saturating_sub(size))
        });
    }

    unsafe impl GlobalAlloc for CountingAlloc {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            let p = System.alloc(layout);
            if !p.is_null() {
                note_alloc(layout.size() as u64);
            }
            p
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            System.dealloc(ptr, layout);
            note_free(layout.size() as u64);
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            let p = System.realloc(ptr, layout, new_size);
            if !p.is_null() {
                note_free(layout.size() as u64);
                note_alloc(new_size as u64);
            }
            p
        }
    }

    #[global_allocator]
    static COUNTING: CountingAlloc = CountingAlloc;
}

/// Whether the counting allocator is compiled in (`prof` feature).
#[cfg(feature = "prof")]
pub fn prof_enabled() -> bool {
    true
}

/// Whether the counting allocator is compiled in (`prof` feature).
#[cfg(not(feature = "prof"))]
pub fn prof_enabled() -> bool {
    false
}

/// `(allocations, bytes)` performed by the **calling thread** since it
/// started — monotonic, so two snapshots bracket a region's allocations.
#[cfg(feature = "prof")]
pub fn prof_thread_counts() -> (u64, u64) {
    (
        counting::T_ALLOCS.with(std::cell::Cell::get),
        counting::T_BYTES.with(std::cell::Cell::get),
    )
}

/// `(allocations, bytes)` performed by the **calling thread** since it
/// started — zero stub without the `prof` feature.
#[cfg(not(feature = "prof"))]
pub fn prof_thread_counts() -> (u64, u64) {
    (0, 0)
}

/// Process-wide allocation counters.
#[cfg(feature = "prof")]
pub fn prof_global_stats() -> AllocStats {
    use std::sync::atomic::Ordering;
    AllocStats {
        allocs: counting::G_ALLOCS.load(Ordering::Relaxed),
        bytes: counting::G_BYTES.load(Ordering::Relaxed),
        current: counting::G_CURRENT.load(Ordering::Relaxed),
        peak: counting::G_PEAK.load(Ordering::Relaxed),
    }
}

/// Process-wide allocation counters — zero stub without the `prof` feature.
#[cfg(not(feature = "prof"))]
pub fn prof_global_stats() -> AllocStats {
    AllocStats::default()
}

/// Resets the peak-live-bytes high-water mark to the current live bytes and
/// returns that value; a later [`prof_peak`] minus it bounds a region's
/// peak heap growth.
#[cfg(feature = "prof")]
pub fn prof_reset_peak() -> u64 {
    use std::sync::atomic::Ordering;
    let live = counting::G_CURRENT.load(Ordering::Relaxed);
    counting::G_PEAK.store(live, Ordering::Relaxed);
    live
}

/// Resets the peak-live-bytes high-water mark — zero stub without the
/// `prof` feature.
#[cfg(not(feature = "prof"))]
pub fn prof_reset_peak() -> u64 {
    0
}

/// The peak-live-bytes high-water mark since start (or the last reset).
#[cfg(feature = "prof")]
pub fn prof_peak() -> u64 {
    use std::sync::atomic::Ordering;
    counting::G_PEAK.load(Ordering::Relaxed)
}

/// The peak-live-bytes high-water mark — zero stub without the `prof`
/// feature.
#[cfg(not(feature = "prof"))]
pub fn prof_peak() -> u64 {
    0
}

/// Host cost of one named phase: wall time plus same-thread allocations.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseCost {
    /// Wall-clock nanoseconds.
    pub wall_ns: u64,
    /// Allocations performed on the measuring thread.
    pub allocs: u64,
    /// Bytes requested by those allocations.
    pub alloc_bytes: u64,
}

/// A phase-boundary stopwatch: construct at the start of a job, call
/// [`lap`](PhaseClock::lap) at each phase boundary, and [`finish`] yields
/// the per-phase costs in first-lap order (repeated names accumulate, so a
/// job that touches the cache before *and* after simulation reports one
/// `cache_io` phase).
///
/// A disabled clock (`PhaseClock::new(false)`) does nothing at all — it
/// never reads the clock or the counters — so un-profiled runs stay on
/// exactly the code path they had before profiling existed.
///
/// [`finish`]: PhaseClock::finish
#[derive(Debug)]
pub struct PhaseClock {
    mark: Option<(Instant, u64, u64)>,
    phases: Vec<(&'static str, PhaseCost)>,
}

impl PhaseClock {
    /// A clock that attributes from "now", or an inert one.
    pub fn new(enabled: bool) -> PhaseClock {
        PhaseClock {
            mark: enabled.then(|| {
                let (a, b) = prof_thread_counts();
                (Instant::now(), a, b)
            }),
            phases: Vec::new(),
        }
    }

    /// Whether this clock is recording.
    pub fn enabled(&self) -> bool {
        self.mark.is_some()
    }

    /// Charges everything since the previous boundary to `name`.
    pub fn lap(&mut self, name: &'static str) {
        let Some((at, allocs0, bytes0)) = self.mark else {
            return;
        };
        let (allocs1, bytes1) = prof_thread_counts();
        let cost = PhaseCost {
            wall_ns: u64::try_from(at.elapsed().as_nanos()).unwrap_or(u64::MAX),
            allocs: allocs1 - allocs0,
            alloc_bytes: bytes1 - bytes0,
        };
        match self.phases.iter_mut().find(|(n, _)| *n == name) {
            Some((_, acc)) => {
                acc.wall_ns += cost.wall_ns;
                acc.allocs += cost.allocs;
                acc.alloc_bytes += cost.alloc_bytes;
            }
            None => self.phases.push((name, cost)),
        }
        self.mark = Some((Instant::now(), allocs1, bytes1));
    }

    /// The accumulated phases, in first-lap order. Empty for a disabled
    /// clock.
    pub fn finish(self) -> Vec<(&'static str, PhaseCost)> {
        self.phases
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_clock_records_nothing() {
        let mut clock = PhaseClock::new(false);
        clock.lap("setup");
        clock.lap("sim");
        assert!(!clock.enabled());
        assert!(clock.finish().is_empty());
    }

    #[test]
    fn enabled_clock_accumulates_repeated_phases_in_lap_order() {
        let mut clock = PhaseClock::new(true);
        std::hint::black_box(vec![0u8; 1024]);
        clock.lap("cache_io");
        clock.lap("sim");
        clock.lap("cache_io");
        let phases = clock.finish();
        let names: Vec<&str> = phases.iter().map(|&(n, _)| n).collect();
        assert_eq!(names, ["cache_io", "sim"]);
    }

    #[test]
    fn thread_counts_are_monotonic() {
        let (a0, b0) = prof_thread_counts();
        std::hint::black_box(vec![0u8; 4096].into_boxed_slice());
        let (a1, b1) = prof_thread_counts();
        assert!(a1 >= a0 && b1 >= b0);
        if prof_enabled() {
            assert!(a1 > a0, "an allocation must bump the thread counter");
            assert!(b1 - b0 >= 4096);
        } else {
            assert_eq!((a0, b0, a1, b1), (0, 0, 0, 0));
        }
    }

    #[test]
    fn global_stats_track_peak_when_enabled() {
        let before = prof_global_stats();
        let big = std::hint::black_box(vec![0u8; 1 << 16]);
        let during = prof_global_stats();
        drop(big);
        if prof_enabled() {
            assert!(during.allocs > before.allocs);
            assert!(during.peak >= during.current);
            assert!(during.bytes - before.bytes >= 1 << 16);
        } else {
            assert_eq!(during, AllocStats::default());
        }
    }
}
