//! The `BENCH_WALL.json` comparator behind `cargo xtask wall-diff`.
//!
//! A wall report is what `wall_bench --save-baseline` emits: one entry per
//! microbench with the median wall time and the exact per-iteration
//! allocation counts. Entries live in a `BTreeMap`, so serialization is
//! byte-deterministic — the committed baseline diffs cleanly.
//!
//! The gate is deliberately asymmetric:
//!
//! * **time** is gated loosely (default: fail only past 2× growth, and only
//!   beyond an absolute floor) because CI hosts are noisy and share cores;
//! * **allocation counts** are gated tightly (default 10%) because they are
//!   exact, host-speed-independent, and an allocation regression on a hot
//!   path is precisely the kind of creep this gate exists to catch.
//!
//! Shrinkage never fails: the baseline is refreshed in place after a pass
//! (`--update`), so improvements ratchet in the same way `BENCH_tier1.json`
//! tracks simulated cycles.

use std::collections::BTreeMap;

use ncp2_obs::json::{esc, parse, JVal};

/// Current wall-report format version.
pub const WALL_FORMAT: u64 = 1;

/// Below this many nanoseconds of absolute growth, a median-time increase
/// is never flagged: sub-tick jitter on a trivial bench is not a
/// regression.
pub const TIME_FLOOR_NS: u64 = 50;

/// Below this many additional allocations per iteration, an
/// allocation-count increase is never flagged (a bench around 1–10
/// allocs/iter would otherwise trip the percentage gate on +1).
pub const ALLOC_FLOOR: u64 = 2;

/// Like [`ALLOC_FLOOR`], for allocated bytes per iteration.
pub const ALLOC_BYTES_FLOOR: u64 = 64;

/// One microbench's numbers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WallBench {
    /// Median-of-K wall nanoseconds per iteration.
    pub median_ns: u64,
    /// Timed samples taken (the K of median-of-K).
    pub samples: u64,
    /// Allocations per iteration (median across samples; exact when the
    /// counting allocator is compiled in, zero otherwise).
    pub allocs: u64,
    /// Allocated bytes per iteration (median across samples).
    pub alloc_bytes: u64,
    /// Peak live-heap growth over the whole bench, bytes.
    pub peak_bytes: u64,
}

/// A full wall report: every bench of one `wall_bench` run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WallReport {
    /// Whether the emitting binary had the counting allocator installed —
    /// a baseline with counting cannot be satisfied by a run without it.
    pub alloc_counting: bool,
    /// Benches by id, sorted (BTreeMap) for byte-deterministic output.
    pub benches: BTreeMap<String, WallBench>,
}

impl WallReport {
    /// Serializes to deterministic JSON: sorted keys, fixed field order,
    /// integers only, trailing newline.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"format\": {WALL_FORMAT},\n"));
        out.push_str(&format!("  \"alloc_counting\": {},\n", self.alloc_counting));
        out.push_str("  \"benches\": {\n");
        for (i, (id, b)) in self.benches.iter().enumerate() {
            let comma = if i + 1 == self.benches.len() { "" } else { "," };
            out.push_str(&format!(
                "    \"{}\": {{\"median_ns\": {}, \"samples\": {}, \"allocs\": {}, \
                 \"alloc_bytes\": {}, \"peak_bytes\": {}}}{comma}\n",
                esc(id),
                b.median_ns,
                b.samples,
                b.allocs,
                b.alloc_bytes,
                b.peak_bytes
            ));
        }
        out.push_str("  }\n");
        out.push_str("}\n");
        out
    }
}

/// Parses a wall report produced by [`WallReport::to_json`].
pub fn parse_wall(text: &str) -> Result<WallReport, String> {
    let v = parse(text)?;
    let format = v
        .get("format")
        .and_then(JVal::as_u64)
        .ok_or("missing numeric field 'format'")?;
    if format != WALL_FORMAT {
        return Err(format!(
            "wall report format {format} (this tool reads {WALL_FORMAT})"
        ));
    }
    let alloc_counting = v
        .get("alloc_counting")
        .and_then(JVal::as_bool)
        .ok_or("missing boolean field 'alloc_counting'")?;
    let obj = v
        .get("benches")
        .and_then(JVal::as_obj)
        .ok_or("missing object field 'benches'")?;
    let mut benches = BTreeMap::new();
    for (id, b) in obj {
        let f = |k: &str| -> Result<u64, String> {
            b.get(k)
                .and_then(JVal::as_u64)
                .ok_or_else(|| format!("bench '{id}' missing '{k}'"))
        };
        benches.insert(
            id.clone(),
            WallBench {
                median_ns: f("median_ns")?,
                samples: f("samples")?,
                allocs: f("allocs")?,
                alloc_bytes: f("alloc_bytes")?,
                peak_bytes: f("peak_bytes")?,
            },
        );
    }
    Ok(WallReport {
        alloc_counting,
        benches,
    })
}

/// Gate thresholds, as growth percentages over the baseline.
#[derive(Debug, Clone, Copy)]
pub struct WallDiffCfg {
    /// Maximum median-time growth, percent (default 100 = 2×).
    pub time_pct: f64,
    /// Maximum allocation-count / allocated-bytes growth, percent
    /// (default 10).
    pub alloc_pct: f64,
}

impl Default for WallDiffCfg {
    fn default() -> Self {
        WallDiffCfg {
            time_pct: 100.0,
            alloc_pct: 10.0,
        }
    }
}

/// True when `new` exceeds `old` by more than `pct` percent **and** by more
/// than the absolute `floor` — both conditions, so percentage noise on tiny
/// values and absolute noise on huge values each need the other gate too.
fn grew(old: u64, new: u64, pct: f64, floor: u64) -> bool {
    let limit = (old as f64) * (1.0 + pct / 100.0);
    (new as f64) > limit && new > old.saturating_add(floor)
}

/// Compares `new` against the `old` baseline. Returns `(failures, notes)`:
/// any failure fails the gate; notes (new benches) are informational.
pub fn compare_wall(
    old: &WallReport,
    new: &WallReport,
    cfg: &WallDiffCfg,
) -> (Vec<String>, Vec<String>) {
    let mut failures = Vec::new();
    let mut notes = Vec::new();
    if old.alloc_counting && !new.alloc_counting {
        failures.push(
            "baseline has allocation counting but the new report does not \
             (rebuild wall_bench with --features prof)"
                .to_string(),
        );
    }
    for (id, o) in &old.benches {
        let Some(n) = new.benches.get(id) else {
            failures.push(format!("bench '{id}' disappeared from the suite"));
            continue;
        };
        if grew(o.median_ns, n.median_ns, cfg.time_pct, TIME_FLOOR_NS) {
            failures.push(format!(
                "'{id}' median time {} -> {} ns/iter (+{:.0}%, limit {:.0}%)",
                o.median_ns,
                n.median_ns,
                pct_growth(o.median_ns, n.median_ns),
                cfg.time_pct
            ));
        }
        if grew(o.allocs, n.allocs, cfg.alloc_pct, ALLOC_FLOOR) {
            failures.push(format!(
                "'{id}' allocations {} -> {} per iter (+{:.0}%, limit {:.0}%)",
                o.allocs,
                n.allocs,
                pct_growth(o.allocs, n.allocs),
                cfg.alloc_pct
            ));
        }
        if grew(
            o.alloc_bytes,
            n.alloc_bytes,
            cfg.alloc_pct,
            ALLOC_BYTES_FLOOR,
        ) {
            failures.push(format!(
                "'{id}' allocated bytes {} -> {} per iter (+{:.0}%, limit {:.0}%)",
                o.alloc_bytes,
                n.alloc_bytes,
                pct_growth(o.alloc_bytes, n.alloc_bytes),
                cfg.alloc_pct
            ));
        }
    }
    for id in new.benches.keys() {
        if !old.benches.contains_key(id) {
            notes.push(format!("new bench '{id}'"));
        }
    }
    (failures, notes)
}

fn pct_growth(old: u64, new: u64) -> f64 {
    if old == 0 {
        return 100.0;
    }
    100.0 * (new as f64 - old as f64) / old as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(entries: &[(&str, WallBench)]) -> WallReport {
        WallReport {
            alloc_counting: true,
            benches: entries.iter().map(|(id, b)| (id.to_string(), *b)).collect(),
        }
    }

    fn bench(median_ns: u64, allocs: u64, alloc_bytes: u64) -> WallBench {
        WallBench {
            median_ns,
            samples: 9,
            allocs,
            alloc_bytes,
            peak_bytes: 4096,
        }
    }

    #[test]
    fn identical_reports_pass() {
        let r = report(&[("diff/apply", bench(800, 3, 256))]);
        let (failures, notes) = compare_wall(&r, &r, &WallDiffCfg::default());
        assert!(failures.is_empty(), "{failures:?}");
        assert!(notes.is_empty());
    }

    #[test]
    fn doubled_median_fails_but_just_under_passes() {
        let old = report(&[("diff/apply", bench(800, 3, 256))]);
        let at_limit = report(&[("diff/apply", bench(1600, 3, 256))]);
        let over = report(&[("diff/apply", bench(1601, 3, 256))]);
        let cfg = WallDiffCfg::default();
        // 2× exactly is the limit, not past it.
        assert!(compare_wall(&old, &at_limit, &cfg).0.is_empty());
        let (failures, _) = compare_wall(&old, &over, &cfg);
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(failures[0].contains("median time"));
    }

    #[test]
    fn time_floor_absorbs_jitter_on_trivial_benches() {
        // 10 ns -> 55 ns is a 5.5× blowup but only +45 ns: below the floor.
        let old = report(&[("bitvec/scan", bench(10, 0, 0))]);
        let new = report(&[("bitvec/scan", bench(55, 0, 0))]);
        assert!(compare_wall(&old, &new, &WallDiffCfg::default())
            .0
            .is_empty());
        // +51 ns crosses the floor *and* the ratio: fails.
        let worse = report(&[("bitvec/scan", bench(61, 0, 0))]);
        assert_eq!(
            compare_wall(&old, &worse, &WallDiffCfg::default()).0.len(),
            1
        );
    }

    #[test]
    fn ten_percent_alloc_growth_fails_tightly() {
        let old = report(&[("diff/create", bench(800, 40, 4096))]);
        let ok = report(&[("diff/create", bench(800, 44, 4096))]); // +10% exactly
        let bad = report(&[("diff/create", bench(800, 45, 4096))]); // +12.5%
        let cfg = WallDiffCfg::default();
        assert!(compare_wall(&old, &ok, &cfg).0.is_empty());
        let (failures, _) = compare_wall(&old, &bad, &cfg);
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(failures[0].contains("allocations"));
    }

    #[test]
    fn alloc_floor_ignores_single_stray_allocation() {
        // 1 -> 2 allocs is +100% but only +1: below the floor of 2.
        let old = report(&[("vtime/merge", bench(100, 1, 64))]);
        let new = report(&[("vtime/merge", bench(100, 2, 64))]);
        assert!(compare_wall(&old, &new, &WallDiffCfg::default())
            .0
            .is_empty());
        // 1 -> 4 is past both gates.
        let worse = report(&[("vtime/merge", bench(100, 4, 64))]);
        assert_eq!(
            compare_wall(&old, &worse, &WallDiffCfg::default()).0.len(),
            1
        );
    }

    #[test]
    fn alloc_bytes_growth_is_gated_too() {
        let old = report(&[("diff/create", bench(800, 40, 4096))]);
        let bad = report(&[("diff/create", bench(800, 40, 5000))]); // +22%
        let (failures, _) = compare_wall(&old, &bad, &WallDiffCfg::default());
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(failures[0].contains("allocated bytes"));
    }

    #[test]
    fn missing_bench_fails_and_new_bench_is_a_note() {
        let old = report(&[("a", bench(100, 0, 0)), ("b", bench(100, 0, 0))]);
        let new = report(&[("b", bench(100, 0, 0)), ("c", bench(100, 0, 0))]);
        let (failures, notes) = compare_wall(&old, &new, &WallDiffCfg::default());
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("'a' disappeared"));
        assert_eq!(notes, ["new bench 'c'"]);
    }

    #[test]
    fn losing_alloc_counting_fails() {
        let old = report(&[("a", bench(100, 5, 512))]);
        let mut new = old.clone();
        new.alloc_counting = false;
        new.benches.get_mut("a").expect("entry").allocs = 0;
        new.benches.get_mut("a").expect("entry").alloc_bytes = 0;
        let (failures, _) = compare_wall(&old, &new, &WallDiffCfg::default());
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(failures[0].contains("allocation counting"));
    }

    #[test]
    fn shrinkage_never_fails() {
        let old = report(&[("a", bench(1000, 50, 4096))]);
        let new = report(&[("a", bench(10, 1, 64))]);
        assert!(compare_wall(&old, &new, &WallDiffCfg::default())
            .0
            .is_empty());
    }

    #[test]
    fn json_round_trip_is_exact_and_byte_deterministic() {
        let r = report(&[
            ("net/route_all_pairs", bench(3200, 0, 0)),
            ("diff/apply_256", bench(810, 1, 4096)),
            ("cache/job_key", bench(95, 0, 0)),
        ]);
        let text = r.to_json();
        let parsed = parse_wall(&text).expect("parse");
        assert_eq!(parsed, r);
        assert_eq!(parsed.to_json(), text);
        // BTreeMap keys: serialization order is sorted, not insertion order.
        let cache = text.find("cache/job_key").expect("cache bench");
        let diff = text.find("diff/apply_256").expect("diff bench");
        let net = text.find("net/route_all_pairs").expect("net bench");
        assert!(cache < diff && diff < net);
    }

    #[test]
    fn format_mismatch_is_rejected() {
        let text = "{\"format\": 99, \"alloc_counting\": true, \"benches\": {}}";
        assert!(parse_wall(text).is_err());
    }
}
