//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this crate provides
//! the API subset the workspace's benches use — [`Criterion`],
//! [`Bencher::iter`]/[`Bencher::iter_batched`]/
//! [`Bencher::iter_with_large_drop`], benchmark groups, and the
//! [`criterion_group!`]/[`criterion_main!`] macros — backed by a
//! median-of-K wall-clock timing loop. Swapping back to the real crate is a
//! one-line change in the workspace `Cargo.toml`.
//!
//! Beyond the real crate's API it also supports the workspace's host-side
//! profiling pipeline (see `ncp2-prof` and DESIGN.md §14):
//!
//! * per-bench results are collected in a process-global registry and, when
//!   the binary is invoked with `--save-baseline <path>`, written as a
//!   machine-readable wall report (sorted keys, integers only — the format
//!   `cargo xtask wall-diff` consumes);
//! * `--fast` clamps sample counts and time budgets for CI smoke runs;
//! * a host binary may inject allocation counters via [`set_alloc_hooks`]
//!   (function pointers, so this crate needs no dependency on the profiling
//!   crate); each timed region then also reports exact allocations and
//!   bytes per iteration, and each bench its peak live-heap growth.

use std::collections::BTreeMap;
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Allocation-counter entry points injected by the hosting binary
/// (typically from `ncp2-prof`). All zeros when never set.
#[derive(Debug, Clone, Copy)]
pub struct AllocHooks {
    /// Whether the counters are real (a counting allocator is installed)
    /// — recorded in the wall report so the comparator can refuse a
    /// baseline comparison against count-less data.
    pub counting: bool,
    /// `(allocations, bytes)` by the calling thread since it started.
    pub thread_counts: fn() -> (u64, u64),
    /// Reset the peak-live-bytes mark to current live bytes; returns it.
    pub reset_peak: fn() -> u64,
    /// The peak-live-bytes mark.
    pub peak: fn() -> u64,
}

static HOOKS: OnceLock<AllocHooks> = OnceLock::new();

/// Installs the allocation hooks; first call wins, later calls are ignored.
pub fn set_alloc_hooks(hooks: AllocHooks) {
    let _ = HOOKS.set(hooks);
}

fn thread_counts() -> (u64, u64) {
    HOOKS.get().map_or((0, 0), |h| (h.thread_counts)())
}

/// One finished benchmark's numbers, as registered by the timing loop.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Bench id (`group/name` for grouped benches).
    pub id: String,
    /// Median across samples of mean wall nanoseconds per iteration.
    pub median_ns: u64,
    /// Timed samples taken.
    pub samples: u64,
    /// Median allocations per iteration (zero without hooks).
    pub allocs: u64,
    /// Median allocated bytes per iteration (zero without hooks).
    pub alloc_bytes: u64,
    /// Peak live-heap growth across the whole bench, bytes.
    pub peak_bytes: u64,
}

static RESULTS: Mutex<Vec<BenchResult>> = Mutex::new(Vec::new());

/// Drains the per-bench results registered so far, in execution order.
pub fn take_results() -> Vec<BenchResult> {
    std::mem::take(&mut RESULTS.lock().expect("bench results poisoned"))
}

struct Cli {
    save_baseline: Option<String>,
    fast: bool,
}

fn cli() -> &'static Cli {
    static CLI: OnceLock<Cli> = OnceLock::new();
    CLI.get_or_init(|| {
        let mut c = Cli {
            save_baseline: None,
            fast: false,
        };
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--save-baseline" => c.save_baseline = args.next(),
                "--fast" => c.fast = true,
                // `cargo bench` appends its own flags (`--bench`, filter
                // strings); the real criterion tolerates them and so do we.
                _ => {}
            }
        }
        c
    })
}

/// Serializes bench results as a wall report: the `BENCH_WALL.json` format
/// `ncp2_prof::walldiff::parse_wall` reads. Sorted ids (BTreeMap), fixed
/// field order, integers only — byte-deterministic for fixed inputs.
pub fn wall_json(results: &[BenchResult]) -> String {
    let sorted: BTreeMap<&str, &BenchResult> = results.iter().map(|r| (r.id.as_str(), r)).collect();
    let counting = HOOKS.get().is_some_and(|h| h.counting);
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"format\": 1,\n");
    out.push_str(&format!("  \"alloc_counting\": {counting},\n"));
    out.push_str("  \"benches\": {\n");
    for (i, (id, r)) in sorted.iter().enumerate() {
        let comma = if i + 1 == sorted.len() { "" } else { "," };
        let id = id.replace('\\', "\\\\").replace('"', "\\\"");
        out.push_str(&format!(
            "    \"{id}\": {{\"median_ns\": {}, \"samples\": {}, \"allocs\": {}, \
             \"alloc_bytes\": {}, \"peak_bytes\": {}}}{comma}\n",
            r.median_ns, r.samples, r.allocs, r.alloc_bytes, r.peak_bytes
        ));
    }
    out.push_str("  }\n");
    out.push_str("}\n");
    out
}

/// Writes the collected results to the `--save-baseline` path (if given)
/// and prints the report footer. [`criterion_main!`] calls this after the
/// groups; custom `main`s must call it themselves.
pub fn finalize() {
    let results = take_results();
    if let Some(path) = &cli().save_baseline {
        let json = wall_json(&results);
        if let Err(e) = std::fs::write(path, json) {
            eprintln!("bench(shim): cannot write {path}: {e}");
            std::process::exit(1);
        }
        println!("bench(shim): wrote {} bench(es) to {path}", results.len());
    }
    println!("bench(shim): done");
}

/// Top-level harness handle, mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(1),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Total time budget for the timed samples of one benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Untimed warm-up budget before sampling.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(self, &id.into(), f);
        self
    }

    /// Opens a named group; member benchmarks print as `group/name`.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Finalizes the run (report footer).
    pub fn final_summary(&mut self) {
        finalize();
    }
}

/// A named group of benchmarks, mirroring `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        run_bench(self.criterion, &full, f);
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// How `iter_batched` amortizes setup; all variants behave identically here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Timing loop handle passed to the benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
    d_allocs: u64,
    d_bytes: u64,
}

impl Bencher {
    fn new(iters: u64) -> Bencher {
        Bencher {
            iters,
            elapsed: Duration::ZERO,
            d_allocs: 0,
            d_bytes: 0,
        }
    }

    /// Times `routine` back to back for the configured iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let (a0, b0) = thread_counts();
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
        let (a1, b1) = thread_counts();
        self.d_allocs = a1 - a0;
        self.d_bytes = b1 - b0;
    }

    /// Times `routine` on fresh inputs from `setup`; setup time (and its
    /// allocations) is excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        let (mut allocs, mut bytes) = (0u64, 0u64);
        for _ in 0..self.iters {
            let input = setup();
            let (a0, b0) = thread_counts();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            total += start.elapsed();
            let (a1, b1) = thread_counts();
            allocs += a1 - a0;
            bytes += b1 - b0;
        }
        self.elapsed = total;
        self.d_allocs = allocs;
        self.d_bytes = bytes;
    }

    /// Like [`iter`](Bencher::iter), but the routine's outputs are kept
    /// alive until after the timed region, so their drop cost (a large
    /// deallocation, say) never pollutes the measurement.
    pub fn iter_with_large_drop<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let mut kept: Vec<O> = Vec::with_capacity(usize::try_from(self.iters).unwrap_or(0));
        let (a0, b0) = thread_counts();
        let start = Instant::now();
        for _ in 0..self.iters {
            kept.push(std::hint::black_box(routine()));
        }
        self.elapsed = start.elapsed();
        let (a1, b1) = thread_counts();
        self.d_allocs = a1 - a0;
        self.d_bytes = b1 - b0;
        drop(kept);
    }
}

/// Median of a sorted-in-place sample vector (mean of the middle two for
/// even counts); zero for an empty one.
fn median(samples: &mut [u64]) -> u64 {
    if samples.is_empty() {
        return 0;
    }
    samples.sort_unstable();
    let mid = samples.len() / 2;
    if samples.len() % 2 == 1 {
        samples[mid]
    } else {
        (samples[mid - 1] + samples[mid]) / 2
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(config: &Criterion, id: &str, mut f: F) {
    // CI smoke runs clamp every budget (`--fast`).
    let (sample_size, measurement_time, warm_up_time) = if cli().fast {
        (
            config.sample_size.min(5),
            config.measurement_time.min(Duration::from_millis(100)),
            config.warm_up_time.min(Duration::from_millis(30)),
        )
    } else {
        (
            config.sample_size,
            config.measurement_time,
            config.warm_up_time,
        )
    };

    // Warm-up: run single iterations until the warm-up budget is spent,
    // measuring the per-iteration cost as we go.
    let warm_start = Instant::now();
    let mut per_iter = Duration::from_nanos(1);
    let mut warm_iters = 0u64;
    while warm_start.elapsed() < warm_up_time || warm_iters == 0 {
        let mut b = Bencher::new(1);
        f(&mut b);
        per_iter = b.elapsed.max(Duration::from_nanos(1));
        warm_iters += 1;
        if warm_iters >= 1_000_000 {
            break;
        }
    }

    // Size each sample so all samples together fit the measurement budget.
    let budget_per_sample = measurement_time / sample_size as u32;
    let iters =
        (budget_per_sample.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u64;

    let peak_base = HOOKS.get().map_or(0, |h| (h.reset_peak)());
    let mut ns_samples = Vec::with_capacity(sample_size);
    let mut alloc_samples = Vec::with_capacity(sample_size);
    let mut byte_samples = Vec::with_capacity(sample_size);
    let mut total_iters = 0u64;
    for _ in 0..sample_size {
        let mut b = Bencher::new(iters);
        f(&mut b);
        total_iters += iters;
        let ns = u64::try_from(b.elapsed.as_nanos()).unwrap_or(u64::MAX);
        // Per-iteration numbers (rounded), so results are independent of
        // how many iterations the host's speed packed into one sample.
        ns_samples.push((ns + iters / 2) / iters);
        alloc_samples.push((b.d_allocs + iters / 2) / iters);
        byte_samples.push((b.d_bytes + iters / 2) / iters);
    }
    let peak_bytes = HOOKS
        .get()
        .map_or(0, |h| (h.peak)().saturating_sub(peak_base));

    let result = BenchResult {
        id: id.to_string(),
        median_ns: median(&mut ns_samples),
        samples: sample_size as u64,
        allocs: median(&mut alloc_samples),
        alloc_bytes: median(&mut byte_samples),
        peak_bytes,
    };
    println!(
        "bench(shim): {id:<48} {:>10} ns/iter (median of {}; {} allocs/iter, {} B/iter; \
         {total_iters} iters)",
        result.median_ns, result.samples, result.allocs, result.alloc_bytes
    );
    RESULTS.lock().expect("bench results poisoned").push(result);
}

/// Declares a bench group: `criterion_group!(name = g; config = ...; targets = a, b)`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench `main` that runs each group, then finalizes (report
/// footer + `--save-baseline` output).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            $crate::finalize();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_loop_runs_and_registers_results() {
        let mut c = Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(10))
            .warm_up_time(Duration::from_millis(1));
        let mut hits = 0u64;
        c.bench_function("smoke/iter", |b| b.iter(|| std::hint::black_box(1 + 1)));
        c.bench_function("smoke/large_drop", |b| {
            b.iter_with_large_drop(|| vec![0u8; 32])
        });
        let mut g = c.benchmark_group("grp");
        g.bench_function("batched", |b| {
            b.iter_batched(|| 3u64, |x| x * 2, BatchSize::SmallInput);
            hits += 1;
        });
        g.finish();
        assert!(hits > 0);
        let results = take_results();
        let ids: Vec<&str> = results.iter().map(|r| r.id.as_str()).collect();
        assert!(ids.contains(&"smoke/iter"));
        assert!(ids.contains(&"smoke/large_drop"));
        assert!(ids.contains(&"grp/batched"));
        for r in &results {
            // Sub-nanosecond routines (like `1 + 1`) can legitimately round
            // to a 0 ns/iter median; the heap-allocating bench cannot.
            assert!(r.samples >= 1);
            if r.id == "smoke/large_drop" {
                assert!(r.median_ns >= 1);
            }
        }
    }

    #[test]
    fn wall_json_sorts_ids_and_is_deterministic() {
        let results = vec![
            BenchResult {
                id: "zeta/last".into(),
                median_ns: 10,
                samples: 2,
                allocs: 0,
                alloc_bytes: 0,
                peak_bytes: 0,
            },
            BenchResult {
                id: "alpha/first".into(),
                median_ns: 20,
                samples: 2,
                allocs: 1,
                alloc_bytes: 64,
                peak_bytes: 128,
            },
        ];
        let a = wall_json(&results);
        let b = wall_json(&results);
        assert_eq!(a, b);
        let alpha = a.find("alpha/first").expect("alpha present");
        let zeta = a.find("zeta/last").expect("zeta present");
        assert!(alpha < zeta, "ids must serialize sorted");
        assert!(a.contains("\"format\": 1"));
        assert!(a.contains("\"alloc_counting\": "));
    }

    #[test]
    fn median_of_k() {
        assert_eq!(median(&mut []), 0);
        assert_eq!(median(&mut [7]), 7);
        assert_eq!(median(&mut [1, 100, 3]), 3);
        assert_eq!(median(&mut [4, 1, 100, 2]), 3);
    }
}
