//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this crate provides
//! the API subset the workspace's benches use — [`Criterion`],
//! [`Bencher::iter`]/[`Bencher::iter_batched`], benchmark groups, and the
//! [`criterion_group!`]/[`criterion_main!`] macros — backed by a simple
//! wall-clock timing loop. It reports mean time per iteration to stdout;
//! there is no statistical analysis, HTML report, or comparison to saved
//! baselines. Swapping back to the real crate is a one-line change in the
//! workspace `Cargo.toml` and requires no source edits.

use std::time::{Duration, Instant};

/// Top-level harness handle, mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(1),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Total time budget for the timed samples of one benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Untimed warm-up budget before sampling.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(self, &id.into(), f);
        self
    }

    /// Opens a named group; member benchmarks print as `group/name`.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Finalizes the run (report footer).
    pub fn final_summary(&mut self) {
        println!("bench(shim): done");
    }
}

/// A named group of benchmarks, mirroring `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        run_bench(self.criterion, &full, f);
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// How `iter_batched` amortizes setup; all variants behave identically here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Timing loop handle passed to the benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` back to back for the configured iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(config: &Criterion, id: &str, mut f: F) {
    // Warm-up: run single iterations until the warm-up budget is spent,
    // measuring the per-iteration cost as we go.
    let warm_start = Instant::now();
    let mut per_iter = Duration::from_nanos(1);
    let mut warm_iters = 0u64;
    while warm_start.elapsed() < config.warm_up_time || warm_iters == 0 {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        per_iter = b.elapsed.max(Duration::from_nanos(1));
        warm_iters += 1;
        if warm_iters >= 1_000_000 {
            break;
        }
    }

    // Size each sample so all samples together fit the measurement budget.
    let budget_per_sample = config.measurement_time / config.sample_size as u32;
    let iters =
        (budget_per_sample.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u64;

    let mut total = Duration::ZERO;
    let mut total_iters = 0u64;
    for _ in 0..config.sample_size {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        total += b.elapsed;
        total_iters += iters;
    }
    let mean_ns = total.as_nanos() as f64 / total_iters.max(1) as f64;
    println!("bench(shim): {id:<48} {mean_ns:>12.1} ns/iter ({total_iters} iters)");
}

/// Declares a bench group: `criterion_group!(name = g; config = ...; targets = a, b)`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench `main` that runs each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_loop_runs() {
        let mut c = Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(10))
            .warm_up_time(Duration::from_millis(1));
        let mut hits = 0u64;
        c.bench_function("smoke/iter", |b| b.iter(|| std::hint::black_box(1 + 1)));
        let mut g = c.benchmark_group("grp");
        g.bench_function("batched", |b| {
            b.iter_batched(|| 3u64, |x| x * 2, BatchSize::SmallInput);
            hits += 1;
        });
        g.finish();
        assert!(hits > 0);
    }
}
