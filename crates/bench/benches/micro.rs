//! Criterion micro-benchmarks of the protocol primitives: software vs
//! hardware (bit-vector DMA) diffing, vector timestamps, routing and the
//! page data plane. These measure the *host implementation* of the
//! simulated mechanisms; the simulated cycle costs live in `SysParams`.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use ncp2::core::bitvec::DirtyVec;
use ncp2::core::diff::Diff;
use ncp2::core::page::PageBuf;
use ncp2::core::vtime::VectorTime;
use ncp2::net::Network;
use ncp2::sim::{SimRng, SysParams};

fn dirty_page(dirty_words: usize) -> (PageBuf, PageBuf, DirtyVec) {
    let twin = PageBuf::new(4096);
    let mut cur = twin.clone();
    let mut dv = DirtyVec::new(1024);
    let mut rng = SimRng::new(42);
    for _ in 0..dirty_words {
        let w = rng.next_below(1024) as usize;
        cur.set_word(w, rng.next_u64() as u32);
        dv.set(w);
    }
    (twin, cur, dv)
}

fn bench_diffs(c: &mut Criterion) {
    let mut g = c.benchmark_group("diff");
    for dirty in [16usize, 256, 1024] {
        let (twin, cur, dv) = dirty_page(dirty);
        g.bench_function(format!("software_twin_compare/{dirty}"), |b| {
            b.iter(|| Diff::from_twin(0, 0, 1, black_box(&cur), black_box(&twin)))
        });
        g.bench_function(format!("dma_bitvec_gather/{dirty}"), |b| {
            b.iter(|| Diff::from_dirty_vec(0, 0, 1, black_box(&cur), black_box(&dv)))
        });
        let d = Diff::from_dirty_vec(0, 0, 1, &cur, &dv);
        g.bench_function(format!("apply/{dirty}"), |b| {
            b.iter_batched(
                || PageBuf::new(4096),
                |mut p| d.apply(black_box(&mut p)),
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn bench_bitvec(c: &mut Criterion) {
    let mut g = c.benchmark_group("bitvec");
    let (_, _, dv) = dirty_page(256);
    g.bench_function("scan_256_of_1024", |b| {
        b.iter(|| black_box(&dv).iter_set().count())
    });
    g.bench_function("set_clear", |b| {
        b.iter_batched(
            || DirtyVec::new(1024),
            |mut v| {
                for i in (0..1024).step_by(3) {
                    v.set(i);
                }
                v.clear();
                v
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_vtime(c: &mut Criterion) {
    let mut a = VectorTime::new(16);
    let mut b = VectorTime::new(16);
    for i in 0..16 {
        a.observe(i, (i * 7) as u32 % 13);
        b.observe(i, (i * 11) as u32 % 17);
    }
    c.bench_function("vtime/merge_16", |bch| {
        bch.iter_batched(
            || a.clone(),
            |mut x| {
                x.merge(black_box(&b));
                x
            },
            BatchSize::SmallInput,
        )
    });
    c.bench_function("vtime/covers_16", |bch| {
        bch.iter(|| black_box(&a).covers(black_box(&b)))
    });
}

fn bench_network(c: &mut Criterion) {
    let params = SysParams::default();
    c.bench_function("network/transfer_4k_page", |b| {
        b.iter_batched(
            || Network::new(16),
            |mut net| net.transfer(0, 0, 15, 4096, black_box(&params)),
            BatchSize::SmallInput,
        )
    });
    c.bench_function("network/route_all_pairs", |b| {
        let net = Network::new(16);
        b.iter(|| {
            let mut h = 0u64;
            for s in 0..16 {
                for d in 0..16 {
                    h += net.mesh().route(s, d).len() as u64;
                }
            }
            h
        })
    });
}

criterion_group!(
    name = micro;
    config = Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_diffs, bench_bitvec, bench_vtime, bench_network
);
criterion_main!(micro);
