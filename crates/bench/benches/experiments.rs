//! Criterion wrappers around miniature versions of each paper experiment,
//! so `cargo bench` exercises every figure's code path end to end (full-size
//! regeneration lives in the `fig*` binaries).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use ncp2::prelude::*;

fn mini_app() -> Em3d {
    Em3d {
        nodes: 512,
        degree: 3,
        remote_pct: 10,
        iters: 2,
        seed: 0x1BE,
    }
}

fn mini_params() -> SysParams {
    SysParams::default().with_nprocs(8)
}

fn bench_fig01(c: &mut Criterion) {
    c.bench_function("fig01/speedup_point_8p", |b| {
        b.iter(|| {
            let r = run_app(
                black_box(mini_params()),
                Protocol::TreadMarks(OverlapMode::Base),
                mini_app(),
            );
            r.total_cycles
        })
    });
}

fn bench_fig05(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig05_overlap");
    for mode in [OverlapMode::Base, OverlapMode::ID, OverlapMode::IPD] {
        g.bench_function(mode.label().replace('+', "_"), |b| {
            b.iter(|| run_app(mini_params(), Protocol::TreadMarks(mode), mini_app()).total_cycles)
        });
    }
    g.finish();
}

fn bench_fig11(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig11_aurc");
    for (name, proto) in [
        ("aurc", Protocol::Aurc { prefetch: false }),
        ("aurc_p", Protocol::Aurc { prefetch: true }),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| run_app(mini_params(), proto, mini_app()).total_cycles)
        });
    }
    g.finish();
}

fn bench_fig14(c: &mut Criterion) {
    c.bench_function("fig14/net_20mbps_point", |b| {
        b.iter(|| {
            run_app(
                mini_params().with_net_bandwidth_mbps(20.0),
                Protocol::TreadMarks(OverlapMode::ID),
                mini_app(),
            )
            .total_cycles
        })
    });
}

criterion_group!(
    name = experiments;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(5))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_fig01, bench_fig05, bench_fig11, bench_fig14
);
criterion_main!(experiments);
