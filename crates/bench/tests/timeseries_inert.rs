//! The time-series recorder is provably inert: switching it on changes no
//! simulated outcome — checksums, total cycles, per-node statistics, network
//! traffic and the derived metrics report are all byte-identical to a run
//! with the recorder off. Recording is charge-driven (hooks piggyback on
//! state transitions that happen anyway; the recorder never schedules an
//! event), so this holds by construction — and these tests keep it that way.
//!
//! The twin below covers the runtime toggle under the compiled-in `obs`
//! feature; the other polarity (`--no-default-features`, hooks compiled to
//! empty inlines) is exercised by the feature-matrix build in `ci.sh`.

use ncp2_bench::engine::{tier1_grid, Engine, RunRecord};
use ncp2_bench::harness::ALL_MODE_LABELS;
use ncp2_obs::TimelineReport;

/// Runs the 7-workloads × 8-modes tier-1 grid with the recorder on or off.
fn run_grid(timeseries: bool) -> Vec<RunRecord> {
    let mut grid = tier1_grid(&ALL_MODE_LABELS);
    for job in &mut grid.jobs {
        job.timeseries = timeseries;
        job.params.ts_window = 4_096;
    }
    Engine::new().no_cache().silent().run(&grid)
}

#[test]
fn recorder_leaves_all_simulated_output_byte_identical() {
    let plain = run_grid(false);
    let recorded = run_grid(true);
    assert_eq!(plain.len(), recorded.len());
    assert_eq!(plain.len(), 7 * ALL_MODE_LABELS.len());

    for (p, q) in plain.iter().zip(&recorded) {
        let rep1 = p.report.clone().expect("tier-1 jobs are observed");
        let rep2 = q.report.clone().expect("tier-1 jobs are observed");
        let label = rep1.name.clone();
        assert_eq!(label, rep2.name);
        let (r1, r2) = (&p.result, &q.result);
        // Only the recorded run carries a log; everything else is identical.
        assert!(r1.ts.is_none(), "{label}: log without the flag");
        assert!(r2.ts.is_some(), "{label}: flag without a log");
        assert_eq!(r1.total_cycles, r2.total_cycles, "{label}");
        assert_eq!(r1.checksum, r2.checksum, "{label}");
        assert_eq!(r1.aggregate(), r2.aggregate(), "{label}");
        assert_eq!(r1.nodes, r2.nodes, "{label}");
        assert_eq!(r1.net.messages, r2.net.messages, "{label}");
        assert_eq!(r1.net.bytes, r2.net.bytes, "{label}");
        assert_eq!(r1.net.total_latency, r2.net.total_latency, "{label}");
        // The BENCH_tier1 metrics (the regression-gated artifact) agree byte
        // for byte.
        assert_eq!(rep1.to_json(), rep2.to_json(), "{label}");
    }
}

/// The timeline artifact itself is deterministic under any worker count:
/// `--jobs 1` and `--jobs 8` produce byte-identical JSON and CSV.
#[test]
fn timeline_export_is_identical_across_worker_counts() {
    let grid = || {
        let mut g = tier1_grid(&["I+P+D"]);
        for job in &mut g.jobs {
            job.obs = false;
            job.timeseries = true;
            job.params.ts_window = 4_096;
        }
        g
    };
    let serial = Engine::new().no_cache().silent().with_jobs(1).run(&grid());
    let parallel = Engine::new().no_cache().silent().with_jobs(8).run(&grid());
    assert_eq!(serial.len(), parallel.len());
    for (s, p) in serial.iter().zip(&parallel) {
        let rs = TimelineReport::from_run("run", &s.result, 16).expect("ts log");
        let rp = TimelineReport::from_run("run", &p.result, 16).expect("ts log");
        assert_eq!(rs.to_json(), rp.to_json());
        assert_eq!(rs.to_csv(), rp.to_csv());
    }
}
