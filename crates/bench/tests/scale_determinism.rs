//! Determinism at cluster scale. A 256-node simulation pushes every data
//! structure this PR rebuilt — the calendar queue, the flat protocol
//! tables, the pooled message arenas, the indexed router — through orders
//! of magnitude more events than the tier-1 grid, so this battery pins the
//! property the whole repo leans on: the simulated output of a run is a
//! pure function of (params, protocol, workload), independent of host
//! scheduling, worker-thread count, process boundaries, and allocator
//! strategy.
//!
//! Three angles:
//!  * the same grid run with 1 worker thread and 8 worker threads is
//!    byte-identical, at 64, 128 and 256 nodes;
//!  * two *fresh processes* running the 256-node grid produce the same
//!    digest (catches anything keyed on ASLR, process start time, or
//!    hash-seed randomization);
//!  * the per-app checksums match the pinned pre-refactor values — and are
//!    invariant across cluster sizes (DSM transparency), which is what
//!    lets a 2..=16-proc golden value anchor a 256-proc run.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

use ncp2_bench::engine::{scale_grid, Engine, RunRecord};
use ncp2_obs::{critical_path, ExecGraph};

const SCALE_SIZES: [usize; 3] = [64, 128, 256];
const MODES: [&str; 2] = ["Base", "I+P+D"];

/// Checksums pinned from the pre-refactor engine at 2..=16 processors.
/// Because the DSM is transparent, the same workload computes the same
/// answer at every cluster size — so these anchor the 64..256 runs too.
const PINNED: [(&str, u64); 2] = [
    ("Ocean", 0xad48_c144_437a_658e),
    ("Em3d", 0x495a_2ea7_5660_24b4),
];

fn run_sizes(sizes: &[usize], jobs: usize) -> Vec<RunRecord> {
    Engine::new()
        .no_cache()
        .silent()
        .with_jobs(jobs)
        .run(&scale_grid(sizes, &MODES, None))
}

/// Folds every simulated (non-host) field of a record set into one value.
/// `DefaultHasher::new()` is fixed-key, so two processes built from the
/// same binary agree on it.
fn digest(records: &[RunRecord]) -> u64 {
    let mut h = DefaultHasher::new();
    for r in records {
        let res = &r.result;
        res.protocol.hash(&mut h);
        res.nprocs.hash(&mut h);
        res.total_cycles.hash(&mut h);
        res.checksum.hash(&mut h);
        format!("{:?}", res.nodes).hash(&mut h);
        format!("{:?}", res.aggregate()).hash(&mut h);
        let mut rep = r.report.clone().expect("scale jobs are observed");
        rep.host.clear();
        rep.to_json().hash(&mut h);
    }
    h.finish()
}

#[test]
fn scale_runs_identical_across_worker_counts() {
    let serial = run_sizes(&SCALE_SIZES, 1);
    let parallel = run_sizes(&SCALE_SIZES, 8);

    assert_eq!(serial.len(), parallel.len());
    for (s, p) in serial.iter().zip(&parallel) {
        let label = &s
            .report
            .as_ref()
            .expect("scale jobs are observed")
            .name
            .clone();
        let (r1, r2) = (&s.result, &p.result);
        assert_eq!(r1.total_cycles, r2.total_cycles, "{label}");
        assert_eq!(r1.checksum, r2.checksum, "{label}");
        assert_eq!(r1.aggregate(), r2.aggregate(), "{label}");
        assert_eq!(r1.nodes, r2.nodes, "{label}");
        let mut rep1 = s.report.clone().unwrap();
        let mut rep2 = p.report.clone().unwrap();
        rep1.host.clear();
        rep2.host.clear();
        assert_eq!(rep1.to_json(), rep2.to_json(), "{label}");

        // Oracle silence, pinned checksum, and critical-path conservation
        // at every size, on the serial copy.
        assert!(r1.violations.is_empty(), "{label}: {:?}", r1.violations);
        let pinned = PINNED
            .iter()
            .find(|(app, _)| label.starts_with(app))
            .expect("label names a scale workload")
            .1;
        assert_eq!(
            r1.checksum, pinned,
            "{label}: checksum drifted from the pinned value"
        );
        let log = r1.obs.as_ref().expect("scale jobs are observed");
        let g = ExecGraph::build(log, r1.nprocs, r1.total_cycles)
            .unwrap_or_else(|e| panic!("{label}: span tiling broken: {e}"));
        critical_path(&g).unwrap_or_else(|e| panic!("{label}: critical path failed: {e}"));
    }
    assert_eq!(digest(&serial), digest(&parallel));
}

/// Env-gated helper: runs the 256-node grid and prints its digest. Invoked
/// twice as a subprocess by `scale_digest_identical_across_processes`; a
/// bare `cargo test -- --ignored` run skips the heavy work.
#[test]
#[ignore = "subprocess helper for scale_digest_identical_across_processes"]
fn scale_digest_helper() {
    if std::env::var("NCP2_SCALE_DIGEST").is_err() {
        eprintln!("scale_digest_helper: set NCP2_SCALE_DIGEST=1 to run");
        return;
    }
    let records = run_sizes(&[256], 4);
    println!("SCALE_DIGEST={:016x}", digest(&records));
}

fn helper_digest() -> u64 {
    let exe = std::env::current_exe().expect("test binary path");
    let out = std::process::Command::new(exe)
        .args(["scale_digest_helper", "--exact", "--ignored", "--nocapture"])
        .env("NCP2_SCALE_DIGEST", "1")
        .output()
        .expect("spawn test binary");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "helper failed: {stdout}");
    // Libtest's `--nocapture` interleaves its own "test ..." prefix onto
    // the helper's stdout line, so search within lines rather than by
    // line prefix.
    let hex = stdout
        .split("SCALE_DIGEST=")
        .nth(1)
        .map(|rest| &rest[..16])
        .unwrap_or_else(|| panic!("no digest in helper output: {stdout}"));
    u64::from_str_radix(hex, 16).expect("hex digest")
}

#[test]
fn scale_digest_identical_across_processes() {
    let first = helper_digest();
    let second = helper_digest();
    assert_eq!(
        first, second,
        "two fresh processes disagreed on the 256-node grid digest"
    );
    // And both agree with this process.
    assert_eq!(first, digest(&run_sizes(&[256], 4)));
}
