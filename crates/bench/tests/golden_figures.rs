//! Golden-figure regression tests: the headline numbers of EXPERIMENTS.md,
//! pinned exactly.
//!
//! These are the repository's oracle for "did a protocol change move the
//! results?" — they re-derive Figure 1 (Base speedups for 2..16 processors)
//! and Figure 2 (the 16-processor execution-time breakdown) through the
//! parallel experiment engine and compare against the committed tables at
//! full output precision. Any intentional protocol change must update both
//! this file and EXPERIMENTS.md in the same commit.
//!
//! The engine runs with the cache disabled: the cache key cannot see source
//! edits, and a golden test served from a stale cache would be a tautology.

use ncp2::prelude::*;
use ncp2_bench::engine::{Engine, Grid};
use ncp2_bench::harness::APP_NAMES;

fn engine() -> Engine {
    Engine::new().no_cache().silent()
}

/// EXPERIMENTS.md Fig 1: speedups over the 1-processor protocol-free run,
/// at "{:.2}" precision, rows = 2/4/8/12/16 processors, columns in
/// [`APP_NAMES`] order (TSP, Water, Radix, Barnes, Em3d, Ocean).
const FIG1_GOLDEN: [(usize, [&str; 6]); 5] = [
    (2, ["1.87", "1.81", "1.61", "0.95", "1.41", "0.84"]),
    (4, ["3.64", "3.43", "2.65", "1.72", "2.24", "1.22"]),
    (8, ["6.95", "5.90", "3.58", "2.75", "2.80", "1.53"]),
    (12, ["9.91", "7.04", "3.58", "3.17", "2.94", "1.58"]),
    (16, ["12.12", "6.71", "3.25", "3.35", "2.84", "1.69"]),
];

#[test]
fn figure1_speedup_table_matches_experiments_md() {
    let params = SysParams::default();
    let mut grid = Grid::new();
    let seq_ix: Vec<usize> = APP_NAMES
        .iter()
        .map(|app| grid.sequential(&params, app, false))
        .collect();
    let run_ix: Vec<Vec<usize>> = FIG1_GOLDEN
        .iter()
        .map(|&(procs, _)| {
            let pp = params.clone().with_nprocs(procs);
            APP_NAMES
                .iter()
                .map(|app| grid.run(&pp, Protocol::TreadMarks(OverlapMode::Base), app, false))
                .collect()
        })
        .collect();
    let records = engine().run(&grid);

    for ((procs, golden_row), row_ix) in FIG1_GOLDEN.iter().zip(&run_ix) {
        for ((app, want), (&r, &s)) in APP_NAMES
            .iter()
            .zip(golden_row)
            .zip(row_ix.iter().zip(&seq_ix))
        {
            let seq = records[s].result.total_cycles;
            let got = records[r]
                .result
                .speedup_over(seq)
                .expect("non-zero parallel run time");
            assert_eq!(
                format!("{got:.2}"),
                *want,
                "Fig 1 speedup for {app} on {procs} processors drifted \
                 (got {got:.4}); if intentional, update EXPERIMENTS.md and \
                 this golden table together"
            );
        }
    }
}

/// EXPERIMENTS.md Fig 2 (16 processors, TreadMarks Base): per-application
/// busy share and diff share of execution time, at "{:.1}" precision,
/// in [`APP_NAMES`] order.
const FIG2_GOLDEN: [(&str, &str, &str); 6] = [
    ("TSP", "82.7", "1.9"),
    ("Water", "41.9", "8.7"),
    ("Radix", "21.3", "15.7"),
    ("Barnes", "20.8", "11.9"),
    ("Em3d", "18.4", "14.1"),
    ("Ocean", "12.8", "14.2"),
];

#[test]
fn figure2_breakdown_matches_experiments_md() {
    let params = SysParams::default();
    let mut grid = Grid::new();
    for (app, _, _) in FIG2_GOLDEN {
        grid.run_obs(&params, Protocol::TreadMarks(OverlapMode::Base), app, false);
    }
    let records = engine().run(&grid);

    for ((app, busy_want, diff_want), rec) in FIG2_GOLDEN.iter().zip(&records) {
        let r = &rec.result;
        let busy = 100.0 * r.aggregate().fraction(Category::Busy);
        assert_eq!(
            format!("{busy:.1}"),
            *busy_want,
            "Fig 2 busy%% for {app} drifted (got {busy:.3})"
        );
        let diff = r.diff_pct();
        assert_eq!(
            format!("{diff:.1}"),
            *diff_want,
            "Fig 2 diff%% for {app} drifted (got {diff:.3})"
        );
        let report = rec.report.as_ref().expect("observed run carries a report");
        assert!(report.conservation_ok, "span conservation failed for {app}");
    }
}
