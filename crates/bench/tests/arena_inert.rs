//! The pooled buffer arenas (`ncp2-core`'s `pool` module) are provably
//! inert: recycling backing `Vec`s through thread-local free lists changes
//! *where host memory comes from* and nothing the simulation computes.
//! These tests run the full tier-1 application set under every protocol
//! mode with pooling off and on and demand byte-identical simulated output
//! — the same shape as the `--prof` and fault-plan inertness guarantees —
//! and, when the counting allocator is compiled in (`--features prof`),
//! prove the pools actually pay for themselves on the Ocean hot path.

use std::sync::Mutex;

use ncp2::apps::{run_app, Ocean};
use ncp2::core::pool::set_pooling;
use ncp2::prelude::*;
use ncp2_bench::engine::{tier1_grid, Engine, RunRecord};
use ncp2_bench::harness::ALL_MODE_LABELS;

/// `set_pooling` flips a process-wide switch and the test harness runs
/// tests concurrently, so every test here serializes on this lock (and
/// restores the default before releasing it).
static POOLING: Mutex<()> = Mutex::new(());

/// Runs the 7-workloads × 8-modes tier-1 grid under the current pooling
/// mode.
fn run_grid() -> Vec<RunRecord> {
    Engine::new()
        .no_cache()
        .silent()
        .run(&tier1_grid(&ALL_MODE_LABELS))
}

#[test]
fn pooling_leaves_all_simulated_output_byte_identical() {
    let _guard = POOLING.lock().unwrap();
    set_pooling(false);
    let fresh = run_grid();
    set_pooling(true);
    let pooled = run_grid();

    assert_eq!(fresh.len(), pooled.len());
    assert_eq!(fresh.len(), 7 * ALL_MODE_LABELS.len());
    for (f, p) in fresh.iter().zip(&pooled) {
        let mut rep1 = f.report.clone().expect("tier-1 jobs are observed");
        let mut rep2 = p.report.clone().expect("tier-1 jobs are observed");
        let label = rep1.name.clone();
        assert_eq!(label, rep2.name);
        let (r1, r2) = (&f.result, &p.result);
        assert_eq!(r1.total_cycles, r2.total_cycles, "{label}");
        assert_eq!(r1.checksum, r2.checksum, "{label}");
        assert_eq!(r1.aggregate(), r2.aggregate(), "{label}");
        assert_eq!(r1.nodes, r2.nodes, "{label}");
        // The derived metrics report must be byte-identical too (host
        // attribution is wall-clock and legitimately differs).
        rep1.host.clear();
        rep2.host.clear();
        assert_eq!(rep1.to_json(), rep2.to_json(), "{label}");
    }
}

/// One Ocean run at 64 nodes with the given iteration count, returning the
/// result and how many host allocations the event-loop thread (where all
/// protocol work happens) performed during it.
fn ocean64(params: &SysParams, iters: usize) -> (RunResult, u64) {
    let (a0, _) = ncp2_prof::prof_thread_counts();
    let r = run_app(
        params.clone(),
        Protocol::TreadMarks(OverlapMode::Base),
        Ocean { grid: 64, iters },
    );
    let (a1, _) = ncp2_prof::prof_thread_counts();
    (r, a1 - a0)
}

#[test]
fn pooling_cuts_ocean_hot_path_allocations() {
    let _guard = POOLING.lock().unwrap();
    let params = SysParams::default().with_nprocs(64);

    // Measuring a 2-iteration and a 6-iteration run and dividing the
    // difference by 4 cancels the per-run setup cost (page tables, node
    // state, channels), leaving the *marginal* allocations of one Ocean
    // iteration — the quantity that scales with simulated work and that
    // pooling targets. Each mode warms up with one run first so the pooled
    // side measures its steady state, not free-list population.
    set_pooling(false);
    let (r_off, _) = ocean64(&params, 2);
    let (r2, off_2) = ocean64(&params, 2);
    let (_, off_6) = ocean64(&params, 6);
    let marginal_off = (off_6 - off_2) / 4;

    set_pooling(true);
    let (r_warm, _) = ocean64(&params, 2);
    let (r_on, on_2) = ocean64(&params, 2);
    let (_, on_6) = ocean64(&params, 6);
    let marginal_on = (on_6 - on_2) / 4;

    // Inert regardless of allocator strategy.
    for r in [&r2, &r_warm, &r_on] {
        assert_eq!(r_off.total_cycles, r.total_cycles);
        assert_eq!(r_off.checksum, r.checksum);
        assert_eq!(r_off.aggregate(), r.aggregate());
        assert_eq!(r_off.nodes, r.nodes);
    }

    if ncp2_prof::prof_enabled() {
        eprintln!(
            "ocean@64 marginal allocs/iter: pooling off = {marginal_off}, on = {marginal_on}"
        );
        assert!(
            marginal_off >= 5 * marginal_on,
            "pooling must cut steady-state event-loop allocations >= 5x per \
             Ocean@64 iteration: off = {marginal_off}/iter, on = {marginal_on}/iter"
        );
    } else {
        // Without the counting allocator the counters are zero stubs.
        assert_eq!((off_2, off_6, on_2, on_6), (0, 0, 0, 0));
    }
}
