//! Property tests for the result cache's key scheme and transparency.
//!
//! Two things must hold for content-hashed caching to be sound:
//!
//! 1. **Key sensitivity** — perturbing any single `SysParams` or `FaultPlan`
//!    field (or the protocol, workload, observability or verification flag)
//!    produces a different cache key, so two configurations can never alias
//!    one entry;
//! 2. **Hit transparency** — a cache hit is byte-identical to the fresh run
//!    it stands in for, down to the serialized entry and report JSON.

use ncp2::prelude::*;
use ncp2::sim::PrefetchStrategy;
use ncp2_bench::engine::{Engine, Job, WorkloadSpec};
use ncp2_bench::{cache, engine};
use ncp2_fault::{FaultPlan, LinkFault, LinkWindow, NodeWindow, TargetedDrop, Window};
use proptest::prelude::*;

/// One mutator per `SysParams` field. Each takes a nonzero `delta` so the
/// property quantifies over *which* different value the field takes, not
/// just one hand-picked alternative.
type Mutator = (&'static str, fn(&mut SysParams, u64));

const MUTATORS: [Mutator; 31] = [
    ("nprocs", |p, d| p.nprocs += d as usize),
    ("tlb_entries", |p, d| p.tlb_entries += d as usize),
    ("tlb_fill", |p, d| p.tlb_fill += d),
    ("interrupt", |p, d| p.interrupt += d),
    ("page_bytes", |p, d| p.page_bytes <<= 1 + d % 2),
    ("cache_bytes", |p, d| p.cache_bytes <<= 1 + d % 2),
    ("write_buffer_entries", |p, d| {
        p.write_buffer_entries += d as usize
    }),
    ("write_cache_entries", |p, d| {
        p.write_cache_entries += d as usize
    }),
    ("line_bytes", |p, d| p.line_bytes <<= 1 + d % 2),
    ("mem_setup", |p, d| p.mem_setup += d),
    ("mem_cycles_per_word", |p, d| {
        p.mem_cycles_per_word += d as f64
    }),
    ("pci_setup", |p, d| p.pci_setup += d),
    ("pci_cycles_per_word", |p, d| {
        p.pci_cycles_per_word += d as f64
    }),
    ("net_cycles_per_byte", |p, d| {
        p.net_cycles_per_byte += d as f64
    }),
    ("messaging_overhead", |p, d| p.messaging_overhead += d),
    ("au_messaging_overhead", |p, d| p.au_messaging_overhead += d),
    ("switch_latency", |p, d| p.switch_latency += d),
    ("wire_latency", |p, d| p.wire_latency += d),
    ("list_processing", |p, d| p.list_processing += d),
    ("twin_cycles_per_word", |p, d| p.twin_cycles_per_word += d),
    ("diff_cycles_per_word", |p, d| p.diff_cycles_per_word += d),
    ("dma_scan_base", |p, d| p.dma_scan_base += d),
    ("dma_scan_full", |p, d| p.dma_scan_full += d),
    ("aurc_pairwise", |p, _| p.aurc_pairwise = !p.aurc_pairwise),
    ("page_req_threshold", |p, d| {
        p.page_req_threshold += d as usize
    }),
    ("prefetch_strategy", |p, d| {
        p.prefetch_strategy = match p.prefetch_strategy {
            PrefetchStrategy::AllReferenced => PrefetchStrategy::Capped(d as usize),
            _ => PrefetchStrategy::AllReferenced,
        }
    }),
    ("trace", |p, _| p.trace = !p.trace),
    ("seed", |p, d| p.seed ^= d),
    ("ack_overhead", |p, d| p.ack_overhead += d),
    ("retransmit_timeout", |p, d| p.retransmit_timeout += d),
    ("ts_window", |p, d| p.ts_window += d),
];

/// Compile-time guard that [`MUTATORS`] stays exhaustive: adding a
/// `SysParams` field breaks this destructuring, pointing here to add the
/// matching mutator.
#[allow(clippy::no_effect_underscore_binding)]
fn assert_mutators_cover_every_field(p: &SysParams) -> usize {
    let SysParams {
        nprocs: _,
        tlb_entries: _,
        tlb_fill: _,
        interrupt: _,
        page_bytes: _,
        cache_bytes: _,
        write_buffer_entries: _,
        write_cache_entries: _,
        line_bytes: _,
        mem_setup: _,
        mem_cycles_per_word: _,
        pci_setup: _,
        pci_cycles_per_word: _,
        net_cycles_per_byte: _,
        messaging_overhead: _,
        au_messaging_overhead: _,
        switch_latency: _,
        wire_latency: _,
        list_processing: _,
        twin_cycles_per_word: _,
        diff_cycles_per_word: _,
        dma_scan_base: _,
        dma_scan_full: _,
        aurc_pairwise: _,
        page_req_threshold: _,
        prefetch_strategy: _,
        trace: _,
        seed: _,
        ack_overhead: _,
        retransmit_timeout: _,
        ts_window: _,
    } = p;
    31
}

/// One mutator per `FaultPlan` field, mirroring [`MUTATORS`]: a faulted run
/// must never alias the cache entry of a fault-free (or differently-faulted)
/// run.
type FaultMutator = (&'static str, fn(&mut FaultPlan, u64));

const FAULT_MUTATORS: [FaultMutator; 11] = [
    ("seed", |p, d| p.seed ^= d),
    ("drop_permille", |p, d| {
        p.drop_permille = 1 + (d % 500) as u16
    }),
    ("dup_permille", |p, d| p.dup_permille = 1 + (d % 500) as u16),
    ("corrupt_permille", |p, d| {
        p.corrupt_permille = 1 + (d % 500) as u16
    }),
    ("ack_faults", |p, _| p.ack_faults = !p.ack_faults),
    ("link_overrides", |p, d| {
        p.link_overrides.push(LinkFault {
            src: 0,
            dst: 1,
            drop_permille: (d % 500) as u16,
            dup_permille: 0,
            corrupt_permille: 0,
        })
    }),
    ("targeted_drops", |p, d| {
        p.targeted_drops.push(TargetedDrop {
            src: 0,
            dst: 1,
            nth: d,
        })
    }),
    ("spikes", |p, d| {
        p.spikes.push(LinkWindow {
            src: 0,
            dst: 1,
            start: 0,
            end: d,
            extra: d,
        })
    }),
    ("congestion", |p, d| {
        p.congestion.push(Window {
            start: 0,
            end: d,
            extra: d,
        })
    }),
    ("ctrl_stalls", |p, d| {
        p.ctrl_stalls.push(NodeWindow {
            node: 0,
            start: 0,
            end: d,
        })
    }),
    ("downtimes", |p, d| {
        p.downtimes.push(NodeWindow {
            node: 0,
            start: 0,
            end: d,
        })
    }),
];

/// Compile-time guard that [`FAULT_MUTATORS`] stays exhaustive, like
/// [`assert_mutators_cover_every_field`] for `SysParams`.
fn assert_fault_mutators_cover_every_field(p: &FaultPlan) -> usize {
    let FaultPlan {
        seed: _,
        drop_permille: _,
        dup_permille: _,
        corrupt_permille: _,
        ack_faults: _,
        link_overrides: _,
        targeted_drops: _,
        spikes: _,
        congestion: _,
        ctrl_stalls: _,
        downtimes: _,
    } = p;
    11
}

/// One mutator per `Svc` field, mirroring [`MUTATORS`]: the service
/// workload's whole configuration must feed the cache key, or two different
/// offered loads could alias one tail-latency result.
type SvcMutator = (&'static str, fn(&mut Svc, u64));

const SVC_MUTATORS: [SvcMutator; 9] = [
    ("requests", |w, d| w.requests += d),
    ("mean_gap", |w, d| w.mean_gap += d),
    ("keys", |w, d| w.keys += d as usize),
    ("sessions", |w, d| w.sessions += d as usize),
    ("put_permille", |w, d| {
        w.put_permille = (w.put_permille + d as u32) % 1000
    }),
    ("session_permille", |w, d| {
        w.session_permille = (w.session_permille + d as u32) % 1000
    }),
    ("skew_x100", |w, d| w.skew_x100 += d as u32),
    ("service_compute", |w, d| w.service_compute += d),
    ("seed", |w, d| w.seed ^= d),
];

/// Compile-time guard that [`SVC_MUTATORS`] stays exhaustive, like
/// [`assert_mutators_cover_every_field`] for `SysParams`.
fn assert_svc_mutators_cover_every_field(w: &Svc) -> usize {
    let Svc {
        requests: _,
        mean_gap: _,
        keys: _,
        sessions: _,
        put_permille: _,
        session_permille: _,
        skew_x100: _,
        service_compute: _,
        seed: _,
    } = w;
    9
}

fn job_with(params: SysParams) -> Job {
    Job {
        label: "probe".into(),
        params,
        protocol: Protocol::TreadMarks(OverlapMode::ID),
        workload: WorkloadSpec::Ocean(Ocean { grid: 8, iters: 1 }),
        obs: false,
        fault: FaultPlan::none(),
        verify: false,
        timeseries: false,
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn any_single_field_perturbation_changes_the_cache_key(delta in 1u64..1_000) {
        let base = job_with(SysParams::default());
        let field_count = assert_mutators_cover_every_field(&base.params);
        prop_assert_eq!(MUTATORS.len(), field_count);

        // The key is a pure function of the configuration...
        prop_assert_eq!(base.cache_key(), job_with(SysParams::default()).cache_key());

        // ...and injective across every one-field change.
        for (field, mutate) in MUTATORS {
            let mut params = SysParams::default();
            mutate(&mut params, delta);
            let perturbed = job_with(params);
            prop_assert_ne!(
                base.cache_key(),
                perturbed.cache_key(),
                "perturbing SysParams::{} (delta {}) did not change the cache key",
                field,
                delta
            );
        }

        // Label changes alone must NOT change the key (one config = one entry).
        let mut relabeled = job_with(SysParams::default());
        relabeled.label = format!("probe-{delta}");
        prop_assert_eq!(base.cache_key(), relabeled.cache_key());

        // Protocol, observability, verification and workload are part of the
        // key too.
        let mut other_proto = job_with(SysParams::default());
        other_proto.protocol = Protocol::Aurc { prefetch: false };
        prop_assert_ne!(base.cache_key(), other_proto.cache_key());
        let mut observed = job_with(SysParams::default());
        observed.obs = true;
        prop_assert_ne!(base.cache_key(), observed.cache_key());
        let mut verified = job_with(SysParams::default());
        verified.verify = true;
        prop_assert_ne!(base.cache_key(), verified.cache_key());
        let mut other_workload = job_with(SysParams::default());
        other_workload.workload = WorkloadSpec::Ocean(Ocean {
            grid: 8,
            iters: 1 + delta as usize,
        });
        prop_assert_ne!(base.cache_key(), other_workload.cache_key());
    }

    #[test]
    fn any_single_svc_field_perturbation_changes_the_cache_key(delta in 1u64..900) {
        let mut base = job_with(SysParams::default());
        base.workload = WorkloadSpec::Svc(Svc::default());
        let field_count = assert_svc_mutators_cover_every_field(&Svc::default());
        prop_assert_eq!(SVC_MUTATORS.len(), field_count);

        for (field, mutate) in SVC_MUTATORS {
            let mut w = Svc::default();
            mutate(&mut w, delta);
            let mut perturbed = job_with(SysParams::default());
            perturbed.workload = WorkloadSpec::Svc(w);
            prop_assert_ne!(
                base.cache_key(),
                perturbed.cache_key(),
                "perturbing Svc::{} (delta {}) did not change the cache key",
                field,
                delta
            );
        }
    }

    #[test]
    fn any_single_fault_plan_perturbation_changes_the_cache_key(delta in 1u64..1_000) {
        let base = job_with(SysParams::default());
        let field_count = assert_fault_mutators_cover_every_field(&base.fault);
        prop_assert_eq!(FAULT_MUTATORS.len(), field_count);

        for (field, mutate) in FAULT_MUTATORS {
            let mut perturbed = job_with(SysParams::default());
            mutate(&mut perturbed.fault, delta);
            prop_assert_ne!(
                base.cache_key(),
                perturbed.cache_key(),
                "perturbing FaultPlan::{} (delta {}) did not change the cache key",
                field,
                delta
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    #[test]
    fn a_cache_hit_is_byte_identical_to_a_fresh_run(
        grid_size in 0usize..3,
        iters in 1usize..3,
        nprocs in 1usize..4,
        obs in any::<bool>()
    ) {
        let dir = std::env::temp_dir().join(format!(
            "ncp2-cache-props-{}-{grid_size}-{iters}-{nprocs}-{obs}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let engine = Engine {
            jobs: 2,
            cache_dir: Some(dir.clone()),
            quiet: true,
            prof: false,
        };
        let job = Job {
            label: "Ocean/probe".into(),
            params: SysParams::default().with_nprocs(nprocs),
            protocol: Protocol::TreadMarks(OverlapMode::IPD),
            workload: WorkloadSpec::Ocean(Ocean {
                grid: 8 + 2 * grid_size,
                iters,
            }),
            obs,
            fault: FaultPlan::none(),
            verify: false,
            timeseries: false,
        };

        let cold = engine.run_job(job.clone());
        prop_assert!(!cold.cached);
        let warm = engine.run_job(job.clone());
        prop_assert!(warm.cached, "second identical run must hit the cache");

        // Byte-level identity of everything the cache round-trips: encode
        // both records with the entry serializer and compare the strings.
        let cold_bytes = cache::encode(&job.label, &cold.result, cold.report.as_ref());
        let warm_bytes = cache::encode(&job.label, &warm.result, warm.report.as_ref());
        prop_assert_eq!(cold_bytes, warm_bytes);

        // And the on-disk entry is exactly what decode() hands back.
        let text = std::fs::read_to_string(cache::entry_path(&dir, job.cache_key()))
            .expect("cache entry exists after a cold run");
        let (decoded, decoded_report) = cache::decode(&text).expect("stored entry decodes");
        prop_assert_eq!(decoded.total_cycles, cold.result.total_cycles);
        prop_assert_eq!(decoded.checksum, cold.result.checksum);
        prop_assert_eq!(&decoded.nodes, &cold.result.nodes);
        prop_assert_eq!(&decoded.net, &cold.result.net);
        prop_assert_eq!(decoded_report.is_some(), obs);

        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// The cached-run acceptance criterion, as a test: a warm engine pass over a
/// small grid must serve every record from the cache.
#[test]
fn warm_grid_runs_are_served_entirely_from_cache() {
    let dir = std::env::temp_dir().join(format!("ncp2-cache-warm-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let engine = Engine {
        jobs: 2,
        cache_dir: Some(dir.clone()),
        quiet: true,
        prof: false,
    };
    let mut grid = engine::Grid::new();
    let params = SysParams::default().with_nprocs(2);
    for (name, spec) in engine::tier1_workloads().into_iter().take(2) {
        grid.add(Job {
            label: format!("{name}/Base"),
            params: params.clone(),
            protocol: Protocol::TreadMarks(OverlapMode::Base),
            workload: spec,
            obs: true,
            fault: FaultPlan::none(),
            verify: false,
            timeseries: false,
        });
    }
    let cold = engine.run(&grid);
    assert!(cold.iter().all(|r| !r.cached));
    let warm = engine.run(&grid);
    assert!(warm.iter().all(|r| r.cached), "warm pass must be all hits");
    for (c, w) in cold.iter().zip(&warm) {
        assert_eq!(c.result.total_cycles, w.result.total_cycles);
        let (cr, wr) = (c.report.as_ref().unwrap(), w.report.as_ref().unwrap());
        assert_eq!(cr.to_json(), wr.to_json());
    }
    let _ = std::fs::remove_dir_all(&dir);
}
