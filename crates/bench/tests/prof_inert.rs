//! `--prof` is provably inert: host-side profiling may read the wall clock
//! and the allocator counters, but it must never perturb anything the
//! simulation computes. These tests run the full tier-1 application set
//! under every protocol mode with and without profiling and demand
//! byte-identical simulated output — the same shape as the observability
//! and fault-plan inertness guarantees.

use ncp2_bench::engine::{tier1_grid, Engine, RunRecord};
use ncp2_bench::harness::ALL_MODE_LABELS;

/// Runs the 7-workloads × 8-modes tier-1 grid, profiled or not.
fn run_grid(prof: bool) -> Vec<RunRecord> {
    let mut e = Engine::new().no_cache().silent();
    if prof {
        e = e.with_prof();
    }
    e.run(&tier1_grid(&ALL_MODE_LABELS))
}

#[test]
fn prof_leaves_all_simulated_output_byte_identical() {
    let plain = run_grid(false);
    let profiled = run_grid(true);
    assert_eq!(plain.len(), profiled.len());
    assert_eq!(plain.len(), 7 * ALL_MODE_LABELS.len());

    for (p, q) in plain.iter().zip(&profiled) {
        let rep1 = p.report.clone().expect("tier-1 jobs are observed");
        let mut rep2 = q.report.clone().expect("tier-1 jobs are observed");
        let label = rep1.name.clone();
        assert_eq!(label, rep2.name);
        let (r1, r2) = (&p.result, &q.result);
        assert_eq!(r1.total_cycles, r2.total_cycles, "{label}");
        assert_eq!(r1.checksum, r2.checksum, "{label}");
        assert_eq!(r1.aggregate(), r2.aggregate(), "{label}");
        assert_eq!(r1.nodes, r2.nodes, "{label}");

        // The derived metrics report must be byte-identical once the (host
        // wall-clock, hence legitimately differing) attribution is removed.
        assert!(rep1.host.is_empty(), "unprofiled runs carry no host data");
        rep2.host.clear();
        assert_eq!(rep1.to_json(), rep2.to_json(), "{label}");
    }
}

#[test]
fn prof_attaches_per_phase_attribution() {
    let profiled = run_grid(true);
    for rec in &profiled {
        let report = rec.report.as_ref().expect("tier-1 jobs are observed");
        let label = &report.name;
        let phases: Vec<&str> = rec.host.iter().map(|(n, _)| n.as_str()).collect();
        // Cache-off runs attribute every phase that actually happened, in
        // order; `cache_io` only appears when a cache is configured.
        assert_eq!(phases, ["setup", "sim", "obs_export"], "{label}");
        assert_eq!(report.host, rec.host, "{label}");
        // Wall time is attributed even without the `prof` feature; the sim
        // phase of a real run can never take zero nanoseconds.
        let sim = &rec.host.iter().find(|(n, _)| n == "sim").unwrap().1;
        assert!(sim.wall_ns > 0, "{label}");
        // Allocation counts are exact when the counting allocator is in,
        // and all-zero stubs when it is not.
        if !ncp2_prof::prof_enabled() {
            assert!(rec.host.iter().all(|(_, c)| c.allocs == 0));
        }
    }
}

#[test]
fn prof_cache_hits_attribute_cache_io_only() {
    let dir = std::env::temp_dir().join(format!("ncp2-prof-inert-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let grid = tier1_grid(&["I+P+D"]);
    let engine = Engine {
        jobs: 2,
        cache_dir: Some(dir.clone()),
        quiet: true,
        prof: true,
    };
    let cold = engine.run(&grid);
    let warm = engine.run(&grid);
    let _ = std::fs::remove_dir_all(&dir);
    for (c, w) in cold.iter().zip(&warm) {
        assert_eq!(c.result.total_cycles, w.result.total_cycles);
        let phases: Vec<&str> = w.host.iter().map(|(n, _)| n.as_str()).collect();
        assert!(w.cached);
        assert_eq!(phases, ["cache_io"]);
    }
}
