//! Conservation laws for the windowed time-series recorder: every counter's
//! per-window deltas must sum to the run's final aggregate statistic, for
//! every tier-1 application under every protocol mode — and the sums must be
//! invariant under the window width (the recorder only re-buckets charges,
//! it never creates or loses any).
//!
//! The match over [`TsCounter`] is exhaustive on purpose: adding a counter
//! variant without declaring which aggregate it conserves against is a
//! compile error here.

use ncp2::core::{RunResult, TsCounter, TsGauge, TS_MAX_WINDOWS};
use ncp2::sim::SysParams;
use ncp2_bench::engine::{tier1_grid, Engine, Grid, Job, RunRecord, WorkloadSpec};
use ncp2_bench::harness::{protocol_from_label, ALL_MODE_LABELS};
use ncp2_fault::FaultPlan;

/// The aggregate statistic each windowed counter conserves against.
fn aggregate_of(c: TsCounter, r: &RunResult) -> u64 {
    let nodes = |f: &dyn Fn(&ncp2::core::NodeStats) -> u64| -> u64 { r.nodes.iter().map(f).sum() };
    match c {
        TsCounter::PageFetches => nodes(&|n| n.page_fetches),
        TsCounter::DiffsCreated => nodes(&|n| n.diffs_created),
        TsCounter::DiffsApplied => nodes(&|n| n.diffs_applied),
        TsCounter::DiffBytesCreated => nodes(&|n| n.diff_bytes_created),
        TsCounter::DiffBytesApplied => nodes(&|n| n.diff_bytes_applied),
        TsCounter::Invalidations => nodes(&|n| n.invalidations),
        TsCounter::LockAcquires => nodes(&|n| n.lock_acquires),
        TsCounter::Barriers => nodes(&|n| n.barriers),
        TsCounter::PrefetchIssued => nodes(&|n| n.prefetches),
        TsCounter::PrefetchFills => nodes(&|n| n.prefetch_fills),
        TsCounter::PrefetchShed => r.fault.prefetch_shed,
        TsCounter::Retransmits => r.fault.retransmits,
        TsCounter::FramesSent => r.fault.frames_sent,
        TsCounter::Messages => r.net.messages,
        TsCounter::MessageBytes => r.net.bytes,
    }
}

/// Asserts every conservation law on one record.
fn assert_conserved(rec: &RunRecord) {
    let label = &rec.result.protocol;
    let ts = rec
        .result
        .ts
        .as_ref()
        .expect("time-series jobs carry a log");
    for c in TsCounter::ALL {
        assert_eq!(
            ts.counter_total(c),
            aggregate_of(c, &rec.result),
            "{label}: counter {} does not conserve",
            c.label()
        );
    }
    // Per-link retransmit series re-partition the same aggregate.
    let link_retx: u64 = ts.link_retransmits.values().flatten().sum();
    assert_eq!(link_retx, rec.result.fault.retransmits, "{label}: links");
    // The log spans the run. (It may extend slightly past `total_cycles`:
    // charges land at delivery time, and the last ack of a run can arrive
    // after the final barrier releases.)
    assert!(!ts.windows.is_empty(), "{label}: empty log");
    assert!(
        ts.windows.len() as u64 * ts.width >= rec.result.total_cycles,
        "{label}: log stops before the run ends"
    );
}

/// The tier-1 grid with the recorder on at a given fixed width (0 = auto).
fn ts_grid(width: u64) -> Grid {
    let mut grid = tier1_grid(&ALL_MODE_LABELS);
    for job in &mut grid.jobs {
        job.obs = false;
        job.timeseries = true;
        job.params.ts_window = width;
    }
    grid
}

#[test]
fn every_counter_conserves_and_sums_are_width_invariant() {
    let fine = Engine::new().no_cache().silent().run(&ts_grid(1_024));
    let coarse = Engine::new().no_cache().silent().run(&ts_grid(16_384));
    assert_eq!(fine.len(), 7 * ALL_MODE_LABELS.len());
    for (f, c) in fine.iter().zip(&coarse) {
        assert_conserved(f);
        assert_conserved(c);
        let (tf, tc) = (f.result.ts.as_ref().unwrap(), c.result.ts.as_ref().unwrap());
        assert_eq!(tf.width, 1_024);
        assert_eq!(tc.width, 16_384);
        // Same charges, different buckets: totals agree across widths...
        for counter in TsCounter::ALL {
            assert_eq!(
                tf.counter_total(counter),
                tc.counter_total(counter),
                "{}: width changes the {} sum",
                f.result.protocol,
                counter.label()
            );
        }
        // ...and a gauge's all-run maximum is partition-invariant too.
        for gauge in TsGauge::ALL {
            assert_eq!(
                tf.gauge_series(gauge).iter().max(),
                tc.gauge_series(gauge).iter().max(),
                "{}: width changes the {} peak",
                f.result.protocol,
                gauge.label()
            );
        }
    }
}

/// Auto width (ts_window = 0) must cap the window count by doubling, and the
/// conservation laws hold across merges.
#[test]
fn auto_width_merges_conserve_and_bound_the_window_count() {
    let mut grid = Grid::new();
    grid.add(Job {
        label: "TSP/I+P+D/auto".into(),
        params: SysParams::default().with_nprocs(4),
        protocol: protocol_from_label("I+P+D").unwrap(),
        workload: WorkloadSpec::named("TSP", false),
        obs: false,
        fault: FaultPlan::none(),
        verify: false,
        timeseries: true,
    });
    let records = Engine::new().no_cache().silent().run(&grid);
    assert_conserved(&records[0]);
    let ts = records[0].result.ts.as_ref().unwrap();
    assert!(ts.windows.len() <= TS_MAX_WINDOWS);
    assert!(!ts.windows.is_empty());
    // The width is a power-of-two multiple of the base (pure doubling).
    assert_eq!(ts.width % 1_024, 0);
    assert!((ts.width / 1_024).is_power_of_two());
}

/// A faulted run exercises the transport counters (retransmits, frames,
/// sheds): they must conserve exactly like the protocol counters.
#[test]
fn faulted_runs_conserve_the_transport_counters() {
    let plan = FaultPlan {
        seed: 0x7E57,
        drop_permille: 20,
        dup_permille: 10,
        ..FaultPlan::none()
    };
    let mut params = SysParams::default().with_nprocs(4);
    params.ts_window = 2_048;
    let mut grid = Grid::new();
    grid.add(Job {
        label: "TSP/I+P+D/faulted".into(),
        params,
        protocol: protocol_from_label("I+P+D").unwrap(),
        workload: WorkloadSpec::named("TSP", false),
        obs: false,
        fault: plan,
        verify: true,
        timeseries: true,
    });
    let records = Engine::new().no_cache().silent().run(&grid);
    let r = &records[0].result;
    assert!(r.fault.retransmits > 0, "plan did not exercise retransmits");
    assert!(
        r.fault.frames_sent > 0,
        "plan did not exercise the transport"
    );
    assert!(r.violations.is_empty());
    assert_conserved(&records[0]);
}
