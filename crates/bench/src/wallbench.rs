//! The wall-clock microbench suite behind the `wall_bench` binary and the
//! `BENCH_WALL.json` regression gate.
//!
//! Where `ncp2-obs` accounts for *simulated* cycles, this suite measures the
//! *host* cost of the implementation's known hot paths: diff create/apply,
//! bit-vector scans, vector-clock merges, span/edge emission, router hops,
//! transport resequencing under retransmission, and cache-key hashing. Every
//! bench runs through the in-tree criterion stand-in, which reports the
//! median of K samples and — when `ncp2-prof`'s counting allocator is
//! installed (the `prof` feature) — exact per-iteration allocation counts.
//!
//! The suite lives in the library (not the binary) so `wall_bench` stays a
//! thin driver; keeping it out of `benches/` lets the engine's `--prof`
//! plumbing and the xtask `wall-diff` gate share one crate graph.

use criterion::{BatchSize, Criterion};
use std::hint::black_box;

use ncp2::core::bitvec::DirtyVec;
use ncp2::core::diff::Diff;
use ncp2::core::page::PageBuf;
use ncp2::core::span::ObsRecorder;
use ncp2::core::vtime::VectorTime;
use ncp2::core::{EdgeKind, MsgKind, SpanKind};
use ncp2::net::Network;
use ncp2::prelude::*;
use ncp2::sim::SimRng;
use ncp2_fault::{FaultPlan, LinkWindow};

use crate::engine::{Job, WorkloadSpec};

/// A 4 KiB page pair (pristine twin + mutated copy) with `dirty_words`
/// random word writes, plus the matching dirty bit-vector.
fn dirty_page(dirty_words: usize) -> (PageBuf, PageBuf, DirtyVec) {
    let twin = PageBuf::new(4096);
    let mut cur = twin.clone();
    let mut dv = DirtyVec::new(1024);
    let mut rng = SimRng::new(42);
    for _ in 0..dirty_words {
        let w = rng.next_below(1024) as usize;
        cur.set_word(w, rng.next_u64() as u32);
        dv.set(w);
    }
    (twin, cur, dv)
}

/// Diff creation (both the software twin-compare and the DMA bit-vector
/// gather path) and diff application, at a representative dirty density.
fn bench_diff(c: &mut Criterion) {
    let (twin, cur, dv) = dirty_page(256);
    c.bench_function("diff/software_twin_compare_256", |b| {
        b.iter(|| Diff::from_twin(0, 0, 1, black_box(&cur), black_box(&twin)))
    });
    c.bench_function("diff/dma_bitvec_gather_256", |b| {
        b.iter(|| Diff::from_dirty_vec(0, 0, 1, black_box(&cur), black_box(&dv)))
    });
    let d = Diff::from_dirty_vec(0, 0, 1, &cur, &dv);
    c.bench_function("diff/apply_256", |b| {
        b.iter_batched(
            || PageBuf::new(4096),
            |mut p| d.apply(black_box(&mut p)),
            BatchSize::SmallInput,
        )
    });
}

/// Dirty bit-vector scan and set/clear cycling.
fn bench_bitvec(c: &mut Criterion) {
    let (_, _, dv) = dirty_page(256);
    c.bench_function("bitvec/scan_256_of_1024", |b| {
        b.iter(|| black_box(&dv).iter_set().count())
    });
    c.bench_function("bitvec/set_clear_1024", |b| {
        b.iter_batched(
            || DirtyVec::new(1024),
            |mut v| {
                for i in (0..1024).step_by(3) {
                    v.set(i);
                }
                v.clear();
                v
            },
            BatchSize::SmallInput,
        )
    });
}

/// Vector-clock merge and dominance checks at the 16-processor width.
fn bench_vtime(c: &mut Criterion) {
    let mut a = VectorTime::new(16);
    let mut b = VectorTime::new(16);
    for i in 0..16 {
        a.observe(i, (i * 7) as u32 % 13);
        b.observe(i, (i * 11) as u32 % 17);
    }
    c.bench_function("vtime/merge_16", |bch| {
        bch.iter_batched(
            || a.clone(),
            |mut x| {
                x.merge(black_box(&b));
                x
            },
            BatchSize::SmallInput,
        )
    });
    c.bench_function("vtime/covers_16", |bch| {
        bch.iter(|| black_box(&a).covers(black_box(&b)))
    });
}

/// Observability-log emission: ~1k spans with a message edge each, the
/// per-event cost every traced run pays. `iter_with_large_drop` keeps the
/// recorder teardown out of the timed region.
fn bench_obs_emit(c: &mut Criterion) {
    c.bench_function("obs/span_edge_emit_1k", |b| {
        b.iter_with_large_drop(|| {
            let mut r = ObsRecorder::new(4);
            for i in 0..1024u64 {
                let node = (i % 4) as usize;
                r.span(node, SpanKind::Compute, Category::Busy, i, 3);
                r.edge(
                    EdgeKind::Msg(MsgKind::DiffReq),
                    node,
                    i,
                    (node + 1) % 4,
                    i + 5,
                    0,
                    r.last_span(node),
                );
            }
            r
        })
    });
}

/// Router hot paths: a full 4 KiB page transfer and all-pairs mesh routing.
fn bench_network(c: &mut Criterion) {
    let params = SysParams::default();
    c.bench_function("network/transfer_4k_page", |b| {
        b.iter_batched(
            || Network::new(16),
            |mut net| net.transfer(0, 0, 15, 4096, black_box(&params)),
            BatchSize::SmallInput,
        )
    });
    c.bench_function("network/route_all_pairs_16", |b| {
        let net = Network::new(16);
        b.iter(|| {
            let mut h = 0u64;
            for s in 0..16 {
                for d in 0..16 {
                    h += net.mesh().route(s, d).len() as u64;
                }
            }
            h
        })
    });
    // The 256-node variant walks every pair through the allocation-free
    // `route_iter` — the path `transfer_timed` takes — so the gate watches
    // the cost that actually scales with the cluster, not `Vec` building.
    c.bench_function("network/route_iter_all_pairs_256", |b| {
        let net = Network::new(256);
        b.iter(|| {
            let mut h = 0u64;
            for s in 0..256 {
                for d in 0..256 {
                    h += net.mesh().route_iter(s, d).count() as u64;
                }
            }
            h
        })
    });
}

/// Calendar-queue push/pop throughput with 10^5 events pending — the
/// steady-state regime of a 256-node simulation, where every send lands in
/// a deep future and every pop rescans the current bucket.
fn bench_queue(c: &mut Criterion) {
    use ncp2::sim::{EventQueue, Priority};
    let mut rng = SimRng::new(7);
    let seed: Vec<(u64, Priority)> = (0..100_000)
        .map(|_| {
            let t = rng.next_below(1 << 20);
            let p = if rng.next_below(4) == 0 {
                Priority::Low
            } else {
                Priority::Normal
            };
            (t, p)
        })
        .collect();
    c.bench_function("queue/push_pop_at_1e5_pending", |b| {
        b.iter_batched(
            || {
                let mut q = EventQueue::new();
                for &(t, p) in &seed {
                    q.push(t, p, 0u32);
                }
                q
            },
            |mut q| {
                // 1024 pop-push cycles at full depth: the advancing-cursor
                // and bucket-respread paths both get exercised.
                for i in 0..1024u64 {
                    let ev = q.pop().expect("queue stays full");
                    q.push(ev.time + (1 << 20), ev.priority, i as u32);
                }
                q.len()
            },
            BatchSize::LargeInput,
        )
    });
}

/// Transport resequencing under retransmission: a complete (tiny) Ocean run
/// with frame drops and a latency spike, so the hardened transport's
/// retransmit/reorder machinery dominates. End-to-end by design — the
/// resequencing buffers have no isolated public surface, and the engine's
/// per-run host cost is exactly what `--prof` attributes.
fn bench_transport_resequence(c: &mut Criterion) {
    let params = SysParams::default().with_nprocs(2);
    let fault = FaultPlan {
        drop_permille: 40,
        ack_faults: true,
        spikes: vec![LinkWindow {
            src: 0,
            dst: 1,
            start: 2_000,
            end: 12_000,
            extra: 900,
        }],
        ..FaultPlan::none()
    };
    c.bench_function("transport/resequence_ocean8_drop40", |b| {
        b.iter_with_large_drop(|| {
            let plan = fault.clone();
            ncp2::apps::run_app_with(
                params.clone(),
                Protocol::TreadMarks(OverlapMode::IPD),
                Ocean { grid: 8, iters: 1 },
                move |sim| sim.attach_fault_plan(plan),
            )
        })
    });
}

/// Content-hash cache-key derivation over a fully populated job.
fn bench_cache_key(c: &mut Criterion) {
    let job = Job {
        label: "Ocean/I+P+D".into(),
        params: SysParams::default().with_nprocs(8),
        protocol: Protocol::TreadMarks(OverlapMode::IPD),
        workload: WorkloadSpec::named("Ocean", false),
        obs: true,
        fault: FaultPlan::none(),
        verify: false,
        timeseries: false,
    };
    c.bench_function("cache/job_key_hash", |b| {
        b.iter(|| black_box(&job).cache_key())
    });
}

/// The open-loop arrival stream: one million gap draws plus the bounded
/// reorder shuffle, through the alloc-free iterator. The stream is
/// re-derived on every node of every service run, so its steady state must
/// stay allocation-free (the iterator holds its reorder window inline).
fn bench_svc_arrivals(c: &mut Criterion) {
    let stream = ncp2_svc::ArrivalStream::new(0x5ecc, 4_000, 1_000_000);
    c.bench_function("svc/arrival_stream_1e6", |b| {
        b.iter(|| {
            let mut last = 0;
            for a in black_box(&stream).iter() {
                last = a.at;
            }
            black_box(last)
        })
    });
}

/// Registers the whole suite on `c`, in gate order. This is the single
/// source of truth for what `BENCH_WALL.json` covers.
pub fn register_all(c: &mut Criterion) {
    bench_diff(c);
    bench_bitvec(c);
    bench_vtime(c);
    bench_obs_emit(c);
    bench_network(c);
    bench_queue(c);
    bench_transport_resequence(c);
    bench_cache_key(c);
    bench_svc_arrivals(c);
}
