//! Parallel experiment engine: a work-queue scheduler over independent
//! simulation grid points, with content-hashed result caching.
//!
//! The paper's evaluation is a large grid — applications × protocol modes ×
//! processor counts × parameter sweeps — and every point is an independent,
//! deterministic simulation. The engine exploits exactly that: a [`Grid`] of
//! fully declarative [`Job`]s is executed by a bounded pool of
//! `std::thread` workers (one fresh `System` per job, so determinism is
//! untouched), and results are returned **in grid order**, never completion
//! order. A second run of an unchanged grid point is loaded from
//! `results/cache/` instead of re-simulated (see [`crate::cache`]).
//!
//! ## Cache-key scheme
//!
//! [`Job::cache_key`] feeds a fixed [`StableHasher`] with: the cache format
//! version, the `ncp2-bench` crate version, every `SysParams` field
//! (exhaustively — see `SysParams::stable_hash`), the protocol (including
//! its overlap mode), the observability and verification flags, the complete
//! fault plan (exhaustively — see `FaultPlan::stable_hash`), and the
//! complete workload configuration. Two jobs share a key **iff** they would
//! run the identical simulation. The key deliberately does not see source-code edits beyond
//! the version string, so anything that must observe a protocol change —
//! CI, golden tests, baseline regeneration — runs with the cache disabled
//! (`--no-cache` / [`Engine::no_cache`]); the cache exists to make
//! *unchanged* grid points free during iterative figure work.
//!
//! Jobs with `params.trace` set are never cached: their value is the raw
//! event timeline, which the cache does not persist. Jobs with
//! `timeseries` set are never cached for the same reason: their value is
//! the windowed [`ncp2::core::TsLog`], which the cache does not persist.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use ncp2::apps::run_app_with;
use ncp2::prelude::*;
use ncp2::sim::StableHasher;
use ncp2_fault::FaultPlan;
use ncp2_obs::{HostPhase, MetricsReport};
use ncp2_prof::PhaseClock;
use ncp2_verify::VerifyOracle;

use crate::cache;
use crate::harness::build_app;

/// Fully declarative workload description — everything the engine needs to
/// rebuild (and hash) the exact workload of a grid point.
#[derive(Debug, Clone)]
pub enum WorkloadSpec {
    /// One of the six applications by figure name, at the scaled default or
    /// paper size (see `harness::build_app`).
    Named {
        /// Application name ("TSP", "Water", ...).
        name: String,
        /// Run the paper's original problem size.
        paper_size: bool,
    },
    /// Explicitly configured TSP.
    Tsp(Tsp),
    /// Explicitly configured Water.
    Water(Water),
    /// Explicitly configured Radix.
    Radix(Radix),
    /// Explicitly configured Barnes.
    Barnes(Barnes),
    /// Explicitly configured Em3d.
    Em3d(Em3d),
    /// Explicitly configured Ocean.
    Ocean(Ocean),
    /// Explicitly configured open-loop service workload.
    Svc(Svc),
}

impl WorkloadSpec {
    /// Spec for a named app at default or paper size.
    pub fn named(name: &str, paper_size: bool) -> WorkloadSpec {
        WorkloadSpec::Named {
            name: name.to_string(),
            paper_size,
        }
    }

    /// Instantiates the workload.
    pub fn build(&self) -> Box<dyn Workload> {
        match self {
            WorkloadSpec::Named { name, paper_size } => build_app(name, *paper_size),
            WorkloadSpec::Tsp(w) => Box::new(w.clone()),
            WorkloadSpec::Water(w) => Box::new(w.clone()),
            WorkloadSpec::Radix(w) => Box::new(w.clone()),
            WorkloadSpec::Barnes(w) => Box::new(w.clone()),
            WorkloadSpec::Em3d(w) => Box::new(w.clone()),
            WorkloadSpec::Ocean(w) => Box::new(w.clone()),
            WorkloadSpec::Svc(w) => Box::new(w.clone()),
        }
    }

    /// Feeds the complete workload configuration into a cache-key hasher.
    ///
    /// Like `SysParams::stable_hash`, the exhaustive destructuring makes
    /// "added a workload knob but forgot the cache key" a compile error.
    pub fn stable_hash(&self, h: &mut StableHasher) {
        match self {
            WorkloadSpec::Named { name, paper_size } => {
                h.write_str("named");
                h.write_str(name);
                h.write_bool(*paper_size);
            }
            WorkloadSpec::Tsp(Tsp {
                cities,
                prefix_depth,
                seed,
            }) => {
                h.write_str("tsp");
                h.write_usize(*cities);
                h.write_usize(*prefix_depth);
                h.write_u64(*seed);
            }
            WorkloadSpec::Water(Water {
                molecules,
                steps,
                seed,
            }) => {
                h.write_str("water");
                h.write_usize(*molecules);
                h.write_usize(*steps);
                h.write_u64(*seed);
            }
            WorkloadSpec::Radix(Radix {
                keys,
                radix,
                passes,
                seed,
            }) => {
                h.write_str("radix");
                h.write_usize(*keys);
                h.write_usize(*radix);
                h.write_usize(*passes);
                h.write_u64(*seed);
            }
            WorkloadSpec::Barnes(Barnes {
                bodies,
                steps,
                theta_16,
                seed,
            }) => {
                h.write_str("barnes");
                h.write_usize(*bodies);
                h.write_usize(*steps);
                h.write_u64(*theta_16 as u64);
                h.write_u64(*seed);
            }
            WorkloadSpec::Em3d(Em3d {
                nodes,
                degree,
                remote_pct,
                iters,
                seed,
            }) => {
                h.write_str("em3d");
                h.write_usize(*nodes);
                h.write_usize(*degree);
                h.write_u64(*remote_pct as u64);
                h.write_usize(*iters);
                h.write_u64(*seed);
            }
            WorkloadSpec::Ocean(Ocean { grid, iters }) => {
                h.write_str("ocean");
                h.write_usize(*grid);
                h.write_usize(*iters);
            }
            WorkloadSpec::Svc(Svc {
                requests,
                mean_gap,
                keys,
                sessions,
                put_permille,
                session_permille,
                skew_x100,
                service_compute,
                seed,
            }) => {
                h.write_str("svc");
                h.write_u64(*requests);
                h.write_u64(*mean_gap);
                h.write_usize(*keys);
                h.write_usize(*sessions);
                h.write_u64(*put_permille as u64);
                h.write_u64(*session_permille as u64);
                h.write_u64(*skew_x100 as u64);
                h.write_u64(*service_compute);
                h.write_u64(*seed);
            }
        }
    }
}

/// One grid point: a complete, self-contained run description.
#[derive(Debug, Clone)]
pub struct Job {
    /// Display label, conventionally `"APP/MODE"`; used for progress output
    /// and as the name of the derived [`MetricsReport`]. Not part of the
    /// cache key — the same configuration under two labels is one entry.
    pub label: String,
    /// Full system parameters (including `nprocs` and `trace`).
    pub params: SysParams,
    /// Protocol to run under.
    pub protocol: Protocol,
    /// Workload configuration.
    pub workload: WorkloadSpec,
    /// Record the observability timeline and derive a [`MetricsReport`].
    pub obs: bool,
    /// Fault plan injected into the run. [`FaultPlan::none`] (what every
    /// grid-builder convenience sets) leaves the hardened transport
    /// disengaged and the run byte-identical to a fault-free one.
    pub fault: FaultPlan,
    /// Attach the `ncp2-verify` shadow oracle (with the workload's annotated
    /// benign races exempted); violations land in the result.
    pub verify: bool,
    /// Record the windowed time-series log (`RunResult::ts`). Like trace
    /// jobs, time-series jobs bypass the cache: their value is the log,
    /// which the cache does not persist. Provably inert for the simulation
    /// itself — see `tests/timeseries_inert.rs`.
    pub timeseries: bool,
}

impl Job {
    /// Content hash identifying this job's result: equal keys ⇔ identical
    /// simulations (see the module docs for the exact scheme).
    pub fn cache_key(&self) -> u64 {
        let mut h = StableHasher::new();
        h.write_u64(cache::FORMAT_VERSION);
        h.write_str(env!("CARGO_PKG_VERSION"));
        self.params.stable_hash(&mut h);
        h.write_str(&self.protocol.to_string());
        h.write_bool(self.obs);
        h.write_bool(self.verify);
        h.write_bool(self.timeseries);
        self.fault.stable_hash(&mut h);
        self.workload.stable_hash(&mut h);
        h.finish()
    }
}

/// One finished grid point, in grid order.
#[derive(Debug, Clone)]
pub struct RunRecord {
    /// The simulation result. For cache hits, `trace` is empty and `obs` is
    /// `None` (the raw timeline is not persisted); every published
    /// statistic — cycles, checksum, per-node counters, traffic — is exact.
    pub result: RunResult,
    /// Derived metrics report for observed jobs (`Job::obs`), fresh or
    /// restored; its `name` is always the job's label.
    pub report: Option<MetricsReport>,
    /// Whether this record was loaded from the cache.
    pub cached: bool,
    /// Per-phase host-time/allocation attribution (`Engine::with_prof`
    /// runs only; empty otherwise). Cache hits attribute `cache_io` alone;
    /// fresh runs attribute `setup`/`sim`/`obs_export` plus `cache_io`
    /// when a cache is configured. Also mirrored into the report's `host`
    /// field — but never into the cache: host cost describes one
    /// particular execution, not the result.
    pub host: Vec<(String, HostPhase)>,
}

/// An ordered collection of jobs, built before anything runs.
///
/// Binaries declare their whole grid up front (the builder methods return
/// the job's index), hand it to [`Engine::run`], and then format results by
/// index — which is what makes output deterministic under any worker count.
#[derive(Debug, Clone, Default)]
pub struct Grid {
    /// The jobs, in submission (= result) order.
    pub jobs: Vec<Job>,
}

impl Grid {
    /// An empty grid.
    pub fn new() -> Grid {
        Grid::default()
    }

    /// Adds a fully built job; returns its index.
    pub fn add(&mut self, job: Job) -> usize {
        self.jobs.push(job);
        self.jobs.len() - 1
    }

    /// Adds a protocol run of a named app.
    pub fn run(
        &mut self,
        params: &SysParams,
        protocol: Protocol,
        app: &str,
        paper_size: bool,
    ) -> usize {
        self.add(Job {
            label: format!("{app}/{}", protocol.label()),
            params: params.clone(),
            protocol,
            workload: WorkloadSpec::named(app, paper_size),
            obs: false,
            fault: FaultPlan::none(),
            verify: false,
            timeseries: false,
        })
    }

    /// Adds an observed (metrics-report-carrying) protocol run.
    pub fn run_obs(
        &mut self,
        params: &SysParams,
        protocol: Protocol,
        app: &str,
        paper_size: bool,
    ) -> usize {
        self.add(Job {
            label: format!("{app}/{}", protocol.label()),
            params: params.clone(),
            protocol,
            workload: WorkloadSpec::named(app, paper_size),
            obs: true,
            fault: FaultPlan::none(),
            verify: false,
            timeseries: false,
        })
    }

    /// Adds the 1-processor, protocol-free sequential baseline of an app
    /// (TreadMarks Base on one node — no remote party exists, so no
    /// protocol activity occurs).
    pub fn sequential(&mut self, params: &SysParams, app: &str, paper_size: bool) -> usize {
        self.add(Job {
            label: format!("{app}/seq"),
            params: params.clone().with_nprocs(1),
            protocol: Protocol::TreadMarks(OverlapMode::Base),
            workload: WorkloadSpec::named(app, paper_size),
            obs: false,
            fault: FaultPlan::none(),
            verify: false,
            timeseries: false,
        })
    }

    /// Adds the full `apps × protocols` product in row-major (app-outer)
    /// order; returns the starting index. This is the shared grid loop the
    /// figure and ablation binaries all build on.
    pub fn product(
        &mut self,
        params: &SysParams,
        apps: &[&str],
        protocols: &[Protocol],
        paper_size: bool,
    ) -> usize {
        let start = self.jobs.len();
        for app in apps {
            for &p in protocols {
                self.run(params, p, app, paper_size);
            }
        }
        start
    }
}

/// The tier-1 bench suite workloads: the six applications at oracle-test
/// sizes, small enough for CI, broad enough that a protocol-wide change
/// cannot hide. Shared by `obs_report --bench`, the determinism tests and
/// the cache property tests.
pub fn tier1_workloads() -> Vec<(&'static str, WorkloadSpec)> {
    vec![
        (
            "TSP",
            WorkloadSpec::Tsp(Tsp {
                cities: 6,
                prefix_depth: 2,
                seed: 11,
            }),
        ),
        (
            "Water",
            WorkloadSpec::Water(Water {
                molecules: 8,
                steps: 1,
                seed: 12,
            }),
        ),
        (
            "Radix",
            WorkloadSpec::Radix(Radix {
                keys: 256,
                radix: 16,
                passes: 2,
                seed: 13,
            }),
        ),
        (
            "Barnes",
            WorkloadSpec::Barnes(Barnes {
                bodies: 16,
                steps: 1,
                theta_16: 8,
                seed: 14,
            }),
        ),
        (
            "Em3d",
            WorkloadSpec::Em3d(Em3d {
                nodes: 96,
                degree: 2,
                remote_pct: 25,
                iters: 2,
                seed: 15,
            }),
        ),
        ("Ocean", WorkloadSpec::Ocean(Ocean { grid: 16, iters: 2 })),
        ("Svc", WorkloadSpec::Svc(Svc::default())),
    ]
}

/// Doubling processor counts 2..=256 — the scale sweep's x-axis. The paper
/// stops at 16; everything beyond is the ROADMAP's node-count dimension.
pub const SCALE_NPROCS: [usize; 8] = [2, 4, 8, 16, 32, 64, 128, 256];

/// The scale-sweep workloads: two applications whose parallel structure
/// partitions cleanly to hundreds of processors (Ocean's row-block Jacobi,
/// Em3d's bipartite graph relaxation), sized so the full 2..=256 doubling
/// sweep stays CI-feasible. Their checksums are processor-count-invariant:
/// the DSM is transparent, so every size must compute identical data.
pub fn scale_workloads() -> Vec<(&'static str, WorkloadSpec)> {
    vec![
        ("Ocean", WorkloadSpec::Ocean(Ocean { grid: 32, iters: 2 })),
        (
            "Em3d",
            WorkloadSpec::Em3d(Em3d {
                nodes: 512,
                degree: 2,
                remote_pct: 25,
                iters: 2,
                seed: 15,
            }),
        ),
    ]
}

/// Builds the scale grid: every scale workload (optionally restricted to
/// `only_app`, case-insensitively) under each given mode label at each
/// given processor count, observed (for critical-path conservation checks)
/// and oracle-verified (violations land in the result).
///
/// # Panics
///
/// Panics on an unknown mode label.
pub fn scale_grid(nprocs: &[usize], mode_labels: &[&str], only_app: Option<&str>) -> Grid {
    let mut grid = Grid::new();
    for &np in nprocs {
        let params = SysParams::default().with_nprocs(np);
        for label in mode_labels {
            let protocol = crate::harness::protocol_from_label(label)
                .unwrap_or_else(|| panic!("unknown mode label {label}"));
            for (name, spec) in scale_workloads() {
                if only_app.is_some_and(|o| !o.eq_ignore_ascii_case(name)) {
                    continue;
                }
                grid.add(Job {
                    label: format!("{name}/{label}@{np}"),
                    params: params.clone(),
                    protocol,
                    workload: spec,
                    obs: true,
                    fault: FaultPlan::none(),
                    verify: true,
                    timeseries: false,
                });
            }
        }
    }
    grid
}

/// Builds the tier-1 grid: every tier-1 workload under each of the given
/// mode labels (see `harness::ALL_MODE_LABELS`), observed, on 4 processors.
///
/// # Panics
///
/// Panics on an unknown mode label.
pub fn tier1_grid(mode_labels: &[&str]) -> Grid {
    let params = SysParams::default().with_nprocs(4);
    let mut grid = Grid::new();
    for label in mode_labels {
        let protocol = crate::harness::protocol_from_label(label)
            .unwrap_or_else(|| panic!("unknown mode label {label}"));
        for (name, spec) in tier1_workloads() {
            grid.add(Job {
                label: format!("{name}/{label}"),
                params: params.clone(),
                protocol,
                workload: spec,
                obs: true,
                fault: FaultPlan::none(),
                verify: false,
                timeseries: false,
            });
        }
    }
    grid
}

/// Converts a finished phase clock into the report-facing host pairs.
fn host_phases(clock: PhaseClock) -> Vec<(String, HostPhase)> {
    clock
        .finish()
        .into_iter()
        .map(|(n, c)| {
            (
                n.to_string(),
                HostPhase {
                    wall_ns: c.wall_ns,
                    allocs: c.allocs,
                    alloc_bytes: c.alloc_bytes,
                },
            )
        })
        .collect()
}

/// The work-queue scheduler.
#[derive(Debug, Clone)]
pub struct Engine {
    /// Worker threads (≥ 1).
    pub jobs: usize,
    /// Cache directory, or `None` when caching is disabled.
    pub cache_dir: Option<PathBuf>,
    /// Suppress per-job progress lines on stderr.
    pub quiet: bool,
    /// Attach per-phase host-time/allocation attribution to every record
    /// (the `--prof` flag). Provably inert for the simulation itself:
    /// cycles, checksums and reports (minus the `host` field) are
    /// byte-identical either way — see `tests/prof_inert.rs`.
    pub prof: bool,
}

/// Default cache location, relative to the working directory (binaries run
/// from the repository root).
pub const DEFAULT_CACHE_DIR: &str = "results/cache";

impl Default for Engine {
    fn default() -> Self {
        Engine::new()
    }
}

impl Engine {
    /// An engine sized from `std::thread::available_parallelism`, with the
    /// cache enabled at [`DEFAULT_CACHE_DIR`] and progress output on.
    pub fn new() -> Engine {
        Engine {
            jobs: std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
            cache_dir: Some(PathBuf::from(DEFAULT_CACHE_DIR)),
            quiet: false,
            prof: false,
        }
    }

    /// Sets the worker count (clamped to ≥ 1).
    pub fn with_jobs(mut self, jobs: usize) -> Engine {
        self.jobs = jobs.max(1);
        self
    }

    /// Disables the result cache: every grid point simulates fresh, and
    /// nothing is written. Required wherever results must reflect the
    /// *current code* (CI, golden tests, baseline regeneration).
    pub fn no_cache(mut self) -> Engine {
        self.cache_dir = None;
        self
    }

    /// Disables progress output (tests).
    pub fn silent(mut self) -> Engine {
        self.quiet = true;
        self
    }

    /// Enables host-side profiling: every record (and its report) carries
    /// per-phase wall-time and allocation attribution, and the run prints
    /// aggregate phase totals. Allocation counts are exact only when the
    /// binary was built with the `prof` feature (counting allocator);
    /// otherwise they read zero and only wall time is attributed.
    pub fn with_prof(mut self) -> Engine {
        self.prof = true;
        self
    }

    /// Runs every job in the grid and returns records **in grid order**.
    ///
    /// Workers pull jobs from a shared queue; each job builds a fresh
    /// simulation, so concurrent execution cannot perturb results. A panic
    /// in any job propagates after the scope joins.
    pub fn run(&self, grid: &Grid) -> Vec<RunRecord> {
        let n = grid.jobs.len();
        let slots: Vec<Mutex<Option<RunRecord>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        let done = AtomicUsize::new(0);
        let workers = self.jobs.min(n).max(1);
        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let job = &grid.jobs[i];
                    let rec = self.run_one(job);
                    let finished = done.fetch_add(1, Ordering::Relaxed) + 1;
                    if !self.quiet {
                        eprintln!(
                            "[{finished}/{n}] {} — {} cycles{}",
                            job.label,
                            rec.result.total_cycles,
                            if rec.cached { " (cached)" } else { "" }
                        );
                    }
                    // invariant: each index is stored exactly once, by the
                    // worker that claimed it from the queue.
                    *slots[i].lock().expect("result slot poisoned") = Some(rec);
                });
            }
        });
        let records: Vec<RunRecord> = slots
            .into_iter()
            .map(|m| {
                m.into_inner()
                    .expect("result slot poisoned")
                    // invariant: the scope joined, so every slot was filled.
                    .expect("grid slot never filled")
            })
            .collect();
        if self.prof {
            self.print_prof_summary(&records);
        }
        records
    }

    /// Aggregate host-phase totals across all records, printed to stderr
    /// whenever profiling was requested (`--prof` asks for this output, so
    /// `--quiet` does not suppress it).
    fn print_prof_summary(&self, records: &[RunRecord]) {
        let mut agg: Vec<(String, HostPhase)> = Vec::new();
        for rec in records {
            for (name, h) in &rec.host {
                match agg.iter_mut().find(|(n, _)| n == name) {
                    Some((_, a)) => {
                        a.wall_ns += h.wall_ns;
                        a.allocs += h.allocs;
                        a.alloc_bytes += h.alloc_bytes;
                    }
                    None => agg.push((name.clone(), *h)),
                }
            }
        }
        eprintln!(
            "[prof] host-phase totals over {} job(s){}:",
            records.len(),
            if ncp2_prof::prof_enabled() {
                ""
            } else {
                " (alloc counts need --features prof)"
            }
        );
        for (name, h) in &agg {
            eprintln!(
                "[prof]   {name:<12} {:>12.3} ms  {:>12} allocs  {:>14} bytes",
                h.wall_ns as f64 / 1e6,
                h.allocs,
                h.alloc_bytes
            );
        }
    }

    /// Convenience: run a single ad-hoc job.
    pub fn run_job(&self, job: Job) -> RunRecord {
        let mut grid = Grid::new();
        grid.add(job);
        self.run(&grid)
            .pop()
            // invariant: run() returns exactly one record per job.
            .expect("one job in, one record out")
    }

    fn run_one(&self, job: &Job) -> RunRecord {
        // Host-phase attribution. Jobs run start-to-finish on one worker
        // thread, so the clock's same-thread allocation deltas are exactly
        // this job's allocations, whatever the worker count. A disabled
        // clock (no `--prof`) touches neither the wall clock nor the
        // counters.
        let mut clock = PhaseClock::new(self.prof);
        // Trace and time-series runs exist for their raw timeline /
        // windowed log, which is not persisted — never serve or store them
        // from the cache.
        let cache_dir = self
            .cache_dir
            .as_deref()
            .filter(|_| !job.params.trace && !job.timeseries);
        let key = job.cache_key();
        if let Some(dir) = cache_dir {
            let loaded = cache::load(dir, key);
            clock.lap("cache_io");
            if let Some((result, mut report)) = loaded {
                let host = host_phases(clock);
                if let Some(r) = &mut report {
                    // The label is presentation, not configuration: restore
                    // the caller's name.
                    r.name = job.label.clone();
                    r.host.clone_from(&host);
                }
                return RunRecord {
                    result,
                    report,
                    cached: true,
                    host,
                };
            }
        }
        let obs = job.obs;
        let timeseries = job.timeseries;
        let workload = job.workload.build();
        let racy = workload.racy_ranges();
        let (params, protocol) = (job.params.clone(), job.protocol);
        let (verify, fault) = (job.verify, job.fault.clone());
        clock.lap("setup");
        let result = run_app_with(job.params.clone(), job.protocol, workload, move |sim| {
            if obs {
                sim.enable_obs();
            }
            if timeseries {
                sim.enable_timeseries();
            }
            if verify {
                let mut oracle = VerifyOracle::new(&params, &protocol);
                for range in racy {
                    oracle.exempt_range(range);
                }
                sim.attach_observer(Box::new(oracle));
            }
            // No-op for inactive plans (`FaultPlan::none()`): the legacy
            // send path runs and results match a fault-free build exactly.
            sim.attach_fault_plan(fault);
        });
        clock.lap("sim");
        let mut report = obs.then(|| MetricsReport::from_run(&job.label, &result));
        clock.lap("obs_export");
        if let Some(dir) = cache_dir {
            // Runs that tripped an invariant are not representative results;
            // keep them out of the cache. The report goes in *before* host
            // attribution is attached — cache entries never carry host data.
            if result.violations.is_empty() {
                cache::store(dir, key, &job.label, &result, report.as_ref());
            }
            clock.lap("cache_io");
        }
        let host = host_phases(clock);
        if let Some(r) = &mut report {
            r.host.clone_from(&host);
        }
        RunRecord {
            result,
            report,
            cached: false,
            host,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_job(label: &str, obs: bool) -> Job {
        Job {
            label: label.to_string(),
            params: SysParams::default().with_nprocs(2),
            protocol: Protocol::TreadMarks(OverlapMode::Base),
            workload: WorkloadSpec::Ocean(Ocean { grid: 8, iters: 1 }),
            obs,
            fault: FaultPlan::none(),
            verify: false,
            timeseries: false,
        }
    }

    #[test]
    fn results_are_in_grid_order_under_any_worker_count() {
        let mut grid = Grid::new();
        for (name, spec) in tier1_workloads().into_iter().take(3) {
            grid.add(Job {
                label: format!("{name}/Base"),
                params: SysParams::default().with_nprocs(2),
                protocol: Protocol::TreadMarks(OverlapMode::Base),
                workload: spec,
                obs: false,
                fault: FaultPlan::none(),
                verify: false,
                timeseries: false,
            });
        }
        let serial = Engine::new().no_cache().silent().with_jobs(1).run(&grid);
        let parallel = Engine::new().no_cache().silent().with_jobs(4).run(&grid);
        assert_eq!(serial.len(), parallel.len());
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.result.total_cycles, b.result.total_cycles);
            assert_eq!(a.result.checksum, b.result.checksum);
            assert_eq!(a.result.nodes, b.result.nodes);
        }
    }

    #[test]
    fn cache_keys_separate_jobs_and_merge_duplicates() {
        let a = tiny_job("a", false);
        let same_config_other_label = tiny_job("b", false);
        assert_eq!(a.cache_key(), same_config_other_label.cache_key());
        let observed = tiny_job("a", true);
        assert_ne!(a.cache_key(), observed.cache_key());
        let mut other_procs = tiny_job("a", false);
        other_procs.params = other_procs.params.with_nprocs(3);
        assert_ne!(a.cache_key(), other_procs.cache_key());
        let mut other_workload = tiny_job("a", false);
        other_workload.workload = WorkloadSpec::Ocean(Ocean { grid: 8, iters: 2 });
        assert_ne!(a.cache_key(), other_workload.cache_key());
        let mut other_protocol = tiny_job("a", false);
        other_protocol.protocol = Protocol::Aurc { prefetch: false };
        assert_ne!(a.cache_key(), other_protocol.cache_key());
        let mut timeseries = tiny_job("a", false);
        timeseries.timeseries = true;
        assert_ne!(a.cache_key(), timeseries.cache_key());
    }

    #[test]
    fn timeseries_jobs_bypass_the_cache_and_carry_a_log() {
        let dir = std::env::temp_dir().join(format!("ncp2-engine-ts-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let engine = Engine {
            jobs: 1,
            cache_dir: Some(dir.clone()),
            quiet: true,
            prof: false,
        };
        let mut job = tiny_job("Ocean/Base", false);
        job.timeseries = true;
        let first = engine.run_job(job.clone());
        let second = engine.run_job(job);
        assert!(!first.cached && !second.cached);
        let ts = second.result.ts.expect("time-series log must be recorded");
        assert_eq!(
            ts.counter_total(ncp2::core::TsCounter::Barriers),
            second.result.nodes.iter().map(|n| n.barriers).sum::<u64>()
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cache_round_trip_is_transparent() {
        let dir = std::env::temp_dir().join(format!("ncp2-engine-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let engine = Engine {
            jobs: 2,
            cache_dir: Some(dir.clone()),
            quiet: true,
            prof: false,
        };
        let cold = engine.run_job(tiny_job("Ocean/Base", true));
        assert!(!cold.cached);
        let warm = engine.run_job(tiny_job("Ocean/Base", true));
        assert!(warm.cached, "second identical run must hit the cache");
        assert_eq!(cold.result.total_cycles, warm.result.total_cycles);
        assert_eq!(cold.result.checksum, warm.result.checksum);
        assert_eq!(cold.result.nodes, warm.result.nodes);
        assert_eq!(cold.result.net, warm.result.net);
        let (a, b) = (
            cold.report.expect("obs report"),
            warm.report.expect("obs report"),
        );
        assert_eq!(a.to_json(), b.to_json());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn trace_jobs_bypass_the_cache() {
        let dir = std::env::temp_dir().join(format!("ncp2-engine-trace-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let engine = Engine {
            jobs: 1,
            cache_dir: Some(dir.clone()),
            quiet: true,
            prof: false,
        };
        let mut job = tiny_job("Ocean/Base", false);
        job.params.trace = true;
        let first = engine.run_job(job.clone());
        let second = engine.run_job(job);
        assert!(!first.cached && !second.cached);
        assert!(!second.result.trace.is_empty(), "trace must be recorded");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
