//! Content-hashed result cache for the experiment engine.
//!
//! A cached grid point is one JSON file under `results/cache/`, named by the
//! 64-bit stable hash of its full configuration (see
//! [`crate::engine::Job::cache_key`]). The file stores everything a bench
//! binary consumes from a finished run — total cycles, checksum, per-node
//! counters, network traffic, and (for observed runs) the derived
//! [`MetricsReport`] — with the same hand-written deterministic JSON
//! discipline as `ncp2-obs`: fixed key order, ordered arrays for every
//! sequence whose order matters, and the checksum as a hex string because
//! it is the one value that genuinely uses all 64 bits (the parser's `f64`
//! numbers are exact only below 2^53).
//!
//! The raw observability span log and the protocol event trace are **not**
//! persisted: they are large, and every consumer of an engine run reads
//! either the summary statistics or the derived report. Jobs that need the
//! raw timeline (`trace: true`) are never cached.
//!
//! A file that fails to parse, carries a different format version, or has
//! the wrong node-row arity is treated as a miss and rewritten — never an
//! error.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use ncp2::core::NodeStats;
use ncp2::net::TrafficStats;
use ncp2::prelude::*;
use ncp2_obs::json::{esc, parse, JVal};
use ncp2_obs::{HistSummary, MetricsReport};

/// Bumped whenever the serialized layout changes; part of every cache key,
/// so stale layouts can never be misread as current ones.
pub const FORMAT_VERSION: u64 = 5;

/// Number of scalar columns in a serialized node row.
const NODE_COLS: usize = 27;

/// Number of scalar columns in the serialized transport-fault row.
const FAULT_COLS: usize = 9 + ncp2::core::RETX_BUCKETS;

/// The file a key maps to inside `dir`.
pub fn entry_path(dir: &Path, key: u64) -> PathBuf {
    dir.join(format!("{key:016x}.json"))
}

/// Flattens one node's counters in serialization order.
///
/// Exhaustive destructuring on purpose: a new `NodeStats` field fails this
/// build until the cache schema (and [`FORMAT_VERSION`]) are updated.
fn node_row(n: &NodeStats) -> [u64; NODE_COLS] {
    let NodeStats {
        breakdown,
        twin_cycles,
        diff_create_cycles,
        diff_apply_cycles,
        diff_proc_cycles,
        controller_busy,
        faults,
        write_faults,
        lock_acquires,
        barriers,
        invalidations,
        diffs_created,
        diffs_applied,
        diff_bytes_created,
        diff_bytes_applied,
        page_fetches,
        prefetches,
        useless_prefetches,
        prefetch_joins,
        prefetch_hits,
        prefetch_fills,
        au_updates,
        au_combined,
    } = *n;
    [
        breakdown.busy,
        breakdown.data,
        breakdown.synch,
        breakdown.ipc,
        breakdown.other,
        twin_cycles,
        diff_create_cycles,
        diff_apply_cycles,
        diff_proc_cycles,
        controller_busy,
        faults,
        write_faults,
        lock_acquires,
        barriers,
        invalidations,
        diffs_created,
        diffs_applied,
        diff_bytes_created,
        diff_bytes_applied,
        page_fetches,
        prefetches,
        useless_prefetches,
        prefetch_joins,
        prefetch_hits,
        prefetch_fills,
        au_updates,
        au_combined,
    ]
}

/// Inverse of [`node_row`].
fn node_from_row(row: &[u64]) -> Option<NodeStats> {
    if row.len() != NODE_COLS {
        return None;
    }
    Some(NodeStats {
        breakdown: Breakdown {
            busy: row[0],
            data: row[1],
            synch: row[2],
            ipc: row[3],
            other: row[4],
        },
        twin_cycles: row[5],
        diff_create_cycles: row[6],
        diff_apply_cycles: row[7],
        diff_proc_cycles: row[8],
        controller_busy: row[9],
        faults: row[10],
        write_faults: row[11],
        lock_acquires: row[12],
        barriers: row[13],
        invalidations: row[14],
        diffs_created: row[15],
        diffs_applied: row[16],
        diff_bytes_created: row[17],
        diff_bytes_applied: row[18],
        page_fetches: row[19],
        prefetches: row[20],
        useless_prefetches: row[21],
        prefetch_joins: row[22],
        prefetch_hits: row[23],
        prefetch_fills: row[24],
        au_updates: row[25],
        au_combined: row[26],
    })
}

/// Flattens the transport-fault counters in serialization order.
///
/// Exhaustive destructuring, like [`node_row`]: a new `FaultStats` field
/// fails this build until the schema and [`FORMAT_VERSION`] are updated.
fn fault_row(f: &ncp2::core::FaultStats) -> [u64; FAULT_COLS] {
    let ncp2::core::FaultStats {
        frames_sent,
        acks_sent,
        retransmits,
        drops_injected,
        corrupts_injected,
        dups_injected,
        dup_frames_dropped,
        frames_drained,
        prefetch_shed,
        retx_by_attempt,
    } = *f;
    let mut row = [0u64; FAULT_COLS];
    row[..9].copy_from_slice(&[
        frames_sent,
        acks_sent,
        retransmits,
        drops_injected,
        corrupts_injected,
        dups_injected,
        dup_frames_dropped,
        frames_drained,
        prefetch_shed,
    ]);
    row[9..].copy_from_slice(&retx_by_attempt);
    row
}

/// Inverse of [`fault_row`].
fn fault_from_row(row: &[u64]) -> Option<ncp2::core::FaultStats> {
    if row.len() != FAULT_COLS {
        return None;
    }
    let mut retx_by_attempt = [0u64; ncp2::core::RETX_BUCKETS];
    retx_by_attempt.copy_from_slice(&row[9..]);
    Some(ncp2::core::FaultStats {
        frames_sent: row[0],
        acks_sent: row[1],
        retransmits: row[2],
        drops_injected: row[3],
        corrupts_injected: row[4],
        dups_injected: row[5],
        dup_frames_dropped: row[6],
        frames_drained: row[7],
        prefetch_shed: row[8],
        retx_by_attempt,
    })
}

fn u64_list(vals: impl IntoIterator<Item = u64>) -> String {
    vals.into_iter()
        .map(|v| v.to_string())
        .collect::<Vec<_>>()
        .join(", ")
}

/// Serializes a report with ordered `[name, value]` arrays, unlike the
/// `metrics.json` object encoding, so a cache round trip preserves the
/// original `Vec` order exactly and re-serialized reports stay
/// byte-identical to freshly generated ones.
fn report_json(r: &MetricsReport) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("    \"name\": \"{}\",\n", esc(&r.name)));
    out.push_str(&format!("    \"protocol\": \"{}\",\n", esc(&r.protocol)));
    out.push_str(&format!("    \"nprocs\": {},\n", r.nprocs));
    out.push_str(&format!("    \"total_cycles\": {},\n", r.total_cycles));
    out.push_str(&format!(
        "    \"conservation_ok\": {},\n",
        r.conservation_ok
    ));
    let pairs = |items: &[(String, u64)]| -> String {
        items
            .iter()
            .map(|(n, v)| format!("[\"{}\", {v}]", esc(n)))
            .collect::<Vec<_>>()
            .join(", ")
    };
    out.push_str(&format!(
        "    \"categories\": [{}],\n",
        pairs(&r.categories)
    ));
    out.push_str(&format!("    \"exposed\": [{}],\n", pairs(&r.exposed)));
    out.push_str(&format!("    \"counters\": [{}],\n", pairs(&r.counters)));
    let hists = r
        .hists
        .iter()
        .map(|(n, h)| {
            format!(
                "[\"{}\", [{}]]",
                esc(n),
                u64_list([h.count, h.p50, h.p90, h.p99, h.max])
            )
        })
        .collect::<Vec<_>>()
        .join(", ");
    out.push_str(&format!("    \"hists\": [{hists}],\n"));
    let epochs = r
        .epochs
        .iter()
        .map(|row| format!("[{}]", u64_list(row.iter().copied())))
        .collect::<Vec<_>>()
        .join(", ");
    out.push_str(&format!("    \"epochs\": [{epochs}]\n"));
    out.push_str("  }");
    out
}

fn pairs_from(v: &JVal, key: &str) -> Option<Vec<(String, u64)>> {
    v.get(key)?
        .as_arr()?
        .iter()
        .map(|pair| {
            let p = pair.as_arr()?;
            let [name, val] = p else { return None };
            Some((name.as_str()?.to_string(), val.as_u64()?))
        })
        .collect()
}

fn u64s_from(v: &JVal) -> Option<Vec<u64>> {
    v.as_arr()?.iter().map(|x| x.as_u64()).collect()
}

fn report_from(v: &JVal) -> Option<MetricsReport> {
    let hists = v
        .get("hists")?
        .as_arr()?
        .iter()
        .map(|pair| {
            let p = pair.as_arr()?;
            let [name, vals] = p else { return None };
            let vals = u64s_from(vals)?;
            let [count, p50, p90, p99, max] = vals.as_slice() else {
                return None;
            };
            Some((
                name.as_str()?.to_string(),
                HistSummary {
                    count: *count,
                    p50: *p50,
                    p90: *p90,
                    p99: *p99,
                    max: *max,
                },
            ))
        })
        .collect::<Option<Vec<_>>>()?;
    Some(MetricsReport {
        name: v.get("name")?.as_str()?.to_string(),
        protocol: v.get("protocol")?.as_str()?.to_string(),
        nprocs: v.get("nprocs")?.as_u64()? as usize,
        total_cycles: v.get("total_cycles")?.as_u64()?,
        conservation_ok: v.get("conservation_ok")?.as_bool()?,
        categories: pairs_from(v, "categories")?,
        exposed: pairs_from(v, "exposed")?,
        counters: pairs_from(v, "counters")?,
        hists,
        epochs: v
            .get("epochs")?
            .as_arr()?
            .iter()
            .map(u64s_from)
            .collect::<Option<Vec<_>>>()?,
        // Host attribution is measurement about one particular execution,
        // never part of the cached result (see `Engine::run_one`).
        host: Vec::new(),
    })
}

/// Serializes a finished run (and its optional report) as a cache entry.
pub fn encode(label: &str, result: &RunResult, report: Option<&MetricsReport>) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"format\": {FORMAT_VERSION},\n"));
    out.push_str(&format!("  \"label\": \"{}\",\n", esc(label)));
    out.push_str(&format!("  \"protocol\": \"{}\",\n", esc(&result.protocol)));
    out.push_str(&format!("  \"nprocs\": {},\n", result.nprocs));
    out.push_str(&format!("  \"total_cycles\": {},\n", result.total_cycles));
    out.push_str(&format!("  \"checksum\": \"{:#018x}\",\n", result.checksum));
    let TrafficStats {
        messages,
        bytes,
        total_latency,
        total_blocking,
    } = result.net;
    out.push_str(&format!(
        "  \"net\": [{}],\n",
        u64_list([messages, bytes, total_latency, total_blocking])
    ));
    out.push_str("  \"nodes\": [\n");
    for (i, n) in result.nodes.iter().enumerate() {
        let comma = if i + 1 == result.nodes.len() { "" } else { "," };
        out.push_str(&format!("    [{}]{comma}\n", u64_list(node_row(n))));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"fault\": [{}],\n",
        u64_list(fault_row(&result.fault))
    ));
    match report {
        Some(r) => out.push_str(&format!("  \"report\": {}\n", report_json(r))),
        None => out.push_str("  \"report\": null\n"),
    }
    out.push_str("}\n");
    out
}

/// Parses a cache entry back into a run result and optional report.
///
/// Returns `None` on any structural mismatch (wrong format version, bad
/// arity, missing field) — the caller treats that as a cache miss.
pub fn decode(text: &str) -> Option<(RunResult, Option<MetricsReport>)> {
    let v = parse(text).ok()?;
    if v.get("format")?.as_u64()? != FORMAT_VERSION {
        return None;
    }
    let checksum_hex = v.get("checksum")?.as_str()?;
    let checksum = u64::from_str_radix(checksum_hex.strip_prefix("0x")?, 16).ok()?;
    let net_vals = u64s_from(v.get("net")?)?;
    let [messages, bytes, total_latency, total_blocking] = net_vals.as_slice() else {
        return None;
    };
    let nodes = v
        .get("nodes")?
        .as_arr()?
        .iter()
        .map(|row| node_from_row(&u64s_from(row)?))
        .collect::<Option<Vec<_>>>()?;
    let fault = fault_from_row(&u64s_from(v.get("fault")?)?)?;
    let report = match v.get("report")? {
        JVal::Null => None,
        r => Some(report_from(r)?),
    };
    let result = RunResult {
        protocol: v.get("protocol")?.as_str()?.to_string(),
        nprocs: v.get("nprocs")?.as_u64()? as usize,
        total_cycles: v.get("total_cycles")?.as_u64()?,
        nodes,
        net: TrafficStats {
            messages: *messages,
            bytes: *bytes,
            total_latency: *total_latency,
            total_blocking: *total_blocking,
        },
        checksum,
        trace: Vec::new(),
        violations: Vec::new(),
        obs: None,
        fault,
        // Time-series jobs are never cached (like trace jobs), so a decoded
        // entry carries no log by construction.
        ts: None,
        // Service counters are not persisted either: every svc consumer
        // reads the derived report (whose svc_* rows round-trip), and the
        // svc_report gate runs --no-cache.
        svc: None,
    };
    Some((result, report))
}

/// Loads the entry for `key`, or `None` on miss/corruption.
pub fn load(dir: &Path, key: u64) -> Option<(RunResult, Option<MetricsReport>)> {
    let text = std::fs::read_to_string(entry_path(dir, key)).ok()?;
    decode(&text)
}

/// Stores an entry for `key`, best-effort (a full disk or missing directory
/// only costs the cache hit, never the run). The write goes through a
/// uniquely named temporary file plus an atomic rename, so a concurrent
/// reader or a second writer of the same key can never observe a torn file.
pub fn store(
    dir: &Path,
    key: u64,
    label: &str,
    result: &RunResult,
    report: Option<&MetricsReport>,
) {
    static TMP_SEQ: AtomicU64 = AtomicU64::new(0);
    if std::fs::create_dir_all(dir).is_err() {
        return;
    }
    let seq = TMP_SEQ.fetch_add(1, Ordering::Relaxed);
    let tmp = dir.join(format!(".{key:016x}.{}.{seq}.tmp", std::process::id()));
    if std::fs::write(&tmp, encode(label, result, report)).is_ok()
        && std::fs::rename(&tmp, entry_path(dir, key)).is_err()
    {
        let _ = std::fs::remove_file(&tmp);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_result() -> RunResult {
        RunResult {
            protocol: "I+P+D".into(),
            nprocs: 2,
            total_cycles: 123_456,
            nodes: vec![
                NodeStats {
                    breakdown: Breakdown {
                        busy: 1,
                        data: 2,
                        synch: 3,
                        ipc: 4,
                        other: 5,
                    },
                    faults: 7,
                    au_combined: 9,
                    ..NodeStats::default()
                },
                NodeStats::default(),
            ],
            net: TrafficStats {
                messages: 10,
                bytes: 11,
                total_latency: 12,
                total_blocking: 13,
            },
            // Exercises the full 64-bit range the hex encoding exists for.
            checksum: 0xFEDC_BA98_7654_3210,
            trace: Vec::new(),
            violations: Vec::new(),
            obs: None,
            ts: None,
            svc: None,
            fault: ncp2::core::FaultStats {
                frames_sent: 20,
                retransmits: 3,
                drops_injected: 2,
                prefetch_shed: 1,
                retx_by_attempt: [2, 1, 0, 0, 0, 0, 0, 0],
                ..Default::default()
            },
        }
    }

    fn sample_report() -> MetricsReport {
        MetricsReport {
            name: "TSP/I+P+D".into(),
            protocol: "I+P+D".into(),
            nprocs: 2,
            total_cycles: 123_456,
            conservation_ok: true,
            // Non-alphabetical order must survive the round trip.
            categories: vec![("busy".into(), 1), ("data".into(), 2), ("ipc".into(), 4)],
            exposed: vec![("busy".into(), 1), ("ipc".into(), 4)],
            counters: vec![("faults".into(), 7)],
            hists: vec![(
                "msg_latency".into(),
                HistSummary {
                    count: 3,
                    p50: 10,
                    p90: 12,
                    p99: 12,
                    max: 12,
                },
            )],
            epochs: vec![vec![1, 2, 3, 4, 5]],
            host: Vec::new(),
        }
    }

    /// `RunResult` deliberately has no `PartialEq` (it carries the raw
    /// trace/obs payloads); compare the fields the cache persists.
    fn assert_same_result(a: &RunResult, b: &RunResult) {
        assert_eq!(a.protocol, b.protocol);
        assert_eq!(a.nprocs, b.nprocs);
        assert_eq!(a.total_cycles, b.total_cycles);
        assert_eq!(a.checksum, b.checksum);
        assert_eq!(a.nodes, b.nodes);
        assert_eq!(a.net, b.net);
        assert_eq!(a.fault, b.fault);
        assert!(b.trace.is_empty() && b.violations.is_empty() && b.obs.is_none());
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let r = sample_result();
        let rep = sample_report();
        let text = encode("TSP/I+P+D", &r, Some(&rep));
        let (r2, rep2) = decode(&text).expect("decode");
        assert_same_result(&r, &r2);
        assert_eq!(rep2.as_ref(), Some(&rep));
        // The restored report serializes byte-identically via the canonical
        // metrics encoder too (order preserved).
        assert_eq!(rep.to_json(), rep2.unwrap().to_json());
    }

    #[test]
    fn roundtrip_without_report() {
        let r = sample_result();
        let (r2, rep2) = decode(&encode("x", &r, None)).expect("decode");
        assert_same_result(&r, &r2);
        assert!(rep2.is_none());
    }

    #[test]
    fn encode_is_deterministic() {
        let r = sample_result();
        assert_eq!(encode("x", &r, None), encode("x", &r, None));
    }

    #[test]
    fn format_version_mismatch_is_a_miss() {
        let text = encode("x", &sample_result(), None)
            .replace(&format!("\"format\": {FORMAT_VERSION}"), "\"format\": 999");
        assert!(decode(&text).is_none());
    }

    #[test]
    fn garbage_is_a_miss() {
        assert!(decode("not json").is_none());
        assert!(decode("{}").is_none());
    }
}
