//! # ncp2-bench — experiment harness
//!
//! One binary per table/figure of the paper (see `src/bin/`). All of them
//! declare their runs as a [`engine::Grid`] and execute it on the parallel
//! [`engine::Engine`] (work-queue over `std::thread`, one fresh simulation
//! per grid point, content-hashed result caching under `results/cache/`).
//! Shared CLI plumbing lives in [`harness`]; the cache file format in
//! [`cache`]. Criterion micro-benchmarks live in `benches/`.

pub mod cache;
pub mod engine;
pub mod harness;
pub mod wallbench;
