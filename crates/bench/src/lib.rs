//! # ncp2-bench — experiment harness
//!
//! One binary per table/figure of the paper (see `src/bin/`), plus shared
//! helpers in [`harness`]. Criterion micro-benchmarks live in `benches/`.

pub mod harness;
