//! Shared plumbing for the figure-regeneration binaries.

use ncp2::prelude::*;

/// The six applications in the paper's plotting order.
pub const APP_NAMES: [&str; 6] = ["TSP", "Water", "Radix", "Barnes", "Em3d", "Ocean"];

/// The six TreadMarks overlap modes in the paper's plotting order.
pub const MODES: [OverlapMode; 6] = [
    OverlapMode::Base,
    OverlapMode::I,
    OverlapMode::ID,
    OverlapMode::P,
    OverlapMode::IP,
    OverlapMode::IPD,
];

/// Builds an application by name, at the default (scaled) or paper size.
///
/// # Panics
///
/// Panics on an unknown name.
pub fn build_app(name: &str, paper_size: bool) -> Box<dyn Workload> {
    match (name, paper_size) {
        ("TSP", false) => Box::new(Tsp::default()),
        ("TSP", true) => Box::new(Tsp::paper()),
        ("Water", false) => Box::new(Water::default()),
        ("Water", true) => Box::new(Water::paper()),
        ("Radix", false) => Box::new(Radix::default()),
        ("Radix", true) => Box::new(Radix::paper()),
        ("Barnes", false) => Box::new(Barnes::default()),
        ("Barnes", true) => Box::new(Barnes::paper()),
        ("Em3d", false) => Box::new(Em3d::default()),
        ("Em3d", true) => Box::new(Em3d::paper()),
        ("Ocean", false) => Box::new(Ocean::default()),
        ("Ocean", true) => Box::new(Ocean::paper()),
        _ => panic!("unknown application {name}"),
    }
}

/// Command-line options shared by the figure binaries.
#[derive(Debug, Clone, Default)]
pub struct Opts {
    /// Run the paper's original problem sizes (slow) instead of the scaled
    /// defaults.
    pub paper_size: bool,
    /// Restrict to one application (`--app NAME`).
    pub only_app: Option<String>,
}

impl Opts {
    /// Parses `--paper-size` and `--app NAME` from `std::env::args`.
    pub fn parse() -> Opts {
        let mut opts = Opts::default();
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--paper-size" => opts.paper_size = true,
                "--app" => opts.only_app = args.next(),
                "--help" | "-h" => {
                    eprintln!("options: [--paper-size] [--app NAME]");
                    std::process::exit(0);
                }
                other => {
                    eprintln!("unknown option {other}; try --help");
                    std::process::exit(2);
                }
            }
        }
        opts
    }

    /// The applications selected by these options.
    pub fn apps(&self) -> Vec<&'static str> {
        APP_NAMES
            .iter()
            .copied()
            .filter(|n| {
                self.only_app
                    .as_deref()
                    .is_none_or(|o| o.eq_ignore_ascii_case(n))
            })
            .collect()
    }
}

/// Every protocol label accepted by `--mode`, in the paper's order.
pub const ALL_MODE_LABELS: [&str; 8] = ["Base", "I", "I+D", "P", "I+P", "I+P+D", "AURC", "AURC+P"];

/// Parses a protocol from its figure label (see [`ALL_MODE_LABELS`]).
pub fn protocol_from_label(label: &str) -> Option<Protocol> {
    let l = label.to_ascii_uppercase();
    for m in MODES {
        if m.label().eq_ignore_ascii_case(&l) {
            return Some(Protocol::TreadMarks(m));
        }
    }
    match l.as_str() {
        "AURC" => Some(Protocol::Aurc { prefetch: false }),
        "AURC+P" => Some(Protocol::Aurc { prefetch: true }),
        _ => None,
    }
}

/// Runs one app under one protocol and returns the result.
pub fn run(params: &SysParams, protocol: Protocol, app: &str, paper_size: bool) -> RunResult {
    run_app(params.clone(), protocol, build_app(app, paper_size))
}

/// Like [`run`], but with observability recording enabled, so the result
/// carries the span/flight/engine timeline (`RunResult::obs`) consumed by
/// `ncp2-obs` reports and the Perfetto exporter.
pub fn run_obs(params: &SysParams, protocol: Protocol, app: &str, paper_size: bool) -> RunResult {
    ncp2::apps::run_app_with(
        params.clone(),
        protocol,
        build_app(app, paper_size),
        |sim| sim.enable_obs(),
    )
}

/// Sequential (1-processor, protocol-free) cycle count for speedups.
pub fn seq_cycles(params: &SysParams, app: &str, paper_size: bool) -> u64 {
    sequential_baseline(params, build_app(app, paper_size)).total_cycles
}

/// Formats a `RunResult` as a breakdown-table row.
pub fn row(result: &RunResult) -> (String, u64, Breakdown, f64) {
    (
        result.protocol.clone(),
        result.total_cycles,
        result.aggregate(),
        result.diff_pct(),
    )
}

/// Renders rows through `ncp2_stats::breakdown_table` (borrowing labels).
pub fn print_breakdown(title: &str, rows: &[(String, u64, Breakdown, f64)]) {
    println!("== {title} ==");
    let borrowed: Vec<(&str, u64, Breakdown, f64)> = rows
        .iter()
        .map(|(l, c, b, d)| (l.as_str(), *c, *b, *d))
        .collect();
    print!("{}", breakdown_table(&borrowed));
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_apps_buildable_at_both_sizes() {
        for name in APP_NAMES {
            assert_eq!(build_app(name, false).name(), name);
            assert_eq!(build_app(name, true).name(), name);
        }
    }

    #[test]
    #[should_panic(expected = "unknown application")]
    fn unknown_app_panics() {
        let _ = build_app("Linpack", false);
    }

    #[test]
    fn opts_filter_apps() {
        let o = Opts {
            paper_size: false,
            only_app: Some("em3d".into()),
        };
        assert_eq!(o.apps(), vec!["Em3d"]);
        let all = Opts::default();
        assert_eq!(all.apps().len(), 6);
    }
}
