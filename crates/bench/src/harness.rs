//! Shared plumbing for the figure-regeneration binaries.

use ncp2::prelude::*;

/// The six applications in the paper's plotting order.
pub const APP_NAMES: [&str; 6] = ["TSP", "Water", "Radix", "Barnes", "Em3d", "Ocean"];

/// The six TreadMarks overlap modes in the paper's plotting order.
pub const MODES: [OverlapMode; 6] = [
    OverlapMode::Base,
    OverlapMode::I,
    OverlapMode::ID,
    OverlapMode::P,
    OverlapMode::IP,
    OverlapMode::IPD,
];

/// Builds an application by name, at the default (scaled) or paper size.
///
/// # Panics
///
/// Panics on an unknown name.
pub fn build_app(name: &str, paper_size: bool) -> Box<dyn Workload> {
    match (name, paper_size) {
        ("TSP", false) => Box::new(Tsp::default()),
        ("TSP", true) => Box::new(Tsp::paper()),
        ("Water", false) => Box::new(Water::default()),
        ("Water", true) => Box::new(Water::paper()),
        ("Radix", false) => Box::new(Radix::default()),
        ("Radix", true) => Box::new(Radix::paper()),
        ("Barnes", false) => Box::new(Barnes::default()),
        ("Barnes", true) => Box::new(Barnes::paper()),
        ("Em3d", false) => Box::new(Em3d::default()),
        ("Em3d", true) => Box::new(Em3d::paper()),
        ("Ocean", false) => Box::new(Ocean::default()),
        ("Ocean", true) => Box::new(Ocean::paper()),
        // The service workload has no separate paper size: the paper's
        // closed-loop kernels don't cover it, so both sizes are tier-1.
        ("Svc", _) => Box::new(Svc::default()),
        _ => panic!("unknown application {name}"),
    }
}

/// Command-line options shared by the figure binaries.
#[derive(Debug, Clone, Default)]
pub struct Opts {
    /// Run the paper's original problem sizes (slow) instead of the scaled
    /// defaults.
    pub paper_size: bool,
    /// Restrict to one application (`--app NAME`).
    pub only_app: Option<String>,
    /// Worker-thread override (`--jobs N`); `None` = one per host core.
    pub jobs: Option<usize>,
    /// Disable the content-hashed result cache (`--no-cache`).
    pub no_cache: bool,
    /// Suppress per-job progress lines (`--quiet`).
    pub quiet: bool,
    /// Attach host-side phase attribution — wall time and, under the `prof`
    /// feature, allocation counts — to every run (`--prof`). Provably inert
    /// with respect to simulated time (see `tests/prof_inert.rs`).
    pub prof: bool,
    /// Run the 2..=256 processor doubling sweep instead of the paper-shaped
    /// figure (`--scale`; honoured by `fig01b_doubling`).
    pub scale: bool,
}

impl Opts {
    /// Parses `--paper-size`, `--app NAME`, `--jobs N`, `--no-cache`,
    /// `--quiet` and `--prof` from `std::env::args`.
    pub fn parse() -> Opts {
        let mut opts = Opts::default();
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--paper-size" => opts.paper_size = true,
                "--app" => opts.only_app = args.next(),
                "--jobs" => match args.next().and_then(|s| s.parse().ok()) {
                    Some(n) => opts.jobs = Some(n),
                    None => {
                        eprintln!("--jobs needs a positive integer");
                        std::process::exit(2);
                    }
                },
                "--no-cache" => opts.no_cache = true,
                "--quiet" => opts.quiet = true,
                "--prof" => opts.prof = true,
                "--scale" => opts.scale = true,
                "--help" | "-h" => {
                    eprintln!(
                        "options: [--paper-size] [--app NAME] [--jobs N] [--no-cache] [--quiet] [--prof] [--scale]"
                    );
                    std::process::exit(0);
                }
                other => {
                    eprintln!("unknown option {other}; try --help");
                    std::process::exit(2);
                }
            }
        }
        opts
    }

    /// Builds the experiment engine these options describe.
    pub fn engine(&self) -> crate::engine::Engine {
        let mut e = crate::engine::Engine::new();
        if let Some(jobs) = self.jobs {
            e = e.with_jobs(jobs);
        }
        if self.no_cache {
            e = e.no_cache();
        }
        if self.quiet {
            e = e.silent();
        }
        if self.prof {
            e = e.with_prof();
        }
        e
    }

    /// The applications selected by these options.
    pub fn apps(&self) -> Vec<&'static str> {
        APP_NAMES
            .iter()
            .copied()
            .filter(|n| {
                self.only_app
                    .as_deref()
                    .is_none_or(|o| o.eq_ignore_ascii_case(n))
            })
            .collect()
    }
}

/// Every protocol label accepted by `--mode`, in the paper's order.
pub const ALL_MODE_LABELS: [&str; 8] = ["Base", "I", "I+D", "P", "I+P", "I+P+D", "AURC", "AURC+P"];

/// Parses a protocol from its figure label (see [`ALL_MODE_LABELS`]).
pub fn protocol_from_label(label: &str) -> Option<Protocol> {
    let l = label.to_ascii_uppercase();
    for m in MODES {
        if m.label().eq_ignore_ascii_case(&l) {
            return Some(Protocol::TreadMarks(m));
        }
    }
    match l.as_str() {
        "AURC" => Some(Protocol::Aurc { prefetch: false }),
        "AURC+P" => Some(Protocol::Aurc { prefetch: true }),
        _ => None,
    }
}

/// The six TreadMarks protocols in plotting order (the [`MODES`] wrapped).
pub fn tm_protocols() -> Vec<Protocol> {
    MODES.iter().map(|&m| Protocol::TreadMarks(m)).collect()
}

/// All eight protocols of the study in plotting order: the six TreadMarks
/// overlap modes, then AURC and AURC+P (matches [`ALL_MODE_LABELS`]).
pub fn all_protocols() -> Vec<Protocol> {
    let mut protos = tm_protocols();
    protos.push(Protocol::Aurc { prefetch: false });
    protos.push(Protocol::Aurc { prefetch: true });
    protos
}

/// Formats a `RunResult` as a breakdown-table row.
pub fn row(result: &RunResult) -> (String, u64, Breakdown, f64) {
    (
        result.protocol.clone(),
        result.total_cycles,
        result.aggregate(),
        result.diff_pct(),
    )
}

/// Renders rows through `ncp2_stats::breakdown_table` (borrowing labels).
pub fn print_breakdown(title: &str, rows: &[(String, u64, Breakdown, f64)]) {
    println!("== {title} ==");
    let borrowed: Vec<(&str, u64, Breakdown, f64)> = rows
        .iter()
        .map(|(l, c, b, d)| (l.as_str(), *c, *b, *d))
        .collect();
    print!("{}", breakdown_table(&borrowed));
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_apps_buildable_at_both_sizes() {
        for name in APP_NAMES.into_iter().chain(["Svc"]) {
            assert_eq!(build_app(name, false).name(), name);
            assert_eq!(build_app(name, true).name(), name);
        }
    }

    #[test]
    #[should_panic(expected = "unknown application")]
    fn unknown_app_panics() {
        let _ = build_app("Linpack", false);
    }

    #[test]
    fn opts_filter_apps() {
        let o = Opts {
            only_app: Some("em3d".into()),
            ..Opts::default()
        };
        assert_eq!(o.apps(), vec!["Em3d"]);
        let all = Opts::default();
        assert_eq!(all.apps().len(), 6);
    }
}
