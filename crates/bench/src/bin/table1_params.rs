//! Table 1: the default system parameters (printed from the live
//! configuration so the table can never drift from the code).

use ncp2::prelude::*;

fn main() {
    let p = SysParams::default();
    println!("== Table 1: default values for system parameters (1 cycle = 10 ns) ==");
    let rows: Vec<(String, String)> = vec![
        ("Number of processors".into(), format!("{}", p.nprocs)),
        ("TLB size".into(), format!("{} entries", p.tlb_entries)),
        (
            "TLB fill service time".into(),
            format!("{} cycles", p.tlb_fill),
        ),
        ("All interrupts".into(), format!("{} cycles", p.interrupt)),
        ("Page size".into(), format!("{} bytes", p.page_bytes)),
        (
            "Total cache per processor".into(),
            format!("{} Kbytes", p.cache_bytes / 1024),
        ),
        (
            "Write buffer size".into(),
            format!("{} entries", p.write_buffer_entries),
        ),
        (
            "Write cache size (AURC)".into(),
            format!("{} entries", p.write_cache_entries),
        ),
        ("Cache line size".into(), format!("{} bytes", p.line_bytes)),
        (
            "Memory setup time".into(),
            format!("{} cycles", p.mem_setup),
        ),
        (
            "Memory access time (after setup)".into(),
            format!("{} cycles/word", p.mem_cycles_per_word),
        ),
        ("PCI setup time".into(), format!("{} cycles", p.pci_setup)),
        (
            "PCI burst access time (after setup)".into(),
            format!("{} cycles/word", p.pci_cycles_per_word),
        ),
        (
            "Network path width".into(),
            format!(
                "8 bits ({} cycles/byte, bidirectional)",
                p.net_cycles_per_byte
            ),
        ),
        (
            "Messaging overhead".into(),
            format!("{} cycles", p.messaging_overhead),
        ),
        (
            "Switch latency".into(),
            format!("{} cycles", p.switch_latency),
        ),
        ("Wire latency".into(), format!("{} cycles", p.wire_latency)),
        (
            "List processing".into(),
            format!("{} cycles/element", p.list_processing),
        ),
        (
            "Page twinning".into(),
            format!("{} cycles/word + memory accesses", p.twin_cycles_per_word),
        ),
        (
            "Diff application and creation".into(),
            format!("{} cycles/word + memory accesses", p.diff_cycles_per_word),
        ),
        (
            "DMA bit-vector scan (derived)".into(),
            format!(
                "{}..{} cycles per 4-KB page",
                p.dma_scan(0),
                p.dma_scan(p.page_words())
            ),
        ),
        (
            "Network bandwidth (derived)".into(),
            format!("{:.0} MB/s", p.net_bandwidth_mbps()),
        ),
        (
            "Memory latency (derived)".into(),
            format!("{} ns", p.mem_latency_ns()),
        ),
    ];
    for (name, value) in rows {
        println!("{name:<40} {value}");
    }
}
