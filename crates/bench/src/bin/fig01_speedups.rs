//! Figure 1: application speedups under non-overlapping (Base) TreadMarks,
//! for 2..16 processors, relative to a 1-processor protocol-free run.

use ncp2::prelude::*;
use ncp2_bench::engine::Grid;
use ncp2_bench::harness::Opts;

fn main() {
    let opts = Opts::parse();
    let apps = opts.apps();
    let procs = [2usize, 4, 8, 12, 16];
    let params = SysParams::default();

    let mut grid = Grid::new();
    let seq_ix: Vec<usize> = apps
        .iter()
        .map(|app| grid.sequential(&params, app, opts.paper_size))
        .collect();
    let mut run_ix: Vec<Vec<usize>> = Vec::new();
    for &p in &procs {
        let pp = params.clone().with_nprocs(p);
        run_ix.push(
            apps.iter()
                .map(|app| {
                    grid.run(
                        &pp,
                        Protocol::TreadMarks(OverlapMode::Base),
                        app,
                        opts.paper_size,
                    )
                })
                .collect(),
        );
    }
    let records = opts.engine().run(&grid);

    let cells: Vec<Vec<f64>> = run_ix
        .iter()
        .map(|row_ix| {
            row_ix
                .iter()
                .zip(&seq_ix)
                .map(|(&r, &s)| {
                    let seq = records[s].result.total_cycles;
                    records[r].result.speedup_over(seq).unwrap_or(0.0)
                })
                .collect()
        })
        .collect();
    println!("== Fig 1: speedups under TreadMarks (Base) ==");
    print!("{}", speedup_table(&apps, &procs, &cells));
}
