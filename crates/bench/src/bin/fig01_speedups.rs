//! Figure 1: application speedups under non-overlapping (Base) TreadMarks,
//! for 2..16 processors, relative to a 1-processor protocol-free run.

use ncp2::prelude::*;
use ncp2_bench::harness::{self, Opts};

fn main() {
    let opts = Opts::parse();
    let apps = opts.apps();
    let procs = [2usize, 4, 8, 12, 16];
    let params = SysParams::default();
    let mut cells: Vec<Vec<f64>> = Vec::new();
    let seq: Vec<u64> = apps
        .iter()
        .map(|a| harness::seq_cycles(&params, a, opts.paper_size))
        .collect();
    for &p in &procs {
        let row: Vec<f64> = apps
            .iter()
            .zip(&seq)
            .map(|(app, &s)| {
                let r = harness::run(
                    &params.clone().with_nprocs(p),
                    Protocol::TreadMarks(OverlapMode::Base),
                    app,
                    opts.paper_size,
                );
                r.speedup_over(s).unwrap_or(0.0)
            })
            .collect();
        cells.push(row);
    }
    println!("== Fig 1: speedups under TreadMarks (Base) ==");
    print!("{}", speedup_table(&apps, &procs, &cells));
}
