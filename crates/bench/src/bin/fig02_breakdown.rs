//! Figure 2: normalized execution-time breakdown of every application under
//! non-overlapping TreadMarks on 16 processors, with the diff-operation
//! percentage annotated on each bar.
//!
//! Runs with observability enabled and also writes the machine-readable
//! reports to `results/fig02_metrics.json` (bench-file format, see
//! `ncp2-obs`) so the figure's numbers can be diffed across revisions.

use ncp2::prelude::*;
use ncp2_bench::engine::Grid;
use ncp2_bench::harness::Opts;
use ncp2_obs::write_bench;

fn main() {
    let opts = Opts::parse();
    let params = SysParams::default();

    let mut grid = Grid::new();
    for app in opts.apps() {
        grid.run_obs(
            &params,
            Protocol::TreadMarks(OverlapMode::Base),
            app,
            opts.paper_size,
        );
    }
    let records = opts.engine().run(&grid);

    println!("== Fig 2: TreadMarks (Base) breakdown on 16 processors ==");
    println!(
        "{:<8} {:>7} {:>7} {:>7} {:>7} {:>7}   {:>6}",
        "app", "busy%", "data%", "synch%", "ipc%", "others%", "diff%"
    );
    let mut reports = Vec::new();
    for (app, rec) in opts.apps().iter().zip(&records) {
        let r = &rec.result;
        let b = r.aggregate();
        println!(
            "{:<8} {:>7.1} {:>7.1} {:>7.1} {:>7.1} {:>7.1}   {:>5.1}%",
            app,
            100.0 * b.fraction(Category::Busy),
            100.0 * b.fraction(Category::Data),
            100.0 * b.fraction(Category::Synch),
            100.0 * b.fraction(Category::Ipc),
            100.0 * b.fraction(Category::Other),
            r.diff_pct(),
        );
        // invariant: run_obs jobs always carry a report.
        reports.push(rec.report.clone().expect("observed run carries a report"));
    }
    let out = "results/fig02_metrics.json";
    match std::fs::write(out, write_bench(&reports)) {
        Ok(()) => println!("\nwrote {out}"),
        Err(e) => eprintln!("\ncould not write {out}: {e}"),
    }
}
