//! Figure 2: normalized execution-time breakdown of every application under
//! non-overlapping TreadMarks on 16 processors, with the diff-operation
//! percentage annotated on each bar.

use ncp2::prelude::*;
use ncp2_bench::harness::{self, Opts};

fn main() {
    let opts = Opts::parse();
    let params = SysParams::default();
    println!("== Fig 2: TreadMarks (Base) breakdown on 16 processors ==");
    println!(
        "{:<8} {:>7} {:>7} {:>7} {:>7} {:>7}   {:>6}",
        "app", "busy%", "data%", "synch%", "ipc%", "others%", "diff%"
    );
    for app in opts.apps() {
        let r = harness::run(
            &params,
            Protocol::TreadMarks(OverlapMode::Base),
            app,
            opts.paper_size,
        );
        let b = r.aggregate();
        println!(
            "{:<8} {:>7.1} {:>7.1} {:>7.1} {:>7.1} {:>7.1}   {:>5.1}%",
            app,
            100.0 * b.fraction(Category::Busy),
            100.0 * b.fraction(Category::Data),
            100.0 * b.fraction(Category::Synch),
            100.0 * b.fraction(Category::Ipc),
            100.0 * b.fraction(Category::Other),
            r.diff_pct(),
        );
    }
}
