//! Dump a protocol event trace for one application/protocol as CSV — a
//! timeline view of messages, faults, lock grants and barrier releases.
//!
//! ```sh
//! cargo run --release -p ncp2-bench --bin trace_dump -- --app Radix > trace.csv
//! ```
//!
//! Trace runs always execute fresh: the cache never stores raw timelines.

use ncp2::core::trace_csv;
use ncp2::prelude::*;
use ncp2_bench::engine::Grid;
use ncp2_bench::harness::Opts;

fn main() {
    let opts = Opts::parse();
    let app = opts.only_app.clone().unwrap_or_else(|| "Radix".into());
    let params = SysParams {
        trace: true,
        ..SysParams::default()
    };

    let mut grid = Grid::new();
    let ix = grid.run(
        &params,
        Protocol::TreadMarks(OverlapMode::ID),
        &app,
        opts.paper_size,
    );
    let records = opts.engine().run(&grid);
    let r = &records[ix].result;

    eprintln!(
        "{} under {}: {} cycles, {} trace events",
        app,
        r.protocol,
        r.total_cycles,
        r.trace.len()
    );
    print!("{}", trace_csv(&r.trace));
}
