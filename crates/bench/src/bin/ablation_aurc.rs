//! AURC design ablations: the §3.3 optimizations in isolation —
//! pairwise sharing on/off and the combining write-cache size.

use ncp2::prelude::*;
use ncp2_bench::engine::Grid;
use ncp2_bench::harness::Opts;

fn main() {
    let opts = Opts::parse();
    let app = opts.only_app.clone().unwrap_or_else(|| "Ocean".into());
    let params = SysParams::default();
    let pairwise_axis = [("pairwise on", true), ("pairwise off", false)];
    let cache_axis = [1usize, 2, 4, 8, 16];

    let mut grid = Grid::new();
    let pairwise_ix: Vec<usize> = pairwise_axis
        .iter()
        .map(|&(_, pairwise)| {
            let mut p = params.clone();
            p.aurc_pairwise = pairwise;
            grid.run(
                &p,
                Protocol::Aurc { prefetch: false },
                &app,
                opts.paper_size,
            )
        })
        .collect();
    let cache_ix: Vec<usize> = cache_axis
        .iter()
        .map(|&entries| {
            let mut p = params.clone();
            p.write_cache_entries = entries;
            grid.run(
                &p,
                Protocol::Aurc { prefetch: false },
                &app,
                opts.paper_size,
            )
        })
        .collect();
    let records = opts.engine().run(&grid);

    println!("== Ablation: AURC pairwise sharing ({app}) ==");
    let mut rows = Vec::new();
    for ((label, _), &ix) in pairwise_axis.iter().zip(&pairwise_ix) {
        let r = &records[ix].result;
        let fetches: u64 = r.nodes.iter().map(|n| n.page_fetches).sum();
        let updates: u64 = r.nodes.iter().map(|n| n.au_updates).sum();
        rows.push((
            format!("{label} ({fetches} fetches, {updates} updates)"),
            r.total_cycles,
        ));
    }
    let borrowed: Vec<(&str, u64)> = rows.iter().map(|(l, c)| (l.as_str(), *c)).collect();
    print!("{}", normalized_bars(&borrowed));

    println!("\n== Ablation: write-cache (update combining) size ({app}) ==");
    let mut rows = Vec::new();
    for (&entries, &ix) in cache_axis.iter().zip(&cache_ix) {
        let r = &records[ix].result;
        let updates: u64 = r.nodes.iter().map(|n| n.au_updates).sum();
        let combined: u64 = r.nodes.iter().map(|n| n.au_combined).sum();
        rows.push((
            format!("{entries:>2} entries ({updates} updates, {combined} combined)"),
            r.total_cycles,
        ));
    }
    let borrowed: Vec<(&str, u64)> = rows.iter().map(|(l, c)| (l.as_str(), *c)).collect();
    print!("{}", normalized_bars(&borrowed));
}
