//! `critpath_report` — critical-path analysis and causal what-if profiling
//! over the execution-dependency graph of observed runs.
//!
//! For each selected application (tier-1 sizes) the binary runs the **Base**
//! mode with observability on, builds the execution-dependency DAG, extracts
//! the critical path (whose length provably equals the run's total cycles),
//! and prints the exposed-vs-aggregate cycle table per category: aggregate
//! cycles say where *all* processors spent time, exposed cycles say what the
//! end-to-end running time actually waited on.
//!
//! It then re-executes the schedule under each cost-deletion scenario and
//! compares the predicted speedups against the *measured* ablation modes run
//! alongside (`I`, `I+D`, `P`), closing the causal loop: the prediction is a
//! conservative lower bound on the measured gain (DESIGN.md §11).
//!
//! ```sh
//! # Full table for every tier-1 app (runs through the parallel engine).
//! cargo run --release --bin critpath_report -- --jobs 4
//!
//! # One app, machine-readable output, validation gate for CI.
//! cargo run --release --bin critpath_report -- --app TSP --check --out /tmp/cp.json
//! ```
//!
//! The Base run carries the raw span/edge log, which the result cache does
//! not persist, so it always executes fresh; the measured ablation runs are
//! plain grid points and hit the cache unless `--no-cache` is given.

use std::path::PathBuf;

use ncp2::prelude::*;
use ncp2_bench::engine::{tier1_workloads, Engine, Grid, Job};
use ncp2_bench::harness::protocol_from_label;
use ncp2_fault::FaultPlan;
use ncp2_obs::json::esc;
use ncp2_obs::{critical_path, what_if, CritPath, ExecGraph, Scenario, WhatIf};

/// Measured ablation modes run alongside Base for validation, in order.
const MEASURED_MODES: [&str; 3] = ["I", "I+D", "P"];

/// Scenario → the measured mode it predicts (`None`: no single-mode
/// counterpart exists; the paper has no `D`-only ablation).
const SCENARIO_MODE: [(Scenario, Option<&str>); 4] = [
    (Scenario::OffloadFree, Some("I")),
    (Scenario::DiffsFree, None),
    (Scenario::DiffsOffloadFree, Some("I+D")),
    (Scenario::PerfectFill, Some("P")),
];

/// The documented two-sided accuracy bound (DESIGN.md §11): a prediction
/// must not over-promise by more than `OVERSHOOT` and must capture at least
/// `CAPTURE` of the measured speedup gain.
const OVERSHOOT: f64 = 1.05;
const CAPTURE: f64 = 0.3;

struct Args {
    app: Option<String>,
    nprocs: usize,
    jobs: Option<usize>,
    no_cache: bool,
    quiet: bool,
    prof: bool,
    check: bool,
    out: Option<PathBuf>,
}

fn usage() -> ! {
    eprintln!(
        "usage: critpath_report [--app NAME] [--nprocs N] [--jobs N] [--no-cache]\n\
         \x20                      [--quiet] [--prof] [--check] [--out FILE]\n\
         apps: {} (default: all)",
        tier1_workloads()
            .iter()
            .map(|(n, _)| *n)
            .collect::<Vec<_>>()
            .join(", ")
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut a = Args {
        app: None,
        nprocs: 4,
        jobs: None,
        no_cache: false,
        quiet: false,
        prof: false,
        check: false,
        out: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--app" => a.app = Some(args.next().unwrap_or_else(|| usage())),
            "--nprocs" => {
                a.nprocs = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--jobs" => {
                a.jobs = Some(
                    args.next()
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--no-cache" => a.no_cache = true,
            "--quiet" => a.quiet = true,
            "--prof" => a.prof = true,
            "--check" => a.check = true,
            "--out" => a.out = Some(PathBuf::from(args.next().unwrap_or_else(|| usage()))),
            _ => usage(),
        }
    }
    a
}

/// One app's complete analysis: the Base run, its critical path, the
/// what-if predictions and the measured ablation totals.
struct AppAnalysis {
    name: String,
    base: RunResult,
    path: CritPath,
    whatifs: Vec<(Scenario, WhatIf)>,
    /// `(mode label, measured total cycles)` in [`MEASURED_MODES`] order.
    measured: Vec<(String, u64)>,
}

fn analyze(a: &Args) -> Vec<AppAnalysis> {
    let apps: Vec<_> = tier1_workloads()
        .into_iter()
        .filter(|(n, _)| {
            a.app
                .as_deref()
                .is_none_or(|want| want.eq_ignore_ascii_case(n))
        })
        .collect();
    if apps.is_empty() {
        eprintln!("unknown app '{}'", a.app.as_deref().unwrap_or(""));
        usage();
    }

    let params = SysParams::default().with_nprocs(a.nprocs);
    let mut grid = Grid::new();
    // Per app: one observed+traced Base run (never cached — the graph needs
    // the raw log), then the measured ablations as plain cacheable points.
    for (name, spec) in &apps {
        let mut obs_params = params.clone();
        obs_params.trace = true;
        grid.add(Job {
            label: format!("{name}/Base"),
            params: obs_params,
            protocol: Protocol::TreadMarks(OverlapMode::Base),
            workload: spec.clone(),
            obs: true,
            fault: FaultPlan::none(),
            verify: false,
            timeseries: false,
        });
        for mode in MEASURED_MODES {
            grid.add(Job {
                label: format!("{name}/{mode}"),
                params: params.clone(),
                // invariant: every MEASURED_MODES entry is a known label.
                protocol: protocol_from_label(mode).expect("known mode label"),
                workload: spec.clone(),
                obs: false,
                fault: FaultPlan::none(),
                verify: false,
                timeseries: false,
            });
        }
    }

    let mut engine = Engine::new();
    if let Some(jobs) = a.jobs {
        engine = engine.with_jobs(jobs);
    }
    if a.no_cache {
        engine = engine.no_cache();
    }
    if a.quiet {
        engine = engine.silent();
    }
    if a.prof {
        engine = engine.with_prof();
    }
    let mut records = engine.run(&grid).into_iter();

    let mut out = Vec::new();
    for (name, _) in &apps {
        let base = records.next().expect("grid order: Base record").result;
        let log = base.obs.as_ref().expect("Base job was observed");
        let g = ExecGraph::build(log, base.nprocs, base.total_cycles)
            .unwrap_or_else(|e| panic!("{name}: graph build failed: {e}"));
        let path =
            critical_path(&g).unwrap_or_else(|e| panic!("{name}: critical-path walk failed: {e}"));
        let whatifs = SCENARIO_MODE
            .iter()
            .map(|&(sc, _)| (sc, what_if(&g, sc)))
            .collect();
        let measured = MEASURED_MODES
            .iter()
            .map(|mode| {
                let rec = records.next().expect("grid order: ablation record");
                (mode.to_string(), rec.result.total_cycles)
            })
            .collect();
        out.push(AppAnalysis {
            name: name.to_string(),
            base,
            path,
            whatifs,
            measured,
        });
    }
    out
}

fn render(an: &AppAnalysis) -> String {
    let mut out = String::new();
    let total = an.base.total_cycles;
    out.push_str(&format!(
        "{}  Base  nprocs={}  total={total} cycles  critical path: {} segments\n",
        an.name,
        an.base.nprocs,
        an.path.segments.len()
    ));
    // Exposed vs aggregate: what the end-to-end time waited on vs where all
    // processors together spent time.
    let agg = an.base.aggregate();
    out.push_str(&format!(
        "\n  {:<10} {:>14} {:>14} {:>10}\n",
        "category", "aggregate", "exposed", "exposed %"
    ));
    for &(cat, exposed) in &an.path.exposed {
        let pct = if total == 0 {
            0.0
        } else {
            100.0 * exposed as f64 / total as f64
        };
        out.push_str(&format!(
            "  {:<10} {:>14} {:>14} {pct:>9.1}%\n",
            cat.label(),
            agg.get(cat),
            exposed
        ));
    }
    out.push_str(&format!(
        "\n  {:<20} {:>14} {:>10} {:>10} {:>10}\n",
        "what-if scenario", "predicted", "speedup", "measured", "speedup"
    ));
    for (sc, w) in &an.whatifs {
        let mode = SCENARIO_MODE
            .iter()
            .find(|(s, _)| s == sc)
            .and_then(|&(_, m)| m);
        let (mcol, scol) = match mode.and_then(|m| measured_total(an, m)) {
            Some(mt) => (
                mode.unwrap_or("").to_string(),
                format!("{:.3}", total as f64 / mt as f64),
            ),
            None => ("-".into(), "-".into()),
        };
        out.push_str(&format!(
            "  {:<20} {:>14} {:>10.3} {mcol:>10} {scol:>10}\n",
            sc.label(),
            w.new_total,
            w.speedup
        ));
    }
    out
}

fn measured_total(an: &AppAnalysis, mode: &str) -> Option<u64> {
    an.measured.iter().find(|(m, _)| m == mode).map(|&(_, t)| t)
}

/// Deterministic JSON export: fixed key order, integers and fixed-point
/// speedups only.
fn to_json(analyses: &[AppAnalysis]) -> String {
    let mut out = String::from("{\"apps\": [\n");
    for (i, an) in analyses.iter().enumerate() {
        out.push_str("  {\n");
        out.push_str(&format!("    \"name\": \"{}\",\n", esc(&an.name)));
        out.push_str(&format!(
            "    \"total_cycles\": {},\n",
            an.base.total_cycles
        ));
        let exposed = an
            .path
            .exposed
            .iter()
            .map(|&(c, v)| format!("\"{}\": {v}", c.label()))
            .collect::<Vec<_>>()
            .join(", ");
        out.push_str(&format!("    \"exposed\": {{{exposed}}},\n"));
        let whatifs = an
            .whatifs
            .iter()
            .map(|(sc, w)| format!("\"{}\": {}", sc.label(), w.new_total))
            .collect::<Vec<_>>()
            .join(", ");
        out.push_str(&format!("    \"whatif\": {{{whatifs}}},\n"));
        let measured = an
            .measured
            .iter()
            .map(|(m, t)| format!("\"{}\": {t}", esc(m)))
            .collect::<Vec<_>>()
            .join(", ");
        out.push_str(&format!("    \"measured\": {{{measured}}}\n"));
        out.push_str(if i + 1 == analyses.len() {
            "  }\n"
        } else {
            "  },\n"
        });
    }
    out.push_str("]}\n");
    out
}

/// The validation gate: the conservation law holds for every app, and the
/// validated prediction pair — `diffs_offload_free` against the measured
/// `I+D` ablation — respects the documented accuracy bound. (`perfect_fill`
/// is a documented upper bound on `P` and the paper has no `D`-only mode,
/// so the other scenarios are informational.)
fn check(analyses: &[AppAnalysis]) -> bool {
    let mut ok = true;
    for an in analyses {
        let total = an.base.total_cycles;
        let sum: u64 = an.path.segments.iter().map(|s| s.end - s.start).sum();
        if sum != total {
            eprintln!(
                "check: {}: critical path length {sum} != total {total}",
                an.name
            );
            ok = false;
        }
        // The prediction-accuracy bound is a closed-loop validation: it
        // assumes removing overhead from the critical path shortens the
        // run. The open-loop Svc run ends no earlier than its last arrival,
        // so run-length what-ifs legitimately over-promise there — only the
        // conservation law above applies to it.
        if an.name == "Svc" {
            continue;
        }
        let w = an
            .whatifs
            .iter()
            .find(|(sc, _)| *sc == Scenario::DiffsOffloadFree)
            .map(|&(_, w)| w)
            .expect("diffs_offload_free is always analyzed");
        let mt = measured_total(an, "I+D").expect("I+D is always measured");
        let predicted = total as f64 / w.new_total as f64;
        let measured = total as f64 / mt as f64;
        if predicted > measured * OVERSHOOT {
            eprintln!(
                "check: {}: diffs_offload_free prediction {predicted:.3} over-promises vs \
                 measured I+D {measured:.3}",
                an.name
            );
            ok = false;
        }
        if predicted - 1.0 < CAPTURE * (measured - 1.0) {
            eprintln!(
                "check: {}: diffs_offload_free prediction {predicted:.3} captures < {CAPTURE} \
                 of the measured I+D gain ({measured:.3})",
                an.name
            );
            ok = false;
        }
    }
    if ok {
        println!("check passed: conservation holds, predictions within the documented bound");
    }
    ok
}

fn main() {
    let a = parse_args();
    let analyses = analyze(&a);
    for an in &analyses {
        println!("{}", render(an));
    }
    if let Some(path) = &a.out {
        if let Some(dir) = path.parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        if let Err(e) = std::fs::write(path, to_json(&analyses)) {
            eprintln!("cannot write {}: {e}", path.display());
            std::process::exit(1);
        }
        println!("wrote {}", path.display());
    }
    if a.check && !check(&analyses) {
        std::process::exit(1);
    }
}
