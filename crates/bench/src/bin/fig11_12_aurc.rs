//! Figures 11–12: best overlapping TreadMarks (I+D) vs AURC vs AURC+P,
//! normalized to I+D per application, with breakdowns.

use ncp2::prelude::*;
use ncp2_bench::harness::{self, Opts};

fn main() {
    let opts = Opts::parse();
    let params = SysParams::default();
    for app in opts.apps() {
        let mut rows = Vec::new();
        for proto in [
            Protocol::TreadMarks(OverlapMode::ID),
            Protocol::Aurc { prefetch: false },
            Protocol::Aurc { prefetch: true },
        ] {
            let r = harness::run(&params, proto, app, opts.paper_size);
            rows.push(harness::row(&r));
        }
        harness::print_breakdown(
            &format!("Fig 11-12: overlapping TreadMarks vs AURC — {app}"),
            &rows,
        );
        let bars: Vec<(&str, u64)> = rows.iter().map(|(l, c, _, _)| (l.as_str(), *c)).collect();
        print!("{}", normalized_bars(&bars));
        println!();
    }
}
