//! Figures 11–12: best overlapping TreadMarks (I+D) vs AURC vs AURC+P,
//! normalized to I+D per application, with breakdowns.

use ncp2::prelude::*;
use ncp2_bench::engine::Grid;
use ncp2_bench::harness::{self, Opts};

fn main() {
    let opts = Opts::parse();
    let params = SysParams::default();
    let apps = opts.apps();
    let protos = [
        Protocol::TreadMarks(OverlapMode::ID),
        Protocol::Aurc { prefetch: false },
        Protocol::Aurc { prefetch: true },
    ];

    let mut grid = Grid::new();
    let start = grid.product(&params, &apps, &protos, opts.paper_size);
    let records = opts.engine().run(&grid);

    for (ai, app) in apps.iter().enumerate() {
        let rows: Vec<_> = (0..protos.len())
            .map(|pi| harness::row(&records[start + ai * protos.len() + pi].result))
            .collect();
        harness::print_breakdown(
            &format!("Fig 11-12: overlapping TreadMarks vs AURC — {app}"),
            &rows,
        );
        let bars: Vec<(&str, u64)> = rows.iter().map(|(l, c, _, _)| (l.as_str(), *c)).collect();
        print!("{}", normalized_bars(&bars));
        println!();
    }
}
