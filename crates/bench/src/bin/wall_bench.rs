//! Wall-clock microbench driver: runs [`ncp2_bench::wallbench`] through the
//! criterion stand-in and (with `--save-baseline PATH`) writes the
//! machine-readable wall report consumed by `cargo xtask wall-diff`.
//!
//! Flags (parsed by the criterion stand-in itself):
//!
//! * `--save-baseline PATH` — write the suite's results as deterministic
//!   JSON (the `BENCH_WALL.json` format) instead of only printing them.
//! * `--fast` — clamp sample counts and measurement time for CI smoke runs.
//!
//! Build with `--features prof` to install the counting allocator; without
//! it the report still carries median wall times but `alloc_counting` is
//! false and every allocation column is zero.

use criterion::{AllocHooks, Criterion};

fn main() {
    criterion::set_alloc_hooks(AllocHooks {
        counting: ncp2_prof::prof_enabled(),
        thread_counts: ncp2_prof::prof_thread_counts,
        reset_peak: ncp2_prof::prof_reset_peak,
        peak: ncp2_prof::prof_peak,
    });
    let mut c = Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(1))
        .warm_up_time(std::time::Duration::from_millis(300));
    ncp2_bench::wallbench::register_all(&mut c);
    criterion::finalize();
}
