//! `obs_report` — run one application with observability enabled and render
//! the metrics report; optionally export Perfetto/CSV artifacts, run the
//! determinism/conservation self-check, or produce the bench file consumed
//! by `cargo xtask bench-diff`.
//!
//! ```sh
//! # Print the report table for one run.
//! cargo run --release --bin obs_report -- --app TSP --mode I+P+D
//!
//! # Export metrics.json + trace.json (Perfetto) + trace.csv.
//! cargo run --release --bin obs_report -- --app Water --mode AURC --out-dir /tmp/obs
//!
//! # CI self-check: byte-determinism + conservation + parse-back.
//! cargo run --release --bin obs_report -- --app TSP --mode I+P+D --nprocs 4 --selfcheck
//!
//! # Regenerate the tier-1 bench trajectory file (runs through the parallel
//! # engine; always cache-bypassing so the baseline reflects current code).
//! cargo run --release --bin obs_report -- --bench bench_new.json --jobs 4
//! ```

use std::path::PathBuf;

use ncp2::prelude::*;
use ncp2_bench::engine::{tier1_grid, Engine, Grid, Job, RunRecord, WorkloadSpec};
use ncp2_bench::harness::{protocol_from_label, ALL_MODE_LABELS};
use ncp2_fault::FaultPlan;
use ncp2_obs::report::parse_metrics;
use ncp2_obs::{perfetto_json, write_bench, MetricsReport};

struct Args {
    app: String,
    mode: String,
    nprocs: usize,
    top_k: usize,
    paper_size: bool,
    out_dir: Option<PathBuf>,
    selfcheck: bool,
    bench: Option<PathBuf>,
    jobs: Option<usize>,
    no_cache: bool,
    quiet: bool,
    prof: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: obs_report [--app NAME] [--mode LABEL] [--nprocs N] [--top-k K]\n\
         \x20                 [--paper-size] [--out-dir DIR] [--selfcheck] [--bench FILE]\n\
         \x20                 [--jobs N] [--no-cache] [--quiet] [--prof]\n\
         top-k bounds the per-node table (0 = every node); modes: {}",
        ALL_MODE_LABELS.join(", ")
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut a = Args {
        app: "TSP".into(),
        mode: "I+P+D".into(),
        nprocs: SysParams::default().nprocs,
        top_k: 16,
        paper_size: false,
        out_dir: None,
        selfcheck: false,
        bench: None,
        jobs: None,
        no_cache: false,
        quiet: false,
        prof: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--app" => a.app = args.next().unwrap_or_else(|| usage()),
            "--mode" => a.mode = args.next().unwrap_or_else(|| usage()),
            "--nprocs" => {
                a.nprocs = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--top-k" => {
                a.top_k = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--paper-size" => a.paper_size = true,
            "--out-dir" => a.out_dir = Some(PathBuf::from(args.next().unwrap_or_else(|| usage()))),
            "--selfcheck" => a.selfcheck = true,
            "--bench" => a.bench = Some(PathBuf::from(args.next().unwrap_or_else(|| usage()))),
            "--jobs" => {
                a.jobs = Some(
                    args.next()
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--no-cache" => a.no_cache = true,
            "--quiet" => a.quiet = true,
            "--prof" => a.prof = true,
            _ => usage(),
        }
    }
    const APPS: [&str; 7] = ["TSP", "Water", "Radix", "Barnes", "Em3d", "Ocean", "Svc"];
    match APPS.iter().find(|n| n.eq_ignore_ascii_case(&a.app)) {
        Some(canonical) => a.app = canonical.to_string(),
        None => {
            eprintln!("unknown app '{}'; known: {}", a.app, APPS.join(", "));
            std::process::exit(2);
        }
    }
    a
}

fn engine(a: &Args) -> Engine {
    let mut e = Engine::new();
    if let Some(jobs) = a.jobs {
        e = e.with_jobs(jobs);
    }
    if a.no_cache {
        e = e.no_cache();
    }
    if a.quiet {
        e = e.silent();
    }
    if a.prof {
        e = e.with_prof();
    }
    e
}

/// The job for one observed run at the given size, with protocol tracing on
/// so the Perfetto export carries instant events too. (Trace jobs always
/// execute fresh — the cache does not persist raw timelines.)
fn observed_job(app: &str, mode: &str, nprocs: usize, paper_size: bool) -> Job {
    let protocol = protocol_from_label(mode).unwrap_or_else(|| {
        eprintln!(
            "unknown mode '{mode}'; known: {}",
            ALL_MODE_LABELS.join(", ")
        );
        std::process::exit(2);
    });
    let mut params = SysParams::default().with_nprocs(nprocs);
    params.trace = true;
    Job {
        label: format!("{app}/{mode}"),
        params,
        protocol,
        workload: WorkloadSpec::named(app, paper_size),
        obs: true,
        fault: FaultPlan::none(),
        verify: false,
        timeseries: false,
    }
}

/// The tier-1 bench suite: the six applications at oracle-test sizes, under
/// a representative protocol spread, on 4 processors. Small enough for CI,
/// broad enough that a protocol-wide slowdown cannot hide. Runs through the
/// parallel engine with the cache forced off: the baseline file must always
/// reflect the code as built, never a stale cached result.
fn bench_reports(a: &Args) -> Vec<MetricsReport> {
    const BENCH_MODES: [&str; 3] = ["Base", "I+P+D", "AURC+P"];
    let grid = tier1_grid(&BENCH_MODES);
    let records = engine(a).no_cache().run(&grid);
    records
        .into_iter()
        .map(|rec| {
            // invariant: every tier-1 grid job is observed, so a report exists.
            rec.report.expect("tier-1 jobs carry a report")
        })
        .collect()
}

fn write_file(path: &std::path::Path, contents: &str) {
    if let Some(dir) = path.parent() {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create {}: {e}", dir.display());
            std::process::exit(1);
        }
    }
    if let Err(e) = std::fs::write(path, contents) {
        eprintln!("cannot write {}: {e}", path.display());
        std::process::exit(1);
    }
}

fn main() {
    let a = parse_args();

    if let Some(bench_path) = &a.bench {
        let reports = bench_reports(&a);
        write_file(bench_path, &write_bench(&reports));
        println!("wrote {} runs to {}", reports.len(), bench_path.display());
        return;
    }

    let run_observed = || -> RunRecord {
        let mut grid = Grid::new();
        grid.add(observed_job(&a.app, &a.mode, a.nprocs, a.paper_size));
        engine(&a)
            .silent()
            .run(&grid)
            .pop()
            // invariant: run() returns exactly one record per job.
            .expect("one job in, one record out")
    };

    let rec = run_observed();
    let r = &rec.result;
    // invariant: observed_job sets obs, so the record carries a report.
    let report = rec.report.clone().expect("observed job carries a report");
    print!("{}", report.render_table());

    // Per-node breakdown, hottest (most overhead) nodes first; anything past
    // the top K collapses into one summed row so 256-node runs stay legible.
    println!();
    print!("{}", ncp2_obs::render_node_table(&r.nodes, a.top_k));

    let mut failed = false;
    if !r.violations.is_empty() {
        eprintln!("violations: {:#?}", r.violations);
        failed = true;
    }

    if let Some(dir) = &a.out_dir {
        let metrics = report.to_json();
        let trace = perfetto_json(r);
        let csv = ncp2::core::trace_csv(&r.trace);
        write_file(&dir.join("metrics.json"), &metrics);
        write_file(&dir.join("trace.json"), &trace);
        write_file(&dir.join("trace.csv"), &csv);
        println!(
            "\nwrote metrics.json, trace.json, trace.csv to {}",
            dir.display()
        );
    }

    if a.selfcheck {
        // 1. Conservation must have held (violations would have tripped above,
        //    but check the report's own flag too).
        if !report.conservation_ok {
            eprintln!("selfcheck: span-conservation invariant FAILED");
            failed = true;
        }
        // 2. Determinism: a second identical run must produce byte-identical
        //    metrics and Perfetto exports. (Trace jobs never hit the cache,
        //    so this genuinely re-simulates.)
        let rec2 = run_observed();
        // invariant: observed_job sets obs, so the record carries a report.
        let report2 = rec2.report.expect("observed job carries a report");
        // Host-phase attribution is wall-clock data and legitimately differs
        // between runs; the determinism contract covers everything simulated.
        let sim_only = |r: &MetricsReport| {
            let mut r = r.clone();
            r.host.clear();
            r.to_json()
        };
        if sim_only(&report2) != sim_only(&report) {
            eprintln!("selfcheck: metrics.json differs between identical runs");
            failed = true;
        }
        if perfetto_json(&rec2.result) != perfetto_json(r) {
            eprintln!("selfcheck: trace.json differs between identical runs");
            failed = true;
        }
        // 3. The deterministic JSON must parse back to the same report.
        match parse_metrics(&report.to_json()) {
            Ok(parsed) => {
                if parsed.total_cycles != report.total_cycles
                    || parsed.name != report.name
                    || !parsed.conservation_ok
                {
                    eprintln!("selfcheck: parsed metrics disagree with the report");
                    failed = true;
                }
            }
            Err(e) => {
                eprintln!("selfcheck: metrics.json does not parse: {e}");
                failed = true;
            }
        }
        if !failed {
            println!("\nselfcheck passed: conservation ok, exports deterministic");
        }
    }

    if failed {
        std::process::exit(1);
    }
}
