//! `obs_report` — run one application with observability enabled and render
//! the metrics report; optionally export Perfetto/CSV artifacts, run the
//! determinism/conservation self-check, or produce the bench file consumed
//! by `cargo xtask bench-diff`.
//!
//! ```sh
//! # Print the report table for one run.
//! cargo run --release --bin obs_report -- --app TSP --mode I+P+D
//!
//! # Export metrics.json + trace.json (Perfetto) + trace.csv.
//! cargo run --release --bin obs_report -- --app Water --mode AURC --out-dir /tmp/obs
//!
//! # CI self-check: byte-determinism + conservation + parse-back.
//! cargo run --release --bin obs_report -- --app TSP --mode I+P+D --nprocs 4 --selfcheck
//!
//! # Regenerate the tier-1 bench trajectory file.
//! cargo run --release --bin obs_report -- --bench bench_new.json
//! ```

use std::path::PathBuf;

use ncp2::apps::run_app_with;
use ncp2::prelude::*;
use ncp2_bench::harness::{self, protocol_from_label, ALL_MODE_LABELS};
use ncp2_obs::report::parse_metrics;
use ncp2_obs::{perfetto_json, write_bench, MetricsReport};

struct Args {
    app: String,
    mode: String,
    nprocs: usize,
    paper_size: bool,
    out_dir: Option<PathBuf>,
    selfcheck: bool,
    bench: Option<PathBuf>,
}

fn usage() -> ! {
    eprintln!(
        "usage: obs_report [--app NAME] [--mode LABEL] [--nprocs N] [--paper-size]\n\
         \x20                 [--out-dir DIR] [--selfcheck] [--bench FILE]\n\
         modes: {}",
        ALL_MODE_LABELS.join(", ")
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut a = Args {
        app: "TSP".into(),
        mode: "I+P+D".into(),
        nprocs: SysParams::default().nprocs,
        paper_size: false,
        out_dir: None,
        selfcheck: false,
        bench: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--app" => a.app = args.next().unwrap_or_else(|| usage()),
            "--mode" => a.mode = args.next().unwrap_or_else(|| usage()),
            "--nprocs" => {
                a.nprocs = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--paper-size" => a.paper_size = true,
            "--out-dir" => a.out_dir = Some(PathBuf::from(args.next().unwrap_or_else(|| usage()))),
            "--selfcheck" => a.selfcheck = true,
            "--bench" => a.bench = Some(PathBuf::from(args.next().unwrap_or_else(|| usage()))),
            _ => usage(),
        }
    }
    const APPS: [&str; 6] = ["TSP", "Water", "Radix", "Barnes", "Em3d", "Ocean"];
    match APPS.iter().find(|n| n.eq_ignore_ascii_case(&a.app)) {
        Some(canonical) => a.app = canonical.to_string(),
        None => {
            eprintln!("unknown app '{}'; known: {}", a.app, APPS.join(", "));
            std::process::exit(2);
        }
    }
    a
}

/// One observed run at the given size, with protocol tracing on so the
/// Perfetto export carries instant events too.
fn observed_run(app: &str, mode: &str, nprocs: usize, paper_size: bool) -> RunResult {
    let protocol = protocol_from_label(mode).unwrap_or_else(|| {
        eprintln!(
            "unknown mode '{mode}'; known: {}",
            ALL_MODE_LABELS.join(", ")
        );
        std::process::exit(2);
    });
    let mut params = SysParams::default().with_nprocs(nprocs);
    params.trace = true;
    run_app_with(
        params,
        protocol,
        harness::build_app(app, paper_size),
        |sim| sim.enable_obs(),
    )
}

/// The tier-1 bench suite: the six applications at oracle-test sizes, under
/// a representative protocol spread, on 4 processors. Small enough for CI,
/// broad enough that a protocol-wide slowdown cannot hide.
fn bench_reports() -> Vec<MetricsReport> {
    const BENCH_MODES: [&str; 3] = ["Base", "I+P+D", "AURC+P"];
    let params = SysParams::default().with_nprocs(4);
    let mut reports = Vec::new();
    for mode in BENCH_MODES {
        let protocol = match protocol_from_label(mode) {
            Some(p) => p,
            None => unreachable!("BENCH_MODES holds known labels"),
        };
        let obs = |sim: &mut Simulation| sim.enable_obs();
        let runs: Vec<(&str, RunResult)> = vec![
            (
                "TSP",
                run_app_with(
                    params.clone(),
                    protocol,
                    Tsp {
                        cities: 6,
                        prefix_depth: 2,
                        seed: 11,
                    },
                    obs,
                ),
            ),
            (
                "Water",
                run_app_with(
                    params.clone(),
                    protocol,
                    Water {
                        molecules: 8,
                        steps: 1,
                        seed: 12,
                    },
                    obs,
                ),
            ),
            (
                "Radix",
                run_app_with(
                    params.clone(),
                    protocol,
                    Radix {
                        keys: 256,
                        radix: 16,
                        passes: 2,
                        seed: 13,
                    },
                    obs,
                ),
            ),
            (
                "Barnes",
                run_app_with(
                    params.clone(),
                    protocol,
                    Barnes {
                        bodies: 16,
                        steps: 1,
                        theta_16: 8,
                        seed: 14,
                    },
                    obs,
                ),
            ),
            (
                "Em3d",
                run_app_with(
                    params.clone(),
                    protocol,
                    Em3d {
                        nodes: 96,
                        degree: 2,
                        remote_pct: 25,
                        iters: 2,
                        seed: 15,
                    },
                    obs,
                ),
            ),
            (
                "Ocean",
                run_app_with(params.clone(), protocol, Ocean { grid: 16, iters: 2 }, obs),
            ),
        ];
        for (name, r) in runs {
            reports.push(MetricsReport::from_run(&format!("{name}/{mode}"), &r));
        }
    }
    reports
}

fn write_file(path: &std::path::Path, contents: &str) {
    if let Some(dir) = path.parent() {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create {}: {e}", dir.display());
            std::process::exit(1);
        }
    }
    if let Err(e) = std::fs::write(path, contents) {
        eprintln!("cannot write {}: {e}", path.display());
        std::process::exit(1);
    }
}

fn main() {
    let a = parse_args();

    if let Some(bench_path) = &a.bench {
        let reports = bench_reports();
        write_file(bench_path, &write_bench(&reports));
        println!("wrote {} runs to {}", reports.len(), bench_path.display());
        return;
    }

    let name = format!("{}/{}", a.app, a.mode);
    let r = observed_run(&a.app, &a.mode, a.nprocs, a.paper_size);
    let report = MetricsReport::from_run(&name, &r);
    print!("{}", report.render_table());

    let mut failed = false;
    if !r.violations.is_empty() {
        eprintln!("violations: {:#?}", r.violations);
        failed = true;
    }

    if let Some(dir) = &a.out_dir {
        let metrics = report.to_json();
        let trace = perfetto_json(&r);
        let csv = ncp2::core::trace_csv(&r.trace);
        write_file(&dir.join("metrics.json"), &metrics);
        write_file(&dir.join("trace.json"), &trace);
        write_file(&dir.join("trace.csv"), &csv);
        println!(
            "\nwrote metrics.json, trace.json, trace.csv to {}",
            dir.display()
        );
    }

    if a.selfcheck {
        // 1. Conservation must have held (violations would have tripped above,
        //    but check the report's own flag too).
        if !report.conservation_ok {
            eprintln!("selfcheck: span-conservation invariant FAILED");
            failed = true;
        }
        // 2. Determinism: a second identical run must produce byte-identical
        //    metrics and Perfetto exports.
        let r2 = observed_run(&a.app, &a.mode, a.nprocs, a.paper_size);
        let report2 = MetricsReport::from_run(&name, &r2);
        if report2.to_json() != report.to_json() {
            eprintln!("selfcheck: metrics.json differs between identical runs");
            failed = true;
        }
        if perfetto_json(&r2) != perfetto_json(&r) {
            eprintln!("selfcheck: trace.json differs between identical runs");
            failed = true;
        }
        // 3. The deterministic JSON must parse back to the same report.
        match parse_metrics(&report.to_json()) {
            Ok(parsed) => {
                if parsed.total_cycles != report.total_cycles
                    || parsed.name != report.name
                    || !parsed.conservation_ok
                {
                    eprintln!("selfcheck: parsed metrics disagree with the report");
                    failed = true;
                }
            }
            Err(e) => {
                eprintln!("selfcheck: metrics.json does not parse: {e}");
                failed = true;
            }
        }
        if !failed {
            println!("\nselfcheck passed: conservation ok, exports deterministic");
        }
    }

    if failed {
        std::process::exit(1);
    }
}
