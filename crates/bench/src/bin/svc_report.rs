//! `svc_report` — open-loop service rate sweep and tail-latency CI gate.
//!
//! The service workload (`ncp2_apps::Svc`) is the repo's only open-loop
//! measurement: requests arrive on a seeded stream whether or not the nodes
//! keep up, so the headline observable is the **response time**
//! (completion − arrival), not the run length. This binary sweeps offered
//! load (mean inter-arrival gap) against every protocol mode and reports
//! the response-time tail — the experiment the paper's closed-loop figures
//! cannot express.
//!
//! Two modes:
//!
//! * **Sweep** (default): arrival-rate × protocol-mode grid through the
//!   parallel engine (observed jobs, so cache hits replay the archived
//!   report rows), printing completed/p50/p90/p99/queue-peak per cell and
//!   optionally writing `svc_report.json`.
//! * **`--check`** (the CI gate): every protocol mode at three offered
//!   loads with the verification oracle attached, plus a 1%-frame-drop
//!   faulted/clean twin. The gate fails — exit code 1 — unless every run
//!   is oracle-silent, every cell's checksum matches the protocol-invariant
//!   service checksum, overlap (I+P+D) shows a lower p99 than Base at the
//!   highest pre-saturation load, the faulted twin's checksum equals the
//!   clean twin's with p99 inflation bounded, and the whole artifact is
//!   byte-identical when re-run with a different worker count (`--jobs 1`
//!   vs `--jobs 8`).
//!
//! ```sh
//! # Rate sweep: 8 modes x default gaps, JSON export.
//! cargo run --release --bin svc_report -- --out-dir target/svc
//!
//! # Custom offered loads (mean inter-arrival gaps, cycles).
//! cargo run --release --bin svc_report -- --gaps 12000,6000,3000
//!
//! # CI gate.
//! cargo run --release --bin svc_report -- --check --quiet --out-dir target/svc
//! ```

use std::path::PathBuf;

use ncp2::prelude::*;
use ncp2_bench::engine::{Engine, Grid, Job, RunRecord, WorkloadSpec};
use ncp2_bench::harness::{protocol_from_label, ALL_MODE_LABELS};
use ncp2_fault::FaultPlan;

/// Default sweep gaps: comfortably under-loaded down to near saturation.
const SWEEP_GAPS: [u64; 4] = [16_000, 8_000, 4_000, 2_000];

/// `--check` gaps: light, moderate, and the highest pre-saturation load
/// (the cell where queueing separates Base from I+P+D most clearly).
const CHECK_GAPS: [u64; 3] = [8_000, 4_000, 2_000];

/// `--check` twin plan: 1% frame drop; the retransmit path must preserve
/// the checksum and keep the response tail bounded.
const CHECK_DROP_PERMILLE: u16 = 10;

/// Fault seed for the `--check` twin; fixed so the gate is reproducible.
const CHECK_SEED: u64 = 0x5E4C;

/// Faulted p99 must stay within this multiple of the clean twin's p99.
const MAX_TAIL_INFLATION: f64 = 4.0;

struct Args {
    gaps: Vec<u64>,
    nprocs: usize,
    out_dir: Option<PathBuf>,
    jobs: Option<usize>,
    no_cache: bool,
    quiet: bool,
    prof: bool,
    check: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: svc_report [--gaps G,G,...] [--nprocs N] [--out-dir DIR]\n\
         \x20                 [--jobs N] [--no-cache] [--quiet] [--prof] [--check]\n\
         gaps are mean inter-arrival gaps in simulated cycles (smaller = higher load)"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut a = Args {
        gaps: SWEEP_GAPS.to_vec(),
        nprocs: 4,
        out_dir: None,
        jobs: None,
        no_cache: false,
        quiet: false,
        prof: false,
        check: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--gaps" => {
                let spec = args.next().unwrap_or_else(|| usage());
                a.gaps = spec
                    .split(',')
                    .map(|s| s.trim().parse().unwrap_or_else(|_| usage()))
                    .collect();
                if a.gaps.is_empty() || a.gaps.contains(&0) {
                    usage();
                }
            }
            "--nprocs" => {
                a.nprocs = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--out-dir" => a.out_dir = Some(PathBuf::from(args.next().unwrap_or_else(|| usage()))),
            "--jobs" => {
                a.jobs = Some(
                    args.next()
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--no-cache" => a.no_cache = true,
            "--quiet" => a.quiet = true,
            "--prof" => a.prof = true,
            "--check" => a.check = true,
            _ => usage(),
        }
    }
    a
}

fn engine(a: &Args) -> Engine {
    let mut e = Engine::new();
    if let Some(jobs) = a.jobs {
        e = e.with_jobs(jobs);
    }
    if a.no_cache {
        e = e.no_cache();
    }
    if a.quiet {
        e = e.silent();
    }
    if a.prof {
        e = e.with_prof();
    }
    e
}

fn write_file(path: &std::path::Path, contents: &str) {
    if let Some(dir) = path.parent() {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create {}: {e}", dir.display());
            std::process::exit(1);
        }
    }
    if let Err(e) = std::fs::write(path, contents) {
        eprintln!("cannot write {}: {e}", path.display());
        std::process::exit(1);
    }
}

/// Response-time quantiles of one cell, whichever way the record carries
/// them: fresh (and `--check`) runs expose `RunResult::svc` directly;
/// cache hits replay the archived report's `svc_response` row instead
/// (service counters are not persisted raw — the report rows are).
fn tail(rec: &RunRecord) -> (u64, u64, u64, u64, u64) {
    if let Some(svc) = &rec.result.svc {
        return (
            svc.completed(),
            svc.response.quantile(0.50),
            svc.response.quantile(0.90),
            svc.response.quantile(0.99),
            svc.queue_peak,
        );
    }
    let rep = rec.report.as_ref().expect("svc jobs are observed");
    let h = rep.hist("svc_response").expect("svc run reports a tail");
    let counter = |n: &str| {
        rep.counters
            .iter()
            .find(|(name, _)| name == n)
            .map(|&(_, v)| v)
            .expect("svc run reports service counters")
    };
    (
        counter("svc_completed"),
        h.p50,
        h.p90,
        h.p99,
        counter("svc_queue_peak"),
    )
}

/// One sweep/check cell as a JSON object line.
fn cell_json(mode: &str, gap: u64, rec: &RunRecord, base: usize) -> String {
    let (completed, p50, p90, p99, peak) = tail(rec);
    format!(
        "{p}{{\"mode\": \"{mode}\", \"mean_gap\": {gap}, \"completed\": {completed}, \
         \"p50\": {p50}, \"p90\": {p90}, \"p99\": {p99}, \"queue_peak\": {peak}, \
         \"total_cycles\": {}, \"checksum\": \"{:#x}\"}}",
        rec.result.total_cycles,
        rec.result.checksum,
        p = " ".repeat(base),
    )
}

fn report_doc(gaps: &[u64], records: &[RunRecord]) -> String {
    let mut out = String::from("{\n  \"cells\": [\n");
    let mut idx = 0;
    for label in ALL_MODE_LABELS {
        for &gap in gaps {
            let comma = if idx + 1 == records.len() { "" } else { "," };
            out.push_str(&cell_json(label, gap, &records[idx], 4));
            out.push_str(comma);
            out.push('\n');
            idx += 1;
        }
    }
    out.push_str("  ]\n}\n");
    out
}

/// Builds the mode × gap grid in a fixed order (modes outer, gaps inner).
fn sweep_grid(a: &Args, verify: bool, obs: bool) -> Grid {
    let params = SysParams::default().with_nprocs(a.nprocs);
    let mut grid = Grid::new();
    for label in ALL_MODE_LABELS {
        // invariant: every ALL_MODE_LABELS entry is a known label.
        let protocol = protocol_from_label(label).expect("known mode label");
        for &gap in &a.gaps {
            grid.add(Job {
                label: format!("Svc/{label}/gap{gap}"),
                params: params.clone(),
                protocol,
                workload: WorkloadSpec::Svc(Svc::default().at_mean_gap(gap)),
                obs,
                fault: FaultPlan::none(),
                verify,
                timeseries: false,
            });
        }
    }
    grid
}

fn print_table(gaps: &[u64], records: &[RunRecord]) {
    println!(
        "{:<8} {:>9} {:>7} {:>9} {:>9} {:>9} {:>6}",
        "mode", "mean_gap", "done", "p50", "p90", "p99", "qpeak"
    );
    let mut idx = 0;
    for label in ALL_MODE_LABELS {
        for &gap in gaps {
            let (completed, p50, p90, p99, peak) = tail(&records[idx]);
            println!("{label:<8} {gap:>9} {completed:>7} {p50:>9} {p90:>9} {p99:>9} {peak:>6}");
            idx += 1;
        }
    }
}

/// Sweep mode: modes × gaps, tail table, optional JSON export.
fn sweep(a: &Args) -> bool {
    let records = engine(a).run(&sweep_grid(a, false, true));
    println!(
        "svc rate sweep: nprocs {}, {} requests/run, gaps {:?} cycles",
        a.nprocs,
        Svc::default().requests,
        a.gaps
    );
    print_table(&a.gaps, &records);
    if let Some(dir) = &a.out_dir {
        write_file(&dir.join("svc_report.json"), &report_doc(&a.gaps, &records));
        println!("wrote svc_report.json to {}", dir.display());
    }
    true
}

/// `--check` mode: the CI tail-latency gate (see the module docs).
fn check(a: &Args) -> bool {
    // The gate pins its own loads and never touches the cache.
    let a = &Args {
        gaps: CHECK_GAPS.to_vec(),
        nprocs: a.nprocs,
        out_dir: a.out_dir.clone(),
        jobs: a.jobs,
        no_cache: true,
        quiet: a.quiet,
        prof: a.prof,
        check: true,
    };
    let params = SysParams::default().with_nprocs(a.nprocs);
    // The sweep cells run the oracle; svc stats come straight off the
    // results (the gate never touches the cache).
    let build_grid = || {
        let mut grid = sweep_grid(a, true, false);
        // The twin pair: I+P+D at the moderate load, 1% frame drop vs
        // fault-free — faulted first, clean second, appended after the
        // sweep cells.
        let protocol = protocol_from_label("I+P+D").expect("known mode label");
        let spec = WorkloadSpec::Svc(Svc::default().at_mean_gap(CHECK_GAPS[1]));
        grid.add(Job {
            label: "Svc/I+P+D/drop1pct".into(),
            params: params.clone(),
            protocol,
            workload: spec.clone(),
            obs: false,
            fault: FaultPlan {
                seed: CHECK_SEED,
                drop_permille: CHECK_DROP_PERMILLE,
                ..FaultPlan::none()
            },
            verify: true,
            timeseries: false,
        });
        grid.add(Job {
            label: "Svc/I+P+D/clean-twin".into(),
            params: params.clone(),
            protocol,
            workload: spec,
            obs: false,
            fault: FaultPlan::none(),
            verify: true,
            timeseries: false,
        });
        grid
    };

    let sweep_cells = ALL_MODE_LABELS.len() * CHECK_GAPS.len();
    let run_once = |jobs: usize| -> (Vec<RunRecord>, String) {
        let mut e = Engine::new().with_jobs(jobs).no_cache();
        if a.quiet {
            e = e.silent();
        }
        if a.prof {
            e = e.with_prof();
        }
        let records = e.run(&build_grid());
        let doc = report_doc(&CHECK_GAPS, &records[..sweep_cells]);
        (records, doc)
    };

    let (records, doc) = run_once(1);
    let mut ok = true;

    // 1. Every run is oracle-silent, and the checksum is the same in every
    //    cell: the service state machine is protocol- and load-invariant.
    let expect_ck = records[0].result.checksum;
    for rec in &records {
        let r = &rec.result;
        if !r.violations.is_empty() {
            eprintln!(
                "check: {}: {} oracle violation(s)",
                r.protocol,
                r.violations.len()
            );
            ok = false;
        }
        if r.checksum != expect_ck {
            eprintln!(
                "check: checksum drift: {:#x} != {:#x}",
                r.checksum, expect_ck
            );
            ok = false;
        }
        let (completed, ..) = tail(rec);
        if completed != Svc::default().requests {
            eprintln!(
                "check: lost requests: served {completed} of {}",
                Svc::default().requests
            );
            ok = false;
        }
    }
    if !a.quiet {
        print_table(&CHECK_GAPS, &records[..sweep_cells]);
    }

    // 2. At the highest pre-saturation load, overlap must beat Base on the
    //    tail: hiding fetch/diff latency drains the queue faster, and the
    //    open loop turns that directly into response time.
    let cell = |mode: &str, gap_idx: usize| -> &RunRecord {
        let mode_idx = ALL_MODE_LABELS
            .iter()
            .position(|&l| l == mode)
            .expect("known mode label");
        &records[mode_idx * CHECK_GAPS.len() + gap_idx]
    };
    let hot = CHECK_GAPS.len() - 1;
    let (_, _, _, p99_base, _) = tail(cell("Base", hot));
    let (_, _, _, p99_ipd, _) = tail(cell("I+P+D", hot));
    if p99_ipd >= p99_base {
        eprintln!(
            "check: overlap does not help the tail: p99(I+P+D) = {p99_ipd} >= \
             p99(Base) = {p99_base} at mean_gap {}",
            CHECK_GAPS[hot]
        );
        ok = false;
    }

    // 3. The faulted twin: same memory, bounded tail.
    let (faulted, clean) = (&records[sweep_cells], &records[sweep_cells + 1]);
    if faulted.result.checksum != clean.result.checksum {
        eprintln!(
            "check: checksum diverged under 1% drop ({:#x} != {:#x})",
            faulted.result.checksum, clean.result.checksum
        );
        ok = false;
    }
    if faulted.result.fault.injected() == 0 {
        eprintln!("check: the drop plan injected no faults — the twin is not being exercised");
        ok = false;
    }
    let (_, _, _, p99_faulted, _) = tail(faulted);
    let (_, _, _, p99_clean, _) = tail(clean);
    let inflation = p99_faulted as f64 / p99_clean.max(1) as f64;
    if inflation > MAX_TAIL_INFLATION {
        eprintln!(
            "check: tail inflation unbounded under 1% drop: {inflation:.2}x > \
             {MAX_TAIL_INFLATION}x ({p99_faulted} vs {p99_clean} cycles p99)"
        );
        ok = false;
    }

    // 4. Byte-determinism across worker counts: the artifact built from a
    //    single-worker pass must equal the eight-worker pass exactly.
    let (_, doc8) = run_once(8);
    if doc8 != doc {
        eprintln!("check: svc_report.json differs between --jobs 1 and --jobs 8");
        ok = false;
    }

    if let Some(dir) = &a.out_dir {
        write_file(&dir.join("svc_report.json"), &doc);
        if !a.quiet {
            println!("wrote svc_report.json to {}", dir.display());
        }
    }
    if ok {
        println!(
            "svc check passed: {} cells oracle-silent, checksum {:#x} invariant, \
             p99(I+P+D) {p99_ipd} < p99(Base) {p99_base} at mean_gap {}, drop-twin \
             inflation {inflation:.2}x <= {MAX_TAIL_INFLATION}x, export deterministic \
             across worker counts",
            records.len(),
            expect_ck,
            CHECK_GAPS[hot]
        );
    }
    ok
}

fn main() {
    let a = parse_args();
    let ok = if a.check { check(&a) } else { sweep(&a) };
    if !ok {
        std::process::exit(1);
    }
}
