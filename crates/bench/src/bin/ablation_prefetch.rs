//! Prefetch-strategy ablation — the paper defers "a complete analysis of
//! different prefetching strategies" to its companion report; this binary
//! reproduces that study's axis: the paper's sticky all-referenced
//! heuristic vs a recency-limited variant vs per-acquire caps, under I+P
//! (where issuance is cheap) and P (where it is not).

use ncp2::prelude::*;
use ncp2::sim::PrefetchStrategy;
use ncp2_bench::harness::{self, Opts};

fn main() {
    let opts = Opts::parse();
    let strategies = [
        ("all-referenced", PrefetchStrategy::AllReferenced),
        ("recent-only", PrefetchStrategy::RecentlyReferenced),
        ("capped-4", PrefetchStrategy::Capped(4)),
        ("capped-16", PrefetchStrategy::Capped(16)),
    ];
    for app in opts.apps() {
        for mode in [OverlapMode::P, OverlapMode::IP] {
            println!("== Prefetch strategies — {app} under {} ==", mode.label());
            let base = harness::run(
                &SysParams::default(),
                Protocol::TreadMarks(OverlapMode::Base),
                app,
                opts.paper_size,
            );
            let mut rows = vec![("no prefetch (Base)".to_string(), base.total_cycles)];
            for (name, strategy) in strategies {
                let params = SysParams {
                    prefetch_strategy: strategy,
                    ..SysParams::default()
                };
                let r = harness::run(&params, Protocol::TreadMarks(mode), app, opts.paper_size);
                let (issued, useless) = r.prefetch_totals();
                let joins: u64 = r.nodes.iter().map(|n| n.prefetch_joins).sum();
                rows.push((
                    format!("{name} ({issued} issued, {useless} useless, {joins} joins)"),
                    r.total_cycles,
                ));
            }
            let borrowed: Vec<(&str, u64)> = rows.iter().map(|(l, c)| (l.as_str(), *c)).collect();
            print!("{}", normalized_bars(&borrowed));
            println!();
        }
    }
}
