//! Prefetch-strategy ablation — the paper defers "a complete analysis of
//! different prefetching strategies" to its companion report; this binary
//! reproduces that study's axis: the paper's sticky all-referenced
//! heuristic vs a recency-limited variant vs per-acquire caps, under I+P
//! (where issuance is cheap) and P (where it is not).

use ncp2::prelude::*;
use ncp2::sim::PrefetchStrategy;
use ncp2_bench::engine::Grid;
use ncp2_bench::harness::Opts;

fn main() {
    let opts = Opts::parse();
    let strategies = [
        ("all-referenced", PrefetchStrategy::AllReferenced),
        ("recent-only", PrefetchStrategy::RecentlyReferenced),
        ("capped-4", PrefetchStrategy::Capped(4)),
        ("capped-16", PrefetchStrategy::Capped(16)),
    ];
    let apps = opts.apps();
    let modes = [OverlapMode::P, OverlapMode::IP];

    // One grid for the whole study; the Base reference is shared between the
    // P and I+P sections of each app (the engine dedupes the repeat anyway).
    let mut grid = Grid::new();
    let mut section_ix = Vec::new();
    for app in &apps {
        for &mode in &modes {
            let base_ix = grid.run(
                &SysParams::default(),
                Protocol::TreadMarks(OverlapMode::Base),
                app,
                opts.paper_size,
            );
            let strat_ix: Vec<usize> = strategies
                .iter()
                .map(|&(_, strategy)| {
                    let params = SysParams {
                        prefetch_strategy: strategy,
                        ..SysParams::default()
                    };
                    grid.run(&params, Protocol::TreadMarks(mode), app, opts.paper_size)
                })
                .collect();
            section_ix.push((app, mode, base_ix, strat_ix));
        }
    }
    let records = opts.engine().run(&grid);

    for (app, mode, base_ix, strat_ix) in section_ix {
        println!("== Prefetch strategies — {app} under {} ==", mode.label());
        let base = &records[base_ix].result;
        let mut rows = vec![("no prefetch (Base)".to_string(), base.total_cycles)];
        for (&(name, _), &ix) in strategies.iter().zip(&strat_ix) {
            let r = &records[ix].result;
            let (issued, useless) = r.prefetch_totals();
            let joins: u64 = r.nodes.iter().map(|n| n.prefetch_joins).sum();
            rows.push((
                format!("{name} ({issued} issued, {useless} useless, {joins} joins)"),
                r.total_cycles,
            ));
        }
        let borrowed: Vec<(&str, u64)> = rows.iter().map(|(l, c)| (l.as_str(), *c)).collect();
        print!("{}", normalized_bars(&borrowed));
        println!();
    }
}
