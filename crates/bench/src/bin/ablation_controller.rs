//! Ablations on the protocol-controller design choices DESIGN.md calls out:
//!
//! * diff engine: software-on-processor (Base) vs software-on-controller
//!   (I) vs bit-vector DMA (I+D) — isolates where the §5.1 gains come from;
//! * the whole-page fallback threshold for long notice chains;
//! * DMA scan speed (how fast must the custom engine be to keep its edge?).

use ncp2::prelude::*;
use ncp2_bench::engine::Grid;
use ncp2_bench::harness::Opts;

fn main() {
    let opts = Opts::parse();
    let app = opts.only_app.clone().unwrap_or_else(|| "Em3d".into());
    let params = SysParams::default();
    let engines = [
        ("proc (Base)", OverlapMode::Base),
        ("ctrl sw (I)", OverlapMode::I),
        ("ctrl DMA (I+D)", OverlapMode::ID),
    ];
    let thresholds = [4usize, 16, 32, 128, 100_000];
    let scan_factors = [1u64, 2, 4, 8];

    let mut grid = Grid::new();
    let engine_ix: Vec<usize> = engines
        .iter()
        .map(|&(_, mode)| grid.run(&params, Protocol::TreadMarks(mode), &app, opts.paper_size))
        .collect();
    let threshold_ix: Vec<usize> = thresholds
        .iter()
        .map(|&threshold| {
            let mut p = params.clone();
            p.page_req_threshold = threshold;
            grid.run(
                &p,
                Protocol::TreadMarks(OverlapMode::Base),
                &app,
                opts.paper_size,
            )
        })
        .collect();
    let scan_ix: Vec<usize> = scan_factors
        .iter()
        .map(|&factor| {
            let mut p = params.clone();
            p.dma_scan_base = 200 * factor;
            p.dma_scan_full = 2100 * factor;
            grid.run(
                &p,
                Protocol::TreadMarks(OverlapMode::ID),
                &app,
                opts.paper_size,
            )
        })
        .collect();
    let records = opts.engine().run(&grid);

    println!("== Ablation: diff engine placement ({app}) ==");
    let rows: Vec<(&str, u64)> = engines
        .iter()
        .zip(&engine_ix)
        .map(|(&(label, _), &ix)| (label, records[ix].result.total_cycles))
        .collect();
    print!("{}", normalized_bars(&rows));

    println!("\n== Ablation: whole-page fallback threshold ({app}, Base) ==");
    let mut rows = Vec::new();
    for (&threshold, &ix) in thresholds.iter().zip(&threshold_ix) {
        let r = &records[ix].result;
        let fetches: u64 = r.nodes.iter().map(|n| n.page_fetches).sum();
        rows.push((
            format!("thresh {threshold:>6} ({fetches} page fetches)"),
            r.total_cycles,
        ));
    }
    let borrowed: Vec<(&str, u64)> = rows.iter().map(|(l, c)| (l.as_str(), *c)).collect();
    print!("{}", normalized_bars(&borrowed));

    println!("\n== Ablation: DMA scan speed ({app}, I+D) ==");
    let mut rows = Vec::new();
    for (&factor, &ix) in scan_factors.iter().zip(&scan_ix) {
        rows.push((
            format!("{factor}x slower scan"),
            records[ix].result.total_cycles,
        ));
    }
    let borrowed: Vec<(&str, u64)> = rows.iter().map(|(l, c)| (l.as_str(), *c)).collect();
    print!("{}", normalized_bars(&borrowed));
}
