//! §5.1 prefetch statistics: prefetches issued, useless rate, joins
//! (faults that waited on an in-flight prefetch) and hits, per application,
//! under P, I+P and AURC+P.

use ncp2::prelude::*;
use ncp2_bench::engine::Grid;
use ncp2_bench::harness::Opts;

fn main() {
    let opts = Opts::parse();
    let params = SysParams::default();
    let apps = opts.apps();
    let protos = [
        Protocol::TreadMarks(OverlapMode::P),
        Protocol::TreadMarks(OverlapMode::IP),
        Protocol::Aurc { prefetch: true },
    ];

    let mut grid = Grid::new();
    let start = grid.product(&params, &apps, &protos, opts.paper_size);
    let records = opts.engine().run(&grid);

    println!(
        "{:<8} {:<7} {:>8} {:>8} {:>9} {:>7} {:>6}",
        "app", "proto", "issued", "useless", "useless%", "joins", "hits"
    );
    for (ai, app) in apps.iter().enumerate() {
        for pi in 0..protos.len() {
            let r = &records[start + ai * protos.len() + pi].result;
            let (issued, useless) = r.prefetch_totals();
            let joins: u64 = r.nodes.iter().map(|n| n.prefetch_joins).sum();
            let hits: u64 = r.nodes.iter().map(|n| n.prefetch_hits).sum();
            let pct = if issued == 0 {
                0.0
            } else {
                100.0 * useless as f64 / issued as f64
            };
            println!(
                "{:<8} {:<7} {:>8} {:>8} {:>8.1}% {:>7} {:>6}",
                app, r.protocol, issued, useless, pct, joins, hits
            );
        }
    }
}
