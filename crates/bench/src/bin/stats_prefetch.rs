//! §5.1 prefetch statistics: prefetches issued, useless rate, joins
//! (faults that waited on an in-flight prefetch) and hits, per application,
//! under P, I+P and AURC+P.

use ncp2::prelude::*;
use ncp2_bench::harness::{self, Opts};

fn main() {
    let opts = Opts::parse();
    let params = SysParams::default();
    println!(
        "{:<8} {:<7} {:>8} {:>8} {:>9} {:>7} {:>6}",
        "app", "proto", "issued", "useless", "useless%", "joins", "hits"
    );
    for app in opts.apps() {
        for proto in [
            Protocol::TreadMarks(OverlapMode::P),
            Protocol::TreadMarks(OverlapMode::IP),
            Protocol::Aurc { prefetch: true },
        ] {
            let r = harness::run(&params, proto, app, opts.paper_size);
            let (issued, useless) = r.prefetch_totals();
            let joins: u64 = r.nodes.iter().map(|n| n.prefetch_joins).sum();
            let hits: u64 = r.nodes.iter().map(|n| n.prefetch_hits).sum();
            let pct = if issued == 0 {
                0.0
            } else {
                100.0 * useless as f64 / issued as f64
            };
            println!(
                "{:<8} {:<7} {:>8} {:>8} {:>8.1}% {:>7} {:>6}",
                app, r.protocol, issued, useless, pct, joins, hits
            );
        }
    }
}
