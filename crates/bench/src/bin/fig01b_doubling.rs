//! The abstract's headline: "our protocol controller can improve running
//! time performance by up to 50% for TreadMarks, which means that it can
//! double the TreadMarks speedups." This binary measures 16-processor
//! speedups under Base and under the full controller (I+P+D picking the
//! best per app, as the paper's 'best overlapping' does), and the ratio.

use ncp2::prelude::*;
use ncp2_bench::engine::Grid;
use ncp2_bench::harness::Opts;

fn main() {
    let opts = Opts::parse();
    let params = SysParams::default();
    let apps = opts.apps();
    // Base first, then the controller modes the paper's "best overlapping"
    // minimizes over.
    let contenders = [
        OverlapMode::I,
        OverlapMode::ID,
        OverlapMode::IP,
        OverlapMode::IPD,
    ];

    let mut grid = Grid::new();
    let seq_ix: Vec<usize> = apps
        .iter()
        .map(|app| grid.sequential(&params, app, opts.paper_size))
        .collect();
    let base_ix: Vec<usize> = apps
        .iter()
        .map(|app| {
            grid.run(
                &params,
                Protocol::TreadMarks(OverlapMode::Base),
                app,
                opts.paper_size,
            )
        })
        .collect();
    let mode_ix = grid.product(
        &params,
        &apps,
        &contenders
            .iter()
            .map(|&m| Protocol::TreadMarks(m))
            .collect::<Vec<_>>(),
        opts.paper_size,
    );
    let records = opts.engine().run(&grid);

    println!(
        "{:<8} {:>9} {:>10} {:>12} {:>9} {:>8}",
        "app", "seq Mcyc", "Base spdup", "best overlap", "spdup", "ratio"
    );
    for (ai, app) in apps.iter().enumerate() {
        let seq = records[seq_ix[ai]].result.total_cycles;
        let base = records[base_ix[ai]].result.total_cycles;
        let mut best = ("I", u64::MAX);
        for (mi, mode) in contenders.iter().enumerate() {
            let cycles = records[mode_ix + ai * contenders.len() + mi]
                .result
                .total_cycles;
            if cycles < best.1 {
                best = (mode.label(), cycles);
            }
        }
        let s_base = seq as f64 / base as f64;
        let s_best = seq as f64 / best.1 as f64;
        println!(
            "{:<8} {:>9.1} {:>10.2} {:>12} {:>9.2} {:>7.2}x",
            app,
            seq as f64 / 1e6,
            s_base,
            best.0,
            s_best,
            s_best / s_base
        );
    }
}
