//! The abstract's headline: "our protocol controller can improve running
//! time performance by up to 50% for TreadMarks, which means that it can
//! double the TreadMarks speedups." This binary measures 16-processor
//! speedups under Base and under the full controller (I+P+D picking the
//! best per app, as the paper's 'best overlapping' does), and the ratio.

use ncp2::prelude::*;
use ncp2_bench::harness::{self, Opts};

fn main() {
    let opts = Opts::parse();
    let params = SysParams::default();
    println!(
        "{:<8} {:>9} {:>10} {:>12} {:>9} {:>8}",
        "app", "seq Mcyc", "Base spdup", "best overlap", "spdup", "ratio"
    );
    for app in opts.apps() {
        let seq = harness::seq_cycles(&params, app, opts.paper_size);
        let base = harness::run(
            &params,
            Protocol::TreadMarks(OverlapMode::Base),
            app,
            opts.paper_size,
        );
        // The paper's "best overlapping" = min over controller modes.
        let mut best = ("I", u64::MAX);
        for mode in [
            OverlapMode::I,
            OverlapMode::ID,
            OverlapMode::IP,
            OverlapMode::IPD,
        ] {
            let r = harness::run(&params, Protocol::TreadMarks(mode), app, opts.paper_size);
            if r.total_cycles < best.1 {
                best = (mode.label(), r.total_cycles);
            }
        }
        let s_base = seq as f64 / base.total_cycles as f64;
        let s_best = seq as f64 / best.1 as f64;
        println!(
            "{:<8} {:>9.1} {:>10.2} {:>12} {:>9.2} {:>7.2}x",
            app,
            seq as f64 / 1e6,
            s_base,
            best.0,
            s_best,
            s_best / s_base
        );
    }
}
