//! The abstract's headline: "our protocol controller can improve running
//! time performance by up to 50% for TreadMarks, which means that it can
//! double the TreadMarks speedups." This binary measures 16-processor
//! speedups under Base and under the full controller (I+P+D picking the
//! best per app, as the paper's 'best overlapping' does), and the ratio.
//!
//! With `--scale` it instead sweeps the cluster from 2 to 256 processors
//! (doubling each step) on the two scale workloads under Base and I+P+D,
//! holding three laws at every size: the verify oracle stays silent, each
//! application's checksum is invariant across cluster sizes (DSM
//! transparency — the program computes the same answer no matter how it is
//! partitioned), and the critical-path decomposition of every run tiles its
//! execution exactly.

use ncp2::prelude::*;
use ncp2_bench::engine::{scale_grid, scale_workloads, Grid, SCALE_NPROCS};
use ncp2_bench::harness::Opts;
use ncp2_obs::{critical_path, ExecGraph};

/// The `--scale` sweep: 2..=256 processors x scale workloads x {Base, I+P+D}.
fn run_scale(opts: &Opts) {
    let modes = ["Base", "I+P+D"];
    let only = opts.only_app.as_deref();
    let grid = scale_grid(&SCALE_NPROCS, &modes, only);
    let records = opts.engine().run(&grid);
    let apps: Vec<_> = scale_workloads()
        .into_iter()
        .filter(|(name, _)| only.is_none_or(|o| o.eq_ignore_ascii_case(name)))
        .collect();
    let (napps, nmodes) = (apps.len(), modes.len());
    assert!(napps > 0, "--app matched no scale workload (Ocean, Em3d)");

    // Index into the grid-ordered records: nprocs-major, then mode, then app.
    let ix = |ni: usize, mi: usize, ai: usize| (ni * nmodes + mi) * napps + ai;

    println!(
        "{:<6} {:<8} {:>12} {:>12} {:>7}",
        "procs", "app", "Base Mcyc", "I+P+D Mcyc", "ratio"
    );
    let mut checksums: Vec<Option<u64>> = vec![None; napps];
    for (ni, &np) in SCALE_NPROCS.iter().enumerate() {
        for (ai, (name, _)) in apps.iter().enumerate() {
            let base = &records[ix(ni, 0, ai)].result;
            let ipd = &records[ix(ni, 1, ai)].result;
            println!(
                "{:<6} {:<8} {:>12.2} {:>12.2} {:>6.2}x",
                np,
                name,
                base.total_cycles as f64 / 1e6,
                ipd.total_cycles as f64 / 1e6,
                base.total_cycles as f64 / ipd.total_cycles as f64
            );
            for r in [base, ipd] {
                // Law 1: the verify oracle stays silent at every size.
                assert!(
                    r.violations.is_empty(),
                    "{name}@{np}: oracle violations: {:?}",
                    r.violations
                );
                // Law 2: the answer is independent of the cluster size.
                match checksums[ai] {
                    None => checksums[ai] = Some(r.checksum),
                    Some(c) => assert_eq!(
                        c, r.checksum,
                        "{name}@{np}: checksum drifted across cluster sizes"
                    ),
                }
                // Law 3: the span graph tiles the run and the critical path
                // walks it end to end. Cache hits carry no ObsLog (the law
                // held when the entry was recorded fresh), so check fresh
                // runs only.
                if let Some(log) = r.obs.as_ref() {
                    let g = ExecGraph::build(log, r.nprocs, r.total_cycles)
                        .unwrap_or_else(|e| panic!("{name}@{np}: span tiling broken: {e}"));
                    critical_path(&g)
                        .unwrap_or_else(|e| panic!("{name}@{np}: critical-path walk failed: {e}"));
                }
            }
        }
    }
    println!("\nscale sweep clean: oracle silent, checksums size-invariant, critpath conserved");
}

fn main() {
    let opts = Opts::parse();
    if opts.scale {
        run_scale(&opts);
        return;
    }
    let params = SysParams::default();
    let apps = opts.apps();
    // Base first, then the controller modes the paper's "best overlapping"
    // minimizes over.
    let contenders = [
        OverlapMode::I,
        OverlapMode::ID,
        OverlapMode::IP,
        OverlapMode::IPD,
    ];

    let mut grid = Grid::new();
    let seq_ix: Vec<usize> = apps
        .iter()
        .map(|app| grid.sequential(&params, app, opts.paper_size))
        .collect();
    let base_ix: Vec<usize> = apps
        .iter()
        .map(|app| {
            grid.run(
                &params,
                Protocol::TreadMarks(OverlapMode::Base),
                app,
                opts.paper_size,
            )
        })
        .collect();
    let mode_ix = grid.product(
        &params,
        &apps,
        &contenders
            .iter()
            .map(|&m| Protocol::TreadMarks(m))
            .collect::<Vec<_>>(),
        opts.paper_size,
    );
    let records = opts.engine().run(&grid);

    println!(
        "{:<8} {:>9} {:>10} {:>12} {:>9} {:>8}",
        "app", "seq Mcyc", "Base spdup", "best overlap", "spdup", "ratio"
    );
    for (ai, app) in apps.iter().enumerate() {
        let seq = records[seq_ix[ai]].result.total_cycles;
        let base = records[base_ix[ai]].result.total_cycles;
        let mut best = ("I", u64::MAX);
        for (mi, mode) in contenders.iter().enumerate() {
            let cycles = records[mode_ix + ai * contenders.len() + mi]
                .result
                .total_cycles;
            if cycles < best.1 {
                best = (mode.label(), cycles);
            }
        }
        let s_base = seq as f64 / base as f64;
        let s_best = seq as f64 / best.1 as f64;
        println!(
            "{:<8} {:>9.1} {:>10.2} {:>12} {:>9.2} {:>7.2}x",
            app,
            seq as f64 / 1e6,
            s_base,
            best.0,
            s_best,
            s_best / s_base
        );
    }
}
