//! Machine-readable export: every (application × protocol) run as one CSV
//! row, for external plotting of the paper's figures.
//!
//! ```sh
//! cargo run --release -p ncp2-bench --bin export_csv > results/all_runs.csv
//! ```

use ncp2::prelude::*;
use ncp2_bench::engine::Grid;
use ncp2_bench::harness::{self, Opts};

fn main() {
    let opts = Opts::parse();
    let params = SysParams::default();
    let apps = opts.apps();
    let protos = harness::all_protocols();

    let mut grid = Grid::new();
    let start = grid.product(&params, &apps, &protos, opts.paper_size);
    let records = opts.engine().run(&grid);

    println!(
        "app,protocol,nprocs,cycles,busy,data,synch,ipc,others,diff_pct,\
         faults,write_faults,page_fetches,diffs_created,diffs_applied,\
         prefetches,useless_prefetches,prefetch_joins,lock_acquires,\
         barriers,invalidations,au_updates,au_combined,net_messages,net_bytes,\
         net_mean_blocking,checksum"
    );
    for (ai, app) in apps.iter().enumerate() {
        for pi in 0..protos.len() {
            let r = &records[start + ai * protos.len() + pi].result;
            let b = r.aggregate();
            let sum = |f: fn(&ncp2::core::NodeStats) -> u64| -> u64 { r.nodes.iter().map(f).sum() };
            println!(
                "{app},{},{},{},{},{},{},{},{},{:.3},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{:.1},{:#x}",
                r.protocol,
                r.nprocs,
                r.total_cycles,
                b.busy,
                b.data,
                b.synch,
                b.ipc,
                b.other,
                r.diff_pct(),
                sum(|n| n.faults),
                sum(|n| n.write_faults),
                sum(|n| n.page_fetches),
                sum(|n| n.diffs_created),
                sum(|n| n.diffs_applied),
                sum(|n| n.prefetches),
                sum(|n| n.useless_prefetches),
                sum(|n| n.prefetch_joins),
                sum(|n| n.lock_acquires),
                sum(|n| n.barriers),
                sum(|n| n.invalidations),
                sum(|n| n.au_updates),
                sum(|n| n.au_combined),
                r.net.messages,
                r.net.bytes,
                r.net.mean_blocking(),
                r.checksum,
            );
        }
    }
}
