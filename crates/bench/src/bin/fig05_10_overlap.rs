//! Figures 5–10: performance of the overlapping techniques per application
//! under TreadMarks — normalized running time, broken into busy / data /
//! synch / ipc / others, for Base, I, I+D, P, I+P and I+P+D, plus the
//! diff-operation reduction quoted in §5.1.

use ncp2::prelude::*;
use ncp2_bench::engine::Grid;
use ncp2_bench::harness::{self, Opts};

fn main() {
    let opts = Opts::parse();
    let params = SysParams::default();
    let apps = opts.apps();

    let mut grid = Grid::new();
    let start = grid.product(&params, &apps, &harness::tm_protocols(), opts.paper_size);
    let records = opts.engine().run(&grid);

    let modes = harness::MODES;
    for (ai, app) in apps.iter().enumerate() {
        let row_of = |mi: usize| &records[start + ai * modes.len() + mi].result;
        let rows: Vec<_> = (0..modes.len())
            .map(|mi| harness::row(row_of(mi)))
            .collect();
        harness::print_breakdown(
            &format!("Fig 5-10: TreadMarks overlap modes — {app}"),
            &rows,
        );
        let base = row_of(0).diff_total_cycles().max(1);
        let id = row_of(2).diff_total_cycles();
        println!(
            "   diff-op time (twin+create+apply): Base {base} cycles, I+D {id} cycles \
             => reduced {:.0}%",
            100.0 * (1.0 - id as f64 / base as f64)
        );
        // The P column of the same grid (no extra run needed).
        let (issued, useless) = row_of(3).prefetch_totals();
        if issued > 0 {
            println!(
                "   P-mode prefetches: {issued} issued, {useless} useless ({:.0}%)",
                100.0 * useless as f64 / issued as f64
            );
        }
        println!();
    }
}
