//! Figures 5–10: performance of the overlapping techniques per application
//! under TreadMarks — normalized running time, broken into busy / data /
//! synch / ipc / others, for Base, I, I+D, P, I+P and I+P+D, plus the
//! diff-operation reduction quoted in §5.1.

use ncp2::prelude::*;
use ncp2_bench::harness::{self, Opts, MODES};

fn main() {
    let opts = Opts::parse();
    let params = SysParams::default();
    for app in opts.apps() {
        let mut rows = Vec::new();
        let mut diff_cycles = Vec::new();
        for mode in MODES {
            let r = harness::run(&params, Protocol::TreadMarks(mode), app, opts.paper_size);
            diff_cycles.push((mode.label(), r.diff_total_cycles()));
            rows.push(harness::row(&r));
        }
        harness::print_breakdown(
            &format!("Fig 5-10: TreadMarks overlap modes — {app}"),
            &rows,
        );
        let base = diff_cycles[0].1.max(1);
        let id = diff_cycles[2].1;
        println!(
            "   diff-op time (twin+create+apply): Base {base} cycles, I+D {id} cycles \
             => reduced {:.0}%",
            100.0 * (1.0 - id as f64 / base as f64)
        );
        let (issued, useless) = {
            let r = harness::run(
                &params,
                Protocol::TreadMarks(OverlapMode::P),
                app,
                opts.paper_size,
            );
            r.prefetch_totals()
        };
        if issued > 0 {
            println!(
                "   P-mode prefetches: {issued} issued, {useless} useless ({:.0}%)",
                100.0 * useless as f64 / issued as f64
            );
        }
        println!();
    }
}
