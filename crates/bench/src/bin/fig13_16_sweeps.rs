//! Figures 13–16: sensitivity of the overlapping TreadMarks (I+D) and AURC
//! to messaging overhead, network bandwidth, memory latency and memory
//! bandwidth, on Em3d. Running times are normalized to I+D under the
//! default parameters, exactly as in §5.3.

use ncp2::prelude::*;
use ncp2_bench::engine::Grid;
use ncp2_bench::harness::Opts;

struct Sweep {
    title: &'static str,
    x_label: &'static str,
    xs: Vec<f64>,
    make: fn(f64) -> SysParams,
    /// Fig 13's second regime: AURC updates also pay the overhead.
    expensive_updates: bool,
}

fn sweeps() -> [Sweep; 4] {
    [
        Sweep {
            title: "Fig 13: effect of messaging overhead (AURC updates pay full overhead)",
            x_label: "us",
            xs: vec![1.0, 2.0, 3.0, 4.0],
            make: |us| SysParams::default().with_messaging_overhead_us(us),
            expensive_updates: true,
        },
        Sweep {
            title: "Fig 14: effect of network bandwidth",
            x_label: "MB/s",
            xs: vec![20.0, 50.0, 100.0, 200.0],
            make: |bw| SysParams::default().with_net_bandwidth_mbps(bw),
            expensive_updates: false,
        },
        Sweep {
            title: "Fig 15: effect of memory latency",
            x_label: "ns",
            xs: vec![40.0, 100.0, 150.0, 200.0],
            make: |ns| SysParams::default().with_mem_latency_ns(ns as u64),
            expensive_updates: false,
        },
        Sweep {
            title: "Fig 16: effect of memory bandwidth",
            x_label: "MB/s",
            xs: vec![60.0, 103.0, 150.0, 200.0],
            make: |bw| SysParams::default().with_mem_bandwidth_mbps(bw),
            expensive_updates: false,
        },
    ]
}

fn main() {
    let opts = Opts::parse();
    let app = opts.only_app.clone().unwrap_or_else(|| "Em3d".to_string());
    let sweeps = sweeps();

    // The whole sensitivity study is one grid: the I+D baseline at the
    // defaults, then per sweep and per x both protocols' points.
    let mut grid = Grid::new();
    let base_ix = grid.run(
        &SysParams::default(),
        Protocol::TreadMarks(OverlapMode::ID),
        &app,
        opts.paper_size,
    );
    let mut point_ix: Vec<Vec<(usize, usize)>> = Vec::new();
    for sweep in &sweeps {
        let mut pts = Vec::new();
        for &x in &sweep.xs {
            let params = (sweep.make)(x);
            let tm = grid.run(
                &params,
                Protocol::TreadMarks(OverlapMode::ID),
                &app,
                opts.paper_size,
            );
            let aurc_params = if sweep.expensive_updates {
                params.with_expensive_updates()
            } else {
                params
            };
            let aurc = grid.run(
                &aurc_params,
                Protocol::Aurc { prefetch: false },
                &app,
                opts.paper_size,
            );
            pts.push((tm, aurc));
        }
        point_ix.push(pts);
    }
    let records = opts.engine().run(&grid);

    let base = records[base_ix].result.total_cycles as f64;
    for (sweep, pts) in sweeps.iter().zip(&point_ix) {
        let tm: Vec<f64> = pts
            .iter()
            .map(|&(t, _)| records[t].result.total_cycles as f64 / base)
            .collect();
        let aurc: Vec<f64> = pts
            .iter()
            .map(|&(_, a)| records[a].result.total_cycles as f64 / base)
            .collect();
        let tm_name = format!("{app}-TM");
        let aurc_name = format!("{app}-AURC");
        println!(
            "{}",
            xy_plot(
                sweep.title,
                sweep.x_label,
                &sweep.xs,
                &[(&tm_name, tm), (&aurc_name, aurc)],
            )
        );
    }
}
