//! `timeline_report` — run one application with the windowed time-series
//! recorder enabled and render/export the timeline: per-window counters and
//! gauges over simulated time, hot-page/hot-lock attribution, and SLO-style
//! window assertions.
//!
//! ```sh
//! # Print the timeline summary and hot-spot tables for one run.
//! cargo run --release --bin timeline_report -- --app TSP --mode I+P+D
//!
//! # Fixed 4096-cycle windows, full hot-spot tables, JSON + CSV export.
//! cargo run --release --bin timeline_report -- --app Water --mode AURC+P \
//!     --window 4096 --top-k 0 --out-dir /tmp/timeline
//!
//! # Evaluate an SLO assertion (exit 1 if it fires).
//! cargo run --release --bin timeline_report -- --app TSP --mode I+P+D \
//!     --assert 'occupancy_pct >= 95 for 4'
//!
//! # CI smoke: a congestion-window fault plan must fire the retransmit-storm
//! # assertion inside the injected window; the fault-free twin must fire
//! # nothing; the export must be byte-identical across reruns.
//! cargo run --release --bin timeline_report -- --check --quiet --out-dir /tmp/timeline
//! ```

use std::path::PathBuf;

use ncp2::prelude::*;
use ncp2_bench::engine::{tier1_workloads, Engine, Grid, Job, WorkloadSpec};
use ncp2_bench::harness::{protocol_from_label, ALL_MODE_LABELS};
use ncp2_fault::{FaultPlan, Window};
use ncp2_obs::{render_hotspots, Assertion, Firing, TimelineReport};

/// Fault seed for `--check`; fixed so the smoke run is reproducible.
const CHECK_SEED: u64 = 0x71AE11;

/// `--check` congestion window: `[0, CHECK_FAULT_END)` with extra delivery
/// latency far above the 20k-cycle retransmit timeout, so every frame sent
/// inside the window times out and retransmits — a storm that provably
/// lands inside the injected window.
const CHECK_FAULT_END: u64 = 150_000;
const CHECK_EXTRA_LATENCY: u64 = 40_000;

/// `--check` uses a fixed window width so the assertion windows (and the
/// archived JSON) are independent of run length.
const CHECK_WINDOW: u64 = 8_192;

/// The `--check` assertion: two consecutive windows with retransmissions.
const CHECK_ASSERTION: &str = "retransmits > 0 for 2";

struct Args {
    app: String,
    mode: String,
    nprocs: usize,
    window: u64,
    top_k: usize,
    asserts: Vec<Assertion>,
    out_dir: Option<PathBuf>,
    jobs: Option<usize>,
    no_cache: bool,
    quiet: bool,
    prof: bool,
    check: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: timeline_report [--app NAME] [--mode LABEL] [--nprocs N] [--window W]\n\
         \x20                      [--top-k K] [--assert EXPR]... [--out-dir DIR]\n\
         \x20                      [--jobs N] [--no-cache] [--quiet] [--prof] [--check]\n\
         window is the width in cycles (0 = auto); top-k 0 prints full tables;\n\
         assertions: 'SERIES OP N for K' or 'monotone SERIES for K'; modes: {}",
        ALL_MODE_LABELS.join(", ")
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut a = Args {
        app: "TSP".into(),
        mode: "I+P+D".into(),
        nprocs: SysParams::default().nprocs,
        window: 0,
        top_k: 16,
        asserts: Vec::new(),
        out_dir: None,
        jobs: None,
        no_cache: false,
        quiet: false,
        prof: false,
        check: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--app" => a.app = args.next().unwrap_or_else(|| usage()),
            "--mode" => a.mode = args.next().unwrap_or_else(|| usage()),
            "--nprocs" => {
                a.nprocs = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--window" => {
                a.window = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--top-k" => {
                a.top_k = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--assert" => {
                let expr = args.next().unwrap_or_else(|| usage());
                match Assertion::parse(&expr) {
                    Ok(asrt) => a.asserts.push(asrt),
                    Err(e) => {
                        eprintln!("bad assertion: {e}");
                        std::process::exit(2);
                    }
                }
            }
            "--out-dir" => a.out_dir = Some(PathBuf::from(args.next().unwrap_or_else(|| usage()))),
            "--jobs" => {
                a.jobs = Some(
                    args.next()
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--no-cache" => a.no_cache = true,
            "--quiet" => a.quiet = true,
            "--prof" => a.prof = true,
            "--check" => a.check = true,
            _ => usage(),
        }
    }
    a
}

fn engine(a: &Args) -> Engine {
    let mut e = Engine::new();
    if let Some(jobs) = a.jobs {
        e = e.with_jobs(jobs);
    }
    if a.no_cache {
        e = e.no_cache();
    }
    if a.quiet {
        e = e.silent();
    }
    if a.prof {
        e = e.with_prof();
    }
    e
}

fn write_file(path: &std::path::Path, contents: &str) {
    if let Some(dir) = path.parent() {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create {}: {e}", dir.display());
            std::process::exit(1);
        }
    }
    if let Err(e) = std::fs::write(path, contents) {
        eprintln!("cannot write {}: {e}", path.display());
        std::process::exit(1);
    }
}

fn firings_json(firings: &[Firing], base: usize) -> String {
    let p = " ".repeat(base);
    let mut out = format!("{p}[\n");
    for (i, f) in firings.iter().enumerate() {
        let comma = if i + 1 == firings.len() { "" } else { "," };
        out.push_str(&format!(
            "{p}  {{\"assertion\": \"{}\", \"first_window\": {}, \"last_window\": {}, \
             \"start_cycle\": {}, \"end_cycle\": {}}}{comma}\n",
            f.assertion, f.first_window, f.last_window, f.start_cycle, f.end_cycle
        ));
    }
    out.push_str(&format!("{p}]"));
    out
}

fn print_firings(firings: &[Firing]) {
    for f in firings {
        println!(
            "FIRED: {} — windows {}..={} (cycles {}..{})",
            f.assertion, f.first_window, f.last_window, f.start_cycle, f.end_cycle
        );
    }
}

/// One run with the time-series recorder on. Time-series jobs bypass the
/// result cache, so this always re-simulates.
fn timeline_run(a: &Args) -> TimelineReport {
    let protocol = protocol_from_label(&a.mode).unwrap_or_else(|| {
        eprintln!(
            "unknown mode '{}'; known: {}",
            a.mode,
            ALL_MODE_LABELS.join(", ")
        );
        std::process::exit(2);
    });
    let mut params = SysParams::default().with_nprocs(a.nprocs);
    params.ts_window = a.window;
    let mut grid = Grid::new();
    grid.add(Job {
        label: format!("{}/{}", a.app, a.mode),
        params,
        protocol,
        workload: WorkloadSpec::named(&a.app, false),
        obs: false,
        fault: FaultPlan::none(),
        verify: false,
        timeseries: true,
    });
    let rec = engine(a)
        .silent()
        .run(&grid)
        .pop()
        // invariant: run() returns exactly one record per job.
        .expect("one job in, one record out");
    // invariant: the job sets `timeseries`, so the result carries a log.
    TimelineReport::from_run(&format!("{}/{}", a.app, a.mode), &rec.result, a.top_k)
        .expect("time-series job carries a log")
}

fn report(a: &Args) -> bool {
    let rep = timeline_run(a);
    println!(
        "{}: {} cycles, {} windows x {} cycles",
        rep.name,
        rep.total_cycles,
        rep.log.windows.len(),
        rep.log.width
    );
    print!("{}", render_hotspots(&rep.log, a.top_k));

    let firings = ncp2_obs::evaluate_all(&a.asserts, &rep.log);
    print_firings(&firings);

    if let Some(dir) = &a.out_dir {
        write_file(&dir.join("timeline_report.json"), &rep.to_json());
        write_file(&dir.join("timeline_report.csv"), &rep.to_csv());
        println!(
            "wrote timeline_report.json, timeline_report.csv to {}",
            dir.display()
        );
    }
    if !firings.is_empty() {
        eprintln!("{} assertion firing(s)", firings.len());
        return false;
    }
    true
}

/// The two `--check` workloads: a closed-loop kernel and the open-loop
/// service — the congestion storm must be visible on both shapes of
/// traffic, and both fault-free twins must stay silent.
const CHECK_APPS: [&str; 2] = ["TSP", "Svc"];

/// The `--check` smoke (see the module docs): the assertion engine must fire
/// inside an injected fault window and stay silent on the fault-free twin,
/// for both a closed-loop kernel and the open-loop service workload, and
/// the archived JSON must be byte-identical across reruns.
fn check(a: &Args) -> bool {
    let plan = FaultPlan {
        seed: CHECK_SEED,
        congestion: vec![Window {
            start: 0,
            end: CHECK_FAULT_END,
            extra: CHECK_EXTRA_LATENCY,
        }],
        ..FaultPlan::none()
    };
    let specs: Vec<(&str, WorkloadSpec)> = CHECK_APPS
        .iter()
        .map(|&app| {
            tier1_workloads()
                .into_iter()
                .find(|(n, _)| *n == app)
                // invariant: the tier-1 table contains every check app.
                .expect("tier-1 table contains the check apps")
        })
        .collect();
    let protocol = protocol_from_label("I+P+D").expect("known mode label");
    let mut params = SysParams::default().with_nprocs(a.nprocs);
    params.ts_window = CHECK_WINDOW;

    let build_grid = || {
        let mut grid = Grid::new();
        for (app, spec) in &specs {
            // Congested run first, fault-free twin second: the analysis
            // below walks the records two at a time in grid order.
            grid.add(Job {
                label: format!("{app}/I+P+D/congested"),
                params: params.clone(),
                protocol,
                workload: spec.clone(),
                obs: false,
                fault: plan.clone(),
                verify: true,
                timeseries: true,
            });
            grid.add(Job {
                label: format!("{app}/I+P+D/clean"),
                params: params.clone(),
                protocol,
                workload: spec.clone(),
                obs: false,
                fault: FaultPlan::none(),
                verify: true,
                timeseries: true,
            });
        }
        grid
    };
    let records = engine(a).run(&build_grid());
    let assertion = Assertion::parse(CHECK_ASSERTION).expect("built-in assertion");
    let horizon = CHECK_FAULT_END + 2 * SysParams::default().retransmit_timeout;

    let mut ok = true;
    let mut total_firings = 0;
    let mut chaos_jsons = Vec::new();
    let mut doc = String::from("{\n");
    doc.push_str(&format!("  \"assertion\": \"{CHECK_ASSERTION}\",\n"));
    doc.push_str("  \"apps\": [\n");
    for (i, (app, _)) in specs.iter().enumerate() {
        let (chaos, clean) = (&records[2 * i].result, &records[2 * i + 1].result);
        // invariant: both check jobs set `timeseries`, so both carry a log.
        let chaos_rep = TimelineReport::from_run(&format!("{app}/I+P+D/congested"), chaos, a.top_k)
            .expect("ts log");
        let clean_rep = TimelineReport::from_run(&format!("{app}/I+P+D/clean"), clean, a.top_k)
            .expect("ts log");

        // 1. The faulted run fires, and the firing overlaps the injected
        //    window (extended by one timeout: frames sent at the very end of
        //    the window time out at most one RTO later).
        let firings = assertion.evaluate(&chaos_rep.log);
        if firings.is_empty() {
            eprintln!("check: {app}: '{CHECK_ASSERTION}' did not fire under the congestion plan");
            ok = false;
        } else if !firings.iter().any(|f| f.start_cycle < horizon) {
            eprintln!(
                "check: {app}: no firing overlaps the injected fault window [0, {CHECK_FAULT_END}) \
                 (+{} cycles of timeout slack)",
                horizon - CHECK_FAULT_END
            );
            ok = false;
        }
        total_firings += firings.len();
        if !a.quiet {
            print_firings(&firings);
        }

        // 2. The fault-free twin is silent.
        let clean_firings = assertion.evaluate(&clean_rep.log);
        if !clean_firings.is_empty() {
            eprintln!(
                "check: {app}: '{CHECK_ASSERTION}' fired {} time(s) on the fault-free twin",
                clean_firings.len()
            );
            print_firings(&clean_firings);
            ok = false;
        }

        // 3. Memory stays correct under the plan, and the oracle agrees.
        if chaos.checksum != clean.checksum {
            eprintln!(
                "check: {app}: checksum diverged under congestion ({:#x} != {:#x})",
                chaos.checksum, clean.checksum
            );
            ok = false;
        }
        if !chaos.violations.is_empty() || !clean.violations.is_empty() {
            eprintln!(
                "check: {app}: {} oracle violation(s)",
                chaos.violations.len() + clean.violations.len()
            );
            ok = false;
        }

        // The archived artifact: per-app assertion verdicts plus both
        // timelines.
        let comma = if i + 1 == specs.len() { "" } else { "," };
        doc.push_str(&format!("    {{\n      \"app\": \"{app}\",\n"));
        doc.push_str(&format!(
            "      \"firings\": {},\n",
            firings_json(&firings, 6).trim_start()
        ));
        doc.push_str(&format!(
            "      \"clean_firings\": {},\n",
            firings_json(&clean_firings, 6).trim_start()
        ));
        doc.push_str(&format!(
            "      \"congested\": {},\n",
            chaos_rep.to_json_indented(6).trim_start()
        ));
        doc.push_str(&format!(
            "      \"clean\": {}\n    }}{comma}\n",
            clean_rep.to_json_indented(6).trim_start()
        ));
        chaos_jsons.push(chaos_rep.to_json());
    }
    doc.push_str("  ]\n}\n");

    // 4. Byte-determinism: a fresh rerun of the same grid must reproduce the
    //    artifact exactly (time-series jobs never hit the cache, so this
    //    genuinely re-simulates).
    let records2 = engine(a).silent().run(&build_grid());
    for (i, (app, _)) in specs.iter().enumerate() {
        let rerun = TimelineReport::from_run(
            &format!("{app}/I+P+D/congested"),
            &records2[2 * i].result,
            a.top_k,
        )
        .expect("ts log");
        if rerun.to_json() != chaos_jsons[i] {
            eprintln!("check: {app}: timeline JSON differs between identical runs");
            ok = false;
        }
    }

    if let Some(dir) = &a.out_dir {
        write_file(&dir.join("timeline_report.json"), &doc);
        if !a.quiet {
            println!("wrote timeline_report.json to {}", dir.display());
        }
    }
    if ok {
        println!(
            "timeline check passed: '{CHECK_ASSERTION}' fired {total_firings} time(s) inside \
             the fault window across {} workloads, clean twins silent, export deterministic",
            specs.len()
        );
    }
    ok
}

fn main() {
    let a = parse_args();
    let ok = if a.check { check(&a) } else { report(&a) };
    if !ok {
        std::process::exit(1);
    }
}
