//! `chaos_report` — fault-injection sweep and CI chaos gate.
//!
//! Two modes:
//!
//! * **Sweep** (default): runs the tier-1 workloads under one protocol mode
//!   at a series of frame-drop rates, through the parallel engine, and
//!   prints per-run retry histograms and overhead-cycle inflation relative
//!   to the fault-free baseline. The rate-0 column doubles as the baseline:
//!   a zero-rate plan is inactive, so those runs take the legacy send path.
//! * **`--check`** (the CI gate): every tier-1 workload under every
//!   protocol mode, once under a fixed chaos plan (drop + duplicate +
//!   corrupt + ack loss + a latency spike that forces reordering) with the
//!   verification oracle attached, and once fault-free. The gate fails —
//!   exit code 1 — unless every faulted run (a) finishes with a checksum
//!   byte-equal to its fault-free twin, (b) reports zero oracle violations,
//!   and (c) stays within the bounded-degradation budget of 3x the
//!   fault-free total cycles at the 1% drop rate. It also fails if the plan
//!   injected no faults or triggered no retransmissions anywhere, which
//!   would mean the gate stopped exercising the transport.
//!
//! ```sh
//! # Sweep drop rates 0/5/10/20 permille under I+P+D.
//! cargo run --release --bin chaos_report
//!
//! # Sweep custom rates under AURC+P with 8 workers.
//! cargo run --release --bin chaos_report -- --mode AURC+P --rates 0,2,50 --jobs 8
//!
//! # CI gate: 7 tier-1 workloads x 8 modes, faulted vs fault-free.
//! cargo run --release --bin chaos_report -- --check --quiet
//! ```

use ncp2::prelude::*;
use ncp2_bench::engine::{tier1_workloads, Engine, Grid, Job, RunRecord};
use ncp2_bench::harness::{protocol_from_label, ALL_MODE_LABELS};
use ncp2_fault::{FaultPlan, LinkWindow};

/// Fault seed for both modes; fixed so runs are reproducible by default.
const CHAOS_SEED: u64 = 0xC4A05;

/// Faulted runs must finish within this multiple of their fault-free twin's
/// total cycles at the `--check` drop rate (1%).
const MAX_SLOWDOWN: f64 = 3.0;

struct Args {
    mode: String,
    rates: Vec<u16>,
    nprocs: usize,
    seed: u64,
    jobs: Option<usize>,
    no_cache: bool,
    quiet: bool,
    prof: bool,
    check: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: chaos_report [--mode LABEL] [--rates P,P,...] [--nprocs N] [--seed S]\n\
         \x20                  [--jobs N] [--no-cache] [--quiet] [--prof] [--check]\n\
         rates are frame-drop permille (0..=500); modes: {}",
        ALL_MODE_LABELS.join(", ")
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut a = Args {
        mode: "I+P+D".into(),
        rates: vec![0, 5, 10, 20],
        nprocs: 4,
        seed: CHAOS_SEED,
        jobs: None,
        no_cache: false,
        quiet: false,
        prof: false,
        check: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--mode" => a.mode = args.next().unwrap_or_else(|| usage()),
            "--rates" => {
                let spec = args.next().unwrap_or_else(|| usage());
                a.rates = spec
                    .split(',')
                    .map(|s| s.trim().parse().unwrap_or_else(|_| usage()))
                    .collect();
                if a.rates.is_empty() || a.rates.iter().any(|&r| r > 500) {
                    usage();
                }
            }
            "--nprocs" => {
                a.nprocs = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--seed" => {
                a.seed = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--jobs" => {
                a.jobs = Some(
                    args.next()
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--no-cache" => a.no_cache = true,
            "--quiet" => a.quiet = true,
            "--prof" => a.prof = true,
            "--check" => a.check = true,
            _ => usage(),
        }
    }
    a
}

fn engine(a: &Args) -> Engine {
    let mut e = Engine::new();
    if let Some(jobs) = a.jobs {
        e = e.with_jobs(jobs);
    }
    if a.no_cache {
        e = e.no_cache();
    }
    if a.quiet {
        e = e.silent();
    }
    if a.prof {
        e = e.with_prof();
    }
    e
}

/// The sweep plan: pure frame loss at `rate` permille. Rate 0 is inactive
/// (legacy path) and serves as the fault-free baseline column.
fn drop_plan(seed: u64, rate: u16) -> FaultPlan {
    FaultPlan {
        seed,
        drop_permille: rate,
        ..FaultPlan::none()
    }
}

/// The `--check` plan: 1% drop plus duplicates, detected corruption, ack
/// loss, and one latency spike large enough to overtake in-flight frames
/// (genuine reordering) on the busiest link.
fn chaos_plan(seed: u64) -> FaultPlan {
    FaultPlan {
        seed,
        drop_permille: 10,
        dup_permille: 5,
        corrupt_permille: 5,
        ack_faults: true,
        spikes: vec![LinkWindow {
            src: 0,
            dst: 1,
            start: 0,
            end: 500_000,
            extra: 3_000,
        }],
        ..FaultPlan::none()
    }
}

fn retx_histogram(r: &RunRecord) -> String {
    let counts = r.result.fault.retx_by_attempt;
    let body = counts
        .iter()
        .map(|c| c.to_string())
        .collect::<Vec<_>>()
        .join(" ");
    format!("[{body}]")
}

/// Sweep mode: apps x drop rates under one protocol, inflation vs rate 0.
fn sweep(a: &Args) -> bool {
    let protocol = protocol_from_label(&a.mode).unwrap_or_else(|| {
        eprintln!(
            "unknown mode '{}'; known: {}",
            a.mode,
            ALL_MODE_LABELS.join(", ")
        );
        std::process::exit(2);
    });
    let params = SysParams::default().with_nprocs(a.nprocs);
    let mut grid = Grid::new();
    for (name, spec) in tier1_workloads() {
        for &rate in &a.rates {
            grid.add(Job {
                label: format!("{name}/{}/drop{rate}", a.mode),
                params: params.clone(),
                protocol,
                workload: spec.clone(),
                obs: false,
                fault: drop_plan(a.seed, rate),
                verify: false,
                timeseries: false,
            });
        }
    }
    let records = engine(a).run(&grid);

    println!(
        "chaos sweep: mode {}, nprocs {}, seed {:#x}, rates {:?} permille",
        a.mode, a.nprocs, a.seed, a.rates
    );
    println!(
        "{:<8} {:>5}  {:>14} {:>8} {:>8} {:>6} {:>6}  retx_by_attempt",
        "app", "rate", "cycles", "infl", "retx", "drops", "shed"
    );
    let mut ok = true;
    let per_app = a.rates.len();
    for (app_idx, chunk) in records.chunks(per_app).enumerate() {
        // Records come back in grid order: rates grouped per app, and the
        // first rate in the default list (0) is the baseline. When the user
        // passes a custom rate list, inflation is relative to its first entry.
        let base_cycles = chunk[0].result.total_cycles.max(1);
        let (app_name, _) = tier1_workloads()[app_idx].clone();
        for (rate, rec) in a.rates.iter().zip(chunk) {
            let f = &rec.result.fault;
            println!(
                "{:<8} {:>4}‰  {:>14} {:>7.3}x {:>8} {:>6} {:>6}  {}",
                app_name,
                rate,
                rec.result.total_cycles,
                rec.result.total_cycles as f64 / base_cycles as f64,
                f.retransmits,
                f.drops_injected,
                f.prefetch_shed,
                retx_histogram(rec)
            );
            if !rec.result.violations.is_empty() {
                eprintln!(
                    "{}: {} oracle violation(s)",
                    rec.result.protocol,
                    rec.result.violations.len()
                );
                ok = false;
            }
        }
    }
    ok
}

/// `--check` mode: the CI chaos gate (see the module docs for the criteria).
fn check(a: &Args) -> bool {
    let params = SysParams::default().with_nprocs(a.nprocs);
    let plan = chaos_plan(a.seed);
    let mut grid = Grid::new();
    let mut names = Vec::new();
    for label in ALL_MODE_LABELS {
        // invariant: every ALL_MODE_LABELS entry is a known label.
        let protocol = protocol_from_label(label).expect("known mode label");
        for (name, spec) in tier1_workloads() {
            names.push(format!("{name}/{label}"));
            // Faulted run first, fault-free twin second: the pairing below
            // walks the records two at a time in grid order.
            grid.add(Job {
                label: format!("{name}/{label}/chaos"),
                params: params.clone(),
                protocol,
                workload: spec.clone(),
                obs: false,
                fault: plan.clone(),
                verify: true,
                timeseries: true,
            });
            grid.add(Job {
                label: format!("{name}/{label}/clean"),
                params: params.clone(),
                protocol,
                workload: spec,
                obs: false,
                fault: FaultPlan::none(),
                verify: true,
                timeseries: true,
            });
        }
    }
    let records = engine(a).run(&grid);

    let mut ok = true;
    let assertions = ncp2_obs::default_check_assertions();
    let (mut injected, mut retransmits, mut firings) = (0u64, 0u64, 0usize);
    for (name, pair) in names.iter().zip(records.chunks(2)) {
        let (chaos, clean) = (&pair[0].result, &pair[1].result);
        injected += chaos.fault.injected();
        retransmits += chaos.fault.retransmits;
        // Window assertions: faulted runs may fire (the aggregate must,
        // below); a fault-free run has no hardened transport and must not.
        // invariant: both check jobs set `timeseries`, so both carry a log.
        let chaos_ts = chaos.ts.as_ref().expect("check jobs record a time series");
        let clean_ts = clean.ts.as_ref().expect("check jobs record a time series");
        firings += ncp2_obs::evaluate_all(&assertions, chaos_ts).len();
        for f in ncp2_obs::evaluate_all(&assertions, clean_ts) {
            eprintln!(
                "{name} (clean): assertion '{}' fired on a fault-free run \
                 (windows {}..={}, cycles {}..{})",
                f.assertion, f.first_window, f.last_window, f.start_cycle, f.end_cycle
            );
            ok = false;
        }
        if chaos.checksum != clean.checksum {
            eprintln!(
                "{name}: checksum diverged under faults ({:#x} != {:#x})",
                chaos.checksum, clean.checksum
            );
            ok = false;
        }
        for (kind, r) in [("chaos", chaos), ("clean", clean)] {
            if !r.violations.is_empty() {
                eprintln!(
                    "{name} ({kind}): {} oracle violation(s)",
                    r.violations.len()
                );
                ok = false;
            }
        }
        let slowdown = chaos.total_cycles as f64 / clean.total_cycles.max(1) as f64;
        if slowdown > MAX_SLOWDOWN {
            eprintln!(
                "{name}: degradation unbounded: {slowdown:.2}x > {MAX_SLOWDOWN}x \
                 ({} vs {} cycles)",
                chaos.total_cycles, clean.total_cycles
            );
            ok = false;
        }
        if !a.quiet {
            println!(
                "{name}: checksum ok, {:>4} retx, {:>4} injected, {slowdown:.2}x",
                chaos.fault.retransmits,
                chaos.fault.injected()
            );
        }
    }
    if injected == 0 {
        eprintln!("chaos gate injected no faults at all — the plan is not being exercised");
        ok = false;
    }
    if retransmits == 0 {
        eprintln!("chaos gate triggered no retransmissions — the transport is not being exercised");
        ok = false;
    }
    if firings == 0 {
        eprintln!(
            "chaos gate fired no window assertions anywhere — the time-series \
             recorder is not seeing the faults"
        );
        ok = false;
    }
    if ok {
        println!(
            "chaos check passed: {} runs, {injected} faults injected, {retransmits} \
             retransmissions, {firings} assertion firings (faulted runs only), \
             checksums equal, zero violations, slowdown <= {MAX_SLOWDOWN}x",
            records.len()
        );
    }
    ok
}

fn main() {
    let a = parse_args();
    let ok = if a.check { check(&a) } else { sweep(&a) };
    if !ok {
        std::process::exit(1);
    }
}
