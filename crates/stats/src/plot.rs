//! ASCII x/y plots for the parameter sweeps (Figs 13–16).

/// Renders one or more named series over a shared x axis as a fixed-size
/// ASCII chart, plus an exact numeric legend (the numbers are the data; the
/// chart is orientation).
///
/// ```
/// let s = ncp2_stats::xy_plot(
///     "Effect of Network Bandwidth",
///     "MB/s",
///     &[20.0, 50.0, 100.0],
///     &[("TM", vec![1.1, 1.0, 0.98]), ("AURC", vec![2.4, 1.4, 1.05])],
/// );
/// assert!(s.contains("AURC"));
/// assert!(s.contains("2.400"));
/// ```
///
/// # Panics
///
/// Panics if a series' length differs from the x axis length.
pub fn xy_plot(title: &str, x_label: &str, xs: &[f64], series: &[(&str, Vec<f64>)]) -> String {
    const H: usize = 16;
    const W: usize = 60;
    for (name, ys) in series {
        assert_eq!(ys.len(), xs.len(), "series {name} length mismatch");
    }
    let all: Vec<f64> = series
        .iter()
        .flat_map(|(_, ys)| ys.iter().copied())
        .collect();
    let (min, max) = all
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| {
            (lo.min(v), hi.max(v))
        });
    let span = (max - min).max(1e-12);
    let xmin = xs.first().copied().unwrap_or(0.0);
    let xmax = xs.last().copied().unwrap_or(1.0);
    let xspan = (xmax - xmin).max(1e-12);
    let mut grid = vec![vec![' '; W]; H];
    let marks = ['*', '+', 'o', 'x', '#'];
    for (si, (_, ys)) in series.iter().enumerate() {
        for (x, y) in xs.iter().zip(ys) {
            let col = (((x - xmin) / xspan) * (W - 1) as f64).round() as usize;
            let row = (((max - y) / span) * (H - 1) as f64).round() as usize;
            grid[row.min(H - 1)][col.min(W - 1)] = marks[si % marks.len()];
        }
    }
    let mut out = format!("{title}\n");
    out.push_str(&format!("{max:>9.3} ┤"));
    out.push_str(&grid[0].iter().collect::<String>());
    out.push('\n');
    for row in grid.iter().take(H).skip(1) {
        out.push_str("          │");
        out.push_str(&row.iter().collect::<String>());
        out.push('\n');
    }
    out.push_str(&format!("{min:>9.3} └{}\n", "─".repeat(W)));
    out.push_str(&format!(
        "           {xmin:<10.1}{:>width$.1} {x_label}\n",
        xmax,
        width = W - 10
    ));
    // Exact values.
    out.push_str(&format!("{:>10}", x_label));
    for x in xs {
        out.push_str(&format!(" {x:>8.1}"));
    }
    out.push('\n');
    for (si, (name, ys)) in series.iter().enumerate() {
        out.push_str(&format!("{:>8}({})", name, marks[si % marks.len()]));
        for y in ys {
            out.push_str(&format!(" {y:>8.3}"));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plot_contains_all_values() {
        let s = xy_plot("T", "x", &[1.0, 2.0], &[("a", vec![10.0, 20.0])]);
        assert!(s.contains("10.000") && s.contains("20.000"));
        assert!(s.contains('T'));
    }

    #[test]
    fn multiple_series_use_distinct_marks() {
        let s = xy_plot(
            "T",
            "x",
            &[1.0, 2.0, 3.0],
            &[("a", vec![1.0, 2.0, 3.0]), ("b", vec![3.0, 2.0, 1.0])],
        );
        assert!(s.contains('*') && s.contains('+'));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_series_panics() {
        let _ = xy_plot("T", "x", &[1.0], &[("a", vec![1.0, 2.0])]);
    }

    #[test]
    fn flat_series_does_not_divide_by_zero() {
        let s = xy_plot("T", "x", &[1.0, 2.0], &[("a", vec![5.0, 5.0])]);
        assert!(s.contains("5.000"));
    }
}
