//! # ncp2-stats — reporting for the NCP2 experiments
//!
//! Renders the quantities the paper plots: normalized execution-time bars
//! with the busy/data/synch/ipc/others split (Figs 2, 5–12), speedup curves
//! (Fig 1) and parameter-sweep series (Figs 13–16), as plain-text tables
//! and ASCII plots plus CSV for external tooling.

pub mod plot;
pub mod table;

pub use plot::xy_plot;
pub use table::{breakdown_csv, breakdown_table, normalized_bars, speedup_table};
