//! Text tables: breakdown bars, normalized comparisons, speedups.

use ncp2_sim::{Breakdown, Category};

/// Renders one row per run: normalized time and the five-way category
/// split in percent, like the stacked bars of Figs 2 and 5–10. The first
/// run is the 100% baseline.
///
/// ```
/// use ncp2_stats::breakdown_table;
/// let rows = [("Base", 1000u64, ncp2_sim::Breakdown { busy: 500, data: 300, synch: 150, ipc: 30, other: 20 }, 10.0)];
/// let s = breakdown_table(&rows);
/// assert!(s.contains("Base"));
/// assert!(s.contains("100.0"));
/// ```
pub fn breakdown_table(rows: &[(&str, u64, Breakdown, f64)]) -> String {
    let base = rows.first().map(|r| r.1).unwrap_or(1).max(1);
    let mut out = String::new();
    out.push_str(&format!(
        "{:<10} {:>8} {:>7} {:>7} {:>7} {:>7} {:>7} {:>7}\n",
        "config", "norm%", "busy%", "data%", "synch%", "ipc%", "others%", "diff%"
    ));
    for (label, cycles, b, diff_pct) in rows {
        let norm = 100.0 * *cycles as f64 / base as f64;
        out.push_str(&format!(
            "{:<10} {:>8.1} {:>7.1} {:>7.1} {:>7.1} {:>7.1} {:>7.1} {:>7.1}\n",
            label,
            norm,
            100.0 * b.fraction(Category::Busy),
            100.0 * b.fraction(Category::Data),
            100.0 * b.fraction(Category::Synch),
            100.0 * b.fraction(Category::Ipc),
            100.0 * b.fraction(Category::Other),
            diff_pct,
        ));
    }
    out
}

/// CSV form of [`breakdown_table`] for external plotting.
pub fn breakdown_csv(rows: &[(&str, u64, Breakdown, f64)]) -> String {
    let base = rows.first().map(|r| r.1).unwrap_or(1).max(1);
    let mut out = String::from("config,cycles,norm_pct,busy,data,synch,ipc,others,diff_pct\n");
    for (label, cycles, b, diff_pct) in rows {
        out.push_str(&format!(
            "{},{},{:.3},{},{},{},{},{},{:.3}\n",
            label,
            cycles,
            100.0 * *cycles as f64 / base as f64,
            b.busy,
            b.data,
            b.synch,
            b.ipc,
            b.other,
            diff_pct
        ));
    }
    out
}

/// Renders per-configuration normalized running-time bars (Figs 11–12
/// style), first entry = 100.
///
/// ```
/// let s = ncp2_stats::normalized_bars(&[("I+D", 800), ("AURC", 1000)]);
/// assert!(s.starts_with("I+D"));
/// ```
pub fn normalized_bars(rows: &[(&str, u64)]) -> String {
    let base = rows.first().map(|r| r.1).unwrap_or(1).max(1);
    let mut out = String::new();
    for (label, cycles) in rows {
        let norm = 100.0 * *cycles as f64 / base as f64;
        let width = (norm / 2.0).round().min(120.0) as usize;
        out.push_str(&format!("{label:<8} {norm:>6.1}% {}\n", "#".repeat(width)));
    }
    out
}

/// Speedup table: one row per processor count, one column per application
/// (Fig 1). `cells[i][j]` is the speedup of app `j` on `procs[i]`.
pub fn speedup_table(apps: &[&str], procs: &[usize], cells: &[Vec<f64>]) -> String {
    assert_eq!(procs.len(), cells.len(), "one row per processor count");
    let mut out = format!("{:>6}", "procs");
    for a in apps {
        out.push_str(&format!(" {a:>8}"));
    }
    out.push('\n');
    for (p, row) in procs.iter().zip(cells) {
        assert_eq!(row.len(), apps.len(), "one cell per application");
        out.push_str(&format!("{p:>6}"));
        for v in row {
            out.push_str(&format!(" {v:>8.2}"));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(busy: u64, data: u64) -> Breakdown {
        Breakdown {
            busy,
            data,
            synch: 0,
            ipc: 0,
            other: 0,
        }
    }

    #[test]
    fn breakdown_table_normalizes_to_first_row() {
        let rows = [
            ("Base", 1000, b(600, 400), 5.0),
            ("I+D", 500, b(400, 100), 1.0),
        ];
        let s = breakdown_table(&rows);
        assert!(s.contains("100.0"), "baseline row: {s}");
        assert!(s.contains("50.0"), "improved row: {s}");
        assert!(s.lines().count() == 3);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let rows = [("X", 10, b(10, 0), 0.0)];
        let csv = breakdown_csv(&rows);
        assert!(csv.starts_with("config,"));
        assert_eq!(csv.lines().count(), 2);
        assert!(csv.contains("X,10,100.000"));
    }

    #[test]
    fn bars_scale_with_time() {
        let s = normalized_bars(&[("A", 100), ("B", 200)]);
        let lines: Vec<&str> = s.lines().collect();
        let hashes = |l: &str| l.matches('#').count();
        assert_eq!(hashes(lines[0]), 50);
        assert_eq!(hashes(lines[1]), 100);
    }

    #[test]
    fn speedup_table_shape() {
        let s = speedup_table(
            &["TSP", "Ocean"],
            &[2, 4],
            &[vec![1.9, 1.2], vec![3.5, 1.5]],
        );
        assert_eq!(s.lines().count(), 3);
        assert!(s.contains("TSP") && s.contains("3.50"));
    }

    #[test]
    #[should_panic(expected = "one row per processor count")]
    fn speedup_table_validates_dimensions() {
        let _ = speedup_table(&["A"], &[2, 4], &[vec![1.0]]);
    }
}
