//! Offline stand-in for the `serde` crate.
//!
//! This workspace annotates its stats/config/protocol types with
//! `#[derive(Serialize, Deserialize)]` to mark them as serialization-ready,
//! but nothing in the tree actually serializes (there is no `serde_json` or
//! similar consumer). The build environment has no network access to
//! crates.io, so this tiny proc-macro crate stands in for the real `serde`:
//! both derives expand to nothing. Swapping back to the real crate is a
//! one-line change in the workspace `Cargo.toml` and requires no source
//! edits.

use proc_macro::TokenStream;

/// No-op stand-in for `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
