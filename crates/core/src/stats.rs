//! Per-run statistics: breakdowns plus the auxiliary counters the paper
//! quotes in its prose (diff-operation time, useless prefetch rates, ...).

use ncp2_net::TrafficStats;
use ncp2_sim::{Breakdown, Cycles};
use serde::{Deserialize, Serialize};

/// Counters accumulated by one node over a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeStats {
    /// Execution-time breakdown of the computation processor.
    pub breakdown: Breakdown,
    /// Cycles spent twinning (processor or controller).
    pub twin_cycles: Cycles,
    /// Cycles spent creating diffs (processor, controller or DMA).
    pub diff_create_cycles: Cycles,
    /// Cycles spent applying diffs (processor, controller or DMA).
    pub diff_apply_cycles: Cycles,
    /// Subset of twin/diff cycles that ran on the **computation processor**
    /// (the paper's "% of execution time spent on diff-related operations").
    pub diff_proc_cycles: Cycles,
    /// Cycles the protocol controller's core/DMA engine was busy.
    pub controller_busy: Cycles,
    /// Read/write access faults taken.
    pub faults: u64,
    /// Write faults (twin creations) taken.
    pub write_faults: u64,
    /// Lock acquires completed.
    pub lock_acquires: u64,
    /// Barrier episodes completed.
    pub barriers: u64,
    /// Pages invalidated by write notices.
    pub invalidations: u64,
    /// Diffs created on behalf of this node's writes.
    pub diffs_created: u64,
    /// Diffs applied to this node's pages.
    pub diffs_applied: u64,
    /// Bytes of diff data created on behalf of this node's writes.
    pub diff_bytes_created: u64,
    /// Bytes of diff data applied to this node's pages.
    pub diff_bytes_applied: u64,
    /// Whole-page fetches (TreadMarks overflow path or AURC).
    pub page_fetches: u64,
    /// Prefetches issued.
    pub prefetches: u64,
    /// Prefetched pages invalidated again before any use.
    pub useless_prefetches: u64,
    /// Faults that found a prefetch in flight and waited for it.
    pub prefetch_joins: u64,
    /// Faults avoided entirely because a prefetch had completed.
    pub prefetch_hits: u64,
    /// Prefetch replies that filled a page (completed prefetches).
    pub prefetch_fills: u64,
    /// AURC automatic-update messages emitted.
    pub au_updates: u64,
    /// AURC write-cache combining hits.
    pub au_combined: u64,
}

impl NodeStats {
    /// Fraction of this node's execution time spent in processor-side
    /// diff-related operations (twinning + diff creation/application) — the
    /// number printed on top of each bar in Figure 2.
    pub fn diff_pct(&self) -> f64 {
        let t = self.breakdown.total();
        if t == 0 {
            0.0
        } else {
            100.0 * self.diff_proc_cycles as f64 / t as f64
        }
    }
}

/// Number of retransmit-histogram buckets: bucket `i < RETX_BUCKETS - 1`
/// counts retransmissions at attempt `i + 1`; the last bucket collects the
/// tail.
pub const RETX_BUCKETS: usize = 8;

/// Run-global counters for the hardened transport and fault injection.
/// Always present on [`RunResult`] (so result encodings have one shape);
/// all-zero unless a fault plan was attached to a `fault`-feature build.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Data-frame transmissions, including retransmissions.
    pub frames_sent: u64,
    /// Acknowledgement frames injected.
    pub acks_sent: u64,
    /// Retransmissions triggered by ack timeouts.
    pub retransmits: u64,
    /// Frames the fault plan dropped in flight.
    pub drops_injected: u64,
    /// Frames the fault plan corrupted (detected and discarded on receipt).
    pub corrupts_injected: u64,
    /// Extra frame copies the fault plan injected.
    pub dups_injected: u64,
    /// Frames discarded by receive-side duplicate suppression.
    pub dup_frames_dropped: u64,
    /// In-flight frames drained undelivered at end of run (their logical
    /// messages had already been delivered by an earlier attempt).
    pub frames_drained: u64,
    /// Prefetch commands shed by the degradation policy.
    pub prefetch_shed: u64,
    /// Histogram of retransmissions by attempt number (see [`RETX_BUCKETS`]).
    pub retx_by_attempt: [u64; RETX_BUCKETS],
}

impl FaultStats {
    /// Total injected faults of all kinds.
    pub fn injected(&self) -> u64 {
        self.drops_injected + self.corrupts_injected + self.dups_injected
    }
}

/// Run-global counters for the open-loop service workload (`ncp2-svc`),
/// accumulated by the back end from `ProcOp::Svc` lifecycle markers.
/// `None` on [`RunResult`] unless the workload issued at least one service
/// operation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SvcStats {
    /// Get requests completed.
    pub gets: u64,
    /// Put requests completed.
    pub puts: u64,
    /// Session requests completed.
    pub sessions: u64,
    /// Requests dequeued for service.
    pub dequeues: u64,
    /// Peak instantaneous backlog observed at any node (arrived but not
    /// yet served, sampled at each dequeue).
    pub queue_peak: u64,
    /// Open-loop response times (completion − arrival, queueing included),
    /// in simulated cycles.
    pub response: crate::hist::LogHistogram,
}

impl SvcStats {
    /// Total requests completed across all classes.
    pub fn completed(&self) -> u64 {
        self.gets + self.puts + self.sessions
    }
}

/// The result of one simulation run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Protocol label ("Base", "I+D", "AURC", ...).
    pub protocol: String,
    /// Number of processors simulated.
    pub nprocs: usize,
    /// End-to-end running time (max over processors), cycles.
    pub total_cycles: Cycles,
    /// Per-node counters.
    pub nodes: Vec<NodeStats>,
    /// Network traffic counters.
    pub net: TrafficStats,
    /// Workload-defined checksum (compared against a sequential run).
    pub checksum: u64,
    /// Protocol event trace (empty unless `SysParams::trace` was set).
    pub trace: Vec<crate::trace::TraceEvent>,
    /// Invariant violations reported by an attached observer (always empty
    /// unless `ncp2-core` is built with the `verify` feature and an observer
    /// was attached via `Simulation::attach_observer`).
    pub violations: Vec<crate::observe::Violation>,
    /// Span/flight/engine timeline (`None` unless `ncp2-core` is built with
    /// the `obs` feature and recording was enabled via
    /// `Simulation::enable_obs`).
    pub obs: Option<crate::span::ObsLog>,
    /// Transport/fault-injection counters (all-zero unless a fault plan was
    /// attached to a `fault`-feature build).
    pub fault: FaultStats,
    /// Windowed time series (`None` unless `ncp2-core` is built with the
    /// `obs` feature and recording was enabled via
    /// `Simulation::enable_timeseries`).
    pub ts: Option<crate::timeseries::TsLog>,
    /// Open-loop service counters and response-time histogram (`None`
    /// unless the workload issued `ProcOp::Svc` lifecycle markers).
    pub svc: Option<SvcStats>,
}

impl RunResult {
    /// Breakdown summed over all processors.
    pub fn aggregate(&self) -> Breakdown {
        self.nodes.iter().map(|n| n.breakdown).sum()
    }

    /// Mean over processors of the diff-operation percentage.
    pub fn diff_pct(&self) -> f64 {
        if self.nodes.is_empty() {
            0.0
        } else {
            self.nodes.iter().map(|n| n.diff_pct()).sum::<f64>() / self.nodes.len() as f64
        }
    }

    /// Total diff-related cycles regardless of which engine ran them
    /// (processor, controller core, or DMA).
    pub fn diff_total_cycles(&self) -> Cycles {
        self.nodes
            .iter()
            .map(|n| n.twin_cycles + n.diff_create_cycles + n.diff_apply_cycles)
            .sum()
    }

    /// Prefetches issued / useless across all nodes.
    pub fn prefetch_totals(&self) -> (u64, u64) {
        let issued = self.nodes.iter().map(|n| n.prefetches).sum();
        let useless = self.nodes.iter().map(|n| n.useless_prefetches).sum();
        (issued, useless)
    }

    /// Running time of `self` relative to `base` in percent (the paper's
    /// normalized bars: 100 = same, lower = faster). `None` when the
    /// baseline ran for zero cycles (degenerate config).
    pub fn normalized_to(&self, base: &RunResult) -> Option<f64> {
        (base.total_cycles > 0).then(|| 100.0 * self.total_cycles as f64 / base.total_cycles as f64)
    }

    /// Speedup of this run over a sequential run taking `seq_cycles`.
    /// `None` when this run took zero cycles (degenerate config).
    pub fn speedup_over(&self, seq_cycles: Cycles) -> Option<f64> {
        (self.total_cycles > 0).then(|| seq_cycles as f64 / self.total_cycles as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncp2_sim::Category;

    fn node(busy: u64, diff: u64) -> NodeStats {
        let mut n = NodeStats::default();
        n.breakdown.add(Category::Busy, busy);
        n.diff_proc_cycles = diff;
        n
    }

    fn run(total: u64, nodes: Vec<NodeStats>) -> RunResult {
        RunResult {
            protocol: "Base".into(),
            nprocs: nodes.len(),
            total_cycles: total,
            nodes,
            net: TrafficStats::default(),
            checksum: 0,
            trace: Vec::new(),
            violations: Vec::new(),
            obs: None,
            fault: FaultStats::default(),
            ts: None,
            svc: None,
        }
    }

    #[test]
    fn diff_pct_is_relative_to_node_time() {
        let n = node(200, 50);
        assert!((n.diff_pct() - 25.0).abs() < 1e-12);
        assert_eq!(NodeStats::default().diff_pct(), 0.0);
    }

    #[test]
    fn normalization_and_speedup() {
        let base = run(1000, vec![node(100, 0)]);
        let fast = run(600, vec![node(100, 0)]);
        assert!((fast.normalized_to(&base).unwrap() - 60.0).abs() < 1e-12);
        assert!((fast.speedup_over(6000).unwrap() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_runs_yield_none_not_panic() {
        let zero = run(0, vec![node(0, 0)]);
        let ok = run(10, vec![node(10, 0)]);
        assert_eq!(ok.normalized_to(&zero), None);
        assert_eq!(zero.speedup_over(100), None);
        assert!(ok.normalized_to(&ok).is_some());
    }

    #[test]
    fn aggregation_sums_nodes() {
        let r = run(10, vec![node(5, 1), node(7, 2)]);
        assert_eq!(r.aggregate().busy, 12);
        assert!((r.diff_pct() - (20.0 + 2.0 / 7.0 * 100.0) / 2.0).abs() < 1e-9);
    }

    #[test]
    fn prefetch_totals_sum() {
        let a = NodeStats {
            prefetches: 10,
            useless_prefetches: 9,
            ..NodeStats::default()
        };
        let b = NodeStats {
            prefetches: 5,
            ..NodeStats::default()
        };
        let r = run(1, vec![a, b]);
        assert_eq!(r.prefetch_totals(), (15, 9));
    }

    #[test]
    fn svc_stats_sum_classes() {
        let mut s = SvcStats {
            gets: 10,
            puts: 3,
            sessions: 2,
            ..Default::default()
        };
        s.response.observe(100);
        assert_eq!(s.completed(), 15);
        assert_eq!(s.response.count(), 1);
    }
}
