//! Inter-node protocol messages and their wire sizes.

use ncp2_sim::ops::{BarrierId, LockId};
use ncp2_sim::Cycles;

use crate::diff::DiffList;
use crate::interval::{AnnList, IntervalAnnouncement, IvlList};
use crate::page::{PageBuf, PageId};
use crate::vtime::VectorTime;

/// Fixed per-message header bytes (type, source, destination, sequencing).
pub const MSG_HEADER_BYTES: u64 = 16;

/// One protocol message, delivered by the network as an event.
#[derive(Debug, Clone)]
pub enum Msg {
    /// Acquire request, sent to the lock's manager node.
    LockReq {
        /// Lock being acquired.
        lock: LockId,
        /// Requesting processor.
        acquirer: usize,
        /// Requester's vector time (for write-notice computation).
        vt: VectorTime,
    },
    /// Manager-to-last-owner forward of an acquire request.
    LockForward {
        /// Lock being acquired.
        lock: LockId,
        /// Requesting processor.
        acquirer: usize,
        /// Requester's vector time.
        vt: VectorTime,
    },
    /// Ownership grant carrying the write notices the acquirer is missing.
    LockGrant {
        /// Lock granted.
        lock: LockId,
        /// Intervals (write notices) the acquirer has not seen.
        anns: AnnList,
        /// AURC: time by which all updates the releaser flushed toward the
        /// acquirer will have arrived (0 for TreadMarks).
        update_horizon: Cycles,
    },
    /// Request for the diffs of one page from one writer.
    DiffReq {
        /// Page whose diffs are needed.
        page: PageId,
        /// The writer's interval ids being requested.
        intervals: IvlList,
        /// Requesting processor.
        requester: usize,
        /// Requester's vector time. A writer may substitute a whole page for
        /// the diffs only when its own vector time covers this one —
        /// otherwise the copy could clobber concurrent intervals the
        /// requester has already applied.
        requester_vt: VectorTime,
        /// Whether this is a (low-priority) prefetch.
        prefetch: bool,
        /// Whether the requester wants the whole page instead of diffs
        /// (many accumulated notices).
        want_page: bool,
    },
    /// Diffs (or a whole page) coming back from a writer.
    DiffReply {
        /// Page the reply covers.
        page: PageId,
        /// The requested diffs that were available.
        diffs: DiffList,
        /// Full page contents plus the writer's vector time, when the writer
        /// chose (or was asked) to ship the page.
        full_page: Option<(PageBuf, VectorTime)>,
        /// Echo of the request's prefetch flag.
        prefetch: bool,
    },
    /// Barrier arrival, sent to the barrier manager.
    BarrierArrive {
        /// Barrier id.
        barrier: BarrierId,
        /// Arriving processor.
        from: usize,
        /// Its vector time after closing its interval.
        vt: VectorTime,
        /// Intervals the manager may not have seen.
        anns: AnnList,
        /// AURC: per-destination arrival horizon of this node's flushed
        /// updates (empty for TreadMarks).
        horizons: Vec<Cycles>,
    },
    /// Barrier release broadcast.
    BarrierRelease {
        /// Barrier id.
        barrier: BarrierId,
        /// Merged vector time of all participants.
        vt: VectorTime,
        /// All intervals merged at the manager. The release is an `n`-way
        /// broadcast of the same set; sharing it keeps the barrier's host
        /// cost O(n) instead of O(n²) announcement clones.
        anns: std::sync::Arc<AnnList>,
        /// AURC: time by which all updates destined to the receiver have
        /// arrived (0 for TreadMarks).
        update_horizon: Cycles,
    },
    /// AURC automatic update for one write-cache line (timing only; data
    /// lives in the master copy).
    AurcUpdate {
        /// Page the update belongs to.
        page: PageId,
        /// Source node.
        from: usize,
    },
    /// AURC page fetch request, sent to the page's home.
    AurcPageReq {
        /// Page to fetch.
        page: PageId,
        /// Requesting processor.
        requester: usize,
        /// Whether this is a (low-priority) prefetch.
        prefetch: bool,
    },
    /// AURC page fetch reply.
    AurcPageReply {
        /// Page fetched.
        page: PageId,
        /// Echo of the request's prefetch flag.
        prefetch: bool,
    },
}

impl Msg {
    /// Wire size in bytes, used for network serialization and congestion.
    pub fn bytes(&self, page_bytes: u64, page_words: u64) -> u64 {
        let anns_bytes =
            |anns: &[IntervalAnnouncement]| anns.iter().map(|a| a.encoded_bytes()).sum::<u64>();
        MSG_HEADER_BYTES
            + match self {
                Msg::LockReq { vt, .. } | Msg::LockForward { vt, .. } => 4 + 4 * vt.len() as u64,
                Msg::LockGrant { anns, .. } => 8 + anns_bytes(anns),
                Msg::DiffReq {
                    intervals,
                    requester_vt,
                    ..
                } => 8 + 8 * intervals.len() as u64 + 4 * requester_vt.len() as u64,
                Msg::DiffReply {
                    diffs, full_page, ..
                } => {
                    let d: u64 = diffs.iter().map(|d| d.encoded_bytes(page_words)).sum();
                    let p = full_page.as_ref().map_or(0, |_| page_bytes + 8);
                    d + p
                }
                Msg::BarrierArrive {
                    vt, anns, horizons, ..
                } => 4 + 4 * vt.len() as u64 + anns_bytes(anns) + 8 * horizons.len() as u64,
                Msg::BarrierRelease { vt, anns, .. } => 12 + 4 * vt.len() as u64 + anns_bytes(anns),
                Msg::AurcUpdate { .. } => 32, // one combined write-cache line
                Msg::AurcPageReq { .. } => 8,
                Msg::AurcPageReply { .. } => page_bytes + 8,
            }
    }

    /// Whether the message belongs to a prefetch transaction (scheduled at
    /// low priority, per the controller's command priorities).
    pub fn is_prefetch(&self) -> bool {
        matches!(
            self,
            Msg::DiffReq { prefetch: true, .. }
                | Msg::DiffReply { prefetch: true, .. }
                | Msg::AurcPageReq { prefetch: true, .. }
                | Msg::AurcPageReply { prefetch: true, .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_scale_with_content() {
        let vt = VectorTime::new(16);
        let small = Msg::LockReq {
            lock: 0,
            acquirer: 1,
            vt: vt.clone(),
        };
        assert_eq!(small.bytes(4096, 1024), 16 + 4 + 64);

        let ann = IntervalAnnouncement {
            owner: 0,
            id: 1,
            vt: vt.clone(),
            pages: vec![1, 2],
        };
        let mut anns = AnnList::new();
        anns.push(ann);
        let grant = Msg::LockGrant {
            lock: 0,
            anns,
            update_horizon: 0,
        };
        assert_eq!(grant.bytes(4096, 1024), 16 + 8 + 24 + 16);

        let reply = Msg::DiffReply {
            page: 0,
            diffs: DiffList::new(),
            full_page: Some((PageBuf::new(4096), vt)),
            prefetch: false,
        };
        assert_eq!(reply.bytes(4096, 1024), 16 + 4096 + 8);
    }

    #[test]
    fn prefetch_flag_detected() {
        let vt = VectorTime::new(4);
        let req = Msg::DiffReq {
            page: 0,
            intervals: IvlList::new(),
            requester: 0,
            requester_vt: vt.clone(),
            prefetch: true,
            want_page: false,
        };
        assert!(req.is_prefetch());
        let req2 = Msg::DiffReq {
            page: 0,
            intervals: IvlList::new(),
            requester: 0,
            requester_vt: vt,
            prefetch: false,
            want_page: false,
        };
        assert!(!req2.is_prefetch());
        assert!(Msg::AurcPageReq {
            page: 0,
            requester: 0,
            prefetch: true
        }
        .is_prefetch());
        assert!(!Msg::AurcUpdate { page: 0, from: 0 }.is_prefetch());
    }

    #[test]
    fn update_message_is_one_line() {
        let u = Msg::AurcUpdate { page: 3, from: 1 };
        assert_eq!(u.bytes(4096, 1024), 48);
    }
}
