//! Per-page dirty-word bit vectors.
//!
//! The protocol controller "keeps a record (in the controller's memory) of
//! all the modified words in a page ... in the form of a bit vector, where
//! each bit represents a word of data" (§3.1). The custom DMA engine scans
//! this vector to generate and apply diffs.

/// A bit vector with one bit per 4-byte word of a page (1024 bits for the
/// default 4-KB page).
///
/// ```
/// use ncp2_core::bitvec::DirtyVec;
/// let mut v = DirtyVec::new(1024);
/// v.set(7);
/// v.set(1000);
/// assert_eq!(v.count(), 2);
/// assert_eq!(v.iter_set().collect::<Vec<_>>(), vec![7, 1000]);
/// v.clear();
/// assert!(v.is_clean());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirtyVec {
    bits: Vec<u64>,
    words: usize,
    count: u32,
}

impl DirtyVec {
    /// Creates an all-clean vector covering `words` words.
    pub fn new(words: usize) -> Self {
        DirtyVec {
            bits: vec![0; words.div_ceil(64)],
            words,
            count: 0,
        }
    }

    /// Number of words this vector covers.
    pub fn words(&self) -> usize {
        self.words
    }

    /// Marks word `idx` dirty.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range: the snooping hardware only raises
    /// word indices inside the faulting page, so an out-of-range index is a
    /// protocol bug, never a recoverable state.
    pub fn set(&mut self, idx: usize) {
        assert!(idx < self.words, "word index {idx} out of range");
        let (w, b) = (idx / 64, idx % 64);
        // invariant: idx < words asserted above, so w < bits.len()
        if self.bits[w] & (1 << b) == 0 {
            // invariant: same guard as the test above
            self.bits[w] |= 1 << b;
            self.count += 1;
        }
    }

    /// Whether word `idx` is dirty (out-of-range indices are clean).
    pub fn test(&self, idx: usize) -> bool {
        // invariant: short-circuit keeps idx / 64 inside bits
        idx < self.words && self.bits[idx / 64] & (1 << (idx % 64)) != 0
    }

    /// Number of dirty words.
    pub fn count(&self) -> u32 {
        self.count
    }

    /// Whether no word is dirty.
    pub fn is_clean(&self) -> bool {
        self.count == 0
    }

    /// Resets every bit (diff generation "resets all the bits in the
    /// vector", §3.1).
    pub fn clear(&mut self) {
        self.bits.fill(0);
        self.count = 0;
    }

    /// Iterates over dirty word indices in increasing order.
    pub fn iter_set(&self) -> impl Iterator<Item = usize> + '_ {
        self.bits.iter().enumerate().flat_map(move |(w, &word)| {
            let mut word = word;
            std::iter::from_fn(move || {
                if word == 0 {
                    None
                } else {
                    let b = word.trailing_zeros() as usize;
                    word &= word - 1;
                    Some(w * 64 + b)
                }
            })
        })
    }

    /// Encoded size in bytes when shipped inside a diff (one bit per word).
    pub fn encoded_bytes(&self) -> u64 {
        self.words.div_ceil(8) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_is_idempotent() {
        let mut v = DirtyVec::new(128);
        v.set(5);
        v.set(5);
        assert_eq!(v.count(), 1);
    }

    #[test]
    fn iter_matches_test() {
        let mut v = DirtyVec::new(1024);
        let idxs = [0, 1, 63, 64, 65, 511, 1023];
        for &i in &idxs {
            v.set(i);
        }
        assert_eq!(v.iter_set().collect::<Vec<_>>(), idxs.to_vec());
        for i in 0..1024 {
            assert_eq!(v.test(i), idxs.contains(&i));
        }
    }

    #[test]
    fn clear_resets_everything() {
        let mut v = DirtyVec::new(64);
        for i in 0..64 {
            v.set(i);
        }
        assert_eq!(v.count(), 64);
        v.clear();
        assert!(v.is_clean());
        assert_eq!(v.iter_set().count(), 0);
    }

    #[test]
    fn encoded_size() {
        assert_eq!(DirtyVec::new(1024).encoded_bytes(), 128);
        assert_eq!(DirtyVec::new(100).encoded_bytes(), 13);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_set_panics() {
        DirtyVec::new(8).set(8);
    }
}
