//! Windowed time-series telemetry over **simulated cycles**.
//!
//! The aggregate counters in [`NodeStats`](crate::NodeStats) and
//! [`FaultStats`](crate::FaultStats) answer *how much* — this module answers
//! *when*. A [`TsRecorder`] slices the run into fixed-width windows of
//! simulated time and accumulates, per window:
//!
//! * **counters** ([`TsCounter`]) — deltas charged into the window where the
//!   triggering event happened (page fetches, diffs created/applied and their
//!   byte volume, invalidations, lock acquires, barrier releases, prefetch
//!   issue/fill/shed, retransmits, frames, messages and message bytes);
//! * **gauges** ([`TsGauge`]) — the maximum instantaneous value observed at
//!   any sample point inside the window (event-queue depth, in-flight
//!   transport frames, lock wait-queue length, barrier wait population);
//! * **controller occupancy** — busy cycles of each node's protocol
//!   controller, clipped across window boundaries so a span contributes to
//!   every window it overlaps;
//! * **per-link series** — retransmits and peak in-flight frames per
//!   directed `(src, dst)` link;
//! * **hot-spot attribution** — per-page transfer/diff-byte/invalidation
//!   totals and per-lock wait-cycle/acquire/owner-migration totals.
//!
//! Sampling is **charge-driven, not clock-driven**: the recorder never
//! schedules events of its own, it is only poked from the same call sites
//! that bump the end-of-run aggregates. That makes it inert by construction
//! (no simulated timing changes) and gives the conservation law the test
//! suite holds it to: for every counter, the sum of window deltas equals the
//! final aggregate exactly, at any window width.
//!
//! **Window model.** The width is either fixed ([`SysParams::ts_window`]
//! &gt; 0) or auto-picked: the recorder starts at [`TS_BASE_WIDTH`] and, when
//! an event lands past window [`TS_MAX_WINDOWS`], merges adjacent window
//! pairs and doubles the width. Window `i` at width `w` covers exactly the
//! half-open cycle range `[i*w, (i+1)*w)`, so a pairwise merge at `2w` is
//! exact: counters/occupancy/link-retransmits add, gauges/link-inflight take
//! the max. Totals are therefore invariant to the width the run ends at.
//!
//! The types here are always compiled (so [`RunResult`](crate::RunResult)
//! can carry an `Option<TsLog>` unconditionally); the recording sites inside
//! the simulation are gated behind the `obs` feature, mirroring the
//! [`span`](crate::span) pattern.
//!
//! [`SysParams::ts_window`]: ncp2_sim::SysParams

use std::collections::BTreeMap;

use ncp2_sim::Cycles;

use crate::page::PageId;

/// Default window width (cycles) the auto mode starts from.
pub const TS_BASE_WIDTH: Cycles = 1024;

/// Auto mode keeps at most this many windows, doubling the width whenever a
/// run outgrows them. Fixed-width mode (`SysParams::ts_window > 0`) is
/// unbounded.
pub const TS_MAX_WINDOWS: usize = 256;

/// Windowed event counters. Each has exactly one end-of-run aggregate it
/// conserves against (see `timeseries_conservation.rs` in ncp2-bench).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TsCounter {
    /// Whole-page fetches (TreadMarks overflow path or AURC page reply).
    PageFetches,
    /// Diffs created (processor, controller or DMA).
    DiffsCreated,
    /// Diffs applied to a local page copy.
    DiffsApplied,
    /// Bytes of diff data created.
    DiffBytesCreated,
    /// Bytes of diff data applied.
    DiffBytesApplied,
    /// Pages invalidated by write notices.
    Invalidations,
    /// Lock acquires completed.
    LockAcquires,
    /// Barrier episodes completed (releases, counted per node).
    Barriers,
    /// Prefetches issued.
    PrefetchIssued,
    /// Prefetch replies that filled a page (completed prefetches).
    PrefetchFills,
    /// Prefetch commands shed by the degradation policy.
    PrefetchShed,
    /// Transport retransmissions (ack timeout).
    Retransmits,
    /// Data-frame transmissions, including retransmissions.
    FramesSent,
    /// Logical protocol messages injected into the network.
    Messages,
    /// Payload bytes of those messages.
    MessageBytes,
}

impl TsCounter {
    /// Number of counters (array dimension of [`WindowRow::counters`]).
    pub const COUNT: usize = 15;

    /// Every counter, in rendering order (= discriminant order).
    pub const ALL: [TsCounter; Self::COUNT] = [
        TsCounter::PageFetches,
        TsCounter::DiffsCreated,
        TsCounter::DiffsApplied,
        TsCounter::DiffBytesCreated,
        TsCounter::DiffBytesApplied,
        TsCounter::Invalidations,
        TsCounter::LockAcquires,
        TsCounter::Barriers,
        TsCounter::PrefetchIssued,
        TsCounter::PrefetchFills,
        TsCounter::PrefetchShed,
        TsCounter::Retransmits,
        TsCounter::FramesSent,
        TsCounter::Messages,
        TsCounter::MessageBytes,
    ];

    /// Stable snake_case label used by the exporters and assertion grammar.
    pub fn label(self) -> &'static str {
        match self {
            TsCounter::PageFetches => "page_fetches",
            TsCounter::DiffsCreated => "diffs_created",
            TsCounter::DiffsApplied => "diffs_applied",
            TsCounter::DiffBytesCreated => "diff_bytes_created",
            TsCounter::DiffBytesApplied => "diff_bytes_applied",
            TsCounter::Invalidations => "invalidations",
            TsCounter::LockAcquires => "lock_acquires",
            TsCounter::Barriers => "barriers",
            TsCounter::PrefetchIssued => "prefetch_issued",
            TsCounter::PrefetchFills => "prefetch_fills",
            TsCounter::PrefetchShed => "prefetch_shed",
            TsCounter::Retransmits => "retransmits",
            TsCounter::FramesSent => "frames_sent",
            TsCounter::Messages => "messages",
            TsCounter::MessageBytes => "message_bytes",
        }
    }
}

/// Windowed gauges: each window stores the **maximum** value observed at any
/// sample point inside it (merging windows takes the max again, so peaks
/// survive width doubling).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TsGauge {
    /// Calendar-queue depth, sampled at every event dispatch.
    QueueDepth,
    /// Total unacknowledged transport frames in flight.
    InflightFrames,
    /// Length of the longest lock wait queue at a sample point.
    LockWaiters,
    /// Nodes parked at a barrier at a sample point.
    BarrierWaiters,
    /// Open-loop service backlog (arrived but not yet served requests),
    /// sampled at every service dequeue.
    SvcQueueDepth,
}

impl TsGauge {
    /// Number of gauges (array dimension of [`WindowRow::gauges`]).
    pub const COUNT: usize = 5;

    /// Every gauge, in rendering order (= discriminant order).
    pub const ALL: [TsGauge; Self::COUNT] = [
        TsGauge::QueueDepth,
        TsGauge::InflightFrames,
        TsGauge::LockWaiters,
        TsGauge::BarrierWaiters,
        TsGauge::SvcQueueDepth,
    ];

    /// Stable snake_case label used by the exporters and assertion grammar.
    pub fn label(self) -> &'static str {
        match self {
            TsGauge::QueueDepth => "queue_depth",
            TsGauge::InflightFrames => "inflight_frames",
            TsGauge::LockWaiters => "lock_waiters",
            TsGauge::BarrierWaiters => "barrier_waiters",
            TsGauge::SvcQueueDepth => "svc_queue_depth",
        }
    }
}

/// One window of the run: counter deltas plus gauge maxima.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WindowRow {
    /// Event-count deltas, indexed by `TsCounter as usize`.
    pub counters: [u64; TsCounter::COUNT],
    /// Peak values, indexed by `TsGauge as usize`.
    pub gauges: [u64; TsGauge::COUNT],
}

impl WindowRow {
    fn merge(a: WindowRow, b: WindowRow) -> WindowRow {
        let mut out = a;
        for (o, v) in out.counters.iter_mut().zip(b.counters) {
            *o += v;
        }
        for (o, v) in out.gauges.iter_mut().zip(b.gauges) {
            *o = (*o).max(v);
        }
        out
    }
}

/// Whole-run attribution for one page (hot-spot table rows).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PageHot {
    /// Page-delivery events for this page: whole-page fetches plus completed
    /// TreadMarks prefetches (whose fill may be diffs rather than a page).
    pub transfers: u64,
    /// Diff bytes moved for this page (created + applied).
    pub diff_bytes: u64,
    /// Times this page was invalidated by a write notice.
    pub invalidations: u64,
}

/// Whole-run attribution for one lock (hot-spot table rows).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LockHot {
    /// Cycles nodes spent blocked waiting for this lock.
    pub wait_cycles: Cycles,
    /// Acquires of this lock.
    pub acquires: u64,
    /// Grants where the lock moved to a different node than the previous
    /// holder (owner migrations — the expensive case).
    pub owner_migrations: u64,
}

/// The finished time series of one run, attached to
/// [`RunResult::ts`](crate::RunResult) when recording was enabled.
///
/// All per-window vectors have the same length `windows.len()`:
/// `occupancy[node]` and every link series are padded with zeros out to the
/// run's final window.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TsLog {
    /// Final window width, cycles. Window `i` covers `[i*width, (i+1)*width)`.
    pub width: Cycles,
    /// One row per window.
    pub windows: Vec<WindowRow>,
    /// Controller busy cycles: `occupancy[node][window]`.
    pub occupancy: Vec<Vec<Cycles>>,
    /// Retransmits per directed link per window.
    pub link_retransmits: BTreeMap<(usize, usize), Vec<u64>>,
    /// Peak in-flight frames per directed link per window.
    pub link_inflight: BTreeMap<(usize, usize), Vec<u64>>,
    /// Per-page hot-spot attribution.
    pub pages: BTreeMap<PageId, PageHot>,
    /// Per-lock hot-spot attribution.
    pub locks: BTreeMap<u64, LockHot>,
}

impl TsLog {
    /// The per-window deltas of one counter.
    pub fn counter_series(&self, c: TsCounter) -> Vec<u64> {
        self.windows
            .iter()
            .map(|w| w.counters[c as usize])
            .collect()
    }

    /// Sum of one counter's window deltas — by the conservation law, equal
    /// to the end-of-run aggregate.
    pub fn counter_total(&self, c: TsCounter) -> u64 {
        self.windows.iter().map(|w| w.counters[c as usize]).sum()
    }

    /// The per-window maxima of one gauge.
    pub fn gauge_series(&self, g: TsGauge) -> Vec<u64> {
        self.windows.iter().map(|w| w.gauges[g as usize]).collect()
    }
}

/// Accumulates the time series during a run; [`TsRecorder::into_log`]
/// finalizes it. Poked only from aggregate-bump call sites — it never
/// schedules simulated events and never touches simulated time.
#[derive(Debug)]
pub struct TsRecorder {
    width: Cycles,
    auto: bool,
    nprocs: usize,
    rows: Vec<WindowRow>,
    /// `occ[window][node]` during recording; transposed on finalize.
    occ: Vec<Vec<Cycles>>,
    link_retx: BTreeMap<(usize, usize), Vec<u64>>,
    link_inflight: BTreeMap<(usize, usize), Vec<u64>>,
    inflight_now: BTreeMap<(usize, usize), u64>,
    inflight_total: u64,
    pages: BTreeMap<PageId, PageHot>,
    locks: BTreeMap<u64, LockHot>,
}

impl TsRecorder {
    /// `fixed_width == 0` selects auto mode (start at [`TS_BASE_WIDTH`],
    /// double on overflow past [`TS_MAX_WINDOWS`]).
    pub fn new(nprocs: usize, fixed_width: Cycles) -> Self {
        TsRecorder {
            width: if fixed_width == 0 {
                TS_BASE_WIDTH
            } else {
                fixed_width
            },
            auto: fixed_width == 0,
            nprocs,
            rows: Vec::new(),
            occ: Vec::new(),
            link_retx: BTreeMap::new(),
            link_inflight: BTreeMap::new(),
            inflight_now: BTreeMap::new(),
            inflight_total: 0,
            pages: BTreeMap::new(),
            locks: BTreeMap::new(),
        }
    }

    /// Window index holding cycle `t`, growing (and in auto mode merging)
    /// the series as needed.
    fn window(&mut self, t: Cycles) -> usize {
        if self.auto {
            while t / self.width >= TS_MAX_WINDOWS as Cycles {
                self.merge_down();
            }
        }
        let idx = (t / self.width) as usize;
        if self.rows.len() <= idx {
            self.rows.resize_with(idx + 1, WindowRow::default);
            self.occ.resize_with(idx + 1, || vec![0; self.nprocs]);
        }
        idx
    }

    /// Halve the resolution: merge adjacent window pairs and double the
    /// width. Exact because window `i` at width `w` covers `[i*w, (i+1)*w)`,
    /// so pair `(2j, 2j+1)` is precisely window `j` at width `2w`.
    fn merge_down(&mut self) {
        self.rows = merge_pairs(std::mem::take(&mut self.rows), WindowRow::merge);
        self.occ = merge_pairs(std::mem::take(&mut self.occ), |mut a, b| {
            for (o, v) in a.iter_mut().zip(b) {
                *o += v;
            }
            a
        });
        for v in self.link_retx.values_mut() {
            *v = merge_pairs(std::mem::take(v), |a, b| a + b);
        }
        for v in self.link_inflight.values_mut() {
            *v = merge_pairs(std::mem::take(v), u64::max);
        }
        self.width *= 2;
    }

    /// Charge `n` events of counter `c` into the window holding cycle `t`.
    pub fn count(&mut self, c: TsCounter, t: Cycles, n: u64) {
        let w = self.window(t);
        self.rows[w].counters[c as usize] += n;
    }

    /// Sample gauge `g` at value `v`; the window keeps the maximum.
    pub fn gauge(&mut self, g: TsGauge, t: Cycles, v: u64) {
        let w = self.window(t);
        let slot = &mut self.rows[w].gauges[g as usize];
        *slot = (*slot).max(v);
    }

    /// A retransmission fired on link `src -> dst` at cycle `t`.
    pub fn retransmit(&mut self, src: usize, dst: usize, t: Cycles) {
        self.count(TsCounter::Retransmits, t, 1);
        let w = self.window(t);
        let series = self.link_retx.entry((src, dst)).or_default();
        if series.len() <= w {
            series.resize(w + 1, 0);
        }
        series[w] += 1;
    }

    /// A transport frame entered (`up`) or left (`!up`) flight on link
    /// `src -> dst` at cycle `t`. Maintains the per-link and total in-flight
    /// population and samples both as gauges.
    pub fn flight(&mut self, src: usize, dst: usize, t: Cycles, up: bool) {
        let now = self.inflight_now.entry((src, dst)).or_default();
        if up {
            *now += 1;
            self.inflight_total += 1;
        } else {
            // overflow: ups and downs are paired by the transport, but a
            // frame retired during end-of-run drain may have no recorded up;
            // clamping at zero keeps the gauge population well-defined.
            *now = now.saturating_sub(1);
            // overflow: clamped at zero for the same unpaired-down reason.
            self.inflight_total = self.inflight_total.saturating_sub(1);
        }
        let link_now = *now;
        let w = self.window(t);
        let series = self.link_inflight.entry((src, dst)).or_default();
        if series.len() <= w {
            series.resize(w + 1, 0);
        }
        series[w] = series[w].max(link_now);
        let total = self.inflight_total;
        self.gauge(TsGauge::InflightFrames, t, total);
    }

    /// Charge controller busy cycles `[start, end)` of `node`, clipped
    /// across every window the span overlaps.
    pub fn span(&mut self, node: usize, start: Cycles, end: Cycles) {
        if end <= start || node >= self.nprocs {
            return;
        }
        // Ensure capacity (and any auto-mode merge) up to the span's last
        // occupied cycle before computing window coordinates.
        self.window(end - 1);
        let first = (start / self.width) as usize;
        let last = ((end - 1) / self.width) as usize;
        for w in first..=last {
            let lo = start.max(w as Cycles * self.width);
            let hi = end.min((w as Cycles + 1) * self.width);
            self.occ[w][node] += hi - lo;
        }
    }

    /// Accumulate page hot-spot attribution.
    pub fn page(&mut self, page: PageId, transfers: u64, diff_bytes: u64, invalidations: u64) {
        let h = self.pages.entry(page).or_default();
        h.transfers += transfers;
        h.diff_bytes += diff_bytes;
        h.invalidations += invalidations;
    }

    /// Accumulate lock hot-spot attribution.
    pub fn lock(&mut self, lock: u64, wait_cycles: Cycles, acquires: u64, owner_migrations: u64) {
        let h = self.locks.entry(lock).or_default();
        h.wait_cycles += wait_cycles;
        h.acquires += acquires;
        h.owner_migrations += owner_migrations;
    }

    /// Finalize: merge down until the whole run fits (auto mode), pad every
    /// series out to the run's final window, transpose occupancy to
    /// `[node][window]`.
    pub fn into_log(mut self, total_cycles: Cycles) -> TsLog {
        if self.auto {
            while total_cycles > 0 && (total_cycles - 1) / self.width >= TS_MAX_WINDOWS as Cycles {
                self.merge_down();
            }
        }
        let span_windows = if total_cycles == 0 {
            0
        } else {
            ((total_cycles - 1) / self.width) as usize + 1
        };
        let n = span_windows.max(self.rows.len()).max(1);
        self.rows.resize_with(n, WindowRow::default);
        self.occ.resize_with(n, || vec![0; self.nprocs]);
        for v in self.link_retx.values_mut() {
            v.resize(n, 0);
        }
        for v in self.link_inflight.values_mut() {
            v.resize(n, 0);
        }
        let mut occupancy = vec![vec![0; n]; self.nprocs];
        for (w, row) in self.occ.iter().enumerate() {
            for (node, &c) in row.iter().enumerate() {
                occupancy[node][w] = c;
            }
        }
        TsLog {
            width: self.width,
            windows: self.rows,
            occupancy,
            link_retransmits: self.link_retx,
            link_inflight: self.link_inflight,
            pages: self.pages,
            locks: self.locks,
        }
    }
}

/// Merge adjacent pairs of `v` with `f`; an odd trailing element survives
/// unchanged (its pair partner is an all-zero window that never existed).
fn merge_pairs<T>(v: Vec<T>, f: impl Fn(T, T) -> T) -> Vec<T> {
    let mut out = Vec::with_capacity(v.len().div_ceil(2));
    let mut it = v.into_iter();
    while let Some(a) = it.next() {
        out.push(match it.next() {
            Some(b) => f(a, b),
            None => a,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_land_in_their_window_and_totals_conserve() {
        let mut r = TsRecorder::new(2, 100);
        r.count(TsCounter::PageFetches, 0, 1);
        r.count(TsCounter::PageFetches, 99, 2);
        r.count(TsCounter::PageFetches, 100, 4);
        r.count(TsCounter::PageFetches, 950, 8);
        let log = r.into_log(1000);
        assert_eq!(log.width, 100);
        assert_eq!(log.windows.len(), 10);
        let s = log.counter_series(TsCounter::PageFetches);
        assert_eq!(s[0], 3);
        assert_eq!(s[1], 4);
        assert_eq!(s[9], 8);
        assert_eq!(log.counter_total(TsCounter::PageFetches), 15);
    }

    #[test]
    fn auto_mode_merges_exactly_and_respects_the_cap() {
        let mut r = TsRecorder::new(1, 0);
        // One event per base window over a run 8x longer than the initial
        // capacity: forces three doublings.
        let run = TS_BASE_WIDTH * TS_MAX_WINDOWS as Cycles * 8;
        let mut fed = 0u64;
        let mut t = 0;
        while t < run {
            r.count(TsCounter::Messages, t, 1);
            fed += 1;
            t += TS_BASE_WIDTH;
        }
        let log = r.into_log(run);
        assert_eq!(log.width, TS_BASE_WIDTH * 8);
        assert_eq!(log.windows.len(), TS_MAX_WINDOWS);
        assert_eq!(log.counter_total(TsCounter::Messages), fed);
        // Events were uniform, so every merged window holds exactly 8.
        assert!(log
            .counter_series(TsCounter::Messages)
            .iter()
            .all(|&v| v == 8));
    }

    #[test]
    fn totals_are_invariant_to_window_width() {
        let events: Vec<(Cycles, u64)> = (0..500).map(|i| (i * 37, 1 + i % 5)).collect();
        let mut a = TsRecorder::new(1, 1024);
        let mut b = TsRecorder::new(1, 16384);
        for &(t, n) in &events {
            a.count(TsCounter::DiffBytesCreated, t, n);
            b.count(TsCounter::DiffBytesCreated, t, n);
        }
        let (la, lb) = (a.into_log(20_000), b.into_log(20_000));
        assert_eq!(
            la.counter_total(TsCounter::DiffBytesCreated),
            lb.counter_total(TsCounter::DiffBytesCreated)
        );
        assert_eq!(la.windows.len(), 20, "ceil(20000/1024)");
        assert_eq!(lb.windows.len(), 2);
    }

    #[test]
    fn gauges_keep_the_window_peak_through_merges() {
        let mut r = TsRecorder::new(1, 0);
        r.gauge(TsGauge::QueueDepth, 10, 3);
        r.gauge(TsGauge::QueueDepth, 20, 7);
        r.gauge(TsGauge::QueueDepth, 30, 5);
        // Force a merge by landing an event far out.
        r.count(
            TsCounter::Messages,
            TS_BASE_WIDTH * TS_MAX_WINDOWS as Cycles,
            1,
        );
        let log = r.into_log(TS_BASE_WIDTH * TS_MAX_WINDOWS as Cycles + 1);
        assert_eq!(log.width, TS_BASE_WIDTH * 2);
        assert_eq!(log.gauge_series(TsGauge::QueueDepth)[0], 7);
    }

    #[test]
    fn spans_clip_across_window_boundaries() {
        let mut r = TsRecorder::new(2, 100);
        r.span(1, 50, 250);
        r.span(0, 0, 100);
        r.span(1, 990, 1000);
        let log = r.into_log(1000);
        assert_eq!(log.occupancy[1][0], 50);
        assert_eq!(log.occupancy[1][1], 100);
        assert_eq!(log.occupancy[1][2], 50);
        assert_eq!(log.occupancy[0][0], 100);
        assert_eq!(log.occupancy[1][9], 10);
        let spent: Cycles = log.occupancy.iter().flatten().sum();
        assert_eq!(spent, 310);
    }

    #[test]
    fn link_series_pad_to_the_final_window() {
        let mut r = TsRecorder::new(2, 100);
        r.flight(0, 1, 5, true);
        r.flight(0, 1, 40, true);
        r.retransmit(0, 1, 120);
        r.flight(0, 1, 130, false);
        let log = r.into_log(1000);
        let infl = &log.link_inflight[&(0, 1)];
        assert_eq!(infl.len(), 10);
        assert_eq!(infl[0], 2);
        assert_eq!(infl[1], 1);
        assert_eq!(log.link_retransmits[&(0, 1)], {
            let mut v = vec![0u64; 10];
            v[1] = 1;
            v
        });
        assert_eq!(log.counter_total(TsCounter::Retransmits), 1);
        assert_eq!(log.gauge_series(TsGauge::InflightFrames)[0], 2);
    }

    #[test]
    fn hotspots_accumulate() {
        let mut r = TsRecorder::new(1, 100);
        r.page(7, 1, 64, 0);
        r.page(7, 0, 32, 2);
        r.lock(3, 500, 1, 1);
        r.lock(3, 250, 1, 0);
        let log = r.into_log(100);
        assert_eq!(log.pages[&7].transfers, 1);
        assert_eq!(log.pages[&7].diff_bytes, 96);
        assert_eq!(log.pages[&7].invalidations, 2);
        assert_eq!(log.locks[&3].wait_cycles, 750);
        assert_eq!(log.locks[&3].acquires, 2);
        assert_eq!(log.locks[&3].owner_migrations, 1);
    }

    #[test]
    fn empty_recorder_still_produces_a_padded_log() {
        let log = TsRecorder::new(2, 0).into_log(5000);
        assert_eq!(log.width, TS_BASE_WIDTH);
        assert_eq!(log.windows.len(), 5);
        assert_eq!(log.occupancy.len(), 2);
        assert_eq!(log.occupancy[0].len(), 5);
    }
}
