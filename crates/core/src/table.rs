//! Flat, dense protocol-state tables.
//!
//! Every identifier the protocols key state by — page ids (byte address /
//! page size over a zero-based bump allocator), lock ids, barrier ids — is a
//! small dense integer. The former `HashMap`/`HashSet` state tables paid
//! hashing and pointer-chasing on the hottest paths of every simulated
//! access; at 256 nodes that dominates the host profile. [`FlatMap`] and
//! [`IdSet`] replace them with direct-indexed flat arrays: O(1) without
//! hashing, one cache line per touch, and deterministic ascending iteration
//! order (the old hash iteration order was per-process random, which is why
//! no simulated output could ever depend on it — every order-sensitive
//! consumer already sorts; see DESIGN.md §15).

use crate::diff::Diff;
use crate::page::PageId;
use crate::vtime::IntervalId;

/// A dense map from a small integer id to `V`, backed by a flat slot array.
///
/// Ids are expected to be allocated densely from zero (page ids from the
/// bump allocator, lock/barrier ids from the workload). The slot array grows
/// to the largest inserted id; a sanity ceiling catches runaway ids loudly
/// instead of exhausting host memory.
#[derive(Debug)]
pub(crate) struct FlatMap<V> {
    slots: Vec<Option<V>>,
    len: usize,
}

/// Largest admissible id: 16M slots. Real runs stay orders of magnitude
/// below this (pages = heap bytes / 4 KB); hitting it means a corrupted id.
const MAX_ID: u64 = 1 << 24;

impl<V> Default for FlatMap<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> FlatMap<V> {
    /// An empty table.
    pub fn new() -> Self {
        FlatMap {
            slots: Vec::new(),
            len: 0,
        }
    }

    fn index(id: impl Into<u64>) -> usize {
        let id = id.into();
        // invariant: ids come from dense allocators (addresses / page size,
        // workload lock numbers) — an id past the ceiling is corrupt state
        assert!(id < MAX_ID, "flat table id {id} out of range");
        id as usize
    }

    /// The value stored for `id`, if any.
    pub fn get(&self, id: impl Into<u64>) -> Option<&V> {
        self.slots.get(Self::index(id)).and_then(|s| s.as_ref())
    }

    /// Mutable access to the value stored for `id`, if any.
    pub fn get_mut(&mut self, id: impl Into<u64>) -> Option<&mut V> {
        self.slots.get_mut(Self::index(id)).and_then(|s| s.as_mut())
    }

    /// Whether `id` has a value.
    pub fn contains(&self, id: impl Into<u64>) -> bool {
        self.get(id).is_some()
    }

    /// Inserts (or replaces) the value for `id`, returning the old value.
    pub fn insert(&mut self, id: impl Into<u64>, value: V) -> Option<V> {
        let idx = Self::index(id);
        if idx >= self.slots.len() {
            self.slots.resize_with(idx + 1, || None);
        }
        let old = self.slots[idx].replace(value);
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    /// Removes and returns the value for `id`.
    pub fn remove(&mut self, id: impl Into<u64>) -> Option<V> {
        let idx = Self::index(id);
        let old = self.slots.get_mut(idx).and_then(|s| s.take());
        if old.is_some() {
            self.len -= 1;
        }
        old
    }

    /// The value for `id`, inserting `make()` first if absent.
    pub fn get_or_insert_with(&mut self, id: impl Into<u64>, make: impl FnOnce() -> V) -> &mut V {
        let idx = Self::index(id);
        if idx >= self.slots.len() {
            self.slots.resize_with(idx + 1, || None);
        }
        let slot = &mut self.slots[idx];
        if slot.is_none() {
            *slot = Some(make());
            self.len += 1;
        }
        // invariant: filled just above when it was empty
        slot.as_mut().expect("slot filled")
    }

    /// Iterates `(id, &value)` in ascending id order (deterministic, unlike
    /// the hash tables this type replaced).
    pub fn iter(&self) -> impl Iterator<Item = (u64, &V)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|v| (i as u64, v)))
    }

    /// Number of stored values.
    #[cfg(test)]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the table stores nothing.
    #[cfg(test)]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl<V: Default> FlatMap<V> {
    /// The value for `id`, inserting `V::default()` first if absent.
    pub fn get_or_default(&mut self, id: impl Into<u64>) -> &mut V {
        self.get_or_insert_with(id, V::default)
    }
}

/// Per-node store of self-created diffs, keyed by `(page, interval)`: a flat
/// page table of short interval lists. A page is dirtied by a handful of
/// intervals between synchronizations, so a linear scan of its list beats
/// hashing the compound key.
#[derive(Debug, Default)]
pub(crate) struct DiffTable {
    pages: FlatMap<Vec<(IntervalId, Diff)>>,
}

impl DiffTable {
    /// An empty store.
    pub fn new() -> Self {
        DiffTable {
            pages: FlatMap::new(),
        }
    }

    /// The stored diff for `(page, ivl)`, if any.
    pub fn get(&self, page: PageId, ivl: IntervalId) -> Option<&Diff> {
        self.pages
            .get(page)?
            .iter()
            .find(|(i, _)| *i == ivl)
            .map(|(_, d)| d)
    }

    /// Whether a diff for `(page, ivl)` is stored.
    pub fn contains(&self, page: PageId, ivl: IntervalId) -> bool {
        self.get(page, ivl).is_some()
    }

    /// Stores `diff`, merging into an existing diff for the same
    /// (page, interval) if an invalidation forced one early.
    pub fn merge_or_insert(&mut self, diff: Diff) {
        let list = self.pages.get_or_default(diff.page);
        match list.iter_mut().find(|(i, _)| *i == diff.interval) {
            Some((_, d)) => d.merge(&diff),
            None => list.push((diff.interval, diff)),
        }
    }
}

/// A dense set of small integer ids, backed by a flat bit array.
#[derive(Debug, Default)]
pub(crate) struct IdSet {
    words: Vec<u64>,
}

impl IdSet {
    /// An empty set.
    pub fn new() -> Self {
        IdSet { words: Vec::new() }
    }

    fn split(id: impl Into<u64>) -> (usize, u64) {
        let id = id.into();
        // invariant: same dense-id contract as `FlatMap`
        assert!(id < MAX_ID, "id set id {id} out of range");
        ((id >> 6) as usize, 1u64 << (id & 63))
    }

    /// Adds `id`; returns whether it was newly inserted.
    pub fn insert(&mut self, id: impl Into<u64>) -> bool {
        let (w, bit) = Self::split(id);
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        let fresh = self.words[w] & bit == 0;
        self.words[w] |= bit;
        fresh
    }

    /// Removes `id`; returns whether it was present.
    pub fn remove(&mut self, id: impl Into<u64>) -> bool {
        let (w, bit) = Self::split(id);
        match self.words.get_mut(w) {
            Some(word) => {
                let had = *word & bit != 0;
                *word &= !bit;
                had
            }
            None => false,
        }
    }

    /// Whether `id` is in the set.
    pub fn contains(&self, id: impl Into<u64>) -> bool {
        let (w, bit) = Self::split(id);
        self.words.get(w).is_some_and(|word| word & bit != 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_map_round_trip() {
        let mut m: FlatMap<String> = FlatMap::new();
        assert!(m.is_empty());
        assert!(m.get(3u64).is_none());
        assert_eq!(m.insert(3u64, "a".into()), None);
        assert_eq!(m.insert(3u64, "b".into()), Some("a".into()));
        assert_eq!(m.len(), 1);
        assert!(m.contains(3u64));
        m.get_or_insert_with(7u64, || "c".into()).push('!');
        assert_eq!(m.get(7u64).map(String::as_str), Some("c!"));
        assert_eq!(m.len(), 2);
        let ids: Vec<u64> = m.iter().map(|(i, _)| i).collect();
        assert_eq!(ids, vec![3, 7]);
        assert_eq!(m.remove(3u64), Some("b".into()));
        assert_eq!(m.remove(3u64), None);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn flat_map_get_or_default_counts_once() {
        let mut m: FlatMap<u32> = FlatMap::new();
        *m.get_or_default(5u32) += 1;
        *m.get_or_default(5u32) += 1;
        assert_eq!(m.get(5u32), Some(&2));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn id_set_round_trip() {
        let mut s = IdSet::new();
        assert!(!s.contains(70u32));
        assert!(s.insert(70u32));
        assert!(!s.insert(70u32));
        assert!(s.contains(70u32));
        assert!(!s.contains(6u32));
        assert!(s.remove(70u32));
        assert!(!s.remove(70u32));
        assert!(!s.contains(70u32));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn runaway_id_is_loud() {
        let mut m: FlatMap<u8> = FlatMap::new();
        m.insert(u64::MAX, 0);
    }
}
