//! Shared pages: the DSM data plane and per-copy protection state.
//!
//! Unlike a pure timing model, this crate moves real bytes: every node has
//! its own copy of each page it touches, twins are real snapshots and diffs
//! are real word lists. An application run under the simulated DSM therefore
//! computes real results, which end-to-end tests compare against sequential
//! executions — validating the coherence protocol itself.

/// Identifier of a 4-KB shared page (byte address / page size).
pub type PageId = u64;

/// Page id containing byte address `addr`.
pub fn page_of(addr: u64, page_bytes: u64) -> PageId {
    addr / page_bytes
}

/// Word index (4-byte granularity) of `addr` within its page.
pub fn word_index(addr: u64, page_bytes: u64) -> usize {
    ((addr % page_bytes) / 4) as usize
}

/// Virtual-memory protection state of one node's copy of a page, as driven
/// by the DSM (§2: "software DSMs use virtual memory protection bits to
/// enforce coherence at the page level").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PageState {
    /// Out of date: any access faults and must collect diffs.
    Invalid,
    /// Clean: reads proceed; the first write faults (twin creation in the
    /// software protocols, dirty-vector tracking with hardware diffs).
    #[default]
    ReadOnly,
    /// Dirty in the current interval: reads and writes proceed.
    ReadWrite,
}

/// One page's worth of actual data.
///
/// Backed by a pooled buffer (see [`crate::pool`]): pages, twins and
/// whole-page reply payloads are created and dropped constantly on the hot
/// path, so the backing storage is recycled per thread.
///
/// ```
/// use ncp2_core::page::PageBuf;
/// let mut p = PageBuf::new(4096);
/// p.write(8, 4, 0xDEAD_BEEF);
/// assert_eq!(p.read(8, 4), 0xDEAD_BEEF);
/// assert_eq!(p.read(12, 4), 0);
/// ```
#[derive(Debug, PartialEq, Eq)]
pub struct PageBuf {
    data: Vec<u8>,
}

impl Clone for PageBuf {
    fn clone(&self) -> Self {
        let mut data = crate::pool::take_bytes();
        data.extend_from_slice(&self.data);
        PageBuf { data }
    }
}

impl Drop for PageBuf {
    fn drop(&mut self) {
        crate::pool::put_bytes(std::mem::take(&mut self.data));
    }
}

impl PageBuf {
    /// A zero-filled page of `bytes` bytes.
    pub fn new(bytes: u64) -> Self {
        let mut data = crate::pool::take_bytes();
        data.resize(bytes as usize, 0);
        PageBuf { data }
    }

    /// Page size in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the page has zero size (never in practice).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Reads `size` bytes (1, 2, 4 or 8) at `offset`, little-endian.
    ///
    /// # Panics
    ///
    /// Panics if the access is misaligned, oversized or crosses the page end.
    pub fn read(&self, offset: usize, size: u8) -> u64 {
        self.check(offset, size);
        let mut v = 0u64;
        for i in (0..size as usize).rev() {
            // invariant: check() verified offset + size <= len
            v = (v << 8) | self.data[offset + i] as u64;
        }
        v
    }

    /// Writes `size` bytes of `value` at `offset`, little-endian.
    ///
    /// # Panics
    ///
    /// Panics if the access is misaligned, oversized or crosses the page end.
    pub fn write(&mut self, offset: usize, size: u8, value: u64) {
        self.check(offset, size);
        for i in 0..size as usize {
            // invariant: check() verified offset + size <= len
            self.data[offset + i] = (value >> (8 * i)) as u8;
        }
    }

    /// Raw word (4-byte) view, used by diff creation and application.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is outside the page. Word indices always come from a
    /// same-sized copy of the page (twin comparison or a dirty vector), so
    /// an out-of-range index is a protocol bug, never a recoverable state.
    pub fn word(&self, idx: usize) -> u32 {
        match self.data.get(idx * 4..idx * 4 + 4) {
            Some(b) => u32::from_le_bytes([b[0], b[1], b[2], b[3]]),
            None => panic!("word {idx} outside {}-word page", self.words()), // invariant: word indices come from a same-sized page copy (see doc)
        }
    }

    /// Stores a raw word.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is outside the page (see [`PageBuf::word`]).
    pub fn set_word(&mut self, idx: usize, value: u32) {
        let words = self.words();
        match self.data.get_mut(idx * 4..idx * 4 + 4) {
            Some(b) => b.copy_from_slice(&value.to_le_bytes()),
            None => panic!("word {idx} outside {words}-word page"), // invariant: word indices come from a same-sized page copy (see doc)
        }
    }

    /// Number of 4-byte words in the page.
    pub fn words(&self) -> usize {
        self.data.len() / 4
    }

    /// Word indices where `self` and `twin` differ (diff creation).
    pub fn words_differing<'a>(&'a self, twin: &'a PageBuf) -> impl Iterator<Item = usize> + 'a {
        assert_eq!(self.len(), twin.len(), "twin size mismatch");
        (0..self.words()).filter(move |&i| self.word(i) != twin.word(i))
    }

    /// Copies the full contents of `src` over this page (whole-page fetch).
    pub fn copy_from(&mut self, src: &PageBuf) {
        assert_eq!(self.len(), src.len(), "page size mismatch");
        self.data.copy_from_slice(&src.data);
    }

    fn check(&self, offset: usize, size: u8) {
        assert!(
            matches!(size, 1 | 2 | 4 | 8),
            "access size {size} unsupported"
        );
        assert!(
            offset.is_multiple_of(size as usize),
            "misaligned access at offset {offset}"
        );
        assert!(
            offset + size as usize <= self.data.len(),
            "access crosses page end"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn address_helpers() {
        assert_eq!(page_of(0, 4096), 0);
        assert_eq!(page_of(4095, 4096), 0);
        assert_eq!(page_of(4096, 4096), 1);
        assert_eq!(word_index(4, 4096), 1);
        assert_eq!(word_index(4096 + 8, 4096), 2);
    }

    #[test]
    fn little_endian_round_trip() {
        let mut p = PageBuf::new(64);
        p.write(0, 8, 0x0102_0304_0506_0708);
        assert_eq!(p.read(0, 8), 0x0102_0304_0506_0708);
        assert_eq!(p.read(0, 4), 0x0506_0708);
        assert_eq!(p.read(4, 4), 0x0102_0304);
        assert_eq!(p.read(0, 1), 0x08);
    }

    #[test]
    fn word_view_matches_byte_view() {
        let mut p = PageBuf::new(32);
        p.write(8, 4, 0xAABB_CCDD);
        assert_eq!(p.word(2), 0xAABB_CCDD);
        p.set_word(3, 7);
        assert_eq!(p.read(12, 4), 7);
    }

    #[test]
    fn diffing_finds_changed_words() {
        let twin = PageBuf::new(64);
        let mut cur = PageBuf::new(64);
        cur.set_word(3, 9);
        cur.set_word(15, 1);
        let changed: Vec<usize> = cur.words_differing(&twin).collect();
        assert_eq!(changed, vec![3, 15]);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn out_of_range_word_read_panics() {
        PageBuf::new(16).word(4);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn out_of_range_word_write_panics() {
        PageBuf::new(16).set_word(4, 1);
    }

    #[test]
    #[should_panic(expected = "misaligned")]
    fn misaligned_access_panics() {
        PageBuf::new(16).read(2, 4);
    }

    #[test]
    #[should_panic(expected = "crosses page end")]
    fn overflow_access_panics() {
        PageBuf::new(16).read(16, 4);
    }
}
