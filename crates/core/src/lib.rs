//! # ncp2-core — software DSM protocols with protocol-controller overlap
//!
//! The primary contribution of *"Hiding Communication Latency and Coherence
//! Overhead in Software DSMs"* (Bianchini et al., ASPLOS 1996), reproduced
//! in full:
//!
//! * **TreadMarks** (lazy release consistency, lazy diffs) under the six
//!   overlap modes of §5.1 — `Base`, `I`, `I+D`, `P`, `I+P`, `I+P+D` — where
//!   the NCP2 **protocol controller** offloads basic protocol actions (`I`),
//!   its bit-vector **DMA engine** generates and applies diffs without twins
//!   (`D`), and invalidated-but-referenced pages are **prefetched** at
//!   acquire points (`P`);
//! * **AURC** and **AURC+P** — Shrimp-style automatic updates with pairwise
//!   sharing and home nodes (§3.3), the paper's comparison protocols.
//!
//! The protocols run over the substrates in `ncp2-sim`, `ncp2-mem` and
//! `ncp2-net`, and move *real data*: pages, twins and diffs carry bytes, so
//! application results computed under the simulated DSM validate the
//! coherence protocol end to end.
//!
//! Entry point: [`Simulation`].
//!
//! ```no_run
//! use ncp2_core::{OverlapMode, Protocol, Simulation};
//! use ncp2_sim::{ProcOp, SysParams};
//!
//! let sim = Simulation::new(SysParams::default(), Protocol::TreadMarks(OverlapMode::ID));
//! let result = sim.run(|pid, port| {
//!     port.call(ProcOp::Write { addr: 64 * pid as u64, bytes: 4, value: pid as u64 });
//!     port.call(ProcOp::Barrier(0));
//!     port.call(ProcOp::Finish);
//! });
//! println!("{} took {} cycles", result.protocol, result.total_cycles);
//! ```

pub mod aurc;
pub mod bitvec;
pub mod controller;
pub mod diff;
pub mod hist;
pub mod interval;
pub mod msg;
pub mod observe;
pub mod page;
pub mod pool;
pub mod protocol;
pub mod span;
pub mod stats;
pub mod sync;
pub mod system;
mod table;
pub mod timeseries;
pub mod trace;
#[cfg(feature = "fault")]
pub mod transport;
pub mod treadmarks;
pub mod vtime;

pub use controller::Controller;
pub use diff::Diff;
pub use hist::LogHistogram;
pub use interval::{IntervalAnnouncement, IntervalStore, Notice};
#[cfg(feature = "fault")]
pub use ncp2_fault::{self, FaultPlan};
pub use observe::{MsgKind, Observer, ProtocolEvent, Violation};
pub use page::{PageBuf, PageId, PageState};
pub use protocol::{OverlapMode, Protocol};
pub use span::{
    CtrlCmd, DepEdge, EdgeKind, Engine, EngineSpan, Flight, ObsLog, Span, SpanId, SpanKind,
};
pub use stats::{FaultStats, NodeStats, RunResult, SvcStats, RETX_BUCKETS};
pub use system::Simulation;
pub use timeseries::{
    LockHot, PageHot, TsCounter, TsGauge, TsLog, TsRecorder, WindowRow, TS_BASE_WIDTH,
    TS_MAX_WINDOWS,
};
pub use trace::{trace_csv, TraceEvent, TraceKind};
#[cfg(feature = "fault")]
pub use transport::{MAX_BACKOFF_EXP, MAX_RETX_ATTEMPTS, SHED_UNACKED_MAX};
pub use vtime::{IntervalId, VectorTime};
