//! Protocol-event observation: the hook surface behind the `verify` feature.
//!
//! When `ncp2-core` is compiled with the `verify` feature, [`Simulation`]
//! carries an optional boxed [`Observer`] and reports every semantically
//! interesting protocol step to it as a [`ProtocolEvent`]: shared-memory
//! accesses, synchronization operations, interval closures, write-notice
//! recording, diff creation/application and message send/delivery. The
//! `ncp2-verify` crate implements an observer that shadow-checks the
//! protocol invariants of the paper (diff completeness per §3.2, write-notice
//! coverage and vector-time monotonicity per the §2 LRC model, message
//! conservation) and runs a vector-clock happens-before race detector over
//! the observed accesses.
//!
//! Without the feature, none of the emission sites compile — the hooks cost
//! literally zero cycles and zero bytes. With the feature but no attached
//! observer, each site is a `None` check.
//!
//! [`Simulation`]: crate::Simulation

use std::fmt;

use ncp2_sim::ops::{BarrierId, LockId};

use crate::diff::Diff;
use crate::page::{PageBuf, PageId};
use crate::vtime::{IntervalId, VectorTime};

/// Message classification used for conservation accounting (one entry per
/// [`crate::msg::Msg`] variant).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MsgKind {
    /// Acquire request to the lock manager.
    LockReq,
    /// Manager-to-last-owner forward.
    LockForward,
    /// Lock grant with write notices.
    LockGrant,
    /// Diff request to a writer.
    DiffReq,
    /// Diffs (or a page) from a writer.
    DiffReply,
    /// Barrier arrival at the manager.
    BarrierArrive,
    /// Barrier release broadcast.
    BarrierRelease,
    /// AURC automatic update (fire-and-forget).
    AurcUpdate,
    /// AURC page fetch request.
    AurcPageReq,
    /// AURC page fetch reply.
    AurcPageReply,
}

impl fmt::Display for MsgKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl crate::msg::Msg {
    /// The conservation-accounting class of this message.
    pub fn kind(&self) -> MsgKind {
        use crate::msg::Msg;
        match self {
            Msg::LockReq { .. } => MsgKind::LockReq,
            Msg::LockForward { .. } => MsgKind::LockForward,
            Msg::LockGrant { .. } => MsgKind::LockGrant,
            Msg::DiffReq { .. } => MsgKind::DiffReq,
            Msg::DiffReply { .. } => MsgKind::DiffReply,
            Msg::BarrierArrive { .. } => MsgKind::BarrierArrive,
            Msg::BarrierRelease { .. } => MsgKind::BarrierRelease,
            Msg::AurcUpdate { .. } => MsgKind::AurcUpdate,
            Msg::AurcPageReq { .. } => MsgKind::AurcPageReq,
            Msg::AurcPageReply { .. } => MsgKind::AurcPageReply,
        }
    }
}

/// One observable protocol step. Events for a given processor are emitted in
/// that processor's program order; lock-chain and barrier-episode transfers
/// respect the underlying happens-before order (a release is always emitted
/// before the acquire it grants, and every arrival of a barrier episode is
/// emitted before any completion of that episode).
#[derive(Debug, Clone)]
pub enum ProtocolEvent {
    /// A shared-memory access performed on a valid page.
    Access {
        /// Accessing processor.
        pid: usize,
        /// Byte address.
        addr: u64,
        /// Access width in bytes (1, 2, 4 or 8).
        bytes: u8,
        /// Write or read.
        write: bool,
    },
    /// A lock acquire completed (write notices already processed).
    LockAcquired {
        /// Acquiring processor.
        pid: usize,
        /// The lock.
        lock: LockId,
    },
    /// A lock release began (before the grant is passed on).
    LockReleased {
        /// Releasing processor.
        pid: usize,
        /// The lock.
        lock: LockId,
    },
    /// A processor arrived at a barrier (after closing its interval).
    BarrierArrived {
        /// Arriving processor.
        pid: usize,
        /// The barrier.
        barrier: BarrierId,
    },
    /// A processor observed the barrier release.
    BarrierCompleted {
        /// Released processor.
        pid: usize,
        /// The barrier.
        barrier: BarrierId,
    },
    /// A writing interval closed at a release point.
    IntervalClosed {
        /// The interval's owner.
        pid: usize,
        /// The new interval id (`vt[pid]` after the bump).
        id: IntervalId,
        /// The owner's vector time after the bump.
        vt: VectorTime,
        /// Pages dirtied during the interval.
        pages: Vec<PageId>,
    },
    /// A write notice was recorded and its page invalidated at `pid`.
    NoticeRecorded {
        /// The processor applying the notice.
        pid: usize,
        /// The writing interval's owner.
        owner: usize,
        /// The writing interval's id.
        id: IntervalId,
        /// The page named by the notice.
        page: PageId,
    },
    /// A batch of interval announcements finished processing at `pid`
    /// (acquire or barrier release).
    AnnsProcessed {
        /// The processor whose vector time advanced.
        pid: usize,
        /// Its vector time after processing.
        vt: VectorTime,
    },
    /// A diff was created (twin comparison or dirty-bit DMA gather).
    DiffCreated {
        /// The diff's owner.
        pid: usize,
        /// The page it covers.
        page: PageId,
        /// The owner interval it belongs to.
        interval: IntervalId,
        /// The diff itself.
        diff: Diff,
        /// The owner's page contents at creation time.
        data: PageBuf,
    },
    /// A collected set of diffs (and possibly a whole page) was applied.
    DiffsApplied {
        /// The processor whose copy was updated.
        pid: usize,
        /// The page updated.
        page: PageId,
        /// `(owner, interval)` of every diff actually applied.
        applied: Vec<(usize, IntervalId)>,
        /// The page contents after application.
        data: PageBuf,
    },
    /// A protocol message left a node.
    MsgSent {
        /// Sender.
        src: usize,
        /// Receiver.
        dst: usize,
        /// Message class.
        kind: MsgKind,
        /// Demand (normal-priority) transaction, as opposed to a prefetch.
        demand: bool,
    },
    /// A protocol message reached its receiver's handler.
    MsgDelivered {
        /// Receiver.
        dst: usize,
        /// Message class.
        kind: MsgKind,
        /// Demand (normal-priority) transaction.
        demand: bool,
    },
    /// A transport data frame was injected (one event per physical copy:
    /// retransmissions and fault-injected duplicates re-emit).
    FrameSent {
        /// Sender.
        src: usize,
        /// Receiver.
        dst: usize,
        /// Link-local sequence number.
        seq: u64,
        /// Transmission attempt (0 = original send).
        attempt: u32,
    },
    /// A transport frame arrived in order and its message was delivered.
    FrameAccepted {
        /// Sender.
        src: usize,
        /// Receiver.
        dst: usize,
        /// Link-local sequence number.
        seq: u64,
        /// Transmission attempt that got through.
        attempt: u32,
    },
    /// A transport frame arrived but was discarded as an already-delivered
    /// duplicate.
    FrameDuplicate {
        /// Sender.
        src: usize,
        /// Receiver.
        dst: usize,
        /// Link-local sequence number.
        seq: u64,
        /// Transmission attempt discarded.
        attempt: u32,
    },
    /// A transport frame was lost: dropped/corrupted by the fault plan,
    /// lost to a crash-restart window, or drained in flight at end of run.
    FrameDropped {
        /// Sender.
        src: usize,
        /// Receiver.
        dst: usize,
        /// Link-local sequence number.
        seq: u64,
        /// Transmission attempt lost.
        attempt: u32,
    },
}

/// A protocol invariant found broken by an observer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// Two conflicting accesses not ordered by happens-before.
    Race {
        /// First (earlier-observed) accessor.
        first_pid: usize,
        /// Whether the first access was a write.
        first_write: bool,
        /// Second accessor.
        second_pid: usize,
        /// Whether the second access was a write.
        second_write: bool,
        /// Byte address of the 4-byte word the accesses conflict on.
        addr: u64,
    },
    /// Applying a freshly created diff to the page's previous contents did
    /// not reconstruct the writer's copy (§3.2 diff semantics; catches
    /// dirty-bit undercounting in the hardware-diff modes).
    DiffIncomplete {
        /// The diff's owner.
        pid: usize,
        /// The page.
        page: PageId,
        /// The owner interval.
        interval: IntervalId,
        /// Number of 4-byte words that differ after application.
        bad_words: usize,
    },
    /// A processor's vector time covers a writing interval for which it
    /// never recorded a write notice on one of the dirtied pages.
    WriteNoticeCoverage {
        /// The processor missing the notice.
        pid: usize,
        /// The writing interval's owner.
        owner: usize,
        /// The writing interval's id.
        interval: IntervalId,
        /// The page that should have been invalidated.
        page: PageId,
    },
    /// A vector time went backwards, or an interval id was skipped.
    VtRegression {
        /// The offending processor.
        pid: usize,
        /// Human-readable description.
        detail: String,
    },
    /// Message counts do not balance (lost reply, unpaired request, ...).
    MessageConservation {
        /// Human-readable description.
        detail: String,
    },
    /// Per-category span time does not sum to the node's breakdown totals
    /// (reported by the `obs` layer's conservation check).
    SpanConservation {
        /// The node whose accounting is off.
        node: usize,
        /// Human-readable description.
        detail: String,
    },
    /// The same foreign diff was applied twice to one node's page copy.
    DuplicateDiffApplication {
        /// The processor applying the diff.
        pid: usize,
        /// The page.
        page: PageId,
        /// The diff's owner.
        owner: usize,
        /// The diff's interval.
        interval: IntervalId,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::Race {
                first_pid,
                first_write,
                second_pid,
                second_write,
                addr,
            } => {
                let k = |w: bool| if w { "write" } else { "read" };
                write!(
                    f,
                    "race on word {addr:#x}: {} by P{first_pid} unordered with {} by P{second_pid}",
                    k(*first_write),
                    k(*second_write)
                )
            }
            Violation::DiffIncomplete {
                pid,
                page,
                interval,
                bad_words,
            } => write!(
                f,
                "incomplete diff for page {page} interval ({pid},{interval}): \
                 {bad_words} word(s) not reconstructed"
            ),
            Violation::WriteNoticeCoverage {
                pid,
                owner,
                interval,
                page,
            } => write!(
                f,
                "P{pid} covers interval ({owner},{interval}) but never recorded \
                 its write notice for page {page}"
            ),
            Violation::VtRegression { pid, detail } => {
                write!(f, "vector time regression at P{pid}: {detail}")
            }
            Violation::MessageConservation { detail } => {
                write!(f, "message conservation: {detail}")
            }
            Violation::SpanConservation { node, detail } => {
                write!(f, "span conservation at P{node}: {detail}")
            }
            Violation::DuplicateDiffApplication {
                pid,
                page,
                owner,
                interval,
            } => write!(
                f,
                "P{pid} applied diff ({owner},{interval}) to page {page} twice"
            ),
        }
    }
}

/// A shadow checker attached to a [`Simulation`](crate::Simulation) via
/// `attach_observer` (available when `ncp2-core` is built with the `verify`
/// feature).
pub trait Observer {
    /// Called at every protocol step, in observation order.
    fn on_event(&mut self, ev: &ProtocolEvent);

    /// Called once after the run completes; returns everything found broken.
    fn finish(&mut self) -> Vec<Violation> {
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::Msg;
    use crate::vtime::VectorTime;

    #[test]
    fn every_msg_variant_has_a_kind() {
        let vt = VectorTime::new(2);
        let msgs = vec![
            Msg::LockReq {
                lock: 0,
                acquirer: 0,
                vt: vt.clone(),
            },
            Msg::LockForward {
                lock: 0,
                acquirer: 0,
                vt: vt.clone(),
            },
            Msg::LockGrant {
                lock: 0,
                anns: Default::default(),
                update_horizon: 0,
            },
            Msg::DiffReq {
                page: 0,
                intervals: Default::default(),
                requester: 0,
                requester_vt: vt.clone(),
                prefetch: false,
                want_page: false,
            },
            Msg::DiffReply {
                page: 0,
                diffs: Default::default(),
                full_page: None,
                prefetch: false,
            },
            Msg::BarrierArrive {
                barrier: 0,
                from: 0,
                vt: vt.clone(),
                anns: Default::default(),
                horizons: Vec::new(),
            },
            Msg::BarrierRelease {
                barrier: 0,
                vt,
                anns: Default::default(),
                update_horizon: 0,
            },
            Msg::AurcUpdate { page: 0, from: 0 },
            Msg::AurcPageReq {
                page: 0,
                requester: 0,
                prefetch: false,
            },
            Msg::AurcPageReply {
                page: 0,
                prefetch: false,
            },
        ];
        let kinds: Vec<MsgKind> = msgs.iter().map(|m| m.kind()).collect();
        let mut unique = kinds.clone();
        unique.sort();
        unique.dedup();
        assert_eq!(unique.len(), msgs.len(), "kinds must be distinct");
    }

    #[test]
    fn violations_render_with_context() {
        let v = Violation::Race {
            first_pid: 0,
            first_write: true,
            second_pid: 3,
            second_write: false,
            addr: 0x1000,
        };
        let s = v.to_string();
        assert!(
            s.contains("race") && s.contains("P0") && s.contains("P3"),
            "{s}"
        );
        let c = Violation::MessageConservation {
            detail: "lost reply".into(),
        };
        assert!(c.to_string().contains("lost reply"));
    }
}
