//! Lock and barrier machinery shared by TreadMarks and AURC.
//!
//! Locks are distributed: a static manager (`lock mod nprocs`) forwards each
//! acquire to the last owner, which replies directly to the acquirer with
//! the write notices (interval announcements) the acquirer has not seen.
//! Barriers are centralized at `barrier mod nprocs`: arrivals carry the
//! intervals created since the last barrier, the manager merges and
//! rebroadcasts. Interval/write-notice processing is "complicated" protocol
//! work and always runs on the computation processor (§3.2), even with a
//! protocol controller.

use ncp2_sim::ops::{BarrierId, LockId};
use ncp2_sim::{Category, Cycles};

use crate::interval::{AnnList, IntervalAnnouncement};
use crate::msg::Msg;
use crate::protocol::Protocol;
use crate::span::SpanKind;
use crate::system::{BarrierState, Simulation, Wait};
use crate::vtime::VectorTime;

impl Simulation {
    // ----- processor-issued operations ------------------------------------

    pub(crate) fn op_lock(&mut self, pid: usize, lock: LockId) {
        let manager = lock as usize % self.params.nprocs;
        self.advance(
            pid,
            self.params.list_processing,
            Category::Synch,
            SpanKind::NoticeMgmt,
        );
        let msg = Msg::LockReq {
            lock,
            acquirer: pid,
            vt: self.nodes[pid].vt.clone(),
        };
        let mut t = self.nodes[pid].time;
        self.send_msg(&mut t, pid, manager, msg, Category::Synch, false);
        self.block(pid, Wait::Lock { lock });
    }

    pub(crate) fn op_unlock(&mut self, pid: usize, lock: LockId) {
        #[cfg(feature = "verify")]
        self.emit(crate::observe::ProtocolEvent::LockReleased { pid, lock });
        if matches!(self.protocol, Protocol::Aurc { .. }) {
            self.aurc_flush_wcache(pid, Category::Synch);
        }
        self.close_interval(pid);
        self.nodes[pid].held_locks.remove(lock);
        let waiter = self.nodes[pid]
            .lock_queue
            .get_mut(lock)
            .and_then(|q| q.pop_front());
        if let Some((acquirer, vt)) = waiter {
            self.nodes[pid].owned_locks.remove(lock);
            let t = self.nodes[pid].time;
            self.grant_lock(pid, t, lock, acquirer, &vt, false);
        }
    }

    pub(crate) fn op_barrier(&mut self, pid: usize, barrier: BarrierId) {
        let manager = barrier as usize % self.params.nprocs;
        if matches!(self.protocol, Protocol::Aurc { .. }) {
            self.aurc_flush_wcache(pid, Category::Synch);
        }
        self.close_interval(pid);
        #[cfg(feature = "verify")]
        self.emit(crate::observe::ProtocolEvent::BarrierArrived { pid, barrier });
        let anns = self.nodes[pid]
            .store
            .missing_for(&self.nodes[pid].last_barrier_vt.clone());
        self.advance(
            pid,
            self.params.list_processing * (anns.len() as Cycles + 1),
            Category::Synch,
            SpanKind::NoticeMgmt,
        );
        let horizons = match self.protocol {
            Protocol::Aurc { .. } => self.nodes[pid].out_horizon.clone(),
            Protocol::TreadMarks(_) => Vec::new(),
        };
        let msg = Msg::BarrierArrive {
            barrier,
            from: pid,
            vt: self.nodes[pid].vt.clone(),
            anns,
            horizons,
        };
        let mut t = self.nodes[pid].time;
        self.send_msg(&mut t, pid, manager, msg, Category::Synch, false);
        self.block(pid, Wait::Barrier);
    }

    /// Closes the open interval if it dirtied anything: bumps the vector
    /// time, records the announcement, and prepares diffs per protocol
    /// (write-protect + lazy twins in software modes, eager DMA diffs in the
    /// hardware-diff modes, nothing in AURC).
    pub(crate) fn close_interval(&mut self, pid: usize) {
        if self.nodes[pid].cur_dirty.is_empty() {
            return;
        }
        let id = self.nodes[pid].vt.bump(pid);
        let pages = std::mem::take(&mut self.nodes[pid].cur_dirty);
        match self.protocol {
            Protocol::TreadMarks(_) => self.tm_close_pages(pid, id, &pages),
            Protocol::Aurc { .. } => {
                for &page in &pages {
                    if let Some(lp) = self.nodes[pid].aurc_pages.get_mut(page) {
                        lp.set_in_cur_dirty(false);
                    }
                }
            }
        }
        #[cfg(feature = "verify")]
        self.emit(crate::observe::ProtocolEvent::IntervalClosed {
            pid,
            id,
            vt: self.nodes[pid].vt.clone(),
            pages: pages.clone(),
        });
        let ann = IntervalAnnouncement {
            owner: pid,
            id,
            vt: self.nodes[pid].vt.clone(),
            pages,
        };
        self.nodes[pid].store.record(ann);
    }

    // ----- message handlers -----------------------------------------------

    pub(crate) fn on_lock_req(
        &mut self,
        manager: usize,
        t: Cycles,
        lock: LockId,
        acquirer: usize,
        vt: VectorTime,
    ) {
        let c = self.interrupt_proc(
            manager,
            t,
            self.params.interrupt + self.params.list_processing,
            Category::Ipc,
            SpanKind::Service,
        );
        let last = match self.lock_last.get(lock) {
            Some(&l) => l,
            None => {
                // First touch: the manager holds the grant token.
                self.lock_last.insert(lock, manager);
                self.nodes[manager].owned_locks.insert(lock);
                manager
            }
        };
        if last == acquirer {
            // Re-acquire with no intervening owner: nothing new to learn.
            let msg = Msg::LockGrant {
                lock,
                anns: AnnList::new(),
                update_horizon: 0,
            };
            let mut tc = c;
            self.send_msg(&mut tc, manager, acquirer, msg, Category::Ipc, true);
        } else {
            self.lock_last.insert(lock, acquirer);
            // The grant token leaves `last` for a different node: an owner
            // migration, the expensive case the hot-spot table counts.
            self.ts_lock(lock as u64, 0, 0, 1);
            let msg = Msg::LockForward { lock, acquirer, vt };
            let mut tc = c;
            self.send_msg(&mut tc, manager, last, msg, Category::Ipc, true);
        }
    }

    pub(crate) fn on_lock_forward(
        &mut self,
        holder: usize,
        t: Cycles,
        lock: LockId,
        acquirer: usize,
        vt: VectorTime,
    ) {
        let can_grant = self.nodes[holder].owned_locks.contains(lock)
            && !self.nodes[holder].held_locks.contains(lock);
        let c = self.interrupt_proc(
            holder,
            t,
            self.params.interrupt,
            Category::Ipc,
            SpanKind::Service,
        );
        if can_grant {
            self.nodes[holder].owned_locks.remove(lock);
            self.grant_lock(holder, c, lock, acquirer, &vt, true);
        } else {
            // Still inside (or still waiting for) the critical section: the
            // request waits here and is granted at the next unlock.
            let depth = {
                let q = self.nodes[holder].lock_queue.get_or_default(lock);
                q.push_back((acquirer, vt));
                q.len() as u64
            };
            self.ts_gauge(crate::timeseries::TsGauge::LockWaiters, c, depth);
        }
    }

    /// Computes and ships a lock grant from `holder` to `acquirer`, starting
    /// at time `t`. `servicing` is true when the holder reacts to a
    /// forwarded request (IPC) rather than granting at its own unlock
    /// (Synch).
    pub(crate) fn grant_lock(
        &mut self,
        holder: usize,
        t: Cycles,
        lock: LockId,
        acquirer: usize,
        acquirer_vt: &VectorTime,
        servicing: bool,
    ) {
        let anns = self.nodes[holder].store.missing_for(acquirer_vt);
        let work = self.params.list_processing * (anns.len() as Cycles + 1);
        let (mut t, cat) = if servicing {
            (
                self.interrupt_proc(holder, t, work, Category::Ipc, SpanKind::Service),
                Category::Ipc,
            )
        } else {
            self.advance(holder, work, Category::Synch, SpanKind::NoticeMgmt);
            (self.nodes[holder].time, Category::Synch)
        };
        let update_horizon = match self.protocol {
            Protocol::Aurc { .. } => self.nodes[holder].out_horizon[acquirer],
            Protocol::TreadMarks(_) => 0,
        };
        let msg = Msg::LockGrant {
            lock,
            anns,
            update_horizon,
        };
        self.send_msg(&mut t, holder, acquirer, msg, cat, servicing);
    }

    pub(crate) fn on_lock_grant(
        &mut self,
        acquirer: usize,
        t: Cycles,
        lock: LockId,
        anns: AnnList,
        update_horizon: Cycles,
    ) {
        debug_assert!(
            matches!(self.nodes[acquirer].wait, Wait::Lock { lock: l } if l == lock),
            "grant for a lock {lock} processor {acquirer} is not waiting on"
        );
        #[cfg(feature = "verify")]
        self.emit(crate::observe::ProtocolEvent::LockAcquired {
            pid: acquirer,
            lock,
        });
        let mut end = self.process_anns(acquirer, &anns, t);
        end = self.issue_prefetches(acquirer, end);
        self.nodes[acquirer].held_locks.insert(lock);
        self.nodes[acquirer].owned_locks.insert(lock);
        self.nodes[acquirer].stats.lock_acquires += 1;
        self.ts_count(crate::timeseries::TsCounter::LockAcquires, t, 1);
        self.ts_lock(lock as u64, 0, 1, 0);
        let wake = end.max(update_horizon);
        self.record(
            wake,
            acquirer,
            crate::trace::TraceKind::LockAcquired { lock },
        );
        self.obs_edge(
            crate::span::EdgeKind::LockGrant,
            acquirer,
            t,
            acquirer,
            wake,
            0,
            self.obs_last_span(acquirer),
        );
        self.schedule_wake(acquirer, wake);
    }

    #[allow(clippy::too_many_arguments)]
    pub(crate) fn on_barrier_arrive(
        &mut self,
        manager: usize,
        t: Cycles,
        barrier: BarrierId,
        from: usize,
        vt: VectorTime,
        mut anns: AnnList,
        horizons: Vec<Cycles>,
    ) {
        let n = self.params.nprocs;
        let mut c = self.interrupt_proc(
            manager,
            t,
            self.params.interrupt + self.params.list_processing * (anns.len() as Cycles + 1),
            Category::Ipc,
            SpanKind::Service,
        );
        let bs = self.barriers.get_or_insert_with(barrier, || BarrierState {
            arrived: 0,
            merged_vt: None,
            anns: crate::interval::IntervalStore::new(),
            horizons: vec![Vec::new(); n],
        });
        for ann in anns.drain() {
            bs.anns.record(ann);
        }
        match &mut bs.merged_vt {
            Some(m) => m.merge(&vt),
            slot => *slot = Some(vt),
        }
        bs.horizons[from] = horizons;
        bs.arrived += 1;
        let arrived = bs.arrived;
        self.ts_gauge(
            crate::timeseries::TsGauge::BarrierWaiters,
            c,
            arrived as u64,
        );
        if arrived < n {
            return;
        }
        // Last arrival: release everyone.
        let bs = self
            .barriers
            .remove(barrier)
            // invariant: this is the nth arrival, so the state the first
            // arrival created is still present
            .expect("barrier state exists");
        // invariant: every arrival merges its vector time before this point
        let merged = bs.merged_vt.expect("at least one arrival");
        let all_anns = std::sync::Arc::new(bs.anns.all());
        for k in 0..n {
            let update_horizon = bs
                .horizons
                .iter()
                .filter(|h| !h.is_empty())
                .map(|h| h[k])
                .max()
                .unwrap_or(0);
            let msg = Msg::BarrierRelease {
                barrier,
                vt: merged.clone(),
                anns: std::sync::Arc::clone(&all_anns),
                update_horizon,
            };
            self.send_msg(&mut c, manager, k, msg, Category::Ipc, true);
        }
    }

    pub(crate) fn on_barrier_release(
        &mut self,
        pid: usize,
        t: Cycles,
        vt: VectorTime,
        anns: std::sync::Arc<AnnList>,
        update_horizon: Cycles,
    ) {
        debug_assert!(
            matches!(self.nodes[pid].wait, Wait::Barrier),
            "release for a barrier processor {pid} is not waiting on"
        );
        let mut end = self.process_anns(pid, &anns, t);
        let nd = &mut self.nodes[pid];
        nd.vt.merge(&vt);
        // The merged time is a floor every processor's vector time now
        // covers, so the intervals it covers can never again appear in a
        // `missing_for` result — collect them (TreadMarks GCs interval
        // records at barriers). Host-side only: message contents and
        // list-processing costs are computed from coverage-filtered sets
        // that never included these records.
        nd.store.gc_covered(&vt);
        nd.last_barrier_vt = vt;
        end = self.issue_prefetches(pid, end);
        self.nodes[pid].stats.barriers += 1;
        self.ts_count(crate::timeseries::TsCounter::Barriers, t, 1);
        let wake = end.max(update_horizon);
        self.record(wake, pid, crate::trace::TraceKind::BarrierReleased);
        self.obs_edge(
            crate::span::EdgeKind::BarrierRelease,
            pid,
            t,
            pid,
            wake,
            0,
            self.obs_last_span(pid),
        );
        self.schedule_wake(pid, wake);
    }

    // ----- protocol dispatch ----------------------------------------------

    /// Applies a batch of interval announcements at `pid` starting at `t`:
    /// records them, merges the vector time and invalidates named pages.
    /// Returns the completion time of the processor-side processing.
    pub(crate) fn process_anns(
        &mut self,
        pid: usize,
        anns: &[IntervalAnnouncement],
        t: Cycles,
    ) -> Cycles {
        match self.protocol {
            Protocol::TreadMarks(_) => self.tm_process_anns(pid, anns, t),
            Protocol::Aurc { .. } => self.aurc_process_anns(pid, anns, t),
        }
    }

    /// Issues acquire-time prefetches when the protocol calls for them.
    /// Returns the (possibly extended) completion time.
    pub(crate) fn issue_prefetches(&mut self, pid: usize, t: Cycles) -> Cycles {
        if !self.protocol.prefetch() {
            return t;
        }
        match self.protocol {
            Protocol::TreadMarks(_) => self.tm_issue_prefetches(pid, t),
            Protocol::Aurc { .. } => self.aurc_issue_prefetches(pid, t),
        }
    }
}
