//! Vector timestamps for lazy release consistency.
//!
//! TreadMarks divides each processor's execution into *intervals* delimited
//! by synchronization operations and stamps each with a vector timestamp
//! describing the partial order between intervals of different processors
//! (§2 of the paper). `vt[i] = k` means "this point in logical time has seen
//! intervals `1..=k` of processor `i`".

use serde::{Deserialize, Serialize};

/// Per-processor interval sequence number (interval 0 = "nothing seen").
pub type IntervalId = u32;

/// A vector timestamp over `n` processors.
///
/// ```
/// use ncp2_core::vtime::VectorTime;
/// let mut a = VectorTime::new(3);
/// a.bump(0); // processor 0 closes its first interval
/// let mut b = VectorTime::new(3);
/// assert!(!b.covers_interval(0, 1));
/// b.merge(&a);
/// assert!(b.covers_interval(0, 1));
/// ```
#[derive(Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct VectorTime(Vec<IntervalId>);

impl Clone for VectorTime {
    fn clone(&self) -> Self {
        // Vector times are cloned onto every synchronization message; the
        // component array is recycled through the thread-local pool.
        let mut v = crate::pool::take_clock();
        v.extend_from_slice(&self.0);
        VectorTime(v)
    }
}

impl Drop for VectorTime {
    fn drop(&mut self) {
        crate::pool::put_clock(std::mem::take(&mut self.0));
    }
}

impl VectorTime {
    /// The zero timestamp for `n` processors.
    pub fn new(n: usize) -> Self {
        let mut v = crate::pool::take_clock();
        v.resize(n, 0);
        VectorTime(v)
    }

    /// Number of processors this timestamp spans.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the timestamp spans zero processors (never in practice).
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Latest seen interval of processor `p`.
    pub fn get(&self, p: usize) -> IntervalId {
        self.0[p]
    }

    /// Records that interval `ivl` of processor `p` has been seen. Intervals
    /// are seen in order along any causal chain, so this is a `max`.
    pub fn observe(&mut self, p: usize, ivl: IntervalId) {
        self.0[p] = self.0[p].max(ivl);
    }

    /// Starts processor `p`'s next interval; returns its id.
    pub fn bump(&mut self, p: usize) -> IntervalId {
        self.0[p] += 1;
        self.0[p]
    }

    /// Component-wise maximum with `other` (the acquire-time merge).
    pub fn merge(&mut self, other: &VectorTime) {
        assert_eq!(self.0.len(), other.0.len(), "vector time length mismatch");
        for (a, b) in self.0.iter_mut().zip(&other.0) {
            *a = (*a).max(*b);
        }
    }

    /// Whether this timestamp has seen interval `ivl` of processor `p`.
    pub fn covers_interval(&self, p: usize, ivl: IntervalId) -> bool {
        self.0[p] >= ivl
    }

    /// Whether every component of `other` is covered by `self`
    /// (`other ≤ self` in the interval lattice).
    pub fn covers(&self, other: &VectorTime) -> bool {
        assert_eq!(self.0.len(), other.0.len(), "vector time length mismatch");
        self.0.iter().zip(&other.0).all(|(a, b)| a >= b)
    }

    /// Iterator over `(processor, latest interval)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, IntervalId)> + '_ {
        self.0.iter().copied().enumerate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_is_componentwise_max() {
        let mut a = VectorTime::new(4);
        a.observe(0, 3);
        a.observe(2, 1);
        let mut b = VectorTime::new(4);
        b.observe(1, 2);
        b.observe(2, 5);
        a.merge(&b);
        assert_eq!(a.get(0), 3);
        assert_eq!(a.get(1), 2);
        assert_eq!(a.get(2), 5);
        assert_eq!(a.get(3), 0);
    }

    #[test]
    fn covers_is_a_partial_order() {
        let mut a = VectorTime::new(2);
        let mut b = VectorTime::new(2);
        a.observe(0, 1);
        b.observe(1, 1);
        // Concurrent: neither covers the other.
        assert!(!a.covers(&b));
        assert!(!b.covers(&a));
        let mut c = a.clone();
        c.merge(&b);
        assert!(c.covers(&a) && c.covers(&b));
        // Reflexive.
        assert!(c.covers(&c));
    }

    #[test]
    fn bump_sequences_intervals() {
        let mut a = VectorTime::new(1);
        assert_eq!(a.bump(0), 1);
        assert_eq!(a.bump(0), 2);
        assert!(a.covers_interval(0, 2));
        assert!(!a.covers_interval(0, 3));
    }

    #[test]
    fn merge_idempotent_and_commutative() {
        let mut a = VectorTime::new(3);
        a.observe(0, 7);
        a.observe(1, 2);
        let mut b = VectorTime::new(3);
        b.observe(1, 4);
        b.observe(2, 9);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        let mut abb = ab.clone();
        abb.merge(&b);
        assert_eq!(ab, abb);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let mut a = VectorTime::new(2);
        let b = VectorTime::new(3);
        a.merge(&b);
    }
}
