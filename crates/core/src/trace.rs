//! Optional protocol event tracing.
//!
//! When [`ncp2_sim::SysParams::trace`] is set, the simulation records one
//! [`TraceEvent`] per protocol-level action (message injections, faults,
//! page fetches, lock grants, barrier releases, prefetch issues). The trace
//! is returned on [`crate::RunResult::trace`] and renders to CSV for
//! timeline inspection — the moral equivalent of the protocol traces the
//! paper's back end produced for debugging.

use ncp2_sim::Cycles;
use serde::{Deserialize, Serialize};

/// What happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceKind {
    /// A protocol message was injected into the network.
    MsgSent {
        /// Destination node.
        dst: usize,
        /// Wire size in bytes.
        bytes: u64,
        /// Whether it belongs to a prefetch transaction.
        prefetch: bool,
    },
    /// An access fault began collecting diffs / fetching a page.
    Fault {
        /// Faulting page.
        page: u64,
    },
    /// A whole page was fetched (TreadMarks overflow path or AURC).
    PageFetched {
        /// The page.
        page: u64,
    },
    /// A lock was acquired (grant processed, processor about to wake).
    LockAcquired {
        /// The lock.
        lock: u32,
    },
    /// A barrier released this node.
    BarrierReleased,
    /// An acquire-time prefetch was issued.
    PrefetchIssued {
        /// Target page.
        page: u64,
    },
}

/// One timestamped protocol event at one node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Simulated time (cycles).
    pub time: Cycles,
    /// Node the event belongs to.
    pub node: usize,
    /// The event.
    pub kind: TraceKind,
}

/// Renders a trace as CSV (`time,node,kind,arg1,arg2`).
///
/// ```
/// use ncp2_core::trace::{trace_csv, TraceEvent, TraceKind};
/// let t = vec![TraceEvent { time: 5, node: 1, kind: TraceKind::Fault { page: 9 } }];
/// let csv = trace_csv(&t);
/// assert!(csv.starts_with("time,node,kind"));
/// assert!(csv.contains("5,1,fault,9,"));
/// ```
pub fn trace_csv(events: &[TraceEvent]) -> String {
    let mut out = String::from("time,node,kind,arg1,arg2\n");
    for e in events {
        let (kind, a1, a2) = match e.kind {
            TraceKind::MsgSent {
                dst,
                bytes,
                prefetch,
            } => (
                "msg_sent",
                dst as u64,
                if prefetch { bytes | 1 << 63 } else { bytes },
            ),
            TraceKind::Fault { page } => ("fault", page, 0),
            TraceKind::PageFetched { page } => ("page_fetched", page, 0),
            TraceKind::LockAcquired { lock } => ("lock_acquired", lock as u64, 0),
            TraceKind::BarrierReleased => ("barrier_released", 0, 0),
            TraceKind::PrefetchIssued { page } => ("prefetch_issued", page, 0),
        };
        out.push_str(&format!("{},{},{},{},{}\n", e.time, e.node, kind, a1, a2));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_has_one_row_per_event() {
        let events = vec![
            TraceEvent {
                time: 1,
                node: 0,
                kind: TraceKind::BarrierReleased,
            },
            TraceEvent {
                time: 2,
                node: 3,
                kind: TraceKind::LockAcquired { lock: 7 },
            },
            TraceEvent {
                time: 3,
                node: 2,
                kind: TraceKind::MsgSent {
                    dst: 1,
                    bytes: 64,
                    prefetch: false,
                },
            },
        ];
        let csv = trace_csv(&events);
        assert_eq!(csv.lines().count(), 4);
        assert!(csv.contains("2,3,lock_acquired,7,0"));
        assert!(csv.contains("3,2,msg_sent,1,64"));
    }

    #[test]
    fn empty_trace_is_just_a_header() {
        assert_eq!(trace_csv(&[]).lines().count(), 1);
    }
}
