//! Optional protocol event tracing.
//!
//! When [`ncp2_sim::SysParams::trace`] is set, the simulation records one
//! [`TraceEvent`] per protocol-level action (message injections, faults,
//! page fetches, diff creation/application, lock grants, barrier releases,
//! prefetch issues/completions, controller commands). The trace is returned
//! on [`crate::RunResult::trace`] and renders to CSV for timeline inspection
//! — the moral equivalent of the protocol traces the paper's back end
//! produced for debugging. The same event stream feeds the `ncp2-obs`
//! Perfetto exporter, so CSV and Perfetto views always agree.

use ncp2_sim::Cycles;
use serde::{Deserialize, Serialize};

use crate::span::CtrlCmd;

/// What happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceKind {
    /// A protocol message was injected into the network.
    MsgSent {
        /// Destination node.
        dst: usize,
        /// Wire size in bytes.
        bytes: u64,
        /// Whether it belongs to a prefetch transaction.
        prefetch: bool,
    },
    /// An access fault began collecting diffs / fetching a page.
    Fault {
        /// Faulting page.
        page: u64,
    },
    /// A whole page was fetched (TreadMarks overflow path or AURC).
    PageFetched {
        /// The page.
        page: u64,
    },
    /// A diff was generated over a dirty page.
    DiffCreated {
        /// The page.
        page: u64,
        /// Modified words captured by the diff.
        words: u64,
    },
    /// Collected diffs were applied to a local page copy.
    DiffApplied {
        /// The page.
        page: u64,
        /// Total modified words applied.
        words: u64,
    },
    /// A lock was acquired (grant processed, processor about to wake).
    LockAcquired {
        /// The lock.
        lock: u32,
    },
    /// A barrier released this node.
    BarrierReleased,
    /// An acquire-time prefetch was issued.
    PrefetchIssued {
        /// Target page.
        page: u64,
    },
    /// A previously issued prefetch finished installing its page.
    PrefetchCompleted {
        /// The page.
        page: u64,
    },
    /// The protocol controller executed a command on the node's behalf.
    ControllerCommand {
        /// The command class.
        cmd: CtrlCmd,
    },
    /// A transport frame's ack timer expired (a retransmission follows).
    RetransmitTimeout {
        /// Destination of the unacknowledged frame.
        dst: usize,
        /// Link-local sequence number of the frame.
        seq: u64,
    },
    /// The transport retransmitted an unacknowledged frame.
    Retransmit {
        /// Destination of the frame.
        dst: usize,
        /// Link-local sequence number of the frame.
        seq: u64,
        /// Attempt number after the bump (1 = first retransmission).
        attempt: u32,
    },
    /// The transport discarded an already-delivered duplicate frame.
    DuplicateDropped {
        /// Sender of the duplicate.
        src: usize,
        /// Link-local sequence number of the duplicate.
        seq: u64,
    },
    /// The degradation policy shed a prefetch command under congestion.
    PrefetchShed {
        /// The page whose prefetch was shed.
        page: u64,
    },
    /// The service workload dequeued a request for service.
    SvcDequeue {
        /// Backlog (arrived, not yet served) at this node after the dequeue.
        depth: u64,
    },
    /// The service workload completed a request.
    SvcReply {
        /// Request class.
        class: ncp2_sim::SvcClass,
        /// Open-loop response time in cycles (completion minus arrival).
        response: Cycles,
    },
}

/// One timestamped protocol event at one node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Simulated time (cycles).
    pub time: Cycles,
    /// Node the event belongs to.
    pub node: usize,
    /// The event.
    pub kind: TraceKind,
}

/// Renders a trace as CSV (`time,node,kind,arg1,arg2,prefetch`).
///
/// The `prefetch` column is 1 for events belonging to a prefetch
/// transaction (prefetch-tagged messages, prefetch issues/completions) and
/// 0 otherwise; `msg_sent` rows carry the destination in `arg1` and the
/// *unmodified* byte count in `arg2`.
///
/// ```
/// use ncp2_core::trace::{trace_csv, TraceEvent, TraceKind};
/// let t = vec![TraceEvent { time: 5, node: 1, kind: TraceKind::Fault { page: 9 } }];
/// let csv = trace_csv(&t);
/// assert!(csv.starts_with("time,node,kind"));
/// assert!(csv.contains("5,1,fault,9,"));
/// ```
pub fn trace_csv(events: &[TraceEvent]) -> String {
    let mut out = String::from("time,node,kind,arg1,arg2,prefetch\n");
    for e in events {
        let (kind, a1, a2, pf) = match e.kind {
            TraceKind::MsgSent {
                dst,
                bytes,
                prefetch,
            } => ("msg_sent".into(), dst as u64, bytes, prefetch),
            TraceKind::Fault { page } => ("fault".into(), page, 0, false),
            TraceKind::PageFetched { page } => ("page_fetched".into(), page, 0, false),
            TraceKind::DiffCreated { page, words } => ("diff_created".into(), page, words, false),
            TraceKind::DiffApplied { page, words } => ("diff_applied".into(), page, words, false),
            TraceKind::LockAcquired { lock } => ("lock_acquired".into(), lock as u64, 0, false),
            TraceKind::BarrierReleased => ("barrier_released".into(), 0, 0, false),
            TraceKind::PrefetchIssued { page } => ("prefetch_issued".into(), page, 0, true),
            TraceKind::PrefetchCompleted { page } => ("prefetch_completed".into(), page, 0, true),
            TraceKind::ControllerCommand { cmd } => (format!("ctrl_{}", cmd.label()), 0, 0, false),
            TraceKind::RetransmitTimeout { dst, seq } => {
                ("retransmit_timeout".into(), dst as u64, seq, false)
            }
            TraceKind::Retransmit { seq, attempt, .. } => {
                ("retransmit".into(), seq, attempt as u64, false)
            }
            TraceKind::DuplicateDropped { src, seq } => {
                ("duplicate_dropped".into(), src as u64, seq, false)
            }
            TraceKind::PrefetchShed { page } => ("prefetch_shed".into(), page, 0, true),
            TraceKind::SvcDequeue { depth } => ("svc_dequeue".into(), depth, 0, false),
            TraceKind::SvcReply { class, response } => {
                (format!("svc_reply_{}", class.label()), response, 0, false)
            }
        };
        out.push_str(&format!(
            "{},{},{},{},{},{}\n",
            e.time,
            e.node,
            kind,
            a1,
            a2,
            u64::from(pf)
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_has_one_row_per_event() {
        let events = vec![
            TraceEvent {
                time: 1,
                node: 0,
                kind: TraceKind::BarrierReleased,
            },
            TraceEvent {
                time: 2,
                node: 3,
                kind: TraceKind::LockAcquired { lock: 7 },
            },
            TraceEvent {
                time: 3,
                node: 2,
                kind: TraceKind::MsgSent {
                    dst: 1,
                    bytes: 64,
                    prefetch: false,
                },
            },
        ];
        let csv = trace_csv(&events);
        assert_eq!(csv.lines().count(), 4);
        assert!(csv.contains("2,3,lock_acquired,7,0,0"));
        assert!(csv.contains("3,2,msg_sent,1,64,0"));
    }

    #[test]
    fn prefetch_flag_is_its_own_column_not_bit_63() {
        let events = vec![
            TraceEvent {
                time: 4,
                node: 0,
                kind: TraceKind::MsgSent {
                    dst: 2,
                    bytes: 4096,
                    prefetch: true,
                },
            },
            TraceEvent {
                time: 9,
                node: 0,
                kind: TraceKind::PrefetchCompleted { page: 3 },
            },
        ];
        let csv = trace_csv(&events);
        assert!(csv.contains("4,0,msg_sent,2,4096,1"), "{csv}");
        assert!(csv.contains("9,0,prefetch_completed,3,0,1"), "{csv}");
        assert!(!csv.contains(&(4096u64 | 1 << 63).to_string()));
    }

    #[test]
    fn new_event_kinds_render() {
        let events = vec![
            TraceEvent {
                time: 1,
                node: 1,
                kind: TraceKind::DiffCreated { page: 5, words: 12 },
            },
            TraceEvent {
                time: 2,
                node: 1,
                kind: TraceKind::DiffApplied { page: 5, words: 12 },
            },
            TraceEvent {
                time: 3,
                node: 1,
                kind: TraceKind::ControllerCommand {
                    cmd: CtrlCmd::DiffCreate,
                },
            },
        ];
        let csv = trace_csv(&events);
        assert!(csv.contains("1,1,diff_created,5,12,0"));
        assert!(csv.contains("2,1,diff_applied,5,12,0"));
        assert!(csv.contains("3,1,ctrl_diff_create,0,0,0"));
    }

    #[test]
    fn empty_trace_is_just_a_header() {
        assert_eq!(trace_csv(&[]).lines().count(), 1);
    }

    #[test]
    fn transport_event_kinds_render() {
        let events = vec![
            TraceEvent {
                time: 10,
                node: 0,
                kind: TraceKind::RetransmitTimeout { dst: 3, seq: 7 },
            },
            TraceEvent {
                time: 11,
                node: 0,
                kind: TraceKind::Retransmit {
                    dst: 3,
                    seq: 7,
                    attempt: 2,
                },
            },
            TraceEvent {
                time: 12,
                node: 3,
                kind: TraceKind::DuplicateDropped { src: 0, seq: 7 },
            },
            TraceEvent {
                time: 13,
                node: 1,
                kind: TraceKind::PrefetchShed { page: 42 },
            },
        ];
        let csv = trace_csv(&events);
        assert!(csv.contains("10,0,retransmit_timeout,3,7,0"), "{csv}");
        assert!(csv.contains("11,0,retransmit,7,2,0"), "{csv}");
        assert!(csv.contains("12,3,duplicate_dropped,0,7,0"), "{csv}");
        assert!(csv.contains("13,1,prefetch_shed,42,0,1"), "{csv}");
    }

    #[test]
    fn service_event_kinds_render() {
        let events = vec![
            TraceEvent {
                time: 20,
                node: 2,
                kind: TraceKind::SvcDequeue { depth: 5 },
            },
            TraceEvent {
                time: 25,
                node: 2,
                kind: TraceKind::SvcReply {
                    class: ncp2_sim::SvcClass::Session,
                    response: 450,
                },
            },
        ];
        let csv = trace_csv(&events);
        assert!(csv.contains("20,2,svc_dequeue,5,0,0"), "{csv}");
        assert!(csv.contains("25,2,svc_reply_session,450,0,0"), "{csv}");
    }
}
