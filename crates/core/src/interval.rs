//! Intervals and write notices.
//!
//! An interval is the span of one processor's execution between two
//! synchronization operations; a write notice announces "page *p* was
//! modified in interval *i* of processor *q*". Acquiring processors
//! invalidate pages named by notices whose intervals they have not yet seen
//! (§2 of the paper).

use std::collections::VecDeque;

use crate::page::PageId;
use crate::vtime::{IntervalId, VectorTime};

/// A write notice: one page dirtied by one interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Notice {
    /// The modified page.
    pub page: PageId,
    /// The processor that modified it.
    pub owner: usize,
    /// The owner's interval in which the modification happened.
    pub interval: IntervalId,
}

/// A full interval announcement as shipped on lock-grant and barrier
/// messages: identity, timestamp and the pages it dirtied.
#[derive(Debug, PartialEq, Eq)]
pub struct IntervalAnnouncement {
    /// Processor that created the interval.
    pub owner: usize,
    /// Its per-owner sequence number.
    pub id: IntervalId,
    /// Vector time at the interval's close.
    pub vt: VectorTime,
    /// Pages dirtied during the interval.
    pub pages: Vec<PageId>,
}

impl Clone for IntervalAnnouncement {
    fn clone(&self) -> Self {
        // Announcements are cloned onto every lock grant and barrier
        // broadcast (O(n) copies per barrier); the page list is recycled
        // through the thread-local pool.
        let mut pages = crate::pool::take_ids();
        pages.extend_from_slice(&self.pages);
        IntervalAnnouncement {
            owner: self.owner,
            id: self.id,
            vt: self.vt.clone(),
            pages,
        }
    }
}

impl Drop for IntervalAnnouncement {
    fn drop(&mut self) {
        crate::pool::put_ids(std::mem::take(&mut self.pages));
    }
}

impl IntervalAnnouncement {
    /// The write notices this interval induces.
    pub fn notices(&self) -> impl Iterator<Item = Notice> + '_ {
        self.pages.iter().map(|&page| Notice {
            page,
            owner: self.owner,
            interval: self.id,
        })
    }

    /// Wire size contribution (8 B per page + 24 B of identity/timestamp
    /// summary; vector times are run-length coded in real systems).
    pub fn encoded_bytes(&self) -> u64 {
        24 + 8 * self.pages.len() as u64
    }
}

/// A pooled list of interval announcements — the payload of lock grants
/// and barrier traffic, and the result type of [`IntervalStore`] queries.
/// The backing storage recycles through [`crate::pool`]; clearing it also
/// drops each announcement, returning *its* pooled internals.
#[derive(Debug, PartialEq, Eq)]
pub struct AnnList(Vec<IntervalAnnouncement>);

impl Default for AnnList {
    fn default() -> Self {
        AnnList(crate::pool::take_anns())
    }
}

impl Clone for AnnList {
    fn clone(&self) -> Self {
        let mut v = crate::pool::take_anns();
        v.extend(self.0.iter().cloned());
        AnnList(v)
    }
}

impl Drop for AnnList {
    fn drop(&mut self) {
        crate::pool::put_anns(std::mem::take(&mut self.0));
    }
}

impl std::ops::Deref for AnnList {
    type Target = [IntervalAnnouncement];
    fn deref(&self) -> &[IntervalAnnouncement] {
        &self.0
    }
}

impl AnnList {
    /// An empty, pool-backed list.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one announcement.
    pub fn push(&mut self, ann: IntervalAnnouncement) {
        self.0.push(ann);
    }

    /// Moves every announcement out, leaving the container empty (and
    /// still pool-backed).
    pub fn drain(&mut self) -> std::vec::Drain<'_, IntervalAnnouncement> {
        self.0.drain(..)
    }
}

/// A pooled list of interval ids — the per-writer payload of a diff
/// request.
#[derive(Debug, PartialEq, Eq)]
pub struct IvlList(Vec<IntervalId>);

impl Default for IvlList {
    fn default() -> Self {
        IvlList(crate::pool::take_clock())
    }
}

impl Clone for IvlList {
    fn clone(&self) -> Self {
        let mut v = crate::pool::take_clock();
        v.extend_from_slice(&self.0);
        IvlList(v)
    }
}

impl Drop for IvlList {
    fn drop(&mut self) {
        crate::pool::put_clock(std::mem::take(&mut self.0));
    }
}

impl std::ops::Deref for IvlList {
    type Target = [IntervalId];
    fn deref(&self) -> &[IntervalId] {
        &self.0
    }
}

impl IvlList {
    /// An empty, pool-backed list.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one interval id.
    pub fn push(&mut self, ivl: IntervalId) {
        self.0.push(ivl);
    }
}

/// Every interval a node has learned about (its own and others'). Used to
/// compute the announcements a releaser must ship to an acquirer, and
/// garbage-collected at barriers.
///
/// Laid out struct-of-arrays style: one id-ordered run per owner instead
/// of a `BTreeMap` keyed by `(owner, id)`. Along any causal chain a node
/// learns an owner's intervals in increasing id order, so `record` is an
/// amortized O(1) `push_back`, coverage queries are prefix splits, and the
/// barrier GC pops from the front — all without per-entry tree nodes, which
/// dominated the allocator profile at 256 nodes.
#[derive(Debug, Clone, Default)]
pub struct IntervalStore {
    /// `by_owner[p]` holds owner `p`'s known intervals in ascending id
    /// order (runs reuse their ring capacity across the GC cycle).
    by_owner: Vec<VecDeque<IntervalAnnouncement>>,
    /// `sums[p][id]` is the component sum of owner `p`'s interval `id`'s
    /// close-time vector time — the causal sort key for diff application.
    /// Deliberately **not** garbage-collected: a page's pending notices can
    /// outlive the barrier that collects the full announcements, and the
    /// fault that finally services them still needs the causal order. At
    /// 8 B per interval this retains ~50× less than keeping whole
    /// announcements (identity + vector time + page list) alive.
    sums: Vec<Vec<u64>>,
    count: usize,
}

impl IntervalStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records an interval (idempotent: re-announcements are ignored).
    pub fn record(&mut self, ann: IntervalAnnouncement) {
        if self.by_owner.len() <= ann.owner {
            self.by_owner.resize_with(ann.owner + 1, VecDeque::new);
            self.sums.resize_with(ann.owner + 1, Vec::new);
        }
        let sums = &mut self.sums[ann.owner];
        let idx = ann.id as usize;
        if sums.len() <= idx {
            sums.resize(idx + 1, 0);
        }
        sums[idx] = ann.vt.iter().map(|(_, v)| v as u64).sum();
        let run = &mut self.by_owner[ann.owner];
        if run.back().is_none_or(|last| last.id < ann.id) {
            run.push_back(ann);
        } else {
            // Out-of-order announcement (e.g. a barrier manager merging
            // arrival sets from several nodes): splice into id order,
            // ignoring duplicates.
            let pos = run.partition_point(|a| a.id < ann.id);
            if run.get(pos).is_some_and(|a| a.id == ann.id) {
                return;
            }
            run.insert(pos, ann);
        }
        self.count += 1;
    }

    /// Looks up one interval.
    pub fn get(&self, owner: usize, id: IntervalId) -> Option<&IntervalAnnouncement> {
        let run = self.by_owner.get(owner)?;
        let pos = run.partition_point(|a| a.id < id);
        run.get(pos).filter(|a| a.id == id)
    }

    /// The component sum of the interval's close-time vector time, or 0 if
    /// the interval was never recorded here. Unlike [`Self::get`], this
    /// survives [`Self::gc_covered`] — fault-time causal ordering of diffs
    /// needs it long after the full announcements are collected.
    pub fn vt_sum(&self, owner: usize, id: IntervalId) -> u64 {
        self.sums
            .get(owner)
            .and_then(|s| s.get(id as usize))
            .copied()
            .unwrap_or(0)
    }

    /// Number of intervals retained.
    pub fn len(&self) -> usize {
        self.count
    }

    /// Whether the store holds no intervals.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Intervals known here but **not** covered by `their_vt` — exactly what
    /// a releaser must announce to an acquirer. Returned in deterministic
    /// `(owner, id)` order.
    pub fn missing_for(&self, their_vt: &VectorTime) -> AnnList {
        let mut out = AnnList::new();
        for (owner, run) in self.by_owner.iter().enumerate() {
            // Covered ids form a prefix of the ascending run.
            let from = run.partition_point(|a| their_vt.covers_interval(owner, a.id));
            for a in run.iter().skip(from) {
                out.push(a.clone());
            }
        }
        out
    }

    /// Every retained interval in deterministic `(owner, id)` order (used
    /// by barrier managers to broadcast the merged announcement set).
    pub fn all(&self) -> AnnList {
        let mut out = AnnList::new();
        for run in &self.by_owner {
            for a in run {
                out.push(a.clone());
            }
        }
        out
    }

    /// Drops every interval covered by `floor` (a vector time all
    /// processors are known to have reached, e.g. the previous barrier's
    /// merged time). Returns how many intervals were collected.
    pub fn gc_covered(&mut self, floor: &VectorTime) -> usize {
        let before = self.count;
        for (owner, run) in self.by_owner.iter_mut().enumerate() {
            while run
                .front()
                .is_some_and(|a| floor.covers_interval(owner, a.id))
            {
                run.pop_front();
                self.count -= 1;
            }
        }
        before - self.count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ann(owner: usize, id: IntervalId, pages: &[PageId], n: usize) -> IntervalAnnouncement {
        let mut vt = VectorTime::new(n);
        vt.observe(owner, id);
        IntervalAnnouncement {
            owner,
            id,
            vt,
            pages: pages.to_vec(),
        }
    }

    #[test]
    fn missing_for_respects_coverage() {
        let mut s = IntervalStore::new();
        s.record(ann(0, 1, &[10], 4));
        s.record(ann(0, 2, &[11], 4));
        s.record(ann(1, 1, &[12], 4));
        let mut their = VectorTime::new(4);
        their.observe(0, 1);
        let missing = s.missing_for(&their);
        let keys: Vec<(usize, IntervalId)> = missing.iter().map(|a| (a.owner, a.id)).collect();
        assert_eq!(keys, vec![(0, 2), (1, 1)]);
    }

    #[test]
    fn record_is_idempotent() {
        let mut s = IntervalStore::new();
        s.record(ann(2, 5, &[1, 2], 4));
        s.record(ann(2, 5, &[99], 4)); // ignored duplicate
        assert_eq!(s.len(), 1);
        assert_eq!(s.get(2, 5).unwrap().pages, vec![1, 2]);
    }

    #[test]
    fn gc_drops_only_covered() {
        let mut s = IntervalStore::new();
        s.record(ann(0, 1, &[], 2));
        s.record(ann(0, 2, &[], 2));
        s.record(ann(1, 1, &[], 2));
        let mut floor = VectorTime::new(2);
        floor.observe(0, 1);
        floor.observe(1, 1);
        assert_eq!(s.gc_covered(&floor), 2);
        assert_eq!(s.len(), 1);
        assert!(s.get(0, 2).is_some());
    }

    #[test]
    fn notices_enumerate_pages() {
        let a = ann(3, 7, &[5, 6], 4);
        let ns: Vec<Notice> = a.notices().collect();
        assert_eq!(
            ns,
            vec![
                Notice {
                    page: 5,
                    owner: 3,
                    interval: 7
                },
                Notice {
                    page: 6,
                    owner: 3,
                    interval: 7
                }
            ]
        );
    }

    #[test]
    fn encoded_size_grows_with_pages() {
        assert_eq!(ann(0, 1, &[], 2).encoded_bytes(), 24);
        assert_eq!(ann(0, 1, &[1, 2, 3], 2).encoded_bytes(), 48);
    }
}
