//! Intervals and write notices.
//!
//! An interval is the span of one processor's execution between two
//! synchronization operations; a write notice announces "page *p* was
//! modified in interval *i* of processor *q*". Acquiring processors
//! invalidate pages named by notices whose intervals they have not yet seen
//! (§2 of the paper).

use std::collections::BTreeMap;

use crate::page::PageId;
use crate::vtime::{IntervalId, VectorTime};

/// A write notice: one page dirtied by one interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Notice {
    /// The modified page.
    pub page: PageId,
    /// The processor that modified it.
    pub owner: usize,
    /// The owner's interval in which the modification happened.
    pub interval: IntervalId,
}

/// A full interval announcement as shipped on lock-grant and barrier
/// messages: identity, timestamp and the pages it dirtied.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IntervalAnnouncement {
    /// Processor that created the interval.
    pub owner: usize,
    /// Its per-owner sequence number.
    pub id: IntervalId,
    /// Vector time at the interval's close.
    pub vt: VectorTime,
    /// Pages dirtied during the interval.
    pub pages: Vec<PageId>,
}

impl IntervalAnnouncement {
    /// The write notices this interval induces.
    pub fn notices(&self) -> impl Iterator<Item = Notice> + '_ {
        self.pages.iter().map(|&page| Notice {
            page,
            owner: self.owner,
            interval: self.id,
        })
    }

    /// Wire size contribution (8 B per page + 24 B of identity/timestamp
    /// summary; vector times are run-length coded in real systems).
    pub fn encoded_bytes(&self) -> u64 {
        24 + 8 * self.pages.len() as u64
    }
}

/// Every interval a node has learned about (its own and others'), keyed by
/// `(owner, id)`. Used to compute the announcements a releaser must ship to
/// an acquirer, and garbage-collected at barriers.
#[derive(Debug, Clone, Default)]
pub struct IntervalStore {
    map: BTreeMap<(usize, IntervalId), IntervalAnnouncement>,
}

impl IntervalStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records an interval (idempotent: re-announcements are ignored).
    pub fn record(&mut self, ann: IntervalAnnouncement) {
        self.map.entry((ann.owner, ann.id)).or_insert(ann);
    }

    /// Looks up one interval.
    pub fn get(&self, owner: usize, id: IntervalId) -> Option<&IntervalAnnouncement> {
        self.map.get(&(owner, id))
    }

    /// Number of intervals retained.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the store holds no intervals.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Intervals known here but **not** covered by `their_vt` — exactly what
    /// a releaser must announce to an acquirer. Returned in deterministic
    /// `(owner, id)` order.
    pub fn missing_for(&self, their_vt: &VectorTime) -> Vec<IntervalAnnouncement> {
        self.map
            .values()
            .filter(|a| !their_vt.covers_interval(a.owner, a.id))
            .cloned()
            .collect()
    }

    /// Every retained interval in deterministic `(owner, id)` order (used
    /// by barrier managers to broadcast the merged announcement set).
    pub fn all(&self) -> Vec<IntervalAnnouncement> {
        self.map.values().cloned().collect()
    }

    /// Drops every interval covered by `floor` (a vector time all
    /// processors are known to have reached, e.g. the previous barrier's
    /// merged time). Returns how many intervals were collected.
    pub fn gc_covered(&mut self, floor: &VectorTime) -> usize {
        let before = self.map.len();
        self.map
            .retain(|&(owner, id), _| !floor.covers_interval(owner, id));
        before - self.map.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ann(owner: usize, id: IntervalId, pages: &[PageId], n: usize) -> IntervalAnnouncement {
        let mut vt = VectorTime::new(n);
        vt.observe(owner, id);
        IntervalAnnouncement {
            owner,
            id,
            vt,
            pages: pages.to_vec(),
        }
    }

    #[test]
    fn missing_for_respects_coverage() {
        let mut s = IntervalStore::new();
        s.record(ann(0, 1, &[10], 4));
        s.record(ann(0, 2, &[11], 4));
        s.record(ann(1, 1, &[12], 4));
        let mut their = VectorTime::new(4);
        their.observe(0, 1);
        let missing = s.missing_for(&their);
        let keys: Vec<(usize, IntervalId)> = missing.iter().map(|a| (a.owner, a.id)).collect();
        assert_eq!(keys, vec![(0, 2), (1, 1)]);
    }

    #[test]
    fn record_is_idempotent() {
        let mut s = IntervalStore::new();
        s.record(ann(2, 5, &[1, 2], 4));
        s.record(ann(2, 5, &[99], 4)); // ignored duplicate
        assert_eq!(s.len(), 1);
        assert_eq!(s.get(2, 5).unwrap().pages, vec![1, 2]);
    }

    #[test]
    fn gc_drops_only_covered() {
        let mut s = IntervalStore::new();
        s.record(ann(0, 1, &[], 2));
        s.record(ann(0, 2, &[], 2));
        s.record(ann(1, 1, &[], 2));
        let mut floor = VectorTime::new(2);
        floor.observe(0, 1);
        floor.observe(1, 1);
        assert_eq!(s.gc_covered(&floor), 2);
        assert_eq!(s.len(), 1);
        assert!(s.get(0, 2).is_some());
    }

    #[test]
    fn notices_enumerate_pages() {
        let a = ann(3, 7, &[5, 6], 4);
        let ns: Vec<Notice> = a.notices().collect();
        assert_eq!(
            ns,
            vec![
                Notice {
                    page: 5,
                    owner: 3,
                    interval: 7
                },
                Notice {
                    page: 6,
                    owner: 3,
                    interval: 7
                }
            ]
        );
    }

    #[test]
    fn encoded_size_grows_with_pages() {
        assert_eq!(ann(0, 1, &[], 2).encoded_bytes(), 24);
        assert_eq!(ann(0, 1, &[1, 2, 3], 2).encoded_bytes(), 48);
    }
}
