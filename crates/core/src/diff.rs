//! Twins and diffs — the word-granularity update encoding of TreadMarks.
//!
//! A *twin* is a snapshot of a page taken at the first write of an interval;
//! a *diff* is the list of words where the current page differs from the
//! twin. With the NCP2 hardware support (§3.1) twins disappear: the snooped
//! dirty-word bit vector already identifies modified words and the DMA
//! engine gathers them directly.

use crate::bitvec::DirtyVec;
use crate::page::{PageBuf, PageId};
use crate::vtime::IntervalId;

/// Size in bytes of a diff's wire header (page id, owner, interval, count).
pub const DIFF_HEADER_BYTES: u64 = 16;

/// An encoding of the modifications made to one page during one interval.
///
/// ```
/// use ncp2_core::page::PageBuf;
/// use ncp2_core::diff::Diff;
///
/// let twin = PageBuf::new(4096);
/// let mut cur = PageBuf::new(4096);
/// cur.set_word(10, 0xAB);
/// let d = Diff::from_twin(3, 0, 1, &cur, &twin);
/// assert_eq!(d.word_count(), 1);
///
/// let mut other = PageBuf::new(4096);
/// d.apply(&mut other);
/// assert_eq!(other.word(10), 0xAB);
/// ```
#[derive(Debug, PartialEq, Eq)]
pub struct Diff {
    /// Page the diff belongs to.
    pub page: PageId,
    /// Processor that performed the writes.
    pub owner: usize,
    /// Interval (of the writing processor) the diff covers.
    pub interval: IntervalId,
    /// `(word index, new value)` pairs in increasing index order. Pooled
    /// storage (see [`crate::pool`]): diffs are created, shipped and dropped
    /// constantly on the hot path.
    words: Vec<(u32, u32)>,
}

impl Clone for Diff {
    fn clone(&self) -> Self {
        let mut words = crate::pool::take_words();
        words.extend_from_slice(&self.words);
        Diff {
            page: self.page,
            owner: self.owner,
            interval: self.interval,
            words,
        }
    }
}

impl Drop for Diff {
    fn drop(&mut self) {
        crate::pool::put_words(std::mem::take(&mut self.words));
    }
}

impl Diff {
    /// Creates a diff by comparing `current` against its `twin`
    /// (software diffing, Base/I/P/I+P modes).
    pub fn from_twin(
        page: PageId,
        owner: usize,
        interval: IntervalId,
        current: &PageBuf,
        twin: &PageBuf,
    ) -> Self {
        let mut words = crate::pool::take_words();
        words.extend(
            current
                .words_differing(twin)
                .map(|i| (i as u32, current.word(i))),
        );
        Diff {
            page,
            owner,
            interval,
            words,
        }
    }

    /// Creates a diff by gathering the words flagged in a snooped dirty
    /// vector (hardware diffing, I+D/I+P+D modes). This needs no twin.
    pub fn from_dirty_vec(
        page: PageId,
        owner: usize,
        interval: IntervalId,
        current: &PageBuf,
        dirty: &DirtyVec,
    ) -> Self {
        let mut words = crate::pool::take_words();
        words.extend(dirty.iter_set().map(|i| (i as u32, current.word(i))));
        Diff {
            page,
            owner,
            interval,
            words,
        }
    }

    /// Merges `later`'s words over this diff (used when a page is dirtied
    /// again within the same interval after an early diff was forced by an
    /// invalidation).
    ///
    /// # Panics
    ///
    /// Panics if `later` describes a different page or writer — merging
    /// across identities would corrupt both diffs, so this is a documented
    /// invariant assert rather than a recoverable error.
    pub fn merge(&mut self, later: &Diff) {
        assert_eq!(
            (self.page, self.owner),
            (later.page, later.owner),
            "diff identity mismatch"
        );
        let mut map: std::collections::BTreeMap<u32, u32> = self.words.iter().copied().collect();
        for &(i, v) in &later.words {
            map.insert(i, v);
        }
        self.words.clear();
        self.words.extend(map);
    }

    /// Applies the diff to `target`, scatter-writing each recorded word.
    ///
    /// # Panics
    ///
    /// Panics (in [`PageBuf::set_word`]) if a recorded word index lies
    /// outside `target` — only possible when page copies disagree on size,
    /// which the protocol never allows.
    pub fn apply(&self, target: &mut PageBuf) {
        for &(idx, val) in &self.words {
            target.set_word(idx as usize, val);
        }
    }

    /// Number of modified words carried.
    pub fn word_count(&self) -> u64 {
        self.words.len() as u64
    }

    /// Wire size: header + bit vector (one bit per page word) + the words
    /// themselves, matching the paper's "returns the words and the bit
    /// vector as the page's diff".
    pub fn encoded_bytes(&self, page_words: u64) -> u64 {
        DIFF_HEADER_BYTES + page_words.div_ceil(8) + 4 * self.word_count()
    }

    /// The recorded `(word index, value)` pairs.
    pub fn entries(&self) -> &[(u32, u32)] {
        &self.words
    }
}

/// A pooled list of diffs — the payload of diff replies and the
/// accumulator a faulting node collects them in. The backing storage
/// recycles through [`crate::pool`]; clearing it drops each diff, whose
/// word list is pooled in turn.
#[derive(Debug, PartialEq, Eq)]
pub struct DiffList(Vec<Diff>);

impl Default for DiffList {
    fn default() -> Self {
        DiffList(crate::pool::take_diffs())
    }
}

impl Clone for DiffList {
    fn clone(&self) -> Self {
        let mut v = crate::pool::take_diffs();
        v.extend(self.0.iter().cloned());
        DiffList(v)
    }
}

impl Drop for DiffList {
    fn drop(&mut self) {
        crate::pool::put_diffs(std::mem::take(&mut self.0));
    }
}

impl std::ops::Deref for DiffList {
    type Target = [Diff];
    fn deref(&self) -> &[Diff] {
        &self.0
    }
}

impl std::ops::DerefMut for DiffList {
    fn deref_mut(&mut self) -> &mut [Diff] {
        &mut self.0
    }
}

impl DiffList {
    /// An empty, pool-backed list.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one diff.
    pub fn push(&mut self, diff: Diff) {
        self.0.push(diff);
    }

    /// Moves every diff out, leaving the container empty (and still
    /// pool-backed).
    pub fn drain(&mut self) -> std::vec::Drain<'_, Diff> {
        self.0.drain(..)
    }

    /// Keeps only the diffs matching `keep`, preserving order.
    pub fn retain(&mut self, keep: impl FnMut(&Diff) -> bool) {
        self.0.retain(keep);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page_with(words: &[(usize, u32)]) -> PageBuf {
        let mut p = PageBuf::new(4096);
        for &(i, v) in words {
            p.set_word(i, v);
        }
        p
    }

    #[test]
    fn twin_and_dirty_vec_diffs_agree() {
        let twin = PageBuf::new(4096);
        let cur = page_with(&[(1, 10), (100, 20), (1023, 30)]);
        let soft = Diff::from_twin(0, 0, 1, &cur, &twin);
        let mut dv = DirtyVec::new(1024);
        for i in [1, 100, 1023] {
            dv.set(i);
        }
        let hard = Diff::from_dirty_vec(0, 0, 1, &cur, &dv);
        assert_eq!(soft, hard);
    }

    #[test]
    fn dirty_vec_diff_captures_overwrites_to_same_value() {
        // A word written back to its original value is still "modified" per
        // the snooping hardware, even though a twin comparison misses it.
        let cur = PageBuf::new(4096);
        let mut dv = DirtyVec::new(1024);
        dv.set(5);
        let hard = Diff::from_dirty_vec(0, 0, 1, &cur, &dv);
        assert_eq!(hard.word_count(), 1);
        let twin = PageBuf::new(4096);
        let soft = Diff::from_twin(0, 0, 1, &cur, &twin);
        assert_eq!(soft.word_count(), 0);
    }

    #[test]
    fn apply_round_trip() {
        let twin = page_with(&[(7, 1)]);
        let cur = page_with(&[(7, 1), (8, 2), (9, 3)]);
        let d = Diff::from_twin(0, 0, 1, &cur, &twin);
        let mut target = twin.clone();
        d.apply(&mut target);
        assert_eq!(target, cur);
    }

    #[test]
    fn concurrent_disjoint_diffs_commute() {
        let base = PageBuf::new(4096);
        let a = {
            let cur = page_with(&[(0, 11)]);
            Diff::from_twin(0, 0, 1, &cur, &base)
        };
        let b = {
            let cur = page_with(&[(512, 22)]);
            Diff::from_twin(0, 1, 1, &cur, &base)
        };
        let mut t1 = base.clone();
        a.apply(&mut t1);
        b.apply(&mut t1);
        let mut t2 = base.clone();
        b.apply(&mut t2);
        a.apply(&mut t2);
        assert_eq!(t1, t2);
    }

    #[test]
    fn encoded_size_formula() {
        let twin = PageBuf::new(4096);
        let cur = page_with(&[(0, 1), (1, 2)]);
        let d = Diff::from_twin(0, 0, 1, &cur, &twin);
        assert_eq!(d.encoded_bytes(1024), 16 + 128 + 8);
    }

    #[test]
    fn merge_overlays_later_words() {
        let base = PageBuf::new(4096);
        let mut d1 = Diff::from_twin(0, 2, 5, &page_with(&[(1, 10), (2, 20)]), &base);
        let d2 = Diff::from_twin(0, 2, 5, &page_with(&[(2, 99), (3, 30)]), &base);
        d1.merge(&d2);
        assert_eq!(d1.entries(), &[(1, 10), (2, 99), (3, 30)]);
    }

    #[test]
    #[should_panic(expected = "identity mismatch")]
    fn merge_rejects_foreign_diffs() {
        let base = PageBuf::new(4096);
        let mut d1 = Diff::from_twin(0, 0, 1, &base, &base);
        let d2 = Diff::from_twin(1, 0, 1, &base, &base);
        d1.merge(&d2);
    }

    #[test]
    fn empty_diff_is_cheap() {
        let p = PageBuf::new(4096);
        let d = Diff::from_twin(0, 0, 1, &p, &p.clone());
        assert_eq!(d.word_count(), 0);
        let mut t = PageBuf::new(4096);
        d.apply(&mut t);
        assert_eq!(t, PageBuf::new(4096));
    }
}
