//! HDR-style log-bucketed histograms for simulated-cycle latencies.
//!
//! Values are `u64` cycles spanning many orders of magnitude (a 1-cycle
//! cache hit to a million-cycle barrier wait), so linear buckets are
//! hopeless and exact recording is wasteful. Instead we use the
//! HdrHistogram bucketing scheme with 4 precision bits: each power-of-two
//! octave is split into 16 linear sub-buckets, bounding the relative
//! quantile error at ~6% while covering all of `u64` in 976 buckets.
//!
//! Everything is integer arithmetic over simulated cycles — quantiles are
//! deterministic and merge is exact, which the bench-diff regression gate
//! relies on.
//!
//! Lives in `ncp2-core` (rather than `ncp2-obs`, which re-exports it) so
//! the simulation itself can accumulate the open-loop service response-time
//! histogram on [`crate::stats::RunResult`]; `ncp2-obs` layers reporting on
//! top.

/// Linear sub-buckets per octave (2^PRECISION_BITS).
const SUB: u64 = 16;
/// Total bucket count covering the full `u64` range: 16 exact buckets for
/// values `0..16`, then 16 sub-buckets for each of the 60 octaves
/// `[2^4, 2^64)`.
const NBUCKETS: usize = 976;

/// A log-bucketed histogram of `u64` observations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogHistogram {
    counts: Vec<u64>,
    total: u64,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

/// The bucket an observation lands in. Values below [`SUB`] get exact
/// buckets; larger values index by (octave, top 4 bits below the msb).
fn bucket_index(v: u64) -> usize {
    if v < SUB {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros() as u64; // >= 4
        let octave = msb - 4; // 0 for [16,32)
        let sub = (v >> (msb - 4)) - SUB; // top 4 bits below the msb
        (SUB + octave * SUB + sub) as usize
    }
}

/// Lowest value mapping to bucket `idx` (inverse of [`bucket_index`]).
fn bucket_lo(idx: usize) -> u64 {
    let idx = idx as u64;
    if idx < SUB {
        idx
    } else {
        let octave = idx / SUB - 1;
        let sub = idx % SUB;
        (SUB + sub) << octave
    }
}

/// Highest value mapping to bucket `idx`.
fn bucket_hi(idx: usize) -> u64 {
    if idx + 1 >= NBUCKETS {
        u64::MAX
    } else {
        bucket_lo(idx + 1) - 1
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LogHistogram {
            counts: vec![0; NBUCKETS],
            total: 0,
            max: 0,
        }
    }

    /// Records one observation.
    pub fn observe(&mut self, v: u64) {
        self.counts[bucket_index(v)] += 1;
        self.total += 1;
        self.max = self.max.max(v);
    }

    /// Number of observations recorded.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Largest observation recorded (exact, not bucketed). 0 when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The `p`-quantile (`p` in `[0, 1]`), reported as the upper bound of
    /// the bucket containing the rank-`ceil(p * count)` observation, clamped
    /// to the exact maximum. Returns 0 for an empty histogram. With 4
    /// precision bits the result is within ~6% of the true order statistic.
    pub fn quantile(&self, p: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let rank = ((p * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut cum = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= rank {
                return bucket_hi(idx).min(self.max);
            }
        }
        self.max
    }

    /// Adds every observation of `other` into `self` (exact: bucket counts
    /// and maxima merge losslessly).
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_contiguous_and_cover_u64() {
        // Every bucket's hi is the next bucket's lo minus one.
        for idx in 0..NBUCKETS - 1 {
            assert_eq!(bucket_hi(idx) + 1, bucket_lo(idx + 1), "idx {idx}");
        }
        assert_eq!(bucket_lo(0), 0);
        assert_eq!(bucket_hi(NBUCKETS - 1), u64::MAX);
        // Boundary values land where expected.
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(15), 15);
        assert_eq!(bucket_index(16), 16);
        assert_eq!(bucket_index(31), 16 + 15);
        assert_eq!(bucket_index(32), 32);
        assert_eq!(bucket_index(u64::MAX), NBUCKETS - 1);
    }

    #[test]
    fn index_and_lo_are_inverse() {
        for idx in 0..NBUCKETS {
            assert_eq!(bucket_index(bucket_lo(idx)), idx, "idx {idx}");
            assert_eq!(bucket_index(bucket_hi(idx)), idx, "idx {idx}");
        }
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = LogHistogram::new();
        for v in [1u64, 2, 3, 4, 5, 6, 7, 8, 9, 10] {
            h.observe(v);
        }
        assert_eq!(h.quantile(0.5), 5);
        assert_eq!(h.quantile(1.0), 10);
        assert_eq!(h.quantile(0.0), 1);
        assert_eq!(h.max(), 10);
        assert_eq!(h.count(), 10);
    }

    #[test]
    fn quantile_error_is_bounded_by_bucket_width() {
        let mut h = LogHistogram::new();
        for v in 1..=10_000u64 {
            h.observe(v);
        }
        let p99 = h.quantile(0.99);
        assert!((9_900..=10_000 + 10_000 / 16).contains(&p99), "p99={p99}");
    }

    #[test]
    fn merge_is_exact() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        let mut both = LogHistogram::new();
        for v in [3u64, 900, 40_000] {
            a.observe(v);
            both.observe(v);
        }
        for v in [17u64, 17, 1 << 40] {
            b.observe(v);
            both.observe(v);
        }
        a.merge(&b);
        assert_eq!(a, both);
    }
}
