//! Thread-local buffer pools for the protocol data plane.
//!
//! The hot path of a simulated run churns through short-lived heap buffers:
//! every write fault snapshots a page into a twin, every diff collects a
//! word list, every synchronization message clones vector times and
//! announcement page lists. At 256 nodes the allocator dominates the host
//! profile (`BENCH_WALL.json` made this visible). These pools recycle the
//! backing `Vec`s through per-thread free lists instead of returning them to
//! the heap.
//!
//! **Inertness invariant**: pooling changes *where host memory comes from*
//! and nothing else. Every `take_*` hands back an empty vector (length 0)
//! whose contents the caller fully initializes, exactly as a fresh
//! allocation would be — so simulated state, checksums and metrics are
//! byte-identical with pooling on or off (the arena-inertness test pins
//! this). Pools are thread-local, so parallel engine jobs never share or
//! contend on them.
//!
//! The runtime toggle exists for that test and for A/B profiling; the
//! default is on.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, Ordering};

static ENABLED: AtomicBool = AtomicBool::new(true);

/// Turns buffer recycling on or off process-wide (default on). Buffers
/// already parked in a thread's free list stay parked until re-enabled.
pub fn set_pooling(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether buffer recycling is currently enabled.
pub fn pooling() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Per-thread, per-class cap on parked buffers; beyond it, buffers drop to
/// the heap as before. Bounds worst-case held memory without a sweeper.
const POOL_CAP: usize = 4096;

macro_rules! pool_class {
    ($(#[$doc:meta])* $tls:ident, $take:ident, $put:ident, $elem:ty) => {
        thread_local! {
            static $tls: RefCell<Vec<Vec<$elem>>> = const { RefCell::new(Vec::new()) };
        }

        $(#[$doc])*
        pub(crate) fn $take() -> Vec<$elem> {
            if !pooling() {
                return Vec::new();
            }
            $tls.with(|p| p.borrow_mut().pop()).unwrap_or_default()
        }

        /// Parks a spent buffer for reuse by the same thread.
        pub(crate) fn $put(mut v: Vec<$elem>) {
            if !pooling() || v.capacity() == 0 {
                return;
            }
            v.clear();
            $tls.with(|p| {
                let mut p = p.borrow_mut();
                if p.len() < POOL_CAP {
                    p.push(v);
                }
            });
        }
    };
}

pool_class!(
    /// Page-sized byte buffers ([`crate::page::PageBuf`] data and twins).
    BYTES,
    take_bytes,
    put_bytes,
    u8
);
pool_class!(
    /// Diff word lists (`(word index, value)` pairs).
    WORDS,
    take_words,
    put_words,
    (u32, u32)
);
pool_class!(
    /// Vector-time component arrays.
    CLOCKS,
    take_clock,
    put_clock,
    u32
);
pool_class!(
    /// Page-id lists (announcement page sets).
    IDS,
    take_ids,
    put_ids,
    u64
);
pool_class!(
    /// Announcement-list containers (lock-grant and barrier payloads).
    /// Parking one clears it first, which drops each announcement and
    /// returns *its* pooled internals too.
    ANNS,
    take_anns,
    put_anns,
    crate::interval::IntervalAnnouncement
);
pool_class!(
    /// Diff-list containers (diff-reply payloads and fault accumulators).
    DIFFS,
    take_diffs,
    put_diffs,
    crate::diff::Diff
);
pool_class!(
    /// `(owner, interval)` scratch pairs (pending-notice grouping).
    PAIRS,
    take_pairs,
    put_pairs,
    (usize, crate::vtime::IntervalId)
);

#[cfg(test)]
mod tests {
    use super::*;

    // One test, not two: `ENABLED` is process-global and the test harness
    // runs tests concurrently, so the on/off phases must not interleave.
    #[test]
    fn pool_round_trip_and_toggle() {
        set_pooling(true);
        let mut v = take_bytes();
        v.extend_from_slice(&[1, 2, 3, 4]);
        let cap = v.capacity();
        put_bytes(v);
        let v2 = take_bytes();
        assert!(v2.is_empty(), "recycled buffer must be cleared");
        assert!(v2.capacity() >= cap.min(4), "capacity should be retained");

        set_pooling(false);
        let mut w = take_words();
        w.push((1, 2));
        put_words(w);
        let w2 = take_words();
        assert_eq!(w2.capacity(), 0, "disabled pool must hand out fresh vecs");
        set_pooling(true);
    }
}
