//! Protocol selection: TreadMarks overlap modes and AURC variants.

use serde::{Deserialize, Serialize};

/// The six TreadMarks configurations of §5.1 (Figures 5–10).
///
/// `Base` and `P` assume **no** protocol controller (all protocol work on
/// the computation processor); the other four run basic protocol actions on
/// the per-node controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OverlapMode {
    /// Standard non-overlapping TreadMarks.
    Base,
    /// Basic protocol actions offloaded to the controller.
    I,
    /// Offload plus hardware (bit-vector DMA) diffs.
    ID,
    /// Standard TreadMarks plus diff prefetching (no controller).
    P,
    /// Offload plus prefetching (software diffs on the controller).
    IP,
    /// All three techniques combined.
    IPD,
}

impl OverlapMode {
    /// All modes in the paper's left-to-right plotting order.
    pub const ALL: [OverlapMode; 6] = [
        OverlapMode::Base,
        OverlapMode::I,
        OverlapMode::ID,
        OverlapMode::P,
        OverlapMode::IP,
        OverlapMode::IPD,
    ];

    /// Whether a protocol controller offloads basic protocol actions.
    pub fn offload(self) -> bool {
        matches!(
            self,
            OverlapMode::I | OverlapMode::ID | OverlapMode::IP | OverlapMode::IPD
        )
    }

    /// Whether diffs are generated/applied by the bit-vector DMA engine
    /// (which also eliminates twins).
    pub fn hw_diffs(self) -> bool {
        matches!(self, OverlapMode::ID | OverlapMode::IPD)
    }

    /// Whether diff prefetching is enabled.
    pub fn prefetch(self) -> bool {
        matches!(self, OverlapMode::P | OverlapMode::IP | OverlapMode::IPD)
    }

    /// The paper's label for the mode.
    pub fn label(self) -> &'static str {
        match self {
            OverlapMode::Base => "Base",
            OverlapMode::I => "I",
            OverlapMode::ID => "I+D",
            OverlapMode::P => "P",
            OverlapMode::IP => "I+P",
            OverlapMode::IPD => "I+P+D",
        }
    }
}

/// Which software DSM runs on the simulated machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Protocol {
    /// TreadMarks under one of the six overlap modes.
    TreadMarks(OverlapMode),
    /// Automatic-update release consistency (Shrimp-style), optionally with
    /// page prefetching (the paper's AURC and AURC+P).
    Aurc {
        /// Enable the acquire-time page-prefetch heuristic.
        prefetch: bool,
    },
}

impl Protocol {
    /// Human-readable label matching the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            Protocol::TreadMarks(m) => m.label(),
            Protocol::Aurc { prefetch: false } => "AURC",
            Protocol::Aurc { prefetch: true } => "AURC+P",
        }
    }

    /// Whether this configuration includes a per-node protocol controller.
    pub fn has_controller(self) -> bool {
        match self {
            Protocol::TreadMarks(m) => m.offload(),
            Protocol::Aurc { .. } => false,
        }
    }

    /// Whether acquire-time prefetching is active.
    pub fn prefetch(self) -> bool {
        match self {
            Protocol::TreadMarks(m) => m.prefetch(),
            Protocol::Aurc { prefetch } => prefetch,
        }
    }
}

impl std::fmt::Display for Protocol {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_feature_matrix() {
        use OverlapMode::*;
        let rows = [
            (Base, false, false, false),
            (I, true, false, false),
            (ID, true, true, false),
            (P, false, false, true),
            (IP, true, false, true),
            (IPD, true, true, true),
        ];
        for (m, offload, hw, pf) in rows {
            assert_eq!(m.offload(), offload, "{m:?} offload");
            assert_eq!(m.hw_diffs(), hw, "{m:?} hw_diffs");
            assert_eq!(m.prefetch(), pf, "{m:?} prefetch");
        }
    }

    #[test]
    fn labels_match_paper() {
        let labels: Vec<&str> = OverlapMode::ALL.iter().map(|m| m.label()).collect();
        assert_eq!(labels, vec!["Base", "I", "I+D", "P", "I+P", "I+P+D"]);
        assert_eq!(Protocol::Aurc { prefetch: true }.label(), "AURC+P");
        assert_eq!(format!("{}", Protocol::TreadMarks(OverlapMode::ID)), "I+D");
    }

    #[test]
    fn aurc_has_no_controller() {
        assert!(!Protocol::Aurc { prefetch: false }.has_controller());
        assert!(Protocol::TreadMarks(OverlapMode::IPD).has_controller());
        assert!(!Protocol::TreadMarks(OverlapMode::P).has_controller());
    }
}
