//! TreadMarks under the six overlap modes (§3.2, §5.1).
//!
//! Lazy release consistency with lazy diff creation: pages are invalidated
//! by write notices at acquires; the first access to an invalid page
//! collects diffs from the writers named in the pending notices. The
//! overlap modes move work between the computation processor, the protocol
//! controller's core, and the bit-vector DMA engine:
//!
//! * **Base/P** — everything on the computation processor.
//! * **I/I+P** — twin creation, diff generation/application and message
//!   handling on the controller; interval/write-notice processing stays on
//!   the processor (it is "complicated", §3.2).
//! * **I+D/I+P+D** — no twins at all; the snoop hardware keeps dirty-word
//!   bit vectors and the DMA engine generates diffs eagerly when an interval
//!   closes and applies incoming diffs by scatter-gather.

use ncp2_sim::{Category, Cycles, ProcOp, ProcReply};

use crate::controller::Controller;
use crate::diff::{Diff, DiffList};
use crate::interval::{IntervalAnnouncement, IvlList};
use crate::msg::Msg;
use crate::page::{page_of, word_index, PageBuf, PageId, PageState};
use crate::span::{CtrlCmd, Engine, SpanKind};
use crate::system::{FaultWait, PrefetchState, Simulation, Wait};
use crate::vtime::{IntervalId, VectorTime};

impl Simulation {
    // ----- the access path -------------------------------------------------

    /// Handles one read/write. `None` means the processor blocked (fault).
    pub(crate) fn tm_access(&mut self, pid: usize, op: ProcOp) -> Option<ProcReply> {
        let (addr, write) = match op {
            ProcOp::Read { addr, .. } => (addr, false),
            ProcOp::Write { addr, .. } => (addr, true),
            _ => unreachable!("tm_access on non-memory op"),
        };
        let page = page_of(addr, self.params.page_bytes);
        let state = self.tm_page(pid, page).state;
        match state {
            PageState::Invalid => {
                if let Some(ps) = self.nodes[pid].prefetches.get_mut(page) {
                    ps.joined = true;
                    self.nodes[pid].stats.prefetch_joins += 1;
                    self.block(pid, Wait::PrefetchJoin { page });
                } else {
                    self.tm_start_fault(pid, page);
                }
                None
            }
            PageState::ReadOnly if write => {
                if self.mode().hw_diffs() {
                    // Snooping hardware tracks dirty words; no trap needed.
                    self.tm_page(pid, page).state = PageState::ReadWrite;
                } else {
                    self.tm_write_fault(pid, page);
                }
                Some(self.tm_do_access(pid, op))
            }
            _ => Some(self.tm_do_access(pid, op)),
        }
    }

    /// The access itself, on a valid page: hardware timing + data movement.
    fn tm_do_access(&mut self, pid: usize, op: ProcOp) -> ProcReply {
        let (addr, write) = match op {
            ProcOp::Read { addr, .. } => (addr, false),
            ProcOp::Write { addr, .. } => (addr, true),
            _ => unreachable!(),
        };
        #[cfg(feature = "verify")]
        {
            let bytes = match op {
                ProcOp::Read { bytes, .. } | ProcOp::Write { bytes, .. } => bytes,
                _ => 0,
            };
            self.emit(crate::observe::ProtocolEvent::Access {
                pid,
                addr,
                bytes,
                write,
            });
        }
        self.charge_mem(pid, addr, write);
        let page = page_of(addr, self.params.page_bytes);
        let (page_bytes, hw) = (self.params.page_bytes, self.mode().hw_diffs());
        let off = (addr % page_bytes) as usize;
        let widx = word_index(addr, page_bytes);
        let (reply, newly_dirty, was_prefetched) = {
            let tp = self.tm_page(pid, page);
            tp.referenced = true;
            let wp = std::mem::take(&mut tp.prefetched_unused);
            match op {
                ProcOp::Read { bytes, .. } => {
                    (ProcReply::Value(tp.data.read(off, bytes)), false, wp)
                }
                ProcOp::Write { bytes, value, .. } => {
                    debug_assert_eq!(tp.state, PageState::ReadWrite, "write to protected page");
                    tp.data.write(off, bytes, value);
                    if hw {
                        // The snoop sets one bit per 4-byte word touched.
                        for w in 0..(bytes as usize).div_ceil(4) {
                            tp.dirty.set(widx + w);
                        }
                    }
                    let nd = !tp.in_cur_dirty;
                    tp.in_cur_dirty = true;
                    (ProcReply::Ack, nd, wp)
                }
                _ => unreachable!(),
            }
        };
        if newly_dirty {
            self.nodes[pid].cur_dirty.push(page);
        }
        if was_prefetched {
            self.nodes[pid].stats.prefetch_hits += 1;
            let now = self.nodes[pid].time;
            self.obs_prefetch_used(pid, page, now);
        }
        reply
    }

    /// Software write fault: trap, settle any stale twin into its diff,
    /// create the new twin, unprotect.
    fn tm_write_fault(&mut self, pid: usize, page: PageId) {
        self.advance(
            pid,
            self.params.interrupt,
            Category::Other,
            SpanKind::Interrupt,
        );
        self.nodes[pid].stats.write_faults += 1;
        let t0 = self.nodes[pid].time;
        let after_old_diff = self.tm_force_diff(pid, page, t0);
        let end = self.tm_make_twin(pid, page, after_old_diff);
        self.advance(
            pid,
            after_old_diff - t0,
            Category::Data,
            SpanKind::DiffCreate,
        );
        self.advance(pid, end - after_old_diff, Category::Data, SpanKind::Twin);
        let open = self.open_interval_id(pid);
        let tp = self.tm_page(pid, page);
        let snapshot = tp.data.clone();
        tp.twin = Some((open, snapshot));
        tp.state = PageState::ReadWrite;
    }

    /// Id the open interval will get when it closes.
    fn open_interval_id(&self, pid: usize) -> IntervalId {
        self.nodes[pid].vt.get(pid) + 1
    }

    /// Timing of twin creation starting at `t` (page copy: 5 cycles/word on
    /// the executing engine plus a read+write page pass over memory).
    fn tm_make_twin(&mut self, pid: usize, _page: PageId, t: Cycles) -> Cycles {
        let params = self.params.clone();
        let cpu = Controller::twin_cost(&params);
        let words = 2 * params.page_words();
        self.nodes[pid].stats.twin_cycles += cpu;
        if self.mode().offload() {
            let (s, e) = self.nodes[pid].ctrl.run(t, cpu);
            self.note_ctrl(pid, Engine::CtrlCore, CtrlCmd::Twin, s, e);
            let (_, me) = self.nodes[pid].mem.dram.access(s, words, &params);
            let (_, pe) = self.nodes[pid].mem.pci.burst(s, words, &params);
            e.max(me).max(pe)
        } else {
            self.nodes[pid].stats.diff_proc_cycles += cpu;
            let (_, me) = self.nodes[pid].mem.dram.access(t + cpu, words, &params);
            me
        }
    }

    /// If `pid` holds unsettled local modifications of `page` (a twin in the
    /// software modes, dirty bits in the hardware modes), turn them into a
    /// stored diff now. Returns the processor-visible completion time; DMA /
    /// controller work proceeds asynchronously under the I-modes.
    pub(crate) fn tm_force_diff(&mut self, pid: usize, page: PageId, t: Cycles) -> Cycles {
        let params = self.params.clone();
        let mode = self.mode();
        if mode.hw_diffs() {
            let open = self.open_interval_id(pid);
            let tp = self.tm_page(pid, page);
            if tp.dirty.is_clean() {
                return t;
            }
            let diff = Diff::from_dirty_vec(page, pid, open, &tp.data, &tp.dirty);
            tp.dirty.clear();
            #[cfg(feature = "verify")]
            {
                let ev = crate::observe::ProtocolEvent::DiffCreated {
                    pid,
                    page,
                    interval: open,
                    diff: diff.clone(),
                    data: tp.data.clone(),
                };
                self.emit(ev);
            }
            let words = diff.word_count();
            self.tm_store_diff(pid, diff);
            self.record(t, pid, crate::trace::TraceKind::DiffCreated { page, words });
            let cpu = Controller::dma_cost(&params, words);
            let (s, e) = self.nodes[pid].ctrl.run(t, cpu);
            self.note_ctrl(pid, Engine::CtrlCore, CtrlCmd::DiffCreate, s, e);
            let gather = params.mem_scattered(words.max(1));
            let (_, _me) = self.nodes[pid].mem.dram.resource.reserve(s, gather);
            let (_, _pe) = self.nodes[pid].mem.pci.burst(s, words.max(1), &params);
            self.nodes[pid].stats.diff_create_cycles += cpu;
            self.nodes[pid].stats.diffs_created += 1;
            self.nodes[pid].stats.diff_bytes_created += 4 * words;
            self.ts_count(crate::timeseries::TsCounter::DiffsCreated, t, 1);
            self.ts_count(crate::timeseries::TsCounter::DiffBytesCreated, t, 4 * words);
            self.ts_page(page, 0, 4 * words, 0);
            t + Controller::issue_cost(&params)
        } else {
            let Some((tivl, twin)) = self.tm_page(pid, page).twin.take() else {
                return t;
            };
            let data = self.tm_page(pid, page).data.clone();
            let diff = Diff::from_twin(page, pid, tivl, &data, &twin);
            #[cfg(feature = "verify")]
            self.emit(crate::observe::ProtocolEvent::DiffCreated {
                pid,
                page,
                interval: tivl,
                diff: diff.clone(),
                data: data.clone(),
            });
            let words = diff.word_count();
            self.tm_store_diff(pid, diff);
            self.record(t, pid, crate::trace::TraceKind::DiffCreated { page, words });
            let cpu = Controller::sw_diff_scan(&params);
            self.nodes[pid].stats.diff_create_cycles += cpu;
            self.nodes[pid].stats.diffs_created += 1;
            self.nodes[pid].stats.diff_bytes_created += 4 * words;
            self.ts_count(crate::timeseries::TsCounter::DiffsCreated, t, 1);
            self.ts_count(crate::timeseries::TsCounter::DiffBytesCreated, t, 4 * words);
            self.ts_page(page, 0, 4 * words, 0);
            if mode.offload() {
                let (s, e) = self.nodes[pid].ctrl.run(t, cpu);
                self.note_ctrl(pid, Engine::CtrlCore, CtrlCmd::DiffCreate, s, e);
                let (_, _me) = self.nodes[pid]
                    .mem
                    .dram
                    .access(s, params.page_words(), &params);
                t + Controller::issue_cost(&params)
            } else {
                self.nodes[pid].stats.diff_proc_cycles += cpu;
                let (_, me) =
                    self.nodes[pid]
                        .mem
                        .dram
                        .access(t + cpu, params.page_words(), &params);
                me
            }
        }
    }

    /// Inserts a diff into the owner's store, merging with an earlier diff
    /// for the same (page, interval) if an invalidation forced one early.
    fn tm_store_diff(&mut self, pid: usize, diff: Diff) {
        let key = (diff.page, diff.interval);
        let nd = &mut self.nodes[pid];
        nd.diffs.merge_or_insert(diff);
        // invariant: the diff being stored was created from this page entry
        let tp = nd.pages.get_mut(key.0).expect("page exists");
        if !tp.own_intervals.contains(&key.1) {
            tp.own_intervals.push(key.1);
        }
    }

    /// Interval-close bookkeeping for the dirtied pages (called by
    /// [`Simulation::close_interval`]): eager DMA diffs in hardware modes,
    /// write protection (for lazy diffs) in software modes.
    pub(crate) fn tm_close_pages(&mut self, pid: usize, id: IntervalId, pages: &[PageId]) {
        let params = self.params.clone();
        let hw = self.mode().hw_diffs();
        for &page in pages {
            let tp = self.tm_page(pid, page);
            tp.in_cur_dirty = false;
            if tp.state == PageState::Invalid {
                // Invalidated mid-interval: its diff was forced already.
                continue;
            }
            if hw {
                if tp.dirty.is_clean() {
                    continue;
                }
                let diff = Diff::from_dirty_vec(page, pid, id, &tp.data, &tp.dirty);
                tp.dirty.clear();
                #[cfg(feature = "verify")]
                {
                    let ev = crate::observe::ProtocolEvent::DiffCreated {
                        pid,
                        page,
                        interval: id,
                        diff: diff.clone(),
                        data: tp.data.clone(),
                    };
                    self.emit(ev);
                }
                let words = diff.word_count();
                self.tm_store_diff(pid, diff);
                self.advance(
                    pid,
                    Controller::issue_cost(&params),
                    Category::Synch,
                    SpanKind::MsgSetup,
                );
                let now = self.nodes[pid].time;
                self.record(
                    now,
                    pid,
                    crate::trace::TraceKind::DiffCreated { page, words },
                );
                let cpu = Controller::dma_cost(&params, words);
                let (s, e) = self.nodes[pid].ctrl.run(now, cpu);
                self.note_ctrl(pid, Engine::CtrlCore, CtrlCmd::DiffCreate, s, e);
                let gather = params.mem_scattered(words.max(1));
                let (_, _me) = self.nodes[pid].mem.dram.resource.reserve(s, gather);
                let (_, _pe) = self.nodes[pid].mem.pci.burst(s, words.max(1), &params);
                self.nodes[pid].stats.diff_create_cycles += cpu;
                self.nodes[pid].stats.diffs_created += 1;
                self.nodes[pid].stats.diff_bytes_created += 4 * words;
                self.ts_count(crate::timeseries::TsCounter::DiffsCreated, now, 1);
                self.ts_count(
                    crate::timeseries::TsCounter::DiffBytesCreated,
                    now,
                    4 * words,
                );
                self.ts_page(page, 0, 4 * words, 0);
            } else {
                // Write-protect so the next interval's writes re-fault and
                // settle this twin lazily.
                tp.state = PageState::ReadOnly;
                self.advance(
                    pid,
                    params.list_processing,
                    Category::Synch,
                    SpanKind::NoticeMgmt,
                );
            }
        }
    }

    // ----- faults -----------------------------------------------------------

    /// Begins diff collection for an invalid page; blocks the processor.
    fn tm_start_fault(&mut self, pid: usize, page: PageId) {
        let now = self.nodes[pid].time;
        self.record(now, pid, crate::trace::TraceKind::Fault { page });
        self.nodes[pid].stats.faults += 1;
        self.advance(
            pid,
            self.params.interrupt,
            Category::Other,
            SpanKind::Interrupt,
        );
        let mut pending = crate::pool::take_pairs();
        pending.extend_from_slice(&self.tm_page(pid, page).pending);
        assert!(
            !pending.is_empty(),
            "fault on page {page} with no pending notices"
        );
        self.advance(
            pid,
            self.params.list_processing * pending.len() as Cycles,
            Category::Data,
            SpanKind::NoticeMgmt,
        );
        let requests = self.tm_build_requests(pid, page, &pending, false);
        crate::pool::put_pairs(pending);
        let outstanding = requests.len();
        let mut t = self.nodes[pid].time;
        for (owner, msg) in requests {
            self.send_msg(&mut t, pid, owner, msg, Category::Data, false);
        }
        self.nodes[pid].time = t;
        self.block(
            pid,
            Wait::Fault(FaultWait {
                page,
                outstanding,
                ready_at: t,
                diffs: DiffList::new(),
                full_page: None,
            }),
        );
    }

    /// Groups pending notices into per-writer requests; flips to a whole
    /// page fetch from the most recent writer when the chain is long.
    fn tm_build_requests(
        &mut self,
        pid: usize,
        page: PageId,
        pending: &[(usize, IntervalId)],
        prefetch: bool,
    ) -> Vec<(usize, Msg)> {
        // Sorting `(owner, interval)` pairs groups them by ascending owner
        // with ascending intervals inside each group — the same deterministic
        // order the previous `BTreeMap<owner, Vec<_>>` grouping produced,
        // without its per-node allocations.
        let mut by_owner = crate::pool::take_pairs();
        by_owner.extend_from_slice(pending);
        by_owner.sort_unstable();
        let want_page_from = if pending.len() > self.params.page_req_threshold {
            pending
                .iter()
                .max_by_key(|&&(o, i)| (self.vt_sum(pid, o, i), o, i))
                .map(|&(o, _)| o)
        } else {
            None
        };
        let mut out = Vec::new();
        let mut i = 0;
        while i < by_owner.len() {
            let owner = by_owner[i].0;
            let mut ivls = IvlList::new();
            while i < by_owner.len() && by_owner[i].0 == owner {
                ivls.push(by_owner[i].1);
                i += 1;
            }
            let msg = Msg::DiffReq {
                page,
                intervals: ivls,
                requester: pid,
                requester_vt: self.nodes[pid].vt.clone(),
                prefetch,
                want_page: want_page_from == Some(owner),
            };
            out.push((owner, msg));
        }
        crate::pool::put_pairs(by_owner);
        out
    }

    /// Linear extension key for causal apply order: the component sum of an
    /// interval's vector time (strictly monotone along causal chains).
    fn vt_sum(&self, pid: usize, owner: usize, ivl: IntervalId) -> u64 {
        self.nodes[pid].store.vt_sum(owner, ivl)
    }

    // ----- servicing diff requests ------------------------------------------

    #[allow(clippy::too_many_arguments)]
    pub(crate) fn on_diff_req(
        &mut self,
        dst: usize,
        t: Cycles,
        page: PageId,
        intervals: IvlList,
        requester: usize,
        requester_vt: VectorTime,
        prefetch: bool,
        want_page: bool,
    ) {
        let params = self.params.clone();
        let mode = self.mode();
        let k = intervals.len() as Cycles;
        // Interval processing: on the controller for prefetches under the
        // I-modes (simple table lookups), on the processor otherwise.
        let mut c = if prefetch && mode.offload() {
            let (s, e) = self.nodes[dst].ctrl.run(t, params.list_processing * k);
            self.note_ctrl(dst, Engine::CtrlCore, CtrlCmd::ListWalk, s, e);
            e
        } else {
            self.interrupt_proc(
                dst,
                t,
                params.interrupt + params.list_processing * k,
                Category::Ipc,
                SpanKind::Service,
            )
        };
        self.tm_page(dst, page);
        let mut diffs_out = DiffList::new();
        let mut full: Option<(PageBuf, VectorTime)> = None;
        // A full page is only a sound substitute for diffs when this copy is
        // completely up to date: the reply tags the page with this node's
        // vector time, and the requester skips any diff that time covers.
        // A copy with pending (received-but-unapplied) notices is *missing*
        // intervals the vector time claims, so fall back to plain diffs.
        // Additionally the copy must dominate the requester's history: a
        // page tagged with a vector time that does not cover the requester's
        // would clobber concurrent intervals the requester already applied.
        let clean = self.nodes[dst]
            .pages
            .get(page)
            .is_some_and(|p| p.pending.is_empty())
            && self.nodes[dst].vt.covers(&requester_vt);
        let need_full = (want_page && clean) || {
            intervals.iter().any(|&ivl| {
                !self.nodes[dst].diffs.contains(page, ivl)
                    && !matches!(
                        self.nodes[dst].pages.get(page).and_then(|p| p.twin.as_ref()),
                        Some((tivl, _)) if *tivl == ivl
                    )
            })
        };
        if need_full {
            let (_, e) = self.nodes[dst]
                .mem
                .dram
                .access(c, params.page_words(), &params);
            c = e;
            let data = self.nodes[dst]
                .pages
                .get(page)
                // invariant: a whole-page request only reaches a node that
                // has served or written the page (entry created on access)
                .expect("page exists")
                .data
                .clone();
            full = Some((data, self.nodes[dst].vt.clone()));
        } else {
            for &ivl in intervals.iter() {
                // Settle a live twin for this interval even when a partial
                // diff already exists (an invalidation may have forced an
                // early diff and the page was re-dirtied afterwards within
                // the same interval); creation merges into the stored diff.
                let live_twin = matches!(
                    self.nodes[dst].pages.get(page).and_then(|p| p.twin.as_ref()),
                    Some((tivl, _)) if *tivl == ivl
                );
                if live_twin || !self.nodes[dst].diffs.contains(page, ivl) {
                    c = self.tm_create_diff_for_service(dst, page, ivl, c, prefetch);
                }
                diffs_out.push(
                    self.nodes[dst]
                        .diffs
                        .get(page, ivl)
                        // invariant: stored by the service path just above
                        .expect("diff stored")
                        .clone(),
                );
            }
        }
        let msg = Msg::DiffReply {
            page,
            diffs: diffs_out,
            full_page: full,
            prefetch,
        };
        if mode.offload() {
            self.ctrl_send(c, dst, requester, msg);
        } else {
            let tc = self.interrupt_proc(
                dst,
                c,
                params.messaging_overhead,
                Category::Ipc,
                SpanKind::MsgSetup,
            );
            self.dispatch(tc, dst, requester, msg);
        }
    }

    /// Lazy diff creation while servicing a request (twin comparison).
    fn tm_create_diff_for_service(
        &mut self,
        dst: usize,
        page: PageId,
        ivl: IntervalId,
        t: Cycles,
        _prefetch: bool,
    ) -> Cycles {
        let params = self.params.clone();
        let (tivl, twin) = self
            .tm_page(dst, page)
            .twin
            .take()
            // invariant: lazy diff creation is only requested for pages the
            // fault handler twinned earlier in the same interval
            .expect("twin for lazy diff");
        debug_assert_eq!(tivl, ivl, "twin interval mismatch");
        let data = self.tm_page(dst, page).data.clone();
        let diff = Diff::from_twin(page, dst, tivl, &data, &twin);
        #[cfg(feature = "verify")]
        self.emit(crate::observe::ProtocolEvent::DiffCreated {
            pid: dst,
            page,
            interval: tivl,
            diff: diff.clone(),
            data: data.clone(),
        });
        let words = diff.word_count();
        self.tm_store_diff(dst, diff);
        self.record(t, dst, crate::trace::TraceKind::DiffCreated { page, words });
        let cpu = Controller::sw_diff_scan(&params);
        self.nodes[dst].stats.diff_create_cycles += cpu;
        self.nodes[dst].stats.diffs_created += 1;
        self.nodes[dst].stats.diff_bytes_created += 4 * words;
        self.ts_count(crate::timeseries::TsCounter::DiffsCreated, t, 1);
        self.ts_count(crate::timeseries::TsCounter::DiffBytesCreated, t, 4 * words);
        self.ts_page(page, 0, 4 * words, 0);
        if self.mode().offload() {
            let (s, e) = self.nodes[dst].ctrl.run(t, cpu);
            self.note_ctrl(dst, Engine::CtrlCore, CtrlCmd::DiffCreate, s, e);
            let (_, me) = self.nodes[dst]
                .mem
                .dram
                .access(s, params.page_words(), &params);
            let (_, pe) = self.nodes[dst]
                .mem
                .pci
                .burst(s, params.page_words(), &params);
            e.max(me).max(pe)
        } else {
            self.nodes[dst].stats.diff_proc_cycles += cpu;
            let c = self.interrupt_proc(dst, t, cpu, Category::Ipc, SpanKind::DiffCreate);
            let (_, me) = self.nodes[dst]
                .mem
                .dram
                .access(c, params.page_words(), &params);
            me
        }
    }

    // ----- receiving diffs ----------------------------------------------------

    pub(crate) fn on_diff_reply(
        &mut self,
        dst: usize,
        t: Cycles,
        page: PageId,
        mut diffs: DiffList,
        full_page: Option<(PageBuf, VectorTime)>,
        prefetch: bool,
    ) {
        if prefetch {
            self.tm_prefetch_reply(dst, t, page, diffs, full_page);
            return;
        }
        let ready = {
            let Wait::Fault(f) = &mut self.nodes[dst].wait else {
                // invariant: demand diff replies are only addressed to the
                // blocked requester (message conservation)
                panic!("diff reply for page {page} but processor {dst} is not faulting");
            };
            debug_assert_eq!(f.page, page, "diff reply for the wrong page");
            for d in diffs.drain() {
                f.diffs.push(d);
            }
            if full_page.is_some() {
                f.full_page = full_page;
            }
            f.outstanding -= 1;
            f.ready_at = f.ready_at.max(t);
            if f.outstanding > 0 {
                return;
            }
            (std::mem::take(&mut f.diffs), f.full_page.take(), f.ready_at)
        };
        let (got_diffs, got_page, ready_at) = ready;
        let requested = std::mem::take(&mut self.tm_page(dst, page).pending);
        let (end, cpu) =
            self.tm_apply_collected(dst, page, got_diffs, got_page, ready_at, &requested, false);
        self.obs_edge(
            crate::span::EdgeKind::FaultFill,
            dst,
            t,
            dst,
            end,
            cpu,
            self.obs_last_span(dst),
        );
        self.schedule_wake(dst, end);
    }

    fn tm_prefetch_reply(
        &mut self,
        dst: usize,
        t: Cycles,
        page: PageId,
        mut diffs: DiffList,
        full_page: Option<(PageBuf, VectorTime)>,
    ) {
        let complete = {
            let Some(ps) = self.nodes[dst].prefetches.get_mut(page) else {
                return; // stale reply for an abandoned prefetch
            };
            for d in diffs.drain() {
                ps.diffs.push(d);
            }
            if full_page.is_some() {
                ps.full_page = full_page;
            }
            ps.outstanding -= 1;
            ps.ready_at = ps.ready_at.max(t);
            ps.outstanding == 0
        };
        if !complete {
            return;
        }
        let ps = self.nodes[dst]
            .prefetches
            .remove(page)
            // invariant: a prefetch reply matches the outstanding prefetch
            // record that produced the request
            .expect("prefetch state");
        let (end, cpu) = self.tm_apply_collected(
            dst,
            page,
            ps.diffs,
            ps.full_page,
            ps.ready_at,
            &ps.requested,
            true,
        );
        self.record(
            end,
            dst,
            crate::trace::TraceKind::PrefetchCompleted { page },
        );
        self.nodes[dst].stats.prefetch_fills += 1;
        self.ts_count(crate::timeseries::TsCounter::PrefetchFills, end, 1);
        self.ts_page(page, 1, 0, 0);
        self.obs_prefetch_done(dst, page, end);
        if ps.joined {
            // Zero prefetch-to-use distance: a fault was already waiting.
            self.obs_prefetch_used(dst, page, end);
            self.obs_edge(
                crate::span::EdgeKind::PrefetchFill,
                dst,
                t,
                dst,
                end,
                cpu,
                self.obs_last_span(dst),
            );
            self.schedule_wake(dst, end);
        } else {
            self.tm_page(dst, page).prefetched_unused = true;
        }
    }

    /// Applies a collected set of diffs (and optionally a whole page) to
    /// `pid`'s copy in causal order, charging the right engine. Returns the
    /// completion time and the diff-apply work (cycles) folded into it — the
    /// portion a "hardware diffs" what-if scenario deletes from the fill.
    #[allow(clippy::too_many_arguments)]
    fn tm_apply_collected(
        &mut self,
        pid: usize,
        page: PageId,
        mut diffs: DiffList,
        full: Option<(PageBuf, VectorTime)>,
        start: Cycles,
        satisfied: &[(usize, IntervalId)],
        prefetch_ctx: bool,
    ) -> (Cycles, Cycles) {
        let params = self.params.clone();
        let mode = self.mode();
        let mut mem_words: u64 = 0;
        if let Some((data, pvt)) = &full {
            // Words this node wrote concurrently with the page's view must
            // survive the copy: re-apply own uncovered diffs on top.
            let mut own = crate::pool::take_clock();
            own.extend(
                self.tm_page(pid, page)
                    .own_intervals
                    .iter()
                    .copied()
                    .filter(|&ivl| !pvt.covers_interval(pid, ivl)),
            );
            for &ivl in &own {
                if let Some(d) = self.nodes[pid].diffs.get(page, ivl) {
                    diffs.push(d.clone());
                }
            }
            crate::pool::put_clock(own);
            diffs.retain(|d| d.owner == pid || !pvt.covers_interval(d.owner, d.interval));
            self.tm_page(pid, page).data.copy_from(data);
            mem_words += params.page_words();
            self.record(start, pid, crate::trace::TraceKind::PageFetched { page });
            self.nodes[pid].stats.page_fetches += 1;
            self.ts_count(crate::timeseries::TsCounter::PageFetches, start, 1);
            self.ts_page(page, 1, 0, 0);
        }
        diffs.sort_by_key(|d| (self.vt_sum(pid, d.owner, d.interval), d.owner, d.interval));
        let mut cpu: Cycles = 0;
        let mut apply_words: u64 = 0;
        for d in diffs.iter() {
            let words = d.word_count();
            mem_words += words;
            apply_words += words;
            cpu += if mode.hw_diffs() {
                Controller::dma_cost(&params, words)
            } else {
                Controller::sw_diff_apply(&params, words)
            };
        }
        {
            let tp = self.tm_page(pid, page);
            for d in diffs.iter() {
                d.apply(&mut tp.data);
            }
            tp.pending.retain(|n| !satisfied.contains(n));
            // Notices that arrived while the diffs were in flight keep the
            // page invalid: validating it here would let stale data be read
            // without a fault.
            tp.state = if !tp.pending.is_empty() {
                PageState::Invalid
            } else if mode.hw_diffs() {
                PageState::ReadWrite
            } else {
                PageState::ReadOnly
            };
            tp.was_referenced = false;
        }
        #[cfg(feature = "verify")]
        {
            let applied: Vec<(usize, IntervalId)> =
                diffs.iter().map(|d| (d.owner, d.interval)).collect();
            let data = self.tm_page(pid, page).data.clone();
            self.emit(crate::observe::ProtocolEvent::DiffsApplied {
                pid,
                page,
                applied,
                data,
            });
        }
        if !diffs.is_empty() {
            let words: u64 = diffs.iter().map(|d| d.word_count()).sum();
            self.record(
                start,
                pid,
                crate::trace::TraceKind::DiffApplied { page, words },
            );
        }
        self.nodes[pid].stats.diffs_applied += diffs.len() as u64;
        self.nodes[pid].stats.diff_apply_cycles += cpu;
        self.nodes[pid].stats.diff_bytes_applied += 4 * apply_words;
        self.ts_count(
            crate::timeseries::TsCounter::DiffsApplied,
            start,
            diffs.len() as u64,
        );
        self.ts_count(
            crate::timeseries::TsCounter::DiffBytesApplied,
            start,
            4 * apply_words,
        );
        self.ts_page(page, 0, 4 * apply_words, 0);
        // The controller (or NI) wrote main memory: the processor snoop
        // invalidates its stale cache lines.
        let base = page * params.page_bytes;
        self.nodes[pid]
            .mem
            .cache
            .invalidate_page(base, params.page_bytes);
        // Timing.
        let scattered = params.mem_scattered(mem_words.max(1));
        let end = if mode.offload() {
            let (s, e) = self.nodes[pid].ctrl.run(start, cpu);
            self.note_ctrl(pid, Engine::CtrlCore, CtrlCmd::DiffApply, s, e);
            let (_, me) = self.nodes[pid].mem.dram.resource.reserve(s, scattered);
            let (_, pe) = self.nodes[pid].mem.pci.burst(s, mem_words.max(1), &params);
            e.max(me).max(pe)
        } else if prefetch_ctx {
            // P mode: the processor is interrupted to apply the prefetch.
            self.nodes[pid].stats.diff_proc_cycles += cpu;
            let c = self.interrupt_proc(
                pid,
                start,
                params.interrupt + cpu,
                Category::Other,
                SpanKind::DiffApply,
            );
            let (_, me) = self.nodes[pid].mem.dram.resource.reserve(c, scattered);
            me
        } else {
            // Demand fault in Base/P: the blocked processor applies.
            self.nodes[pid].stats.diff_proc_cycles += cpu;
            let c = start + cpu;
            let (_, me) = self.nodes[pid].mem.dram.resource.reserve(c, scattered);
            me
        };
        (end, cpu)
    }

    // ----- write-notice processing and prefetch issue --------------------------

    /// Records announcements, merges the vector time and invalidates named
    /// pages. Runs on the (blocked) processor: the returned completion time
    /// extends the acquire.
    pub(crate) fn tm_process_anns(
        &mut self,
        pid: usize,
        anns: &[IntervalAnnouncement],
        t: Cycles,
    ) -> Cycles {
        let params = self.params.clone();
        let mut c = t + params.list_processing * (anns.len() as Cycles + 1);
        for ann in anns {
            if self.nodes[pid].vt.covers_interval(ann.owner, ann.id) {
                continue;
            }
            self.nodes[pid].vt.observe(ann.owner, ann.id);
            self.nodes[pid].store.record(ann.clone());
            if ann.owner == pid {
                continue;
            }
            for &page in &ann.pages {
                #[cfg(feature = "verify")]
                {
                    // Oracle self-test mutation: drop this write notice on
                    // the floor (the page keeps its stale mapping).
                    if self.drop_notice_armed {
                        self.drop_notice_armed = false;
                        continue;
                    }
                }
                // Settle local modifications before losing the page.
                c = self.tm_force_diff(pid, page, c);
                let (was_valid, was_prefetched) = {
                    let tp = self.tm_page(pid, page);
                    let was_valid = tp.state != PageState::Invalid;
                    let mut was_prefetched = false;
                    if was_valid {
                        tp.state = PageState::Invalid;
                        tp.twin = None;
                        was_prefetched = std::mem::take(&mut tp.prefetched_unused);
                        tp.was_referenced |= tp.referenced;
                        tp.recently_referenced = tp.referenced;
                        tp.referenced = false;
                    }
                    let key = (ann.owner, ann.id);
                    if !tp.pending.contains(&key) {
                        tp.pending.push(key);
                    }
                    (was_valid, was_prefetched)
                };
                if was_prefetched {
                    self.nodes[pid].stats.useless_prefetches += 1;
                }
                if was_valid {
                    self.nodes[pid].stats.invalidations += 1;
                    self.ts_count(crate::timeseries::TsCounter::Invalidations, c, 1);
                    self.ts_page(page, 0, 0, 1);
                }
                #[cfg(feature = "verify")]
                self.emit(crate::observe::ProtocolEvent::NoticeRecorded {
                    pid,
                    owner: ann.owner,
                    id: ann.id,
                    page,
                });
                c += params.list_processing;
            }
        }
        #[cfg(feature = "verify")]
        {
            let vt = self.nodes[pid].vt.clone();
            self.emit(crate::observe::ProtocolEvent::AnnsProcessed { pid, vt });
        }
        c
    }

    /// Issues diff prefetches for invalid, previously referenced pages
    /// (the §3.2 heuristic), at low priority. The issuing cost extends the
    /// acquire's synchronization time.
    pub(crate) fn tm_issue_prefetches(&mut self, pid: usize, t: Cycles) -> Cycles {
        let params = self.params.clone();
        let mode = self.mode();
        let strategy = params.prefetch_strategy;
        let mut candidates: Vec<PageId> = self.nodes[pid]
            .pages
            .iter()
            .filter(|(page, tp)| {
                let interested = match strategy {
                    ncp2_sim::PrefetchStrategy::RecentlyReferenced => tp.recently_referenced,
                    _ => tp.was_referenced,
                };
                tp.state == PageState::Invalid
                    && interested
                    && !tp.pending.is_empty()
                    && !self.nodes[pid].prefetches.contains(*page)
            })
            .map(|(page, _)| page)
            .collect();
        candidates.sort_unstable();
        if let ncp2_sim::PrefetchStrategy::Capped(cap) = strategy {
            candidates.truncate(cap);
        }
        let mut c = t;
        for page in candidates {
            // Graceful degradation: under congestion (or a deep unacked
            // backlog) the transport sheds low-priority prefetch commands
            // first; demand traffic keeps its full retry budget.
            if self.shed_prefetch(pid, page, c) {
                continue;
            }
            self.record(c, pid, crate::trace::TraceKind::PrefetchIssued { page });
            self.obs_prefetch_issued(pid, page, c);
            self.nodes[pid].stats.prefetches += 1;
            self.ts_count(crate::timeseries::TsCounter::PrefetchIssued, c, 1);
            let pending = self.tm_page(pid, page).pending.clone();
            let requests = self.tm_build_requests(pid, page, &pending, true);
            let outstanding = requests.len();
            for (owner, msg) in requests {
                c += if mode.offload() {
                    Controller::issue_cost(&params)
                } else {
                    params.messaging_overhead
                };
                if mode.offload() {
                    self.ctrl_send(c, pid, owner, msg);
                } else {
                    self.dispatch(c, pid, owner, msg);
                }
            }
            self.nodes[pid].prefetches.insert(
                page,
                PrefetchState {
                    outstanding,
                    ready_at: c,
                    diffs: DiffList::new(),
                    full_page: None,
                    requested: pending,
                    joined: false,
                },
            );
        }
        c
    }
}
