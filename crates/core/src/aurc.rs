//! AURC — automatic-update release consistency (§3.3).
//!
//! Shrimp-style network interfaces snoop write-throughs and forward them to
//! a remote mapping, combining consecutive updates in a small write cache.
//! Two sharers of a page map it bi-directionally (*pairwise sharing*: no
//! faults, no fetches); a page with more sharers gets a home node that
//! merges all updates, and every other sharer invalidates on acquire and
//! re-fetches the page from home on its next access.
//!
//! Modelling notes (see DESIGN.md): the data plane is a single master copy —
//! automatic updates are timing-only events, which is exact for
//! data-race-free programs. Timestamps are modelled operationally: every
//! node tracks, per destination, the arrival horizon of the updates it has
//! emitted; acquires wait for the releaser's horizon and home-page fetches
//! wait for the home's per-page horizon (the paper's flush/lock timestamp
//! comparison).

use ncp2_sim::{Category, Cycles, ProcOp, ProcReply};

use crate::interval::IntervalAnnouncement;
use crate::msg::Msg;
use crate::page::{page_of, PageId};
use crate::span::SpanKind;
use crate::system::{AurcMode, InsertOutcome, Simulation, Wait};

impl Simulation {
    // ----- the access path --------------------------------------------------

    /// Handles one read/write under AURC. `None` means the processor blocked
    /// on a page fetch.
    pub(crate) fn aurc_access(&mut self, pid: usize, op: ProcOp) -> Option<ProcReply> {
        let (addr, write) = match op {
            ProcOp::Read { addr, .. } => (addr, false),
            ProcOp::Write { addr, .. } => (addr, true),
            _ => unreachable!("aurc_access on non-memory op"),
        };
        let page = page_of(addr, self.params.page_bytes);
        // Sharing-mode transition on first access by a new processor.
        let mode = self.aurc_modes.get(page).copied();
        let (new_mode, fetch_from) = match mode {
            None => (AurcMode::Single(pid), None),
            Some(AurcMode::Single(a)) if a == pid => (AurcMode::Single(a), None),
            Some(AurcMode::Single(a)) if self.params.aurc_pairwise => {
                (AurcMode::Pairwise(a, pid, false), Some(a))
            }
            Some(AurcMode::Single(a)) => {
                // Ablation: pairwise disabled — a second sharer goes straight
                // to home mode.
                let home =
                    // overflow: Fibonacci-hash multiply — wraparound is the mixing step.
        (page.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize % self.params.nprocs;
                (AurcMode::Home(home), Some(a))
            }
            Some(AurcMode::Pairwise(a, b, r)) if a == pid || b == pid => {
                (AurcMode::Pairwise(a, b, r), None)
            }
            Some(AurcMode::Pairwise(a, b, false)) => {
                // Third sharer replaces the first (§3.3); the replaced node
                // re-joins through the home path if it comes back.
                self.nodes[a]
                    .aurc_pages
                    .get_or_default(page)
                    .set_valid(false);
                (AurcMode::Pairwise(b, pid, true), Some(b))
            }
            Some(AurcMode::Pairwise(a, b, true)) => {
                // A fourth sharer: revert to write-through to a statically
                // assigned home node (AURC homes data and directory by a
                // page-id hash, so block-partitioned arrays do not land on
                // their own writers). The last pair members keep valid
                // copies.
                let home =
                    // overflow: Fibonacci-hash multiply — wraparound is the mixing step.
        (page.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize % self.params.nprocs;
                let _ = (a, b);
                (
                    AurcMode::Home(home),
                    Some(if home == pid { a } else { home }),
                )
            }
            Some(AurcMode::Home(h)) => (AurcMode::Home(h), None),
        };
        self.aurc_modes.insert(page, new_mode);
        let local_valid = {
            let lp = self.nodes[pid].aurc_pages.get_or_default(page);
            match new_mode {
                AurcMode::Single(a) if a == pid => {
                    lp.set_valid(true);
                    true
                }
                AurcMode::Pairwise(a, b, _) if (a == pid || b == pid) && fetch_from.is_none() => {
                    lp.valid()
                }
                AurcMode::Home(h) if h == pid => {
                    lp.set_valid(true);
                    true
                }
                _ => lp.valid() && fetch_from.is_none(),
            }
        };
        if !local_valid {
            let target = match (fetch_from, new_mode) {
                (Some(src), _) => src,
                (None, AurcMode::Home(h)) => h,
                (None, AurcMode::Pairwise(a, b, _)) => {
                    // A pair member with an invalid copy (it was displaced
                    // earlier): escalate to home mode at the other member.
                    let home = if a == pid { b } else { a };
                    self.aurc_modes.insert(page, AurcMode::Home(home));
                    home
                }
                (None, AurcMode::Single(_)) => unreachable!("single owner is always valid"),
            };
            if self.nodes[pid]
                .aurc_pages
                .get(page)
                .is_some_and(|lp| lp.prefetching())
            {
                self.nodes[pid]
                    .aurc_pages
                    .get_mut(page)
                    // invariant: the joining access created the entry above
                    .expect("entry")
                    .set_joined(true);
                self.nodes[pid].stats.prefetch_joins += 1;
                self.block(pid, Wait::AurcFault { page });
            } else {
                self.aurc_start_fetch(pid, page, target, false);
                self.block(pid, Wait::AurcFault { page });
            }
            return None;
        }
        Some(self.aurc_do_access(pid, op, write))
    }

    /// Fourth-and-later sharers force home mode: pairwise pages accessed by
    /// an outsider when both members are valid.
    fn aurc_do_access(&mut self, pid: usize, op: ProcOp, write: bool) -> ProcReply {
        let (addr, _) = match op {
            ProcOp::Read { addr, .. } | ProcOp::Write { addr, .. } => (addr, ()),
            _ => unreachable!(),
        };
        #[cfg(feature = "verify")]
        {
            let bytes = match op {
                ProcOp::Read { bytes, .. } | ProcOp::Write { bytes, .. } => bytes,
                _ => 0,
            };
            self.emit(crate::observe::ProtocolEvent::Access {
                pid,
                addr,
                bytes,
                write,
            });
        }
        self.charge_mem(pid, addr, write);
        let page = page_of(addr, self.params.page_bytes);
        let page_bytes = self.params.page_bytes;
        let line = addr / self.params.line_bytes;
        let off = (addr % page_bytes) as usize;
        // invariant: the faulting access classified the page before blocking
        let mode = *self.aurc_modes.get(page).expect("mode set by access path");
        let was_prefetched = {
            let lp = self.nodes[pid].aurc_pages.get_or_default(page);
            lp.set_referenced(true);
            lp.take_prefetched_unused()
        };
        if was_prefetched {
            self.nodes[pid].stats.prefetch_hits += 1;
            let now = self.nodes[pid].time;
            self.obs_prefetch_used(pid, page, now);
        }
        let reply = {
            let buf = self.master_page(page);
            match op {
                ProcOp::Read { bytes, .. } => ProcReply::Value(buf.read(off, bytes)),
                ProcOp::Write { bytes, value, .. } => {
                    buf.write(off, bytes, value);
                    ProcReply::Ack
                }
                _ => unreachable!(),
            }
        };
        if write {
            let newly_dirty = {
                let lp = self.nodes[pid].aurc_pages.get_or_default(page);
                let nd = !lp.in_cur_dirty();
                lp.set_in_cur_dirty(true);
                nd
            };
            if newly_dirty {
                self.nodes[pid].cur_dirty.push(page);
            }
            let update_dst = match mode {
                AurcMode::Single(_) => None,
                AurcMode::Pairwise(a, b, _) => Some(if pid == a { b } else { a }),
                AurcMode::Home(h) if h != pid => Some(h),
                AurcMode::Home(_) => None,
            };
            if let Some(dst) = update_dst {
                match self.nodes[pid].wcache.insert(line, dst) {
                    InsertOutcome::Combined => self.nodes[pid].stats.au_combined += 1,
                    InsertOutcome::Inserted {
                        evicted: Some((eline, edst)),
                    } => {
                        self.aurc_emit_update(pid, eline, edst, Category::Other);
                    }
                    InsertOutcome::Inserted { evicted: None } => {}
                }
            }
        }
        reply
    }

    /// Ships one combined write-cache line as an automatic update. Charges
    /// the per-update overhead to the processor (1 cycle by default — the
    /// paper's optimistic assumption; the §5.3 sweep raises it).
    fn aurc_emit_update(&mut self, pid: usize, line: u64, dst: usize, cat: Category) {
        let oh = self.params.au_messaging_overhead;
        self.advance(pid, oh, cat, SpanKind::UpdateFlush);
        // The outgoing line crosses the sender's PCI bus to the NI.
        let now = self.nodes[pid].time;
        let params = self.params.clone();
        let (_, t) = self.nodes[pid]
            .mem
            .pci
            .burst(now, params.line_words(), &params);
        let page = line * self.params.line_bytes / self.params.page_bytes;
        let msg = Msg::AurcUpdate { page, from: pid };
        // This bypasses `dispatch` (updates carry their own horizon
        // bookkeeping), so the send is reported here.
        #[cfg(feature = "verify")]
        self.emit(crate::observe::ProtocolEvent::MsgSent {
            src: pid,
            dst,
            kind: msg.kind(),
            demand: !msg.is_prefetch(),
        });
        let bytes = msg.bytes(self.params.page_bytes, self.params.page_words());
        let params = self.params.clone();
        let tr = self.net.transfer_timed(t, pid, dst, bytes, &params);
        self.ts_count(crate::timeseries::TsCounter::Messages, t, 1);
        self.ts_count(crate::timeseries::TsCounter::MessageBytes, t, bytes);
        self.obs_flight(pid, dst, msg.kind(), bytes, false, t, tr.start, tr.arrival);
        self.obs_edge(
            crate::span::EdgeKind::Msg(msg.kind()),
            pid,
            t,
            dst,
            tr.arrival,
            0,
            self.obs_last_span(pid),
        );
        let arrival = tr.arrival;
        self.nodes[pid].out_horizon[dst] = self.nodes[pid].out_horizon[dst].max(arrival);
        self.queue.push(
            arrival,
            ncp2_sim::Priority::Normal,
            crate::system::Ev::Msg { dst, msg },
        );
        self.nodes[pid].stats.au_updates += 1;
    }

    /// Release-time write-cache flush (the paper's flush timestamps): every
    /// buffered line goes on the wire before the release can be observed.
    pub(crate) fn aurc_flush_wcache(&mut self, pid: usize, cat: Category) {
        let entries = self.nodes[pid].wcache.flush();
        for (line, dst) in entries {
            self.aurc_emit_update(pid, line, dst, cat);
        }
    }

    // ----- page fetches -------------------------------------------------------

    fn aurc_start_fetch(&mut self, pid: usize, page: PageId, target: usize, prefetch: bool) {
        if !prefetch {
            let now = self.nodes[pid].time;
            self.record(now, pid, crate::trace::TraceKind::Fault { page });
            self.nodes[pid].stats.faults += 1;
            self.advance(
                pid,
                self.params.interrupt,
                Category::Other,
                SpanKind::Interrupt,
            );
        }
        let msg = Msg::AurcPageReq {
            page,
            requester: pid,
            prefetch,
        };
        let mut t = self.nodes[pid].time;
        self.send_msg(&mut t, pid, target, msg, Category::Data, false);
        self.nodes[pid].time = t;
    }

    pub(crate) fn on_aurc_page_req(
        &mut self,
        dst: usize,
        t: Cycles,
        page: PageId,
        requester: usize,
        prefetch: bool,
    ) {
        let params = self.params.clone();
        // AURC has no protocol controller: the home processor services every
        // fetch — including useless prefetches, the paper's AURC+P poison.
        let c0 = self.interrupt_proc(dst, t, params.interrupt, Category::Ipc, SpanKind::Service);
        let horizon = self.nodes[dst].home_horizon.get(page).copied().unwrap_or(0);
        let start = c0.max(horizon);
        let (_, mem_read) = self.nodes[dst]
            .mem
            .dram
            .access(start, params.page_words(), &params);
        let (_, mem_end) = self.nodes[dst]
            .mem
            .pci
            .burst(mem_read, params.page_words(), &params);
        let c1 = self.interrupt_proc(
            dst,
            mem_end,
            params.messaging_overhead,
            Category::Ipc,
            SpanKind::MsgSetup,
        );
        self.dispatch(c1, dst, requester, Msg::AurcPageReply { page, prefetch });
    }

    pub(crate) fn on_aurc_page_reply(
        &mut self,
        dst: usize,
        t: Cycles,
        page: PageId,
        prefetch: bool,
    ) {
        let params = self.params.clone();
        let (_, pci_end) = self.nodes[dst]
            .mem
            .pci
            .burst(t, params.page_words(), &params);
        let (_, mem_end) = self.nodes[dst]
            .mem
            .dram
            .access(pci_end, params.page_words(), &params);
        let base = page * params.page_bytes;
        self.nodes[dst]
            .mem
            .cache
            .invalidate_page(base, params.page_bytes);
        self.record(t, dst, crate::trace::TraceKind::PageFetched { page });
        self.nodes[dst].stats.page_fetches += 1;
        self.ts_count(crate::timeseries::TsCounter::PageFetches, t, 1);
        self.ts_page(page, 1, 0, 0);
        let joined = {
            let lp = self.nodes[dst].aurc_pages.get_or_default(page);
            if prefetch {
                lp.set_prefetching(false);
                let stale = lp.take_prefetch_stale();
                if !stale {
                    lp.set_valid(true);
                }
                let joined = lp.take_joined();
                lp.set_prefetched_unused(!stale && !joined);
                joined
            } else {
                lp.set_valid(true);
                true
            }
        };
        if prefetch {
            self.record(
                mem_end,
                dst,
                crate::trace::TraceKind::PrefetchCompleted { page },
            );
            // The transfer itself was already attributed by the page-fetch
            // site above; this only counts the completed prefetch.
            self.nodes[dst].stats.prefetch_fills += 1;
            self.ts_count(crate::timeseries::TsCounter::PrefetchFills, mem_end, 1);
            self.obs_prefetch_done(dst, page, mem_end);
            if joined {
                // Zero prefetch-to-use distance: a fault was already waiting.
                self.obs_prefetch_used(dst, page, mem_end);
            }
        }
        if joined {
            debug_assert!(
                matches!(self.nodes[dst].wait, Wait::AurcFault { page: p } if p == page)
                    || !prefetch,
                "prefetch join without a matching fault"
            );
            let ekind = if prefetch {
                crate::span::EdgeKind::PrefetchFill
            } else {
                crate::span::EdgeKind::FaultFill
            };
            self.obs_edge(ekind, dst, t, dst, mem_end, 0, self.obs_last_span(dst));
            self.schedule_wake(dst, mem_end);
        }
    }

    pub(crate) fn on_aurc_update(&mut self, dst: usize, t: Cycles, page: PageId) {
        // The NI moves the line across the PCI bus into local memory
        // (both contended) and the per-page horizon advances.
        let params = self.params.clone();
        let (_, pci_end) = self.nodes[dst]
            .mem
            .pci
            .burst(t, params.line_words(), &params);
        let (_, mem_end) = self.nodes[dst]
            .mem
            .dram
            .access(pci_end, params.line_words(), &params);
        let h = self.nodes[dst].home_horizon.get_or_default(page);
        *h = (*h).max(mem_end);
    }

    // ----- write-notice processing and prefetch issue ---------------------------

    /// AURC acquire-side notice processing: invalidate non-home copies of
    /// home-mode pages (pairwise copies are kept up to date by the automatic
    /// updates).
    pub(crate) fn aurc_process_anns(
        &mut self,
        pid: usize,
        anns: &[IntervalAnnouncement],
        t: Cycles,
    ) -> Cycles {
        let params = self.params.clone();
        let mut c = t + params.list_processing * (anns.len() as Cycles + 1);
        for ann in anns {
            if self.nodes[pid].vt.covers_interval(ann.owner, ann.id) {
                continue;
            }
            self.nodes[pid].vt.observe(ann.owner, ann.id);
            self.nodes[pid].store.record(ann.clone());
            if ann.owner == pid {
                continue;
            }
            for &page in &ann.pages {
                c += params.list_processing;
                let invalidate = match self.aurc_modes.get(page) {
                    Some(AurcMode::Home(h)) => *h != pid,
                    _ => false,
                };
                if !invalidate {
                    continue;
                }
                let (had_copy, was_prefetched) = {
                    let lp = self.nodes[pid].aurc_pages.get_or_default(page);
                    let had = lp.valid();
                    lp.set_valid(false);
                    if lp.prefetching() {
                        lp.set_prefetch_stale(true);
                    }
                    lp.set_was_referenced(lp.was_referenced() | lp.referenced());
                    lp.set_recently_referenced(lp.referenced());
                    lp.set_referenced(false);
                    (had, lp.take_prefetched_unused())
                };
                if was_prefetched {
                    self.nodes[pid].stats.useless_prefetches += 1;
                }
                if had_copy {
                    self.nodes[pid].stats.invalidations += 1;
                    self.ts_count(crate::timeseries::TsCounter::Invalidations, c, 1);
                    self.ts_page(page, 0, 0, 1);
                }
            }
        }
        #[cfg(feature = "verify")]
        {
            let vt = self.nodes[pid].vt.clone();
            self.emit(crate::observe::ProtocolEvent::AnnsProcessed { pid, vt });
        }
        c
    }

    /// AURC+P: prefetch invalidated, previously referenced home pages from
    /// their homes. All processor-driven (no controller to hide behind).
    pub(crate) fn aurc_issue_prefetches(&mut self, pid: usize, t: Cycles) -> Cycles {
        let strategy = self.params.prefetch_strategy;
        let mut candidates: Vec<(PageId, usize)> = self.nodes[pid]
            .aurc_pages
            .iter()
            .filter(|(_, lp)| {
                let interested = match strategy {
                    ncp2_sim::PrefetchStrategy::RecentlyReferenced => lp.recently_referenced(),
                    _ => lp.was_referenced(),
                };
                !lp.valid() && interested && !lp.prefetching()
            })
            .filter_map(|(page, _)| match self.aurc_modes.get(page) {
                Some(AurcMode::Home(h)) if *h != pid => Some((page, *h)),
                _ => None,
            })
            .collect();
        candidates.sort_unstable();
        if let ncp2_sim::PrefetchStrategy::Capped(cap) = strategy {
            candidates.truncate(cap);
        }
        let mut c = t;
        for (page, home) in candidates {
            // Same degradation policy as the TreadMarks path: shed the
            // low-priority prefetch under congestion, keep demand traffic.
            if self.shed_prefetch(pid, page, c) {
                continue;
            }
            self.record(c, pid, crate::trace::TraceKind::PrefetchIssued { page });
            self.obs_prefetch_issued(pid, page, c);
            self.nodes[pid].stats.prefetches += 1;
            self.ts_count(crate::timeseries::TsCounter::PrefetchIssued, c, 1);
            c += self.params.messaging_overhead;
            let msg = Msg::AurcPageReq {
                page,
                requester: pid,
                prefetch: true,
            };
            self.dispatch(c, pid, home, msg);
            // invariant: the prefetch decision read this entry just above
            let lp = self.nodes[pid].aurc_pages.get_mut(page).expect("entry");
            lp.set_prefetching(true);
            lp.set_prefetch_stale(false);
            lp.set_joined(false);
        }
        c
    }
}
