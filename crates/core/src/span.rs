//! Simulated-time spans: the data model behind the `obs` feature.
//!
//! When `ncp2-core` is built with the `obs` feature and
//! [`Simulation::enable_obs`](crate::Simulation::enable_obs) is called, the
//! simulation records three kinds of timed regions over **simulated cycles**
//! (never wall clock):
//!
//! * **Conserved processor spans** ([`Span`]) — one span per breakdown
//!   charge. Every call that adds cycles to a node's [`Breakdown`] emits
//!   exactly one span of the same duration and category, so per-node,
//!   per-category span time sums *exactly* to the node's breakdown totals.
//!   [`ObsLog::conservation_errors`] checks this invariant and
//!   [`Simulation::finish`] reports any mismatch as a
//!   [`Violation::SpanConservation`](crate::observe::Violation).
//! * **Engine spans** ([`EngineSpan`]) — occupancy of the protocol
//!   controller's core/DMA datapath and message front end, labelled with the
//!   command that ran ([`CtrlCmd`]).
//! * **Message flights** ([`Flight`]) — injection, network entry (after link
//!   contention) and arrival of every protocol message.
//!
//! Spans are tagged with the node's current *barrier epoch* (incremented
//! each time the node is released from a barrier) so breakdowns can be
//! inspected per phase. A barrier's own wait time is attributed to the epoch
//! it closes; the epoch advances at the wake that ends the wait.
//!
//! The types here are always compiled (so [`RunResult`](crate::RunResult)
//! can carry an `Option<ObsLog>` unconditionally); only the recording sites
//! inside the simulation are gated behind the `obs` feature, mirroring the
//! `verify` hook pattern.
//!
//! [`Breakdown`]: ncp2_sim::Breakdown

use std::collections::HashMap;

use ncp2_sim::{Category, Cycles};
use serde::{Deserialize, Serialize};

use crate::observe::MsgKind;
use crate::stats::NodeStats;

/// What a conserved processor span was spent on. The kind is finer than the
/// five [`Category`] buckets: several kinds map into one category (e.g.
/// `DiffCreate` cycles are `Data` when taken on a write fault but `Ipc` when
/// taken while servicing a remote request), so each [`Span`] carries both.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SpanKind {
    /// Useful application computation.
    Compute,
    /// The 1-cycle hit portion of a shared-memory reference.
    MemHit,
    /// TLB / cache-miss / write-buffer stall of a memory reference.
    MemStall,
    /// Trap / interrupt entry overhead.
    Interrupt,
    /// Twin creation (page copy) on the processor.
    Twin,
    /// Diff generation (twin comparison or issue of a DMA gather).
    DiffCreate,
    /// Diff application to a local page copy.
    DiffApply,
    /// Interval / write-notice / list processing.
    NoticeMgmt,
    /// Sequential-mode synchronization stand-in operations.
    SyncOp,
    /// Per-message software overhead or controller command issue.
    MsgSetup,
    /// AURC automatic-update emission (write-cache flush / eviction).
    UpdateFlush,
    /// Servicing a remote request (handler body charged as IPC).
    Service,
    /// Blocked collecting diffs / fetching a page on an access fault.
    FaultStall,
    /// Blocked waiting for an in-flight prefetch it joined.
    PrefetchStall,
    /// Blocked waiting for a lock grant.
    LockStall,
    /// Blocked waiting for a barrier release.
    BarrierStall,
    /// Transport ack timer expired; retransmission decision overhead.
    RetransmitTimeout,
    /// Re-sending an unacknowledged transport frame.
    Retransmit,
    /// Discarding an already-delivered duplicate frame.
    DuplicateDropped,
    /// Degradation policy shedding a prefetch command under congestion.
    PrefetchShed,
}

impl SpanKind {
    /// Every kind, in rendering order.
    pub const ALL: [SpanKind; 20] = [
        SpanKind::Compute,
        SpanKind::MemHit,
        SpanKind::MemStall,
        SpanKind::Interrupt,
        SpanKind::Twin,
        SpanKind::DiffCreate,
        SpanKind::DiffApply,
        SpanKind::NoticeMgmt,
        SpanKind::SyncOp,
        SpanKind::MsgSetup,
        SpanKind::UpdateFlush,
        SpanKind::Service,
        SpanKind::FaultStall,
        SpanKind::PrefetchStall,
        SpanKind::LockStall,
        SpanKind::BarrierStall,
        SpanKind::RetransmitTimeout,
        SpanKind::Retransmit,
        SpanKind::DuplicateDropped,
        SpanKind::PrefetchShed,
    ];

    /// Stable snake_case label used by the exporters.
    pub fn label(self) -> &'static str {
        match self {
            SpanKind::Compute => "compute",
            SpanKind::MemHit => "mem_hit",
            SpanKind::MemStall => "mem_stall",
            SpanKind::Interrupt => "interrupt",
            SpanKind::Twin => "twin",
            SpanKind::DiffCreate => "diff_create",
            SpanKind::DiffApply => "diff_apply",
            SpanKind::NoticeMgmt => "notice_mgmt",
            SpanKind::SyncOp => "sync_op",
            SpanKind::MsgSetup => "msg_setup",
            SpanKind::UpdateFlush => "update_flush",
            SpanKind::Service => "service",
            SpanKind::FaultStall => "fault_stall",
            SpanKind::PrefetchStall => "prefetch_stall",
            SpanKind::LockStall => "lock_stall",
            SpanKind::BarrierStall => "barrier_stall",
            SpanKind::RetransmitTimeout => "retransmit_timeout",
            SpanKind::Retransmit => "retransmit",
            SpanKind::DuplicateDropped => "duplicate_dropped",
            SpanKind::PrefetchShed => "prefetch_shed",
        }
    }
}

/// Which controller engine executed an [`EngineSpan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Engine {
    /// The controller's RISC core + DMA datapath.
    CtrlCore,
    /// The message / network-interface front end.
    CtrlIo,
}

impl Engine {
    /// Stable label used by the exporters.
    pub fn label(self) -> &'static str {
        match self {
            Engine::CtrlCore => "ctrl.core",
            Engine::CtrlIo => "ctrl.io",
        }
    }
}

/// The command class a controller engine ran.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CtrlCmd {
    /// Twin creation (page copy).
    Twin,
    /// Diff generation (software scan or DMA bit-vector gather).
    DiffCreate,
    /// Diff application (software or DMA scatter).
    DiffApply,
    /// Interval-table walk for a prefetch request.
    ListWalk,
    /// Message setup on behalf of the node.
    Send,
}

impl CtrlCmd {
    /// Stable snake_case label used by the exporters.
    pub fn label(self) -> &'static str {
        match self {
            CtrlCmd::Twin => "twin",
            CtrlCmd::DiffCreate => "diff_create",
            CtrlCmd::DiffApply => "diff_apply",
            CtrlCmd::ListWalk => "list_walk",
            CtrlCmd::Send => "send",
        }
    }
}

/// One conserved processor span.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Span {
    /// The node whose breakdown the span's duration was charged to.
    pub node: usize,
    /// The node's barrier epoch at emission.
    pub epoch: u64,
    /// What the time was spent on.
    pub kind: SpanKind,
    /// The breakdown category the duration was charged under.
    pub cat: Category,
    /// Start, simulated cycles.
    pub start: Cycles,
    /// End, simulated cycles (`end - start` is the charged duration).
    pub end: Cycles,
    /// Charged at the *requester's* event time rather than on the node's own
    /// local timeline (a handler whose node had already finished its
    /// program). Detached spans still count toward breakdown conservation
    /// but are excluded from the per-node tiling the dependency graph is
    /// built on.
    pub detached: bool,
}

/// Index of a [`Span`] in [`ObsLog::spans`]; [`SpanId::NONE`] marks "no span
/// emitted yet on that node".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SpanId(pub u32);

impl SpanId {
    /// Sentinel: no span recorded on the node so far.
    pub const NONE: SpanId = SpanId(u32::MAX);

    /// Whether this is the [`SpanId::NONE`] sentinel.
    pub fn is_none(self) -> bool {
        self == SpanId::NONE
    }
}

/// What kind of cross-activity dependency a [`DepEdge`] records.
///
/// *Binding* kinds ([`EdgeKind::is_binding`]) are self-edges on the waking
/// node — from the event (last reply arrival, grant arrival, release
/// arrival) to the scheduled wake — and are the joints the critical-path
/// walk pivots on. `Msg` edges are the network flights feeding them; `Ctrl`
/// and `PrefetchUse` edges annotate the graph but never carry the path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EdgeKind {
    /// Message send (injection) → receive (arrival at the NI).
    Msg(MsgKind),
    /// Fault-triggering event → fill completion (wake from a fault stall).
    FaultFill,
    /// Joined-prefetch event → fill completion (wake from a prefetch stall).
    PrefetchFill,
    /// Lock-grant arrival → acquirer's wake after notice processing.
    LockGrant,
    /// Barrier-release arrival → departure after update processing.
    BarrierRelease,
    /// Controller command issue → completion on a controller engine.
    Ctrl(CtrlCmd),
    /// Prefetch issue → first access that consumed it.
    PrefetchUse,
}

impl EdgeKind {
    /// Stable snake_case label used by the exporters.
    pub fn label(self) -> &'static str {
        match self {
            EdgeKind::Msg(k) => match k {
                MsgKind::LockReq => "msg_lock_req",
                MsgKind::LockForward => "msg_lock_forward",
                MsgKind::LockGrant => "msg_lock_grant",
                MsgKind::DiffReq => "msg_diff_req",
                MsgKind::DiffReply => "msg_diff_reply",
                MsgKind::BarrierArrive => "msg_barrier_arrive",
                MsgKind::BarrierRelease => "msg_barrier_release",
                MsgKind::AurcUpdate => "msg_aurc_update",
                MsgKind::AurcPageReq => "msg_aurc_page_req",
                MsgKind::AurcPageReply => "msg_aurc_page_reply",
            },
            EdgeKind::FaultFill => "fault_fill",
            EdgeKind::PrefetchFill => "prefetch_fill",
            EdgeKind::LockGrant => "lock_grant",
            EdgeKind::BarrierRelease => "barrier_release",
            EdgeKind::Ctrl(c) => match c {
                CtrlCmd::Twin => "ctrl_twin",
                CtrlCmd::DiffCreate => "ctrl_diff_create",
                CtrlCmd::DiffApply => "ctrl_diff_apply",
                CtrlCmd::ListWalk => "ctrl_list_walk",
                CtrlCmd::Send => "ctrl_send",
            },
            EdgeKind::PrefetchUse => "prefetch_use",
        }
    }

    /// Whether the edge binds an arrival event to the wake it schedules on
    /// the same node (the joints the critical-path walk follows).
    pub fn is_binding(self) -> bool {
        matches!(
            self,
            EdgeKind::FaultFill
                | EdgeKind::PrefetchFill
                | EdgeKind::LockGrant
                | EdgeKind::BarrierRelease
        )
    }

    /// The breakdown category exposed edge latency is attributed under when
    /// the edge sits on the critical path.
    pub fn category(self) -> Category {
        match self {
            EdgeKind::Msg(k) => match k {
                MsgKind::LockReq
                | MsgKind::LockForward
                | MsgKind::LockGrant
                | MsgKind::BarrierArrive
                | MsgKind::BarrierRelease => Category::Synch,
                MsgKind::DiffReq
                | MsgKind::DiffReply
                | MsgKind::AurcUpdate
                | MsgKind::AurcPageReq
                | MsgKind::AurcPageReply => Category::Data,
            },
            EdgeKind::LockGrant | EdgeKind::BarrierRelease => Category::Synch,
            EdgeKind::FaultFill | EdgeKind::PrefetchFill | EdgeKind::PrefetchUse => Category::Data,
            EdgeKind::Ctrl(_) => Category::Ipc,
        }
    }
}

/// One typed dependency edge between two timed points of the execution.
///
/// `(src_node, src_time) → (dst_node, dst_time)`, anchored to the last span
/// the source node had emitted when the edge was recorded (`src_span`), so
/// no edge can dangle off activity the span log never saw.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DepEdge {
    /// What dependency the edge records.
    pub kind: EdgeKind,
    /// Source node.
    pub src_node: usize,
    /// Event time at the source, simulated cycles.
    pub src_time: Cycles,
    /// Destination node.
    pub dst_node: usize,
    /// Event time at the destination, simulated cycles.
    pub dst_time: Cycles,
    /// Processor-side work folded into the edge's latency (e.g. diff-apply
    /// cycles inside a fault-fill wait) — the portion a "hardware diffs"
    /// what-if scenario deletes.
    pub work: Cycles,
    /// The last span emitted on `src_node` at recording time.
    pub src_span: SpanId,
}

/// One controller-engine occupancy interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EngineSpan {
    /// The node whose controller ran the command.
    pub node: usize,
    /// Which engine.
    pub engine: Engine,
    /// What it ran.
    pub cmd: CtrlCmd,
    /// Occupancy start, simulated cycles.
    pub start: Cycles,
    /// Occupancy end, simulated cycles.
    pub end: Cycles,
}

/// One protocol message's journey through the interconnect.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Flight {
    /// Sender.
    pub src: usize,
    /// Receiver.
    pub dst: usize,
    /// Message class.
    pub kind: MsgKind,
    /// Wire size, bytes.
    pub bytes: u64,
    /// Part of a prefetch transaction (low network priority).
    pub prefetch: bool,
    /// When the sender handed the message to the network.
    pub inject: Cycles,
    /// When the head entered the network (after link contention).
    pub start: Cycles,
    /// When the tail reached the receiver's network interface.
    pub arrival: Cycles,
}

/// Everything recorded during one observed run.
#[derive(Debug, Clone, Default)]
pub struct ObsLog {
    /// Conserved processor spans, in emission order.
    pub spans: Vec<Span>,
    /// Controller-engine occupancy intervals, in emission order.
    pub engine: Vec<EngineSpan>,
    /// Message flights, in injection order.
    pub flights: Vec<Flight>,
    /// Typed dependency edges, in emission order.
    pub edges: Vec<DepEdge>,
    /// `(node, distance)` for every completed prefetch that was later used:
    /// cycles between prefetch completion and the first access that hit it
    /// (0 when a fault joined the prefetch in flight).
    pub prefetch_use: Vec<(usize, Cycles)>,
    /// Final barrier-epoch count per node.
    pub epochs: Vec<u64>,
}

impl ObsLog {
    /// Checks the conservation invariant: per-node, per-category span time
    /// must sum exactly to the node's breakdown totals. Returns one
    /// `(node, detail)` entry per mismatching node/category pair.
    pub fn conservation_errors(&self, nodes: &[NodeStats]) -> Vec<(usize, String)> {
        let ncat = Category::ALL.len();
        let mut sums = vec![0u64; nodes.len() * ncat];
        for s in &self.spans {
            let ci = Category::ALL
                .iter()
                .position(|&c| c == s.cat)
                .unwrap_or(ncat - 1);
            if s.node < nodes.len() {
                sums[s.node * ncat + ci] += s.end - s.start;
            }
        }
        let mut errors = Vec::new();
        for (node, st) in nodes.iter().enumerate() {
            for (ci, &cat) in Category::ALL.iter().enumerate() {
                let spanned = sums[node * ncat + ci];
                let charged = st.breakdown.get(cat);
                if spanned != charged {
                    errors.push((
                        node,
                        format!(
                            "category {}: spans sum to {spanned} cycles but the \
                             breakdown charged {charged}",
                            cat.label()
                        ),
                    ));
                }
            }
        }
        errors
    }
}

/// The live recorder owned by the simulation while the `obs` feature is
/// active. Tracks per-node epochs and outstanding prefetch completions on
/// top of the raw [`ObsLog`].
#[derive(Debug, Default)]
pub struct ObsRecorder {
    log: ObsLog,
    cur_epoch: Vec<u64>,
    /// Completion time of prefetches not yet consumed by an access, keyed by
    /// `(node, page)`.
    prefetch_done: HashMap<(usize, u64), Cycles>,
    /// Issue time + anchoring span of prefetches not yet consumed, keyed by
    /// `(node, page)` — feeds the `PrefetchUse` issue→first-use edge.
    prefetch_issue: HashMap<(usize, u64), (Cycles, SpanId)>,
    /// Index of the most recent span emitted per node.
    last_span: Vec<SpanId>,
}

impl ObsRecorder {
    /// A fresh recorder for `nprocs` nodes.
    pub fn new(nprocs: usize) -> Self {
        ObsRecorder {
            log: ObsLog::default(),
            cur_epoch: vec![0; nprocs],
            prefetch_done: HashMap::new(),
            prefetch_issue: HashMap::new(),
            last_span: vec![SpanId::NONE; nprocs],
        }
    }

    /// Records one conserved processor span; zero-duration charges are
    /// dropped (they contribute nothing to the breakdown either).
    pub fn span(&mut self, node: usize, kind: SpanKind, cat: Category, start: Cycles, dur: Cycles) {
        self.push_span(node, kind, cat, start, dur, false);
    }

    /// Records a span charged off the node's own timeline (see
    /// [`Span::detached`]).
    pub fn span_detached(
        &mut self,
        node: usize,
        kind: SpanKind,
        cat: Category,
        start: Cycles,
        dur: Cycles,
    ) {
        self.push_span(node, kind, cat, start, dur, true);
    }

    fn push_span(
        &mut self,
        node: usize,
        kind: SpanKind,
        cat: Category,
        start: Cycles,
        dur: Cycles,
        detached: bool,
    ) {
        if dur == 0 {
            return;
        }
        let epoch = self.cur_epoch.get(node).copied().unwrap_or(0);
        self.log.spans.push(Span {
            node,
            epoch,
            kind,
            cat,
            start,
            end: start + dur,
            detached,
        });
        if let Some(slot) = self.last_span.get_mut(node) {
            *slot = SpanId((self.log.spans.len() - 1) as u32);
        }
    }

    /// The most recent span emitted on `node`, or [`SpanId::NONE`].
    pub fn last_span(&self, node: usize) -> SpanId {
        self.last_span.get(node).copied().unwrap_or(SpanId::NONE)
    }

    /// Records one typed dependency edge. Edges whose source node has no
    /// recorded span yet, or that would point backwards in time, are
    /// dropped: every kept edge is anchored and satisfies
    /// `src_time <= dst_time`.
    #[allow(clippy::too_many_arguments)]
    pub fn edge(
        &mut self,
        kind: EdgeKind,
        src_node: usize,
        src_time: Cycles,
        dst_node: usize,
        dst_time: Cycles,
        work: Cycles,
        src_span: SpanId,
    ) {
        if src_span.is_none() || src_time > dst_time {
            return;
        }
        self.log.edges.push(DepEdge {
            kind,
            src_node,
            src_time,
            dst_node,
            dst_time,
            work,
            src_span,
        });
    }

    /// Records one controller-engine occupancy interval.
    pub fn engine(
        &mut self,
        node: usize,
        engine: Engine,
        cmd: CtrlCmd,
        start: Cycles,
        end: Cycles,
    ) {
        if end <= start {
            return;
        }
        self.log.engine.push(EngineSpan {
            node,
            engine,
            cmd,
            start,
            end,
        });
    }

    /// Records one message flight.
    #[allow(clippy::too_many_arguments)]
    pub fn flight(
        &mut self,
        src: usize,
        dst: usize,
        kind: MsgKind,
        bytes: u64,
        prefetch: bool,
        inject: Cycles,
        start: Cycles,
        arrival: Cycles,
    ) {
        self.log.flights.push(Flight {
            src,
            dst,
            kind,
            bytes,
            prefetch,
            inject,
            start,
            arrival,
        });
    }

    /// Notes that `node` issued a prefetch of `page` at time `t`; the
    /// anchoring span is captured now so the eventual issue→first-use edge
    /// references the activity that issued it.
    pub fn prefetch_issued(&mut self, node: usize, page: u64, t: Cycles) {
        let sid = self.last_span(node);
        self.prefetch_issue.insert((node, page), (t, sid));
    }

    /// Notes that a prefetch of `page` completed at `node` at time `t`.
    pub fn prefetch_done(&mut self, node: usize, page: u64, t: Cycles) {
        self.prefetch_done.insert((node, page), t);
    }

    /// Notes that an access at `node` consumed a completed prefetch of
    /// `page` at time `t`; records the completion-to-use distance and the
    /// issue→first-use dependency edge.
    pub fn prefetch_used(&mut self, node: usize, page: u64, t: Cycles) {
        if let Some(done) = self.prefetch_done.remove(&(node, page)) {
            // overflow: use time can precede completion under reordered event
            // delivery; clamp the distance to zero rather than panic.
            self.log.prefetch_use.push((node, t.saturating_sub(done)));
        }
        if let Some((issue, sid)) = self.prefetch_issue.remove(&(node, page)) {
            self.edge(EdgeKind::PrefetchUse, node, issue, node, t, 0, sid);
        }
    }

    /// Advances `node`'s barrier epoch.
    pub fn epoch_advance(&mut self, node: usize) {
        if let Some(e) = self.cur_epoch.get_mut(node) {
            *e += 1;
        }
    }

    /// Finalizes the log.
    pub fn into_log(mut self) -> ObsLog {
        self.log.epochs = self.cur_epoch;
        self.log
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_distinct() {
        let mut labels: Vec<&str> = SpanKind::ALL.iter().map(|k| k.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), SpanKind::ALL.len());
    }

    #[test]
    fn edge_labels_are_distinct() {
        use crate::observe::MsgKind;
        let kinds = [
            EdgeKind::Msg(MsgKind::LockReq),
            EdgeKind::Msg(MsgKind::LockForward),
            EdgeKind::Msg(MsgKind::LockGrant),
            EdgeKind::Msg(MsgKind::DiffReq),
            EdgeKind::Msg(MsgKind::DiffReply),
            EdgeKind::Msg(MsgKind::BarrierArrive),
            EdgeKind::Msg(MsgKind::BarrierRelease),
            EdgeKind::Msg(MsgKind::AurcUpdate),
            EdgeKind::Msg(MsgKind::AurcPageReq),
            EdgeKind::Msg(MsgKind::AurcPageReply),
            EdgeKind::FaultFill,
            EdgeKind::PrefetchFill,
            EdgeKind::LockGrant,
            EdgeKind::BarrierRelease,
            EdgeKind::Ctrl(CtrlCmd::Twin),
            EdgeKind::Ctrl(CtrlCmd::DiffCreate),
            EdgeKind::Ctrl(CtrlCmd::DiffApply),
            EdgeKind::Ctrl(CtrlCmd::ListWalk),
            EdgeKind::Ctrl(CtrlCmd::Send),
            EdgeKind::PrefetchUse,
        ];
        let mut labels: Vec<&str> = kinds.iter().map(|k| k.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), kinds.len());
    }

    #[test]
    fn edges_require_an_anchor_and_forward_time() {
        use crate::observe::MsgKind;
        let mut r = ObsRecorder::new(2);
        // No span on node 0 yet: the edge is dropped.
        r.edge(
            EdgeKind::Msg(MsgKind::DiffReq),
            0,
            10,
            1,
            20,
            0,
            r.last_span(0),
        );
        r.span(0, SpanKind::Compute, Category::Busy, 0, 10);
        // Backwards in time: dropped.
        r.edge(
            EdgeKind::Msg(MsgKind::DiffReq),
            0,
            30,
            1,
            20,
            0,
            r.last_span(0),
        );
        // Anchored and forward: kept.
        r.edge(
            EdgeKind::Msg(MsgKind::DiffReq),
            0,
            10,
            1,
            20,
            0,
            r.last_span(0),
        );
        let log = r.into_log();
        assert_eq!(log.edges.len(), 1);
        assert_eq!(log.edges[0].src_span, SpanId(0));
        assert_eq!(log.edges[0].dst_time, 20);
    }

    #[test]
    fn detached_spans_are_flagged_but_still_conserved() {
        let mut r = ObsRecorder::new(1);
        r.span(0, SpanKind::Compute, Category::Busy, 0, 10);
        r.span_detached(0, SpanKind::Service, Category::Ipc, 50, 5);
        let log = r.into_log();
        assert!(!log.spans[0].detached);
        assert!(log.spans[1].detached);
        let mut st = NodeStats::default();
        st.breakdown.add(Category::Busy, 10);
        st.breakdown.add(Category::Ipc, 5);
        assert!(log.conservation_errors(&[st]).is_empty());
    }

    #[test]
    fn prefetch_issue_to_use_becomes_an_edge() {
        let mut r = ObsRecorder::new(1);
        r.span(0, SpanKind::Compute, Category::Busy, 0, 10);
        r.prefetch_issued(0, 7, 10);
        r.prefetch_done(0, 7, 100);
        r.prefetch_used(0, 7, 160);
        let log = r.into_log();
        assert_eq!(log.edges.len(), 1);
        assert_eq!(log.edges[0].kind, EdgeKind::PrefetchUse);
        assert_eq!((log.edges[0].src_time, log.edges[0].dst_time), (10, 160));
    }

    #[test]
    fn recorder_drops_zero_spans_and_tags_epochs() {
        let mut r = ObsRecorder::new(2);
        r.span(0, SpanKind::Compute, Category::Busy, 0, 0);
        r.span(0, SpanKind::Compute, Category::Busy, 0, 10);
        r.epoch_advance(0);
        r.span(0, SpanKind::Service, Category::Ipc, 10, 5);
        let log = r.into_log();
        assert_eq!(log.spans.len(), 2);
        assert_eq!(log.spans[0].epoch, 0);
        assert_eq!(log.spans[1].epoch, 1);
        assert_eq!(log.epochs, vec![1, 0]);
    }

    #[test]
    fn prefetch_distance_is_completion_to_use() {
        let mut r = ObsRecorder::new(1);
        r.prefetch_done(0, 7, 100);
        r.prefetch_used(0, 7, 160);
        // A use with no completion on record is ignored.
        r.prefetch_used(0, 9, 500);
        let log = r.into_log();
        assert_eq!(log.prefetch_use, vec![(0, 60)]);
    }

    #[test]
    fn conservation_check_catches_mismatches() {
        let mut r = ObsRecorder::new(1);
        r.span(0, SpanKind::Compute, Category::Busy, 0, 10);
        let log = r.into_log();
        let mut good = NodeStats::default();
        good.breakdown.add(Category::Busy, 10);
        assert!(log.conservation_errors(&[good]).is_empty());
        let mut bad = good;
        bad.breakdown.add(Category::Busy, 1);
        let errs = log.conservation_errors(&[bad]);
        assert_eq!(errs.len(), 1);
        assert!(errs[0].1.contains("busy"), "{}", errs[0].1);
    }
}
