//! The NCP2 protocol controller (§3.1).
//!
//! A PCI card with an integer RISC core (same clock as the computation
//! processor), 4 MB of DRAM holding the protocol software, a command queue,
//! snooping logic that maintains per-page dirty-word bit vectors, and a DMA
//! engine performing bit-vector-directed scatter/gather.
//!
//! Timing model: the controller serially executes commands from its queue,
//! so core and DMA engine are one [`FifoResource`]. Commands reach it over
//! the node's PCI bus; command *issue* by the computation processor costs a
//! single-word PCI write. Priorities (urgent vs. prefetch) are realized in
//! the system event queue, which orders same-time work by priority.

use ncp2_sim::{Cycles, FifoResource, SysParams};

/// One node's protocol controller (timing side).
///
/// Two servers model the command-priority mechanism of §3.1 ("requests may
/// be given high or low priority, so that we can prevent prefetches from
/// delaying requests for which a computation processor is stalled"): bulk
/// datapath work (twin copies, diff generation/application) occupies
/// [`Controller::core`], while message setup — always urgent — runs on the
/// I/O front end [`Controller::io`] and is never stuck behind a queued
/// prefetch diff.
#[derive(Debug, Clone, Default)]
pub struct Controller {
    /// Occupancy of the controller's core + DMA engine (bulk datapath).
    pub core: FifoResource,
    /// Occupancy of the message/IO front end.
    pub io: FifoResource,
}

impl Controller {
    /// An idle controller.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reserves the datapath for `dur` cycles starting no earlier than
    /// `now`; returns `(start, end)`.
    pub fn run(&mut self, now: Cycles, dur: Cycles) -> (Cycles, Cycles) {
        self.core.reserve(now, dur)
    }

    /// Reserves the message front end for `dur` cycles (network-interface
    /// setup on behalf of the node).
    pub fn run_io(&mut self, now: Cycles, dur: Cycles) -> (Cycles, Cycles) {
        self.io.reserve(now, dur)
    }

    /// Total busy cycles so far (both servers).
    pub fn busy(&self) -> Cycles {
        self.core.busy_cycles() + self.io.busy_cycles()
    }

    /// Cost of the processor issuing one command to the controller: a
    /// single-word PCI write.
    pub fn issue_cost(params: &SysParams) -> Cycles {
        params.pci_access(1)
    }

    /// Instruction cost of *software* diff creation or application over a
    /// whole page scan (≈7 K cycles for a 4-KB page — §3.1's "in a standard
    /// software DSM these operations take about 7K cycles just for
    /// processor instructions").
    pub fn sw_diff_scan(params: &SysParams) -> Cycles {
        params.diff_cycles_per_word * params.page_words()
    }

    /// Instruction cost of *software* diff application of `words` modified
    /// words (no full-page scan needed: the diff lists its words).
    pub fn sw_diff_apply(params: &SysParams, words: u64) -> Cycles {
        params.diff_cycles_per_word * words.max(1)
    }

    /// Instruction cost of twin creation (page copy).
    pub fn twin_cost(params: &SysParams) -> Cycles {
        params.twin_cycles_per_word * params.page_words()
    }

    /// DMA engine cost to generate or apply a diff of `words` dirty words
    /// (bit-vector scan, §3.1: ~200 cycles clean, ~2100 full).
    pub fn dma_cost(params: &SysParams, words: u64) -> Cycles {
        params.dma_scan(words)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn software_scan_is_about_7k_cycles() {
        let p = SysParams::default();
        assert_eq!(Controller::sw_diff_scan(&p), 7168);
        assert_eq!(Controller::twin_cost(&p), 5120);
    }

    #[test]
    fn dma_is_much_cheaper_than_software() {
        let p = SysParams::default();
        for words in [0, 1, 128, 512, 1024] {
            assert!(Controller::dma_cost(&p, words) < Controller::sw_diff_scan(&p));
        }
        assert_eq!(Controller::dma_cost(&p, 0), 200);
        assert_eq!(Controller::dma_cost(&p, 1024), 2100);
    }

    #[test]
    fn commands_serialize_on_the_core() {
        let mut c = Controller::new();
        let (_, e1) = c.run(0, 100);
        let (s2, _) = c.run(10, 50);
        assert_eq!(s2, e1);
        assert_eq!(c.busy(), 150);
    }

    #[test]
    fn issue_cost_is_one_pci_word() {
        let p = SysParams::default();
        assert_eq!(Controller::issue_cost(&p), 13);
    }
}
